// ntdts — the DTS command-line tool (the paper's ntDTS, minus the Java GUI).
//
// Usage:
//   ntdts run <config.ini> [output-dir] [--jobs=N] [--resume]
//                                           run a campaign from a config file
//   ntdts profile <workload>                list a workload's activated functions
//   ntdts faultlist <workload> [file]       generate a fault-list file
//   ntdts single <workload> <fault-id> [middleware] [version]
//                                           execute one fault-injection run
//   ntdts report <campaign.dts>...          render saved campaigns as the
//                                           paper-style tables
//   ntdts report <journal.jsonl>...         merge run journals into a fleet
//                                           campaign report (Markdown/HTML)
//   ntdts replay <journal> <xi|index|id>    re-execute one journaled run with
//                                           the tracer pinned on and compare
//   ntdts workloads                         list built-in workloads
//
// `run` writes <output-dir>/results.csv (one line per fault-injection run),
// <output-dir>/summary.txt (the outcome distribution), <output-dir>/campaign.dts
// (reloadable raw results) and <output-dir>/journal.jsonl (the resumable run
// journal: one record per completed run, written live).
//
// --jobs=N shards the sweep across N parallel workers (0 = one per hardware
// thread); results are byte-identical at any job count because per-run seeds
// derive from the fault id, never from worker id or schedule. --resume
// reuses completed runs from an interrupted campaign's journal.
//
// Observability: --trace=failures|all records every intercepted KERNEL32
// call into a per-run ring buffer and dumps the last --forensics-depth calls
// of interesting runs into <output-dir>/forensics/ (and into the journal
// record as "fx"). --metrics-out=PATH exports campaign metrics as Prometheus
// text at PATH and a Chrome trace_event timeline at PATH.trace.json.
//
// Distributed campaigns (src/dist/): `run --workers=N` spawns N local worker
// processes over loopback TCP; `run --listen=host:port` waits for external
// `ntdts worker --connect=host:port` processes instead. Either way the
// output is byte-identical to a serial run.
//
// Fleet observability (src/obs/fleet/): `run --http=host:port` serves live
// /metrics (Prometheus text), /status (leases, per-worker rates, ETA) and
// /runs?worker=&outcome= (journal tail) while the campaign runs. Workers in
// a distributed campaign ship their metric snapshots to the coordinator, so
// the endpoint sees the whole fleet.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/config.h"
#include "core/report.h"
#include "dist/coordinator.h"
#include "dist/socket.h"
#include "dist/worker.h"
#include "exec/executor.h"
#include "exec/journal.h"
#include "fault/model.h"
#include "forensics/minimize.h"
#include "forensics/replay.h"
#include "inject/fault_class.h"
#include "obs/fleet/events.h"
#include "obs/fleet/http.h"
#include "obs/fleet/report.h"
#include "obs/fleet/stall.h"
#include "obs/fleet/status.h"
#include "obs/metrics.h"
#include "obs/rtrace/rtrace.h"
#include "obs/trace.h"

namespace {

using namespace dts;

int usage() {
  std::cerr <<
      "ntdts - Dependability Test Suite\n"
      "\n"
      "  ntdts run <config.ini> [output-dir] [--jobs=N] [--resume] [--max-faults=N]\n"
      "            [--plan=PATH | --plan-auto | --exhaustive] [--ci-width=X]\n"
      "            [--snapshots=on|off] [--model=NAME[,NAME...]] [--tier=NAME]\n"
      "            [--trace=off|failures|all] [--rtrace=off|failures|all]\n"
      "            [--forensics-depth=N] [--metrics-out=PATH]\n"
      "        --jobs=N   parallel campaign workers (0 = all hardware threads;\n"
      "                   output is byte-identical at any job count)\n"
      "        --snapshots=on|off  fork each run from a COW snapshot of the\n"
      "                   shared golden prefix instead of replaying it (POSIX\n"
      "                   only; output stays byte-identical, default off)\n"
      "        --model=NAME[,NAME...]  fault models to sweep: paper (default;\n"
      "                   the DSN-2000 parameter corruptions), mutation (MINIX\n"
      "                   faultlib-style operators), oserror (error-return /\n"
      "                   delayed / dropped completions), temporal (intermittent\n"
      "                   and persistent variants of the paper operators)\n"
      "        --tier=NAME  multi-tier campaigns ([topology] section): inject\n"
      "                   into tier NAME instead of the config's faulted tier\n"
      "        --resume   continue an interrupted campaign from its run journal\n"
      "        --max-faults=N  cap the sweep at N faults (evenly sampled; 0 = all)\n"
      "        --plan=PATH  execute a saved campaign plan (see 'ntdts plan')\n"
      "        --plan-auto  golden-profile + prune before executing; writes the\n"
      "                   plan to <output-dir>/plan.json\n"
      "        --exhaustive run the plain full sweep (the default; rejects the\n"
      "                   plan flags so scripts can pin the mode explicitly)\n"
      "        --ci-width=X adaptive sampling: stop a (function x fault-type)\n"
      "                   stratum once the Wilson 95% CI half-width on its\n"
      "                   failure rate is <= X (requires --plan/--plan-auto;\n"
      "                   0 = off, keeping outcome counts exact)\n"
      "        --trace=M  per-run syscall tracing: 'failures' dumps forensics for\n"
      "                   failed/restarted runs, 'all' for every run (default off)\n"
      "        --rtrace=M cross-tier request tracing (needs [topology]): every\n"
      "                   request hop becomes a causal span; 'failures' journals\n"
      "                   spans for failed/non-masked runs, 'all' for every run\n"
      "                   (default off — off-mode output is byte-identical)\n"
      "        --forensics-depth=N  ring depth: last N calls kept per run (default 32)\n"
      "        --metrics-out=PATH   write campaign metrics as Prometheus text to PATH\n"
      "                   and a Chrome trace timeline to PATH.trace.json\n"
      "        --workers=N  distributed mode: spawn N local worker processes\n"
      "                   over loopback TCP (output byte-identical to serial)\n"
      "        --listen=host:port  distributed mode: wait for external workers\n"
      "                   (port 0 = ephemeral; the chosen port is printed)\n"
      "        --lease-timeout-ms=N  reassign a shard lease after N ms of worker\n"
      "                   silence (default 30000)\n"
      "        --lease-size=N  faults per shard lease (default: auto)\n"
      "        --http=host:port  serve live observability over HTTP while the\n"
      "                   campaign runs: /metrics (Prometheus), /status (JSON:\n"
      "                   leases, per-worker rates, ETA), /runs?worker=&outcome=\n"
      "                   (journal tail), /topology (live per-tier propagation\n"
      "                   matrix), /traces (traced-run tail), /healthz (liveness:\n"
      "                   uptime + version); port 0 = ephemeral, printed on start\n"
      "  ntdts worker --connect=host:port [--io-timeout-ms=N]\n"
      "        join a distributed campaign as a worker process\n"
      "  ntdts plan <config.ini> [plan.json] [--ci-width=X]\n"
      "        golden-run profile + equivalence pruning: prints per-stratum\n"
      "        counts and predicted savings; saves the plan when a path is given\n"
      "  ntdts profile <workload>\n"
      "  ntdts faultlist <workload> [file] [--class=<fault-class>]\n"
      "  ntdts classes <workload>\n"
      "  ntdts single <workload> <fault-id> [none|mscs|watchd] [1|2|3] [--trace]\n"
      "  ntdts report <campaign.dts>...\n"
      "        render saved campaigns as the paper-style tables\n"
      "  ntdts report <journal.jsonl>... [--out=PATH] [--html]\n"
      "        merge run journals (any mix of schema versions, duplicate\n"
      "        records dropped) into a campaign report with outcome matrices,\n"
      "        failure-signature clusters and response-time histograms\n"
      "  ntdts replay <journal.jsonl> <xi|fault-index|fault-id>\n"
      "            [--minimize] [--out=PATH] [--trace-depth=N]\n"
      "        re-execute one journaled run with tracing pinned on and compare\n"
      "        outcome/run line/trace digest against the record (exit 0 =\n"
      "        match, 1 = mismatch — the ntsim nondeterminism detector).\n"
      "        --minimize shrinks the configuration ddmin-style while the\n"
      "        outcome is preserved and writes a runnable repro config (+ a\n"
      "        one-fault .faults list) to --out (default repro.ini)\n"
      "  ntdts workloads\n";
  return 2;
}

/// Satellite guard: every subcommand routes unrecognized --flags here instead
/// of silently treating them as positional arguments.
int unknown_flag(const std::string& cmd, const std::string& flag) {
  std::cerr << "ntdts " << cmd << ": unknown flag '" << flag
            << "' (run 'ntdts' with no arguments for usage)\n";
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// `ntdts replay <journal> <selector>` — one-command failure replay (and,
/// with --minimize, repro minimisation). Exit 0 = replay matches the journal
/// record, 1 = mismatch (the ntsim nondeterminism detector fired), 2 = usage
/// or I/O error.
int cmd_replay(int argc, char** argv) {
  std::string journal_path, selector, out_path;
  bool minimize = false;
  std::size_t trace_depth = 512;
  int positional = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--minimize") {
      minimize = true;
    } else if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
      if (out_path.empty()) {
        std::cerr << "ntdts replay: --out expects a path\n";
        return 2;
      }
    } else if (a.rfind("--trace-depth=", 0) == 0) {
      const std::string value = a.substr(14);
      std::size_t used = 0;
      long n = -1;
      try {
        n = std::stol(value, &used);
      } catch (const std::exception&) {
      }
      if (used != value.size() || n < 1 || n > 100000) {
        std::cerr << "ntdts replay: --trace-depth expects an integer in "
                     "[1, 100000], got '" << value << "'\n";
        return 2;
      }
      trace_depth = static_cast<std::size_t>(n);
    } else if (a.rfind("--", 0) == 0) {
      return unknown_flag("replay", a);
    } else if (positional == 0) {
      journal_path = a;
      ++positional;
    } else if (positional == 1) {
      selector = a;
      ++positional;
    } else {
      return usage();
    }
  }
  if (positional < 2) return usage();

  std::string error;
  auto file = exec::read_journal_file(journal_path, &error);
  if (!file) {
    std::cerr << journal_path << ": " << error << "\n";
    return 2;
  }
  const exec::JournalRecord* rec = forensics::find_record(*file, selector, &error);
  if (rec == nullptr) {
    std::cerr << "ntdts replay: " << error << "\n";
    return 2;
  }

  forensics::ReplayOptions opts;
  opts.trace_depth = trace_depth;
  const auto replay = forensics::replay_record(*file, *rec, opts, &error);
  if (!replay) {
    std::cerr << "ntdts replay: " << error << "\n";
    return 2;
  }

  std::cout << "replaying record #" << rec->index << " fault " << rec->fault_id;
  if (!rec->exec_index.empty()) std::cout << " (xi " << rec->exec_index << ")";
  std::cout << "\nconfiguration from " << replay->config_source << "\n";
  std::cout << "journal outcome:  " << replay->journal_outcome << "\n";
  std::cout << "replayed outcome: " << exec::outcome_label(replay->run.outcome)
            << (replay->outcome_match ? "" : "   <-- MISMATCH") << "\n";
  std::cout << "run line match:   " << (replay->run_line_match ? "yes" : "NO")
            << "\n";
  std::cout << "trace digest:     "
            << (rec->trace_digest == 0
                    ? "(not journaled — pre-v4 record)"
                    : (replay->trace_digest_match ? "match" : "MISMATCH"))
            << "\n";
  std::cout << "call context:     "
            << (replay->call_context.empty() ? "(fault never fired)"
                                             : replay->call_context)
            << (replay->call_context_match ? "" : "   <-- MISMATCH") << "\n";
  std::cout << "request trace:    "
            << (rec->rtrace.empty()
                    ? "(not journaled — untraced record)"
                    : (replay->rtrace_digest_match ? "match" : "MISMATCH"))
            << "\n";
  std::cout << "\n" << replay->forensics;
  if (!replay->matches()) {
    std::cerr << "\nREPLAY MISMATCH: the journaled run and the replay were fed "
                 "identical inputs.\nDivergence means the simulator was "
                 "nondeterministic or the journal came from a\ndifferent "
                 "build — either way, this run is the repro.\n";
  }

  if (minimize) {
    std::string src;
    auto run_cfg = forensics::config_from_journal(*file, &src, &error);
    if (!run_cfg) {
      std::cerr << "ntdts replay: " << error << "\n";
      return 2;
    }
    const auto fault =
        inject::parse_fault_id(run_cfg->workload.target_image, rec->fault_id);
    if (!fault) {
      std::cerr << "ntdts replay: unparsable fault id " << rec->fault_id << "\n";
      return 2;
    }
    core::RunResult journaled;
    if (!core::parse_run_line(run_cfg->workload.target_image, rec->run_line,
                              &journaled, &error)) {
      std::cerr << "ntdts replay: " << error << "\n";
      return 2;
    }
    const auto mres = forensics::minimize_repro(*run_cfg, file->key.seed, *fault,
                                                journaled.outcome);
    std::cout << "\n--- minimisation (" << mres.runs_tried << " verification runs) ---\n";
    for (const auto& step : mres.steps) {
      std::cout << "  " << (step.kept ? "kept   " : "reject ") << step.description
                << "\n";
    }
    std::cout << "  simulated time: " << mres.sim_us_before << " us -> "
              << mres.sim_us_after << " us\n";
    if (!mres.reduced) {
      std::cout << "  no reduction preserved the outcome; emitting the "
                   "baseline config\n";
    }
    const std::string repro_path = out_path.empty() ? "repro.ini" : out_path;
    const std::string faults_path = repro_path + ".faults";
    core::DtsConfig repro = mres.minimal;
    repro.fault_list_file = faults_path;
    inject::FaultList single;
    single.faults.push_back(*fault);
    {
      std::ofstream out(repro_path);
      if (!out) {
        std::cerr << "cannot write " << repro_path << "\n";
        return 2;
      }
      out << core::serialize_config(repro);
    }
    {
      std::ofstream out(faults_path);
      if (!out) {
        std::cerr << "cannot write " << faults_path << "\n";
        return 2;
      }
      out << single.serialize();
    }
    std::cout << "minimal repro written to " << repro_path << " (+ " << faults_path
              << ") — run it with: ntdts run " << repro_path << "\n";
  }
  return replay->matches() ? 0 : 1;
}

int cmd_report(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string out_path;
  bool html = false;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
      if (out_path.empty()) {
        std::cerr << "ntdts report: --out expects a path\n";
        return 2;
      }
    } else if (a == "--html") {
      html = true;
    } else if (a.rfind("--", 0) == 0) {
      return unknown_flag("report", a);
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) return usage();

  // Classify inputs by content, not extension: a run journal announces
  // itself in its header line. Mixing the two report kinds is an error.
  std::vector<std::string> texts;
  bool any_journal = false;
  bool any_campaign = false;
  for (const std::string& path : paths) {
    const auto text = read_file(path);
    if (!text) {
      std::cerr << "cannot read " << path << "\n";
      return 2;
    }
    const std::string first_line = text->substr(0, text->find('\n'));
    (first_line.find("\"dts_journal\"") != std::string::npos ? any_journal
                                                            : any_campaign) = true;
    texts.push_back(std::move(*text));
  }
  if (any_journal && any_campaign) {
    std::cerr << "ntdts report: cannot mix run journals and campaign.dts files "
                 "in one report\n";
    return 2;
  }

  if (any_journal) {
    std::vector<exec::JournalFile> files;
    for (const std::string& path : paths) {
      std::string error;
      auto file = exec::read_journal_file(path, &error);
      if (!file) {
        std::cerr << path << ": " << error << "\n";
        return 2;
      }
      files.push_back(std::move(*file));
    }
    const obs::fleet::FleetReport report = obs::fleet::build_report(files);
    if (report.foreign > 0) {
      std::cerr << "warning: " << report.foreign << " record"
                << (report.foreign == 1 ? "" : "s")
                << " excluded — execution index names a foreign campaign "
                   "digest (journal file mixed with another campaign's "
                   "records?)\n";
    }
    const std::string rendered = html ? obs::fleet::render_report_html(report)
                                      : obs::fleet::render_report_markdown(report);
    if (out_path.empty()) {
      std::cout << rendered;
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 2;
      }
      out << rendered;
      std::cout << "report written to " << out_path << " (" << report.records
                << " runs, " << report.groups.size() << " configuration"
                << (report.groups.size() == 1 ? "" : "s") << ")\n";
    }
    return 0;
  }

  if (html || !out_path.empty()) {
    std::cerr << "ntdts report: --out/--html apply to journal reports only\n";
    return 2;
  }
  std::vector<core::WorkloadSetResult> sets;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::string error;
    auto set = core::deserialize_workload_set(texts[i], &error);
    if (!set) {
      std::cerr << paths[i] << ": " << error << "\n";
      return 2;
    }
    sets.push_back(std::move(*set));
  }
  std::cout << core::table1_activated_functions(sets) << "\n";
  std::cout << core::fig2_outcome_table(sets) << "\n";
  std::cout << core::fig4_response_times(sets) << "\n";
  // The comparative tables render only when their workloads are present.
  const std::string fig3 = core::fig3_apache_vs_iis(sets);
  if (fig3.find("Apache") != std::string::npos &&
      std::count(fig3.begin(), fig3.end(), '\n') > 2) {
    std::cout << fig3 << "\n" << core::table2_common_faults(sets) << "\n";
  }
  return 0;
}

int cmd_workloads() {
  for (const char* w : {"Apache1", "Apache2", "IIS", "SQL", "IIS-FTP"}) {
    const core::WorkloadSpec spec = core::workload_by_name(w);
    std::cout << spec.name << "\tservice=" << spec.service_name
              << "\ttarget=" << spec.target_image << "\tport=" << spec.port << "\n";
  }
  return 0;
}

int cmd_profile(const std::string& workload) {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name(workload);
  const auto fns = core::profile_workload(cfg);
  std::cout << "# " << fns.size() << " activated injectable KERNEL32 functions for "
            << cfg.workload.name << "\n";
  for (nt::Fn fn : fns) std::cout << nt::to_string(fn) << "\n";
  return 0;
}

int cmd_classes(const std::string& workload) {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name(workload);
  const auto fns = core::profile_workload(cfg);
  std::cout << "# system-independent fault classes activated by " << cfg.workload.name
            << " (injection points per class)\n";
  for (const auto& [cls, count] : inject::class_histogram(fns)) {
    std::cout << inject::to_string(cls) << "\t" << count << "\n";
  }
  return 0;
}

int cmd_faultlist(const std::string& workload, const std::string& out_path,
                  const std::string& class_name) {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name(workload);
  const auto fns = core::profile_workload(cfg);
  inject::FaultList list;
  if (!class_name.empty()) {
    auto cls = inject::fault_class_from_string(class_name);
    if (!cls) {
      std::cerr << "unknown fault class '" << class_name << "'; known classes:\n";
      for (auto c : inject::kAllFaultClasses) std::cerr << "  " << to_string(c) << "\n";
      return 2;
    }
    list = inject::faults_for_class(cfg.workload.target_image, *cls, fns);
  } else {
    list = inject::FaultList::for_functions(cfg.workload.target_image, fns);
  }
  const std::string text = list.serialize();
  if (out_path.empty()) {
    std::cout << text;
  } else {
    std::ofstream out(out_path);
    out << text;
    std::cout << "wrote " << list.faults.size() << " faults to " << out_path << "\n";
  }
  return 0;
}

int cmd_single(const std::string& workload, const std::string& fault_id,
               const std::string& middleware, const std::string& version,
               bool trace) {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name(workload);
  if (trace) cfg.trace_limit = 40;
  if (middleware == "mscs") {
    cfg.middleware = mw::MiddlewareKind::kMscs;
  } else if (middleware == "watchd") {
    cfg.middleware = mw::MiddlewareKind::kWatchd;
  } else if (middleware != "none" && !middleware.empty()) {
    std::cerr << "unknown middleware '" << middleware << "'\n";
    return 2;
  }
  if (!version.empty()) {
    cfg.watchd_version = static_cast<mw::WatchdVersion>(std::stoi(version));
  }
  auto fault = inject::parse_fault_id(cfg.workload.target_image, fault_id);
  if (!fault) {
    std::cerr << "bad fault id '" << fault_id << "'\n";
    return 2;
  }
  cfg.seed = sim::Rng::mix(1, sim::Rng::hash(fault_id));
  core::FaultInjectionRun run(cfg);
  const core::RunResult r = run.execute(*fault);
  std::cout << r.summary() << "\n";
  if (trace) {
    std::cout << "\n--- last " << run.interceptor().trace().size()
              << " KERNEL32 calls of " << cfg.workload.target_image
              << " (post-corruption) ---\n";
    for (const auto& entry : run.interceptor().trace()) {
      std::cout << "  " << entry.to_string() << "\n";
    }
    if (!run.spans().empty()) {
      std::cout << "\n--- middleware detection/recovery spans ---\n";
      for (const auto& s : run.spans().spans()) {
        std::cout << "  " << s.name << ": " << s.begin.to_seconds() << "s -> "
                  << s.end.to_seconds() << "s (" << s.duration().to_seconds()
                  << "s)\n";
      }
    }
  }
  return r.outcome == core::Outcome::kFailure ? 1 : 0;
}

int cmd_plan(const std::string& config_path, const std::string& out_path,
             double ci_width) {
  const auto text = read_file(config_path);
  if (!text) {
    std::cerr << "cannot read " << config_path << "\n";
    return 2;
  }
  std::string error;
  auto cfg = core::parse_config(*text, &error);
  if (!cfg) {
    std::cerr << config_path << ": " << error << "\n";
    return 2;
  }
  const plan::Plan p = core::build_campaign_plan(cfg->run, cfg->campaign);

  std::cout << "campaign plan: " << p.workload << " seed=" << p.seed
            << " iterations=" << p.iterations << "\n";
  std::cout << "  sweep entries:  " << p.entries.size() << "\n";
  std::cout << "  execute:        " << p.executable_count() << "\n";
  std::cout << "  deduplicated:   " << p.duplicate_count()
            << "  (same injection point, same corrupted word)\n";
  std::cout << "  pruned:         " << p.pruned_count() << "\n";
  for (const auto& [reason, count] : p.prune_histogram()) {
    std::cout << "    " << plan::to_string(reason) << ": " << count << "\n";
  }
  std::cout << "  reachable sweep: " << p.reachable_count()
            << " (what the profile-restricted exhaustive campaign executes)\n";
  char pct[32];
  std::snprintf(pct, sizeof pct, "%.1f%%", 100.0 * p.predicted_savings());
  std::cout << "  predicted savings vs reachable sweep: " << pct << "\n";

  std::cout << "\n  strata (function x fault type):\n";
  for (const plan::Stratum& s : p.strata()) {
    std::cout << "    " << plan::to_string(s.key) << ": " << s.members.size()
              << " faults\n";
  }
  if (ci_width > 0.0) {
    std::cout << "\n  adaptive sampling: strata stop once the Wilson 95% CI\n"
                 "  half-width on their failure rate is <= "
              << ci_width << " (per-stratum counts above are maxima)\n";
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 2;
    }
    out << p.serialize();
    std::cout << "\nplan written to " << out_path << " (run with --plan=" << out_path
              << ")\n";
  }
  return 0;
}

/// Parsed `run` flags — one struct so the plan knobs travel with the rest.
struct RunFlags {
  std::optional<int> jobs;
  bool resume = false;
  obs::TraceMode trace = obs::TraceMode::kOff;
  std::size_t forensics_depth = 32;
  std::string metrics_out;
  plan::PlanOptions::Mode plan_mode = plan::PlanOptions::Mode::kExhaustive;
  bool plan_flag_seen = false;  // --plan/--plan-auto/--exhaustive given
  std::string plan_file;
  double ci_width = 0.0;
  std::optional<std::size_t> max_faults;
  std::optional<bool> snapshots;
  std::optional<std::string> models;  // canonical ModelSet CSV ("" = default)
  std::string tier;  // --tier= override of the faulted topology tier
  // --rtrace= override of the config's [topology] rtrace mode (absent = keep
  // the config's choice, which defaults to off).
  std::optional<obs::rtrace::RtraceMode> rtrace;

  // Distributed mode (either flag selects it).
  std::optional<int> dist_workers;
  std::string listen_addr;
  int lease_timeout_ms = 30000;
  std::size_t lease_size = 0;

  // Live observability endpoint (empty = off).
  std::string http_addr;

  bool distributed() const { return dist_workers.has_value() || !listen_addr.empty(); }
};

int cmd_run(const std::string& config_path, const std::string& out_dir,
            const RunFlags& flags) {
  const auto text = read_file(config_path);
  if (!text) {
    std::cerr << "cannot read " << config_path << "\n";
    return 2;
  }
  std::string error;
  auto cfg = core::parse_config(*text, &error);
  if (!cfg) {
    std::cerr << config_path << ": " << error << "\n";
    return 2;
  }
  if (flags.jobs) cfg->campaign.jobs = *flags.jobs;
  if (flags.max_faults) cfg->campaign.max_faults = *flags.max_faults;
  if (flags.snapshots) cfg->campaign.snapshots = *flags.snapshots;
  if (flags.models) cfg->campaign.models = *flags.models;
  if (!flags.tier.empty()) {
    if (cfg->run.topo.empty()) {
      std::cerr << "ntdts run: --tier requires a [topology] section in "
                << config_path << "\n";
      return 2;
    }
    const topo::TierSpec* t = cfg->run.topo.find_tier(flags.tier);
    if (t == nullptr) {
      std::cerr << "ntdts run: --tier=" << flags.tier << " is not a tier of '"
                << cfg->run.topo.to_string() << "'\n";
      return 2;
    }
    cfg->run.topo.fault_tier = flags.tier;
    // The faulted tier decides the sweep's target image (same derivation the
    // config parser applies for the `tier =` key).
    cfg->run.workload = core::workload_by_name(
        t->app == "apache" ? "Apache2" : (t->app == "iis" ? "IIS" : "SQL"));
  }
  if (flags.rtrace) {
    if (cfg->run.topo.empty() &&
        *flags.rtrace != obs::rtrace::RtraceMode::kOff) {
      std::cerr << "ntdts run: --rtrace requires a [topology] section in "
                << config_path << " (request tracing spans multi-tier hops)\n";
      return 2;
    }
    cfg->run.rtrace = *flags.rtrace;
  }
  cfg->campaign.plan.mode = flags.plan_mode;
  cfg->campaign.plan.plan_file = flags.plan_file;
  cfg->campaign.plan.ci_half_width = flags.ci_width;
  if (flags.plan_mode == plan::PlanOptions::Mode::kAuto) {
    cfg->campaign.plan.plan_out = out_dir + "/plan.json";
  }
  const bool resume = flags.resume;
  const obs::TraceMode trace = flags.trace;
  const std::size_t forensics_depth = flags.forensics_depth;
  const std::string& metrics_out = flags.metrics_out;

  // Explicit fault list, if configured.
  std::optional<inject::FaultList> explicit_faults;
  if (!cfg->fault_list_file.empty() &&
      flags.plan_mode != plan::PlanOptions::Mode::kExhaustive) {
    std::cerr << "ntdts run: --plan/--plan-auto cannot be combined with an explicit "
                 "fault list (the plan already decides what executes)\n";
    return 2;
  }
  if (!cfg->fault_list_file.empty()) {
    const auto list_text = read_file(cfg->fault_list_file);
    if (!list_text) {
      std::cerr << "cannot read fault list " << cfg->fault_list_file << "\n";
      return 2;
    }
    explicit_faults =
        inject::FaultList::parse(cfg->run.workload.target_image, *list_text, &error);
    if (!explicit_faults) {
      std::cerr << cfg->fault_list_file << ": " << error << "\n";
      return 2;
    }
  }

  // The run journal lives in the output directory; create it up front.
  std::filesystem::create_directories(out_dir);
  cfg->campaign.journal_path = out_dir + "/journal.jsonl";
  cfg->campaign.resume = resume;
  const auto progress = [](const exec::ProgressSnapshot& s) {
    std::cerr << "\r" << exec::format_progress(s) << "    " << std::flush;
    if (s.done == s.total) std::cerr << "\n";
  };
  cfg->campaign.on_snapshot = progress;

  // Observability: the registry aggregates across workers; forensics dumps
  // land next to the other campaign outputs.
  obs::MetricsRegistry metrics;
  cfg->campaign.trace = trace;
  cfg->campaign.forensics_depth = forensics_depth;
  if (trace != obs::TraceMode::kOff) cfg->campaign.forensics_dir = out_dir + "/forensics";
  if (!metrics_out.empty()) cfg->campaign.metrics = &metrics;

  // Fleet observability (src/obs/fleet/): --http turns the registry on and
  // serves it live; the stall detector and status board ride along whenever
  // metrics are collected, so anomaly counters land in --metrics-out too.
  obs::fleet::FleetEventLog events;
  obs::fleet::StatusBoard status_board;
  obs::fleet::StallDetector stall(&metrics, &events);
  if (!flags.http_addr.empty()) cfg->campaign.metrics = &metrics;
  if (cfg->campaign.metrics != nullptr) {
    cfg->campaign.stall = &stall;
    cfg->campaign.status = &status_board;
  }
  obs::fleet::HttpEndpoint http;
  if (!flags.http_addr.empty()) {
    const auto hp = dist::parse_host_port(flags.http_addr, /*allow_port_zero=*/true);
    if (!hp) {
      std::cerr << "ntdts run: --http expects host:port, got '" << flags.http_addr
                << "'\n";
      return 2;
    }
    http.handle("/metrics", [&metrics](const obs::fleet::HttpRequest&) {
      obs::fleet::HttpResponse r;
      r.content_type = "text/plain; version=0.0.4; charset=utf-8";
      r.body = metrics.prometheus_text();
      return r;
    });
    http.handle("/status", [&status_board, &events](const obs::fleet::HttpRequest&) {
      obs::fleet::HttpResponse r;
      r.content_type = "application/json";
      r.body = status_board.status_json(&events);
      return r;
    });
    http.handle("/runs", [&status_board](const obs::fleet::HttpRequest& req) {
      const auto get = [&req](const char* key) {
        const auto it = req.query.find(key);
        return it != req.query.end() ? it->second : std::string();
      };
      obs::fleet::HttpResponse r;
      r.content_type = "application/json";
      r.body = status_board.runs_json(get("worker"), get("outcome"));
      return r;
    });
    http.handle("/signatures", [&status_board](const obs::fleet::HttpRequest&) {
      obs::fleet::HttpResponse r;
      r.content_type = "application/json";
      r.body = status_board.signatures_json();
      return r;
    });
    http.handle("/topology", [&status_board](const obs::fleet::HttpRequest&) {
      obs::fleet::HttpResponse r;
      r.content_type = "application/json";
      r.body = status_board.topology_json();
      return r;
    });
    http.handle("/traces", [&status_board](const obs::fleet::HttpRequest&) {
      obs::fleet::HttpResponse r;
      r.content_type = "application/json";
      r.body = status_board.traces_json();
      return r;
    });
    // /healthz is built into the endpoint (uptime + version JSON).
    std::string herr;
    if (!http.start(hp->first, hp->second, &herr)) {
      std::cerr << "ntdts run: " << herr << "\n";
      return 2;
    }
    std::cerr << "live observability at http://" << hp->first << ":" << http.port()
              << "/{metrics,status,runs,signatures,topology,traces,healthz}\n";
  }

  core::WorkloadSetResult set;
  if (flags.distributed()) {
    dist::DistOptions d;
    if (!flags.listen_addr.empty()) {
      const auto hp =
          dist::parse_host_port(flags.listen_addr, /*allow_port_zero=*/true);
      if (!hp) {
        std::cerr << "ntdts run: --listen expects host:port, got '"
                  << flags.listen_addr << "'\n";
        return 2;
      }
      d.listen_host = hp->first;
      d.listen_port = hp->second;
    }
    d.spawn_workers = flags.dist_workers.value_or(0);
    d.lease_timeout_ms = flags.lease_timeout_ms;
    d.lease_size = flags.lease_size;
    d.events = &events;
    const std::string host = d.listen_host;
    if (d.spawn_workers == 0) {
      d.on_listen = [host](std::uint16_t port) {
        std::cerr << "coordinator listening on " << host << ":" << port
                  << " — join workers with: ntdts worker --connect=" << host << ":"
                  << port << "\n";
      };
    }
    set = dist::run_workload_set_distributed(cfg->run, cfg->campaign, std::move(d),
                                             explicit_faults);
  } else if (explicit_faults) {
    // Run exactly the listed faults (no skip-uncalled: the user asked for
    // precisely these), sharded across the same executor.
    set.base_config = cfg->run;
    set.activated_functions = core::profile_workload(cfg->run, cfg->campaign.seed);
    exec::ExecOptions eo;
    eo.config_text = core::serialize_config(*cfg);
    eo.jobs = cfg->campaign.jobs;
    eo.skip_uncalled = false;
    eo.journal_path = cfg->campaign.journal_path;
    eo.resume = resume;
    eo.on_progress = progress;
    eo.metrics = cfg->campaign.metrics;
    eo.trace = cfg->campaign.trace;
    eo.forensics_depth = cfg->campaign.forensics_depth;
    eo.forensics_dir = cfg->campaign.forensics_dir;
    eo.stall = cfg->campaign.stall;
    eo.status = cfg->campaign.status;
    exec::CampaignExecutor executor(std::move(eo));
    set.runs = executor.run(cfg->run, *explicit_faults, cfg->campaign.seed).runs;
  } else {
    set = core::run_workload_set(cfg->run, cfg->campaign);
  }
  if (!metrics_out.empty()) {
    std::string merr;
    if (!obs::write_metrics_files(metrics, metrics_out, &merr)) {
      std::cerr << "ntdts: " << merr << "\n";
      return 2;
    }
    std::cout << "metrics written to " << metrics_out << " (+ " << metrics_out
              << ".trace.json)\n";
  }
  {
    std::ofstream out(out_dir + "/results.csv");
    out << core::runs_csv(set);
  }
  {
    std::ofstream out(out_dir + "/campaign.dts");
    out << core::serialize_workload_set(set);
  }
  std::ostringstream summary;
  summary << core::fig2_outcome_table({&set, 1});
  summary << "\nActivated functions: " << set.activated_functions.size() << "\n";
  if (set.plan_digest) {
    const core::PlanDigest& d = *set.plan_digest;
    summary << "Plan: " << d.entries << " sweep entries -> " << d.executed
            << " executed, " << d.reused << " reused, " << d.deduped
            << " deduplicated, " << d.pruned << " pruned, " << d.unsampled
            << " unsampled\n";
    for (const auto& [reason, count] : d.prune_histogram) {
      summary << "  pruned " << plan::to_string(reason) << ": " << count << "\n";
    }
    for (const auto& s : d.strata) {
      if (!s.stopped_early) continue;
      char ci[32];
      std::snprintf(ci, sizeof ci, "%.3f", s.ci_half_width);
      summary << "  stratum " << plan::to_string(s.key) << " stopped early after "
              << s.trials << " trials (CI half-width " << ci << ")\n";
    }
  }
  {
    std::ofstream out(out_dir + "/summary.txt");
    out << summary.str();
  }
  std::cout << summary.str();
  std::cout << "results written to " << out_dir << "/{results.csv, summary.txt, campaign.dts}\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "workloads") return cmd_workloads();
    if (cmd == "profile" && argc >= 3) return cmd_profile(argv[2]);
    if (cmd == "classes" && argc >= 3) return cmd_classes(argv[2]);
    if (cmd == "faultlist" && argc >= 3) {
      std::string out_path, class_name;
      for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--class=", 0) == 0) {
          class_name = a.substr(8);
        } else if (a.rfind("--", 0) == 0) {
          return unknown_flag("faultlist", a);
        } else {
          out_path = a;
        }
      }
      return cmd_faultlist(argv[2], out_path, class_name);
    }
    if (cmd == "single" && argc >= 4) {
      std::vector<std::string> rest;
      bool trace = false;
      for (int i = 4; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--trace") {
          trace = true;
        } else if (a.rfind("--", 0) == 0) {
          return unknown_flag("single", a);
        } else {
          rest.emplace_back(a);
        }
      }
      return cmd_single(argv[2], argv[3], !rest.empty() ? rest[0] : "none",
                        rest.size() > 1 ? rest[1] : "", trace);
    }
    if (cmd == "plan" && argc >= 3) {
      std::string out_path;
      double ci_width = 0.0;
      bool have_out = false;
      for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--ci-width=", 0) == 0) {
          const std::string value = a.substr(11);
          char* end = nullptr;
          ci_width = std::strtod(value.c_str(), &end);
          if (value.empty() || end != value.c_str() + value.size() || ci_width < 0.0 ||
              ci_width >= 0.5) {
            std::cerr << "ntdts: --ci-width expects a number in [0, 0.5), got '"
                      << value << "'\n";
            return 2;
          }
        } else if (a.rfind("--", 0) == 0) {
          return unknown_flag("plan", a);
        } else if (!have_out) {
          out_path = a;
          have_out = true;
        } else {
          return usage();
        }
      }
      return cmd_plan(argv[2], out_path, ci_width);
    }
    if (cmd == "run" && argc >= 3) {
      std::string out_dir = "dts-results";
      bool have_out_dir = false;
      RunFlags flags;
      int plan_mode_flags = 0;  // --plan / --plan-auto / --exhaustive are exclusive
      for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--jobs=", 0) == 0) {
          const std::string value = a.substr(7);
          std::size_t used = 0;
          int n = -1;
          try {
            n = std::stoi(value, &used);
          } catch (const std::exception&) {
          }
          if (used != value.size() || n < 0 || n > 1024) {
            std::cerr << "ntdts: --jobs expects an integer in [0, 1024], got '"
                      << value << "'\n";
            return 2;
          }
          flags.jobs = n;
        } else if (a == "--resume") {
          flags.resume = true;
        } else if (a.rfind("--max-faults=", 0) == 0) {
          const std::string value = a.substr(13);
          std::size_t used = 0;
          long n = -1;
          try {
            n = std::stol(value, &used);
          } catch (const std::exception&) {
          }
          if (used != value.size() || n < 0) {
            std::cerr << "ntdts: --max-faults expects a non-negative integer, got '"
                      << value << "'\n";
            return 2;
          }
          flags.max_faults = static_cast<std::size_t>(n);
        } else if (a.rfind("--plan=", 0) == 0) {
          flags.plan_mode = plan::PlanOptions::Mode::kFromFile;
          flags.plan_file = a.substr(7);
          ++plan_mode_flags;
          if (flags.plan_file.empty()) {
            std::cerr << "ntdts: --plan expects a path\n";
            return 2;
          }
        } else if (a == "--plan-auto") {
          flags.plan_mode = plan::PlanOptions::Mode::kAuto;
          ++plan_mode_flags;
        } else if (a == "--exhaustive") {
          flags.plan_mode = plan::PlanOptions::Mode::kExhaustive;
          ++plan_mode_flags;
        } else if (a.rfind("--ci-width=", 0) == 0) {
          const std::string value = a.substr(11);
          char* end = nullptr;
          flags.ci_width = std::strtod(value.c_str(), &end);
          if (value.empty() || end != value.c_str() + value.size() ||
              flags.ci_width < 0.0 || flags.ci_width >= 0.5) {
            std::cerr << "ntdts: --ci-width expects a number in [0, 0.5), got '"
                      << value << "'\n";
            return 2;
          }
        } else if (a.rfind("--trace=", 0) == 0) {
          if (!obs::trace_mode_from_string(a.substr(8), &flags.trace)) {
            std::cerr << "ntdts: --trace expects off|failures|all, got '"
                      << a.substr(8) << "'\n";
            return 2;
          }
        } else if (a.rfind("--forensics-depth=", 0) == 0) {
          const std::string value = a.substr(18);
          std::size_t used = 0;
          long n = -1;
          try {
            n = std::stol(value, &used);
          } catch (const std::exception&) {
          }
          if (used != value.size() || n < 1 || n > 100000) {
            std::cerr << "ntdts: --forensics-depth expects an integer in "
                         "[1, 100000], got '" << value << "'\n";
            return 2;
          }
          flags.forensics_depth = static_cast<std::size_t>(n);
        } else if (a.rfind("--metrics-out=", 0) == 0) {
          flags.metrics_out = a.substr(14);
          if (flags.metrics_out.empty()) {
            std::cerr << "ntdts: --metrics-out expects a path\n";
            return 2;
          }
        } else if (a.rfind("--workers=", 0) == 0) {
          const std::string value = a.substr(10);
          std::size_t used = 0;
          int n = -1;
          try {
            n = std::stoi(value, &used);
          } catch (const std::exception&) {
          }
          if (used != value.size() || n < 1 || n > 1024) {
            std::cerr << "ntdts: --workers expects an integer in [1, 1024], got '"
                      << value << "'\n";
            return 2;
          }
          flags.dist_workers = n;
        } else if (a.rfind("--listen=", 0) == 0) {
          flags.listen_addr = a.substr(9);
          if (flags.listen_addr.empty()) {
            std::cerr << "ntdts: --listen expects host:port\n";
            return 2;
          }
        } else if (a.rfind("--lease-timeout-ms=", 0) == 0) {
          const std::string value = a.substr(19);
          std::size_t used = 0;
          int n = -1;
          try {
            n = std::stoi(value, &used);
          } catch (const std::exception&) {
          }
          if (used != value.size() || n < 1) {
            std::cerr << "ntdts: --lease-timeout-ms expects a positive integer, got '"
                      << value << "'\n";
            return 2;
          }
          flags.lease_timeout_ms = n;
        } else if (a.rfind("--http=", 0) == 0) {
          flags.http_addr = a.substr(7);
          if (flags.http_addr.empty()) {
            std::cerr << "ntdts: --http expects host:port\n";
            return 2;
          }
        } else if (a.rfind("--snapshots=", 0) == 0) {
          const std::string value = a.substr(12);
          if (value == "on") {
            flags.snapshots = true;
          } else if (value == "off") {
            flags.snapshots = false;
          } else {
            std::cerr << "ntdts: --snapshots expects on|off, got '" << value << "'\n";
            return 2;
          }
        } else if (a.rfind("--model=", 0) == 0) {
          const std::string value = a.substr(8);
          std::string model_error;
          auto set = fault::ModelSet::parse(value, &model_error);
          if (!set) {
            std::cerr << "ntdts: " << model_error << "\n";
            return 2;
          }
          // Canonical form; the paper default stores as "" so the config
          // text (and result cache key) stays identical to an unflagged run.
          flags.models = set->is_paper_default() ? "" : set->to_string();
        } else if (a.rfind("--model", 0) == 0) {
          // Misspelling guard (--models=, --model-list, ...): name the valid
          // set instead of the generic unknown-flag line, mirroring the
          // strict-config philosophy — a typo'd axis must not silently run
          // the default sweep.
          std::cerr << "ntdts run: unknown flag '" << a
                    << "' — did you mean --model=<name>[,<name>...]? valid models: "
                    << fault::valid_model_names() << "\n";
          return 2;
        } else if (a.rfind("--tier=", 0) == 0) {
          flags.tier = a.substr(7);
          if (flags.tier.empty()) {
            std::cerr << "ntdts: --tier expects a tier name from the campaign's "
                         "topology\n";
            return 2;
          }
        } else if (a.rfind("--tier", 0) == 0) {
          // Same misspelling guard for the topology axis (--tiers=, ...): a
          // typo'd tier must not silently fault the config's default tier.
          std::cerr << "ntdts run: unknown flag '" << a
                    << "' — did you mean --tier=<name>? the name must match a "
                       "tier of the [topology] section\n";
          return 2;
        } else if (a.rfind("--rtrace=", 0) == 0) {
          obs::rtrace::RtraceMode mode;
          if (!obs::rtrace::rtrace_mode_from_string(a.substr(9), &mode)) {
            std::cerr << "ntdts: --rtrace expects off|failures|all, got '"
                      << a.substr(9) << "'\n";
            return 2;
          }
          flags.rtrace = mode;
        } else if (a.rfind("--rtrace", 0) == 0) {
          // Misspelling guard (--rtraces=, --rtrace-mode=, ...): a typo'd
          // tracing axis must not silently run untraced.
          std::cerr << "ntdts run: unknown flag '" << a
                    << "' — did you mean --rtrace=off|failures|all? request "
                       "tracing needs a [topology] section in the config\n";
          return 2;
        } else if (a.rfind("--topo", 0) == 0) {
          // Topologies are config-only; catch --topology= etc. before the
          // generic unknown-flag line so the pointer is actionable.
          std::cerr << "ntdts run: unknown flag '" << a
                    << "' — topologies are configured in the [topology] section "
                       "of the campaign config (topology = lb:2*apache -> ...); "
                       "use --tier=<name> to override the faulted tier\n";
          return 2;
        } else if (a.rfind("--lease-size=", 0) == 0) {
          const std::string value = a.substr(13);
          std::size_t used = 0;
          long n = -1;
          try {
            n = std::stol(value, &used);
          } catch (const std::exception&) {
          }
          if (used != value.size() || n < 0) {
            std::cerr << "ntdts: --lease-size expects a non-negative integer, got '"
                      << value << "'\n";
            return 2;
          }
          flags.lease_size = static_cast<std::size_t>(n);
        } else if (a.rfind("--", 0) == 0) {
          return unknown_flag("run", a);
        } else if (!have_out_dir) {
          out_dir = a;
          have_out_dir = true;
        } else {
          return usage();
        }
      }
      if (plan_mode_flags > 1) {
        std::cerr << "ntdts run: --plan, --plan-auto and --exhaustive are mutually "
                     "exclusive\n";
        return 2;
      }
      if (flags.ci_width > 0.0 &&
          flags.plan_mode == plan::PlanOptions::Mode::kExhaustive) {
        std::cerr << "ntdts run: --ci-width requires --plan or --plan-auto\n";
        return 2;
      }
      if (flags.distributed()) {
        // Plan execution and per-run tracing stay in-process for now: leases
        // carry plain fault ids, and forensics dumps live with the executor.
        if (flags.plan_mode != plan::PlanOptions::Mode::kExhaustive) {
          std::cerr << "ntdts run: --workers/--listen cannot be combined with "
                       "--plan/--plan-auto (distributed campaigns are exhaustive)\n";
          return 2;
        }
        if (flags.trace != obs::TraceMode::kOff) {
          std::cerr << "ntdts run: --workers/--listen cannot be combined with "
                       "--trace (forensics capture is in-process only)\n";
          return 2;
        }
        if (flags.rtrace.value_or(obs::rtrace::RtraceMode::kOff) !=
            obs::rtrace::RtraceMode::kOff) {
          std::cerr << "ntdts run: --workers/--listen cannot be combined with "
                       "--rtrace (span collection is in-process only; worker "
                       "results travel as run lines, which never carry spans)\n";
          return 2;
        }
        if (flags.jobs) {
          std::cerr << "ntdts run: --jobs selects in-process parallelism; use "
                       "--workers=N for a distributed campaign\n";
          return 2;
        }
        if (flags.snapshots.value_or(false)) {
          std::cerr << "ntdts run: --snapshots=on cannot be combined with "
                       "--workers/--listen (snapshot forking is in-process only)\n";
          return 2;
        }
      }
      if (flags.snapshots.value_or(false) && flags.trace != obs::TraceMode::kOff) {
        std::cerr << "ntdts run: --snapshots=on cannot be combined with --trace "
                     "(a forked run's trace would be missing its skipped prefix)\n";
        return 2;
      }
      if (flags.snapshots.value_or(false) &&
          flags.rtrace.value_or(obs::rtrace::RtraceMode::kOff) !=
              obs::rtrace::RtraceMode::kOff) {
        std::cerr << "ntdts run: --snapshots=on cannot be combined with "
                     "--rtrace (span collection crosses the fork boundary only "
                     "as a run line, which never carries spans)\n";
        return 2;
      }
      return cmd_run(argv[2], out_dir, flags);
    }
    if (cmd == "worker") {
      dist::WorkerOptions w;
      bool have_connect = false;
      for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--connect=", 0) == 0) {
          const auto hp = dist::parse_host_port(a.substr(10));
          if (!hp) {
            std::cerr << "ntdts worker: --connect expects host:port, got '"
                      << a.substr(10) << "'\n";
            return 2;
          }
          w.host = hp->first;
          w.port = hp->second;
          have_connect = true;
        } else if (a.rfind("--io-timeout-ms=", 0) == 0) {
          const std::string value = a.substr(16);
          std::size_t used = 0;
          int n = -1;
          try {
            n = std::stoi(value, &used);
          } catch (const std::exception&) {
          }
          if (used != value.size() || n < 1) {
            std::cerr << "ntdts: --io-timeout-ms expects a positive integer, got '"
                      << value << "'\n";
            return 2;
          }
          w.io_timeout_ms = n;
        } else {
          return unknown_flag("worker", a);
        }
      }
      if (!have_connect) {
        std::cerr << "ntdts worker: --connect=host:port is required\n";
        return 2;
      }
      std::string werr;
      const int rc = dist::run_worker(w, &werr);
      if (rc != 0) std::cerr << "ntdts worker: " << werr << "\n";
      return rc;
    }
    if (cmd == "report" && argc >= 3) return cmd_report(argc, argv);
    if (cmd == "replay" && argc >= 3) return cmd_replay(argc, argv);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "ntdts: " << e.what() << "\n";
    return 2;
  }
}
