// Testing YOUR OWN server with DTS — the paper's extensibility story
// ("the DTS architecture facilitates the testing of different applications,
// middleware, and systems").
//
//   $ ./custom_application
//
// This example drops below the packaged workloads and uses the library
// layers directly: it implements a small key-value server as a simulated NT
// program, registers it as a service, sweeps faults over the functions it
// activates, and classifies outcomes with its own client.
#include <cstdio>

#include "apps/winapp.h"
#include "inject/fault_list.h"
#include "inject/interceptor.h"
#include "ntsim/netsim.h"
#include "ntsim/scm.h"

namespace {

using namespace dts;
using apps::Api;
using nt::Ctx;
using nt::Fn;
using nt::Word;

// --------------------------------------------------------------------------
// The application under test: a tiny TCP key-value store ("kvserve.exe").
// Protocol: one line per connection — "SET k v", "GET k" or "DEL k".
// --------------------------------------------------------------------------
sim::Task kvserve_main(Ctx c, nt::net::Network* net) {
  Api api(c);

  // A modest init: the KERNEL32 surface this program activates is what DTS
  // will sweep.
  const nt::Ptr si = api.buf(68);
  (void)co_await api(Fn::GetStartupInfoA, si.addr);
  const Word h_heap = co_await api(Fn::HeapCreate, 0, 65536, 0);
  (void)co_await api(Fn::HeapAlloc, h_heap, 0, 4096);
  const Word h_log = co_await api(Fn::CreateFileA, api.str("C:\\kv\\kv.log").addr,
                                  nt::kGenericWrite, 1, 0, nt::kOpenAlways, 0, 0);
  co_await apps::log_line(api, h_log, "kvserve starting");
  co_await api.cpu(sim::Duration::millis(300));

  api.machine().scm().set_service_status(api.proc().pid(), nt::ServiceState::kRunning);

  auto listener = net->listen(api.machine().name(), 7000);
  if (listener == nullptr) (void)co_await api(Fn::ExitProcess, 1);

  std::map<std::string, std::string> store;
  for (;;) {
    auto sock = co_await listener->accept(c);
    if (sock == nullptr) continue;
    auto line = co_await sock->recv_until(c, "\n", 4096, sim::Duration::seconds(10));
    if (!line) continue;
    co_await api.cpu(sim::Duration::millis(150));

    std::string reply = "ERR\n";
    const auto sp1 = line->find(' ');
    const std::string cmd = line->substr(0, sp1);
    if (cmd == "SET" && sp1 != std::string::npos) {
      const auto sp2 = line->find(' ', sp1 + 1);
      if (sp2 != std::string::npos) {
        std::string value = line->substr(sp2 + 1);
        while (!value.empty() && (value.back() == '\n' || value.back() == '\r')) {
          value.pop_back();
        }
        store[line->substr(sp1 + 1, sp2 - sp1 - 1)] = value;
        reply = "OK\n";
      }
    } else if (cmd == "GET" && sp1 != std::string::npos) {
      std::string key = line->substr(sp1 + 1);
      while (!key.empty() && (key.back() == '\n' || key.back() == '\r')) key.pop_back();
      auto it = store.find(key);
      reply = it != store.end() ? "VALUE " + it->second + "\n" : "MISSING\n";
    }
    co_await apps::log_line(api, h_log, "request: " + cmd);
    sock->send(reply);
    co_await nt::sleep_in_sim(c, sim::Duration::millis(50));
  }
}

// --------------------------------------------------------------------------
// The workload client: SET then GET, verifying the round trip. Returns true
// on a fully-correct exchange (with one retry, DTS-style).
// --------------------------------------------------------------------------
struct KvReport {
  bool finished = false;
  bool ok = false;
  int attempts = 0;
};

sim::CoTask<bool> kv_exchange(Ctx c, nt::net::Network* net, const std::string& request,
                              const std::string& expected) {
  auto sock = co_await net->connect(c, "target", 7000);
  if (sock == nullptr) co_return false;
  sock->send(request);
  auto reply = co_await sock->recv_until(c, "\n", 4096, sim::Duration::seconds(10));
  co_return reply.has_value() && *reply == expected;
}

sim::Task kv_client(Ctx c, nt::net::Network* net, std::shared_ptr<KvReport> report) {
  co_await nt::sleep_in_sim(c, sim::Duration::seconds(2));  // wait for the server
  for (int attempt = 1; attempt <= 3; ++attempt) {
    report->attempts = attempt;
    const bool set_ok = co_await kv_exchange(c, net, "SET color teal\n", "OK\n");
    const bool get_ok =
        set_ok && co_await kv_exchange(c, net, "GET color\n", "VALUE teal\n");
    if (set_ok && get_ok) {
      report->ok = true;
      break;
    }
    co_await nt::sleep_in_sim(c, sim::Duration::seconds(5));
  }
  report->finished = true;
}

}  // namespace

int main() {
  std::printf("DTS on a custom application: key-value server fault sweep\n\n");

  // Profiling pass: which injectable functions does kvserve activate?
  std::set<nt::Fn> activated;
  {
    sim::Simulation simu{1};
    nt::net::Network net{simu};
    nt::Machine target{simu, nt::MachineConfig{.name = "target"}};
    inject::Interceptor icept;
    target.k32().set_hook(&icept);
    target.fs().mkdirs("C:\\kv");
    target.register_program("kvserve.exe",
                            [&](Ctx c) { return kvserve_main(c, &net); });
    target.scm().register_service({.name = "KvServe", .image = "kvserve.exe",
                                   .command_line = "kvserve.exe",
                                   .start_wait_hint = sim::Duration::seconds(15)});
    target.scm().start_service("KvServe");
    auto report = std::make_shared<KvReport>();
    nt::Machine control{simu, nt::MachineConfig{.name = "control"}};
    control.register_program("client.exe",
                             [&](Ctx c) { return kv_client(c, &net, report); });
    control.start_process("client.exe", "client.exe");
    simu.run_until(simu.now() + sim::Duration::seconds(120));
    activated = icept.called("kvserve.exe");
    std::printf("profiling: kvserve activates %zu injectable KERNEL32 functions; "
                "fault-free run %s\n\n",
                activated.size(), report->ok ? "succeeds" : "FAILS (fix the app first!)");
  }

  // Fault sweep over the activated surface.
  const auto faults = inject::FaultList::for_functions("kvserve.exe", activated);
  int ok = 0, failed = 0;
  for (const auto& fault : faults.faults) {
    sim::Simulation simu{sim::Rng::hash(fault.id())};
    nt::net::Network net{simu};
    nt::Machine target{simu, nt::MachineConfig{.name = "target"}};
    inject::Interceptor icept;
    icept.arm(fault);
    target.k32().set_hook(&icept);
    target.fs().mkdirs("C:\\kv");
    target.register_program("kvserve.exe",
                            [&](Ctx c) { return kvserve_main(c, &net); });
    target.scm().register_service({.name = "KvServe", .image = "kvserve.exe",
                                   .command_line = "kvserve.exe",
                                   .start_wait_hint = sim::Duration::seconds(15)});
    target.scm().start_service("KvServe");
    auto report = std::make_shared<KvReport>();
    nt::Machine control{simu, nt::MachineConfig{.name = "control"}};
    control.register_program("client.exe",
                             [&](Ctx c) { return kv_client(c, &net, report); });
    control.start_process("client.exe", "client.exe");
    while (!report->finished && simu.now() < sim::TimePoint{} + sim::Duration::seconds(120) &&
           simu.pending_events() > 0) {
      simu.step();
    }
    if (report->ok) {
      ++ok;
    } else {
      ++failed;
      std::printf("  FAILED under %s%s\n", fault.id().c_str(),
                  report->attempts > 1 ? " (after retries)" : "");
    }
  }
  std::printf("\nswept %zu faults: %d survived, %d failed -> failure coverage %.1f%%\n",
              faults.faults.size(), ok, failed,
              faults.faults.empty() ? 100.0 : 100.0 * ok / (ok + failed));
  std::printf("(add middleware or in-app recovery and re-run to watch coverage climb)\n");
  return 0;
}
