// Compares fault-tolerance middleware on one workload — the paper's core use
// case ("compare the reliability of ... fault tolerance middleware").
//
//   $ ./compare_middleware [workload] [faults-per-config]
//
// Runs a capped campaign for the chosen workload as a stand-alone service,
// under MSCS, and under each watchd version, then prints the outcome
// distribution table.
#include <cstdio>
#include <cstdlib>

#include "core/report.h"

int main(int argc, char** argv) {
  using namespace dts;

  const std::string workload = argc > 1 ? argv[1] : "SQL";
  const std::size_t cap = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 120;

  core::CampaignOptions options;
  options.seed = 7;
  options.max_faults = cap;
  options.on_progress = [](std::size_t done, std::size_t total) {
    if (done % 25 == 0 || done == total) {
      std::fprintf(stderr, "\r  %zu/%zu runs", done, total);
      if (done == total) std::fputc('\n', stderr);
    }
  };

  std::vector<core::WorkloadSetResult> sets;
  struct Config {
    mw::MiddlewareKind kind;
    mw::WatchdVersion version;
  };
  const Config configs[] = {
      {mw::MiddlewareKind::kNone, mw::WatchdVersion::kV3},
      {mw::MiddlewareKind::kMscs, mw::WatchdVersion::kV3},
      {mw::MiddlewareKind::kWatchd, mw::WatchdVersion::kV1},
      {mw::MiddlewareKind::kWatchd, mw::WatchdVersion::kV2},
      {mw::MiddlewareKind::kWatchd, mw::WatchdVersion::kV3},
  };
  for (const Config& c : configs) {
    core::RunConfig cfg;
    cfg.workload = core::workload_by_name(workload);
    cfg.middleware = c.kind;
    cfg.watchd_version = c.version;
    std::fprintf(stderr, "campaign: %s / %s\n", workload.c_str(),
                 c.kind == mw::MiddlewareKind::kWatchd
                     ? std::string(to_string(c.version)).c_str()
                     : std::string(to_string(c.kind)).c_str());
    sets.push_back(core::run_workload_set(cfg, options));
  }

  std::fputs(core::fig2_outcome_table(sets).c_str(), stdout);

  // The paper's headline metric: failure coverage = 1 - failure fraction.
  std::printf("\nFailure coverage (1 - failure%%):\n");
  for (const auto& s : sets) {
    std::printf("  %-20s %6.2f%%\n", s.label().c_str(),
                100.0 - s.percent(core::Outcome::kFailure));
  }
  return 0;
}
