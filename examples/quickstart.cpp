// Quickstart: inject a handful of KERNEL32 faults into the simulated IIS
// and print what happened — the smallest useful DTS session.
//
//   $ ./quickstart
//
// Walks through the core API: pick a workload, build fault specs, execute
// one fault-injection run per fault, read the five-way outcome.
#include <cstdio>

#include "core/run.h"

int main() {
  using namespace dts;

  // 1. Describe the workload: the IIS server driven by the paper's
  //    HttpClient (115 kB static page + 1 kB CGI page, 15 s timeouts,
  //    three attempts per request).
  core::RunConfig config;
  config.workload = core::workload_by_name("IIS");
  config.middleware = mw::MiddlewareKind::kNone;  // stand-alone NT service
  config.seed = 2026;

  // 2. Pick some faults. A fault names a KERNEL32 function, a parameter,
  //    an invocation (DTS injects the first), and a corruption type.
  const char* fault_ids[] = {
      "GetStartupInfoA.lpStartupInfo#1:flip",       // early-init crash
      "CreateSemaphoreA.lInitialCount#1:ones",      // broken request queue
      "ReadFile.nNumberOfBytesToRead#1:zero",       // truncated content read
      "CreateFileA.dwCreationDisposition#1:ones",   // failed content open
      "Sleep.dwMilliseconds#1:ones",                // (never called by IIS)
      "HeapAlloc.hHeap#1:flip",                     // heap handle corruption
  };

  std::printf("DTS quickstart: injecting %zu faults into %s (stand-alone)\n\n",
              std::size(fault_ids), config.workload.name.c_str());

  for (const char* id : fault_ids) {
    auto fault = inject::parse_fault_id(config.workload.target_image, id);
    if (!fault) {
      std::printf("  %-45s [malformed fault id]\n", id);
      continue;
    }
    // 3. One fault = one fresh simulated world. Everything (NT machine,
    //    servers, network, client) is rebuilt so runs can't contaminate
    //    each other — and the same seed always reproduces the same outcome.
    config.seed = sim::Rng::mix(2026, sim::Rng::hash(id));
    const core::RunResult result = core::execute_run(config, *fault);
    std::printf("  %s\n", result.summary().c_str());
  }

  std::printf(
      "\nOutcome legend (paper section 3):\n"
      "  normal success       correct replies, no recovery action needed\n"
      "  restart ...          middleware restarted the server first\n"
      "  retry ...            the client's retry protocol recovered\n"
      "  failure              some request never got a correct reply\n"
      "\nNext: examples/compare_middleware for whole-campaign comparisons.\n");
  return 0;
}
