// The DTS distributed architecture (paper §3): a Controller on the control
// machine drives a TargetAgent on the target machine over a message
// transport. Here both ends run in-process (the paper: "the tool ... may be
// used with all components on a single machine"); the line protocol is what
// a socket transport would carry.
//
//   $ ./controller_agent
#include <cstdio>

#include "core/controller.h"

int main() {
  using namespace dts;

  // The agent owns the target-side configuration: which workload to run and
  // how to run it. The controller only speaks the protocol.
  core::RunConfig agent_config;
  agent_config.workload = core::workload_by_name("Apache1");
  agent_config.middleware = mw::MiddlewareKind::kWatchd;
  agent_config.watchd_version = mw::WatchdVersion::kV3;
  agent_config.seed = 4;

  auto transport = core::make_in_process_transport();
  core::TargetAgent agent(agent_config, *transport.agent_end);
  core::Controller controller(*transport.controller_end);

  // 1. PROFILE: ask the agent which functions the workload activates.
  const auto functions = controller.profile();
  std::printf("agent reports %zu activated KERNEL32 functions:\n ", functions.size());
  int col = 0;
  for (const auto& fn : functions) {
    std::printf(" %s", fn.c_str());
    if (++col % 5 == 0) std::printf("\n ");
  }
  std::printf("\n\n");

  // 2. RUN: drive a few injections through the protocol.
  const char* fault_ids[] = {
      "GetStartupInfoA.lpStartupInfo#1:zero",
      "CreateProcessA.lpCommandLine#1:flip",
      "WaitForSingleObject.hHandle#1:ones",
  };
  for (const char* id : fault_ids) {
    auto fault = inject::parse_fault_id(agent_config.workload.target_image, id);
    const core::RunResult r = controller.run_fault(*fault);
    std::printf("RUN %-45s -> %s%s (t=%s, restarts=%d, retries=%d)\n", id,
                r.activated ? "" : "[not activated] ",
                std::string(to_string(r.outcome)).c_str(),
                sim::to_string(r.response_time).c_str(), r.restarts, r.retries);
  }
  std::printf("\nprotocol errors: %d\n", controller.protocol_errors());
  return 0;
}
