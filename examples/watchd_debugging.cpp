// The paper's §4.3 workflow, end to end: use DTS to find a fault-tolerance
// middleware coverage hole, diagnose it from the run artifacts, and verify
// the fix — the exact loop that took watchd from V1 to V3.
//
//   $ ./watchd_debugging
//
// Steps:
//   1. sweep a fault slice over IIS under Watchd1 AND Watchd2 and diff the
//      outcomes: the V1-only failures are the coverage hole V2 closed;
//   2. replay one with the syscall trace and read watchd's own log — the
//      diagnosis ("could not obtain service process info") is the V1
//      startService()/getServiceInfo() race;
//   3. replay under Watchd2 (merged acquisition) — recovered;
//   4. show the class of fault V2 still misses (long start-pending locks)
//      and verify Watchd3's patient, SCM-confirmed restart closes it.
#include <cstdio>

#include "core/campaign.h"
#include "middleware/watchd.h"

using namespace dts;
using namespace dts::core;

namespace {

RunConfig config_for(mw::WatchdVersion v, const char* workload = "IIS") {
  RunConfig cfg;
  cfg.workload = workload_by_name(workload);
  cfg.middleware = mw::MiddlewareKind::kWatchd;
  cfg.watchd_version = v;
  cfg.seed = 2026;
  return cfg;
}

void show_watchd_log(FaultInjectionRun& run, const RunConfig& cfg) {
  auto log = run.target().fs().get_file(cfg.watchd.log_path);
  std::printf("  watchd.log:\n");
  if (!log) {
    std::printf("    (missing)\n");
    return;
  }
  std::size_t start = 0;
  while (start < log->size()) {
    auto end = log->find("\r\n", start);
    if (end == std::string::npos) end = log->size();
    if (end > start) std::printf("    %s\n", log->substr(start, end - start).c_str());
    start = end + 2;
  }
}

}  // namespace

int main() {
  std::printf("=== Step 1: diff Watchd1 vs Watchd2 campaigns over IIS ===\n");
  CampaignOptions opt;
  opt.seed = 2026;
  opt.max_faults = 150;
  const WorkloadSetResult v1_sweep = run_workload_set(config_for(mw::WatchdVersion::kV1), opt);
  const WorkloadSetResult v2_sweep = run_workload_set(config_for(mw::WatchdVersion::kV2), opt);
  std::printf("failure%%: Watchd1 %.1f%%  Watchd2 %.1f%%\n",
              v1_sweep.percent(Outcome::kFailure), v2_sweep.percent(Outcome::kFailure));

  // The faults V1 loses but V2 survives are the handle-race class.
  std::optional<inject::FaultSpec> hole;
  const std::size_t n = std::min(v1_sweep.runs.size(), v2_sweep.runs.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& r1 = v1_sweep.runs[i];
    const auto& r2 = v2_sweep.runs[i];
    if (r1.activated && r1.outcome == Outcome::kFailure &&
        r2.outcome != Outcome::kFailure) {
      hole = r1.fault;
      std::printf("V1-only failure: %s\n\n", r1.summary().c_str());
      break;
    }
  }
  if (!hole) {
    std::printf("no V1-only failure in this slice; rerun with a larger sweep\n");
    return 1;
  }

  std::printf("=== Step 2: replay under Watchd1 with diagnostics ===\n");
  {
    RunConfig cfg = config_for(mw::WatchdVersion::kV1);
    cfg.trace_limit = 8;
    FaultInjectionRun run(cfg);
    const RunResult r = run.execute(*hole);
    std::printf("outcome: %s\n", std::string(to_string(r.outcome)).c_str());
    show_watchd_log(run, cfg);
    std::printf("  last syscalls of the target before death:\n");
    for (const auto& entry : run.interceptor().trace()) {
      std::printf("    %s\n", entry.to_string().c_str());
    }
    std::printf(
        "  diagnosis: the process died inside Watchd1's window between\n"
        "  startService() and getServiceInfo() — watchd never got a handle, so\n"
        "  the death was invisible (the paper's original coverage hole).\n\n");
  }

  std::printf("=== Step 3: the Watchd2 fix (merged start + handle) ===\n");
  {
    RunConfig cfg = config_for(mw::WatchdVersion::kV2);
    FaultInjectionRun run(cfg);
    const RunResult r = run.execute(*hole);
    std::printf("outcome: %s (restarts=%d)\n", std::string(to_string(r.outcome)).c_str(),
                r.restarts);
    show_watchd_log(run, cfg);
    std::printf("\n");
  }

  std::printf("=== Step 4: what Watchd2 still misses (SQL's long pending lock) ===\n");
  auto sql_fault =
      inject::parse_fault_id("sqlservr.exe", "GetStartupInfoA.lpStartupInfo#1:flip");
  {
    RunConfig cfg = config_for(mw::WatchdVersion::kV2, "SQL");
    FaultInjectionRun run(cfg);
    const RunResult r = run.execute(*sql_fault);
    std::printf("Watchd2 on SQL init crash: %s\n",
                std::string(to_string(r.outcome)).c_str());
    show_watchd_log(run, cfg);
  }
  {
    RunConfig cfg = config_for(mw::WatchdVersion::kV3, "SQL");
    FaultInjectionRun run(cfg);
    const RunResult r = run.execute(*sql_fault);
    std::printf("Watchd3 on the same fault:  %s (restarts=%d)\n",
                std::string(to_string(r.outcome)).c_str(), r.restarts);
    std::printf(
        "\nWatchd3's explicit handle validation + SCM-confirmed patient retry\n"
        "waits out the Start Pending database lock — \"the iterative\n"
        "improvements using the DTS tool helped watchd in a significant way.\"\n");
  }
  return 0;
}
