// Availability modelling from fault-injection data — the paper's §5 future
// work: "The DTS tool may play a role in providing testing-based parameters
// as input to analytical models that would then be able to yield
// [availability] estimates that are more precise."
//
//   $ ./availability_estimate [workload] [faults-per-config]
//
// Runs a capped campaign per middleware configuration, extracts
//   - failure coverage c (fraction of faults the system survives), and
//   - mean time to recover MTTR (mean response time of restart outcomes),
// then feeds them into a standard alternating-renewal availability model:
//
//   A = MTTF_eff / (MTTF_eff + MTTR_eff)
//     with MTTF_eff = MTTF_fault / (1 - c)      (only uncovered faults fail)
//     and  MTTR_eff = manual repair time        (uncovered faults need a human)
//
// yielding "number of nines" per configuration.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/report.h"

int main(int argc, char** argv) {
  using namespace dts;

  const std::string workload = argc > 1 ? argv[1] : "IIS";
  const std::size_t cap = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 150;

  // Model assumptions (documented, adjustable): a fault arrives on average
  // once every 3 days; an uncovered failure needs 30 minutes of human repair;
  // covered faults cost only their measured recovery time.
  const double mttf_fault_hours = 72.0;
  const double manual_repair_hours = 0.5;

  std::printf("Availability estimate for %s (assumes one fault per %.0f h, "
              "%.0f min manual repair)\n\n",
              workload.c_str(), mttf_fault_hours, manual_repair_hours * 60);
  std::printf("%-12s %10s %12s %14s %12s %8s\n", "config", "coverage", "auto-MTTR",
              "unavailability", "availability", "nines");

  struct Config {
    const char* label;
    mw::MiddlewareKind kind;
    mw::WatchdVersion version;
  };
  const Config configs[] = {
      {"stand-alone", mw::MiddlewareKind::kNone, mw::WatchdVersion::kV3},
      {"MSCS", mw::MiddlewareKind::kMscs, mw::WatchdVersion::kV3},
      {"Watchd3", mw::MiddlewareKind::kWatchd, mw::WatchdVersion::kV3},
  };
  for (const Config& c : configs) {
    core::RunConfig cfg;
    cfg.workload = core::workload_by_name(workload);
    cfg.middleware = c.kind;
    cfg.watchd_version = c.version;
    core::CampaignOptions opt;
    opt.seed = 7;
    opt.max_faults = cap;
    std::fprintf(stderr, "campaign: %s...\n", c.label);
    const core::WorkloadSetResult set = core::run_workload_set(cfg, opt);

    const double failure_fraction = set.percent(core::Outcome::kFailure) / 100.0;
    const double coverage = 1.0 - failure_fraction;

    // Automatic recovery time: mean response time of restart-involving
    // outcomes (the time a fault-hit request window lasts).
    stats::Accumulator recovery;
    for (const auto& r : set.runs) {
      if (!r.activated) continue;
      if (r.outcome == core::Outcome::kRestartSuccess ||
          r.outcome == core::Outcome::kRestartRetrySuccess) {
        recovery.add(r.response_time.to_seconds() / 3600.0);  // hours
      }
    }
    const double auto_mttr_hours = recovery.count() > 0 ? recovery.mean() : 0.0;

    // Expected downtime per fault: covered faults cost the automatic
    // recovery window; uncovered ones cost the manual repair time.
    const double downtime_per_fault =
        coverage * auto_mttr_hours + failure_fraction * manual_repair_hours;
    const double availability =
        mttf_fault_hours / (mttf_fault_hours + downtime_per_fault);
    const double unavail_minutes_per_month = (1.0 - availability) * 30 * 24 * 60;
    const double nines = -std::log10(1.0 - availability);

    std::printf("%-12s %9.2f%% %10.1f s %11.1f m/mo %11.5f%% %7.2f\n", c.label,
                coverage * 100, auto_mttr_hours * 3600, unavail_minutes_per_month,
                availability * 100, nines);
  }

  std::printf(
      "\nReading: higher failure coverage turns most faults into seconds of\n"
      "automatic recovery instead of minutes of paging a human — each step of\n"
      "middleware quality buys a visible fraction of a 'nine'.\n");
  return 0;
}
