file(REMOVE_RECURSE
  "libdts.a"
)
