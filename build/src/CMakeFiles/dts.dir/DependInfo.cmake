
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/apache.cpp" "src/CMakeFiles/dts.dir/apps/apache.cpp.o" "gcc" "src/CMakeFiles/dts.dir/apps/apache.cpp.o.d"
  "/root/repo/src/apps/ftp.cpp" "src/CMakeFiles/dts.dir/apps/ftp.cpp.o" "gcc" "src/CMakeFiles/dts.dir/apps/ftp.cpp.o.d"
  "/root/repo/src/apps/http.cpp" "src/CMakeFiles/dts.dir/apps/http.cpp.o" "gcc" "src/CMakeFiles/dts.dir/apps/http.cpp.o.d"
  "/root/repo/src/apps/iis.cpp" "src/CMakeFiles/dts.dir/apps/iis.cpp.o" "gcc" "src/CMakeFiles/dts.dir/apps/iis.cpp.o.d"
  "/root/repo/src/apps/sql_engine.cpp" "src/CMakeFiles/dts.dir/apps/sql_engine.cpp.o" "gcc" "src/CMakeFiles/dts.dir/apps/sql_engine.cpp.o.d"
  "/root/repo/src/apps/sql_server.cpp" "src/CMakeFiles/dts.dir/apps/sql_server.cpp.o" "gcc" "src/CMakeFiles/dts.dir/apps/sql_server.cpp.o.d"
  "/root/repo/src/core/campaign.cpp" "src/CMakeFiles/dts.dir/core/campaign.cpp.o" "gcc" "src/CMakeFiles/dts.dir/core/campaign.cpp.o.d"
  "/root/repo/src/core/clients.cpp" "src/CMakeFiles/dts.dir/core/clients.cpp.o" "gcc" "src/CMakeFiles/dts.dir/core/clients.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/dts.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/dts.dir/core/config.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/CMakeFiles/dts.dir/core/controller.cpp.o" "gcc" "src/CMakeFiles/dts.dir/core/controller.cpp.o.d"
  "/root/repo/src/core/outcome.cpp" "src/CMakeFiles/dts.dir/core/outcome.cpp.o" "gcc" "src/CMakeFiles/dts.dir/core/outcome.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/dts.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/dts.dir/core/report.cpp.o.d"
  "/root/repo/src/core/run.cpp" "src/CMakeFiles/dts.dir/core/run.cpp.o" "gcc" "src/CMakeFiles/dts.dir/core/run.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/CMakeFiles/dts.dir/core/workload.cpp.o" "gcc" "src/CMakeFiles/dts.dir/core/workload.cpp.o.d"
  "/root/repo/src/exec/executor.cpp" "src/CMakeFiles/dts.dir/exec/executor.cpp.o" "gcc" "src/CMakeFiles/dts.dir/exec/executor.cpp.o.d"
  "/root/repo/src/exec/journal.cpp" "src/CMakeFiles/dts.dir/exec/journal.cpp.o" "gcc" "src/CMakeFiles/dts.dir/exec/journal.cpp.o.d"
  "/root/repo/src/exec/progress.cpp" "src/CMakeFiles/dts.dir/exec/progress.cpp.o" "gcc" "src/CMakeFiles/dts.dir/exec/progress.cpp.o.d"
  "/root/repo/src/inject/fault.cpp" "src/CMakeFiles/dts.dir/inject/fault.cpp.o" "gcc" "src/CMakeFiles/dts.dir/inject/fault.cpp.o.d"
  "/root/repo/src/inject/fault_class.cpp" "src/CMakeFiles/dts.dir/inject/fault_class.cpp.o" "gcc" "src/CMakeFiles/dts.dir/inject/fault_class.cpp.o.d"
  "/root/repo/src/inject/fault_list.cpp" "src/CMakeFiles/dts.dir/inject/fault_list.cpp.o" "gcc" "src/CMakeFiles/dts.dir/inject/fault_list.cpp.o.d"
  "/root/repo/src/inject/interceptor.cpp" "src/CMakeFiles/dts.dir/inject/interceptor.cpp.o" "gcc" "src/CMakeFiles/dts.dir/inject/interceptor.cpp.o.d"
  "/root/repo/src/middleware/mscs.cpp" "src/CMakeFiles/dts.dir/middleware/mscs.cpp.o" "gcc" "src/CMakeFiles/dts.dir/middleware/mscs.cpp.o.d"
  "/root/repo/src/middleware/watchd.cpp" "src/CMakeFiles/dts.dir/middleware/watchd.cpp.o" "gcc" "src/CMakeFiles/dts.dir/middleware/watchd.cpp.o.d"
  "/root/repo/src/ntsim/event_log.cpp" "src/CMakeFiles/dts.dir/ntsim/event_log.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/event_log.cpp.o.d"
  "/root/repo/src/ntsim/filesystem.cpp" "src/CMakeFiles/dts.dir/ntsim/filesystem.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/filesystem.cpp.o.d"
  "/root/repo/src/ntsim/handle_table.cpp" "src/CMakeFiles/dts.dir/ntsim/handle_table.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/handle_table.cpp.o.d"
  "/root/repo/src/ntsim/kernel.cpp" "src/CMakeFiles/dts.dir/ntsim/kernel.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/kernel.cpp.o.d"
  "/root/repo/src/ntsim/kernel32.cpp" "src/CMakeFiles/dts.dir/ntsim/kernel32.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/kernel32.cpp.o.d"
  "/root/repo/src/ntsim/kernel32_file.cpp" "src/CMakeFiles/dts.dir/ntsim/kernel32_file.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/kernel32_file.cpp.o.d"
  "/root/repo/src/ntsim/kernel32_mem.cpp" "src/CMakeFiles/dts.dir/ntsim/kernel32_mem.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/kernel32_mem.cpp.o.d"
  "/root/repo/src/ntsim/kernel32_misc.cpp" "src/CMakeFiles/dts.dir/ntsim/kernel32_misc.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/kernel32_misc.cpp.o.d"
  "/root/repo/src/ntsim/kernel32_proc.cpp" "src/CMakeFiles/dts.dir/ntsim/kernel32_proc.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/kernel32_proc.cpp.o.d"
  "/root/repo/src/ntsim/kernel32_registry.cpp" "src/CMakeFiles/dts.dir/ntsim/kernel32_registry.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/kernel32_registry.cpp.o.d"
  "/root/repo/src/ntsim/kernel32_sync.cpp" "src/CMakeFiles/dts.dir/ntsim/kernel32_sync.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/kernel32_sync.cpp.o.d"
  "/root/repo/src/ntsim/memory.cpp" "src/CMakeFiles/dts.dir/ntsim/memory.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/memory.cpp.o.d"
  "/root/repo/src/ntsim/netsim.cpp" "src/CMakeFiles/dts.dir/ntsim/netsim.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/netsim.cpp.o.d"
  "/root/repo/src/ntsim/object.cpp" "src/CMakeFiles/dts.dir/ntsim/object.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/object.cpp.o.d"
  "/root/repo/src/ntsim/process.cpp" "src/CMakeFiles/dts.dir/ntsim/process.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/process.cpp.o.d"
  "/root/repo/src/ntsim/registry.cpp" "src/CMakeFiles/dts.dir/ntsim/registry.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/registry.cpp.o.d"
  "/root/repo/src/ntsim/scm.cpp" "src/CMakeFiles/dts.dir/ntsim/scm.cpp.o" "gcc" "src/CMakeFiles/dts.dir/ntsim/scm.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/dts.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/dts.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/dts.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/dts.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/dts.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/dts.dir/sim/simulation.cpp.o.d"
  "/root/repo/src/stats/stats.cpp" "src/CMakeFiles/dts.dir/stats/stats.cpp.o" "gcc" "src/CMakeFiles/dts.dir/stats/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
