file(REMOVE_RECURSE
  "CMakeFiles/ntdts.dir/ntdts.cpp.o"
  "CMakeFiles/ntdts.dir/ntdts.cpp.o.d"
  "ntdts"
  "ntdts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntdts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
