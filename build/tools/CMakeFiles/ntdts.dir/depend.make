# Empty dependencies file for ntdts.
# This may be replaced when dependencies are built.
