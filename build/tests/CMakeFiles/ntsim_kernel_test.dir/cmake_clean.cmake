file(REMOVE_RECURSE
  "CMakeFiles/ntsim_kernel_test.dir/ntsim_kernel_test.cpp.o"
  "CMakeFiles/ntsim_kernel_test.dir/ntsim_kernel_test.cpp.o.d"
  "ntsim_kernel_test"
  "ntsim_kernel_test.pdb"
  "ntsim_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsim_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
