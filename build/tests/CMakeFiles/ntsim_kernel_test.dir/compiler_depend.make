# Empty compiler generated dependencies file for ntsim_kernel_test.
# This may be replaced when dependencies are built.
