# Empty dependencies file for named_pipe_test.
# This may be replaced when dependencies are built.
