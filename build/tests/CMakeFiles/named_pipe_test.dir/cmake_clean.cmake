file(REMOVE_RECURSE
  "CMakeFiles/named_pipe_test.dir/named_pipe_test.cpp.o"
  "CMakeFiles/named_pipe_test.dir/named_pipe_test.cpp.o.d"
  "named_pipe_test"
  "named_pipe_test.pdb"
  "named_pipe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/named_pipe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
