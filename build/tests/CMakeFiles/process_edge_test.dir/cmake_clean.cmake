file(REMOVE_RECURSE
  "CMakeFiles/process_edge_test.dir/process_edge_test.cpp.o"
  "CMakeFiles/process_edge_test.dir/process_edge_test.cpp.o.d"
  "process_edge_test"
  "process_edge_test.pdb"
  "process_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
