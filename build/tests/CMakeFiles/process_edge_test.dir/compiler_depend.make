# Empty compiler generated dependencies file for process_edge_test.
# This may be replaced when dependencies are built.
