# Empty dependencies file for ntsim_net_test.
# This may be replaced when dependencies are built.
