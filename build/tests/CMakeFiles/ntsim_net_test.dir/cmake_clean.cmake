file(REMOVE_RECURSE
  "CMakeFiles/ntsim_net_test.dir/ntsim_net_test.cpp.o"
  "CMakeFiles/ntsim_net_test.dir/ntsim_net_test.cpp.o.d"
  "ntsim_net_test"
  "ntsim_net_test.pdb"
  "ntsim_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsim_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
