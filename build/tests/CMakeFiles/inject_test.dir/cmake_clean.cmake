file(REMOVE_RECURSE
  "CMakeFiles/inject_test.dir/inject_test.cpp.o"
  "CMakeFiles/inject_test.dir/inject_test.cpp.o.d"
  "inject_test"
  "inject_test.pdb"
  "inject_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inject_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
