# Empty compiler generated dependencies file for kernel32_test.
# This may be replaced when dependencies are built.
