file(REMOVE_RECURSE
  "CMakeFiles/kernel32_test.dir/kernel32_test.cpp.o"
  "CMakeFiles/kernel32_test.dir/kernel32_test.cpp.o.d"
  "kernel32_test"
  "kernel32_test.pdb"
  "kernel32_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel32_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
