file(REMOVE_RECURSE
  "CMakeFiles/misc_units_test.dir/misc_units_test.cpp.o"
  "CMakeFiles/misc_units_test.dir/misc_units_test.cpp.o.d"
  "misc_units_test"
  "misc_units_test.pdb"
  "misc_units_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misc_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
