file(REMOVE_RECURSE
  "CMakeFiles/ntsim_memory_test.dir/ntsim_memory_test.cpp.o"
  "CMakeFiles/ntsim_memory_test.dir/ntsim_memory_test.cpp.o.d"
  "ntsim_memory_test"
  "ntsim_memory_test.pdb"
  "ntsim_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsim_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
