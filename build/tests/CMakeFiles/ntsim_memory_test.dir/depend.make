# Empty dependencies file for ntsim_memory_test.
# This may be replaced when dependencies are built.
