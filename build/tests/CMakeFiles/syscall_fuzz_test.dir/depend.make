# Empty dependencies file for syscall_fuzz_test.
# This may be replaced when dependencies are built.
