file(REMOVE_RECURSE
  "CMakeFiles/syscall_fuzz_test.dir/syscall_fuzz_test.cpp.o"
  "CMakeFiles/syscall_fuzz_test.dir/syscall_fuzz_test.cpp.o.d"
  "syscall_fuzz_test"
  "syscall_fuzz_test.pdb"
  "syscall_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syscall_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
