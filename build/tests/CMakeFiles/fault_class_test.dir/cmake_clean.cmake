file(REMOVE_RECURSE
  "CMakeFiles/fault_class_test.dir/fault_class_test.cpp.o"
  "CMakeFiles/fault_class_test.dir/fault_class_test.cpp.o.d"
  "fault_class_test"
  "fault_class_test.pdb"
  "fault_class_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_class_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
