# Empty compiler generated dependencies file for fault_class_test.
# This may be replaced when dependencies are built.
