# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/ntsim_memory_test[1]_include.cmake")
include("/root/repo/build/tests/ntsim_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/ntsim_net_test[1]_include.cmake")
include("/root/repo/build/tests/sql_engine_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/inject_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/middleware_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/kernel32_test[1]_include.cmake")
include("/root/repo/build/tests/named_pipe_test[1]_include.cmake")
include("/root/repo/build/tests/registry_test[1]_include.cmake")
include("/root/repo/build/tests/paper_claims_test[1]_include.cmake")
include("/root/repo/build/tests/syscall_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/ftp_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/misc_units_test[1]_include.cmake")
include("/root/repo/build/tests/fault_class_test[1]_include.cmake")
include("/root/repo/build/tests/process_edge_test[1]_include.cmake")
