# Empty compiler generated dependencies file for ablation_iterations.
# This may be replaced when dependencies are built.
