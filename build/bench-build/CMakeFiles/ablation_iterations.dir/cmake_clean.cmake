file(REMOVE_RECURSE
  "../bench/ablation_iterations"
  "../bench/ablation_iterations.pdb"
  "CMakeFiles/ablation_iterations.dir/ablation_iterations.cpp.o"
  "CMakeFiles/ablation_iterations.dir/ablation_iterations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
