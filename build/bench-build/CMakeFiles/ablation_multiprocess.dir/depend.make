# Empty dependencies file for ablation_multiprocess.
# This may be replaced when dependencies are built.
