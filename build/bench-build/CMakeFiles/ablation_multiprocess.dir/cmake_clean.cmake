file(REMOVE_RECURSE
  "../bench/ablation_multiprocess"
  "../bench/ablation_multiprocess.pdb"
  "CMakeFiles/ablation_multiprocess.dir/ablation_multiprocess.cpp.o"
  "CMakeFiles/ablation_multiprocess.dir/ablation_multiprocess.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
