file(REMOVE_RECURSE
  "../bench/fig5_watchd_iterations"
  "../bench/fig5_watchd_iterations.pdb"
  "CMakeFiles/fig5_watchd_iterations.dir/fig5_watchd_iterations.cpp.o"
  "CMakeFiles/fig5_watchd_iterations.dir/fig5_watchd_iterations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_watchd_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
