# Empty compiler generated dependencies file for fig2_middleware_comparison.
# This may be replaced when dependencies are built.
