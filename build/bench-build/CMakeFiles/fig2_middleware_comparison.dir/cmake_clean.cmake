file(REMOVE_RECURSE
  "../bench/fig2_middleware_comparison"
  "../bench/fig2_middleware_comparison.pdb"
  "CMakeFiles/fig2_middleware_comparison.dir/fig2_middleware_comparison.cpp.o"
  "CMakeFiles/fig2_middleware_comparison.dir/fig2_middleware_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_middleware_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
