# Empty dependencies file for ablation_machine_speed.
# This may be replaced when dependencies are built.
