file(REMOVE_RECURSE
  "../bench/ablation_machine_speed"
  "../bench/ablation_machine_speed.pdb"
  "CMakeFiles/ablation_machine_speed.dir/ablation_machine_speed.cpp.o"
  "CMakeFiles/ablation_machine_speed.dir/ablation_machine_speed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_machine_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
