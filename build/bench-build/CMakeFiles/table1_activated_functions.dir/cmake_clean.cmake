file(REMOVE_RECURSE
  "../bench/table1_activated_functions"
  "../bench/table1_activated_functions.pdb"
  "CMakeFiles/table1_activated_functions.dir/table1_activated_functions.cpp.o"
  "CMakeFiles/table1_activated_functions.dir/table1_activated_functions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_activated_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
