# Empty compiler generated dependencies file for table1_activated_functions.
# This may be replaced when dependencies are built.
