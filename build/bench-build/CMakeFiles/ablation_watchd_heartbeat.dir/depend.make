# Empty dependencies file for ablation_watchd_heartbeat.
# This may be replaced when dependencies are built.
