file(REMOVE_RECURSE
  "../bench/ablation_watchd_heartbeat"
  "../bench/ablation_watchd_heartbeat.pdb"
  "CMakeFiles/ablation_watchd_heartbeat.dir/ablation_watchd_heartbeat.cpp.o"
  "CMakeFiles/ablation_watchd_heartbeat.dir/ablation_watchd_heartbeat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_watchd_heartbeat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
