# Empty compiler generated dependencies file for ext_ftp_workload.
# This may be replaced when dependencies are built.
