file(REMOVE_RECURSE
  "../bench/ext_ftp_workload"
  "../bench/ext_ftp_workload.pdb"
  "CMakeFiles/ext_ftp_workload.dir/ext_ftp_workload.cpp.o"
  "CMakeFiles/ext_ftp_workload.dir/ext_ftp_workload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ftp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
