file(REMOVE_RECURSE
  "../bench/micro_parallel_campaign"
  "../bench/micro_parallel_campaign.pdb"
  "CMakeFiles/micro_parallel_campaign.dir/micro_parallel_campaign.cpp.o"
  "CMakeFiles/micro_parallel_campaign.dir/micro_parallel_campaign.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_parallel_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
