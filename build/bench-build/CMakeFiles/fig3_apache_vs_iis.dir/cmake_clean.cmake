file(REMOVE_RECURSE
  "../bench/fig3_apache_vs_iis"
  "../bench/fig3_apache_vs_iis.pdb"
  "CMakeFiles/fig3_apache_vs_iis.dir/fig3_apache_vs_iis.cpp.o"
  "CMakeFiles/fig3_apache_vs_iis.dir/fig3_apache_vs_iis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_apache_vs_iis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
