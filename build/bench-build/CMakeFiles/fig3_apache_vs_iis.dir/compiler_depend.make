# Empty compiler generated dependencies file for fig3_apache_vs_iis.
# This may be replaced when dependencies are built.
