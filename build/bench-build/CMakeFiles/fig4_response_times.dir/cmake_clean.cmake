file(REMOVE_RECURSE
  "../bench/fig4_response_times"
  "../bench/fig4_response_times.pdb"
  "CMakeFiles/fig4_response_times.dir/fig4_response_times.cpp.o"
  "CMakeFiles/fig4_response_times.dir/fig4_response_times.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_response_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
