file(REMOVE_RECURSE
  "../bench/table2_common_faults"
  "../bench/table2_common_faults.pdb"
  "CMakeFiles/table2_common_faults.dir/table2_common_faults.cpp.o"
  "CMakeFiles/table2_common_faults.dir/table2_common_faults.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_common_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
