# Empty compiler generated dependencies file for table2_common_faults.
# This may be replaced when dependencies are built.
