file(REMOVE_RECURSE
  "CMakeFiles/controller_agent.dir/controller_agent.cpp.o"
  "CMakeFiles/controller_agent.dir/controller_agent.cpp.o.d"
  "controller_agent"
  "controller_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
