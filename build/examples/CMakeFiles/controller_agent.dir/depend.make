# Empty dependencies file for controller_agent.
# This may be replaced when dependencies are built.
