# Empty dependencies file for watchd_debugging.
# This may be replaced when dependencies are built.
