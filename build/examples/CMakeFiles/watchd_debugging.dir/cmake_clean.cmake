file(REMOVE_RECURSE
  "CMakeFiles/watchd_debugging.dir/watchd_debugging.cpp.o"
  "CMakeFiles/watchd_debugging.dir/watchd_debugging.cpp.o.d"
  "watchd_debugging"
  "watchd_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watchd_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
