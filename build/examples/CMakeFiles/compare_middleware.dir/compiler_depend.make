# Empty compiler generated dependencies file for compare_middleware.
# This may be replaced when dependencies are built.
