file(REMOVE_RECURSE
  "CMakeFiles/compare_middleware.dir/compare_middleware.cpp.o"
  "CMakeFiles/compare_middleware.dir/compare_middleware.cpp.o.d"
  "compare_middleware"
  "compare_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
