# Empty compiler generated dependencies file for availability_estimate.
# This may be replaced when dependencies are built.
