file(REMOVE_RECURSE
  "CMakeFiles/availability_estimate.dir/availability_estimate.cpp.o"
  "CMakeFiles/availability_estimate.dir/availability_estimate.cpp.o.d"
  "availability_estimate"
  "availability_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/availability_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
