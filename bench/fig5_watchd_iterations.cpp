// Reproduces paper Figure 5: the watchd improvement ladder (§4.3).
//
// Expected shape (paper):
//  * Watchd1 -> Watchd2 (merged startService/getServiceInfo): dramatic
//    failure reduction for IIS only; Apache1 and SQL barely move — their
//    dead services stay wedged in Start Pending longer than the short
//    restart-retry budget;
//  * Watchd2 -> Watchd3 (valid-handle check + SCM confirmation + patient
//    retry): dramatic improvement for Apache1 and SQL; IIS unchanged;
//  * Watchd3 beats MSCS for every workload (the Fig. 2 watchd rows).
#include <cstdio>

#include "paper_common.h"

int main() {
  const auto sets = dts::bench::watchd_grid();
  std::fputs(dts::core::fig5_watchd_versions(sets).c_str(), stdout);
  std::printf("\nKey paper claims to check against the rows above:\n"
              "  - IIS:     V1 >> V2 ~ V3   (V2 fixed the handle-acquisition race)\n"
              "  - Apache1: V1 ~ V2 >> V3   (V3's patient SCM-confirmed restart)\n"
              "  - SQL:     V1 ~ V2 >> V3\n");
  return 0;
}
