// Reproduces paper Table 2: Apache vs IIS counting only faults activated by
// BOTH programs (same function/parameter/corruption type).
//
// Expected shape (paper §4.2): restricting to common faults widens the
// reliability gap — Apache's failure percentage drops well below IIS's in
// every configuration (paper stand-alone: 5.7% vs 26.0%).
#include <cstdio>

#include "paper_common.h"

int main() {
  using dts::mw::MiddlewareKind;
  std::vector<dts::core::WorkloadSetResult> sets;
  for (const char* w : {"Apache1", "Apache2", "IIS"}) {
    sets.push_back(dts::bench::run_set(w, MiddlewareKind::kNone));
    sets.push_back(dts::bench::run_set(w, MiddlewareKind::kMscs));
    sets.push_back(dts::bench::run_set(w, MiddlewareKind::kWatchd));
  }
  std::fputs(dts::core::table2_common_faults(sets).c_str(), stdout);
  std::printf("\nPaper reference (stand-alone): Apache1 20.0%%, Apache2 1.8%%,\n"
              "Apache1+Apache2 5.7%%, IIS 26.0%% failures on common faults.\n");
  return 0;
}
