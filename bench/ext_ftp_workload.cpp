// Extension experiment (beyond the paper): the IIS FTP service under DTS.
//
// The paper: "Although IIS can serve as an HTTP server, an FTP server, and a
// gopher server, only the HTTP functionality was tested in these
// experiments." This harness runs the measurement the paper skipped: the
// same fault sweep over inetinfo.exe, with the workload replaced by an
// FtpClient that logs in anonymously and downloads a 48 kB file (passive
// mode), with the standard retry protocol.
//
// Expected shape: same mechanics as the HTTP rows in Fig. 2 — stand-alone
// failures dominated by init crashes, middleware recovering everything but
// hangs and persistent wrong responses — since both services share the
// process and most of its KERNEL32 footprint.
#include <cstdio>

#include "paper_common.h"

int main() {
  using namespace dts;
  std::vector<core::WorkloadSetResult> sets;
  sets.push_back(dts::bench::run_set("IIS-FTP", mw::MiddlewareKind::kNone));
  sets.push_back(dts::bench::run_set("IIS-FTP", mw::MiddlewareKind::kMscs));
  sets.push_back(dts::bench::run_set("IIS-FTP", mw::MiddlewareKind::kWatchd));
  std::fputs(core::fig2_outcome_table(sets).c_str(), stdout);
  std::printf("\n(extension: compare against the IIS rows of fig2_middleware_comparison)\n");
  return 0;
}
