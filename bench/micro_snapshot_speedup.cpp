// micro_snapshot_speedup — guards the snapshot subsystem's two contracts
// (DESIGN §snap) on the seed Apache workload:
//
//   1. Byte-identity: the snapshot/fork campaign serializes byte-identical
//      to the plain executor, at --jobs=1 and --jobs=8.
//   2. Speedup: snapshot execution reaches >= 5x the plain executor's
//      runs/sec on the seed campaign (both measured at jobs=1 — the win is
//      work skipped per run, not parallelism, so it holds on one core).
//
// Both are hard assertions; the binary exits 1 on violation. The campaign is
// the deep per-invocation Apache1 sweep (iterations=48): the paper's I axis
// makes every campaign run replay one shared golden trajectory up to its
// injection point, and the deeper the sweep, the larger the share of faults
// the golden profile proves can never fire at all. Snapshot execution turns
// exactly that redundancy into skipped work — never-firing runs are
// synthesized from the host golden run without forking, and the at-site
// remainder forks from checkpoint snapshots. The plain executor re-executes
// every run from scratch.
//
// Environment knobs:
//   DTS_BENCH_TRIALS       timing rounds (default 3)
//   DTS_BENCH_FAULT_CAP    cap faults per campaign (default 0 = full sweep)
//   DTS_BENCH_SEED         campaign seed (default 7)
//   DTS_BENCH_METRICS_OUT  export the campaign-metrics registry (including
//                          the dts_snap_* counters) at exit
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "paper_common.h"
#include "core/campaign.h"
#include "snap/fork_runner.h"

namespace {

using namespace dts;

std::size_t trials() {
  const char* v = std::getenv("DTS_BENCH_TRIALS");
  const std::size_t n = v != nullptr ? std::strtoull(v, nullptr, 10) : 3;
  return n == 0 ? 1 : n;
}

core::RunConfig apache_config() {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("Apache1");
  cfg.middleware = mw::MiddlewareKind::kNone;
  return cfg;
}

core::CampaignOptions base_options() {
  core::CampaignOptions opt;
  opt.seed = bench::bench_seed();
  opt.iterations = 48;
  opt.max_faults = bench::fault_cap();
  opt.metrics = &bench::bench_registry();
  return opt;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

struct Timed {
  std::string output;
  std::size_t runs = 0;
  double seconds = 0.0;
};

Timed timed_campaign(bool snapshots, int jobs) {
  core::CampaignOptions opt = base_options();
  opt.snapshots = snapshots;
  opt.jobs = jobs;
  const auto start = std::chrono::steady_clock::now();
  const core::WorkloadSetResult set = core::run_workload_set(apache_config(), opt);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return Timed{core::serialize_workload_set(set), set.runs.size(), elapsed.count()};
}

}  // namespace

int main() {
  if (!snap::snapshots_supported()) {
    std::fprintf(stderr, "SKIP: snapshot forking unsupported on this platform\n");
    return 0;
  }

  // Byte-identity first — a fast snapshot campaign with different bytes is
  // not a speedup, it is a bug.
  const Timed plain_ref = timed_campaign(/*snapshots=*/false, /*jobs=*/1);
  for (const int jobs : {1, 8}) {
    const Timed snap_run = timed_campaign(/*snapshots=*/true, jobs);
    if (snap_run.output != plain_ref.output) {
      std::fprintf(stderr, "FAIL: snapshot campaign at jobs=%d diverged from plain jobs=1\n",
                   jobs);
      return 1;
    }
    std::printf("byte-identical at jobs=%d: ok (%zu runs)\n", jobs, snap_run.runs);
  }

  std::vector<double> plain_times, snap_times;
  const std::size_t n = trials();
  for (std::size_t t = 0; t < n; ++t) {
    // Strictly back-to-back, order alternating, as in micro_plan_pruning.
    Timed plain, snapped;
    if (t % 2 == 0) {
      plain = timed_campaign(false, 1);
      snapped = timed_campaign(true, 1);
    } else {
      snapped = timed_campaign(true, 1);
      plain = timed_campaign(false, 1);
    }
    if (snapped.output != plain.output) {
      std::fprintf(stderr, "FAIL: divergence in timing round %zu\n", t + 1);
      return 1;
    }
    plain_times.push_back(plain.seconds);
    snap_times.push_back(snapped.seconds);
    std::printf("round %2zu/%zu  plain %.3fs  snapshot %.3fs  (%.1fx)\n", t + 1, n,
                plain.seconds, snapped.seconds, plain.seconds / snapped.seconds);
  }

  const double plain_s = median(plain_times);
  const double snap_s = median(snap_times);
  const double runs = static_cast<double>(plain_ref.runs);
  const double speedup = plain_s / snap_s;
  std::printf("median-of-%zu  plain %.1f runs/s  snapshot %.1f runs/s  speedup %.2fx\n",
              n, runs / plain_s, runs / snap_s, speedup);

  if (speedup < 5.0) {
    std::fprintf(stderr, "FAIL: snapshot speedup %.2fx < 5x bar\n", speedup);
    return 1;
  }
  std::printf("PASS: byte-identical at jobs 1/8 and %.2fx >= 5x\n", speedup);
  return 0;
}
