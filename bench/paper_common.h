// Shared harness for the paper-reproduction benchmarks: builds the standard
// campaign sets (workload × middleware configurations of the paper's
// evaluation) with a disk cache, so each table/figure binary can be run
// independently without repeating multi-minute campaigns.
//
// Environment knobs:
//   DTS_BENCH_CACHE      cache directory (default ".dts_bench_cache";
//                        set to "" to disable caching)
//   DTS_BENCH_FAULT_CAP  cap faults per workload set (0 = full sweep)
//   DTS_BENCH_SEED       campaign seed (default 7)
//   DTS_BENCH_JOBS       parallel campaign workers (default 0 = one per
//                        hardware thread; results are identical at any
//                        job count, so the cache stays valid)
//   DTS_BENCH_METRICS_OUT  export the shared campaign-metrics registry as
//                        Prometheus text at this path (plus a Chrome trace
//                        at PATH.trace.json) when the harness exits; the
//                        same registry/export code path the ntdts CLI uses
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/report.h"
#include "obs/metrics.h"

namespace dts::bench {

inline std::string cache_dir() {
  const char* v = std::getenv("DTS_BENCH_CACHE");
  return v != nullptr ? std::string(v) : std::string(".dts_bench_cache");
}

inline std::size_t fault_cap() {
  const char* v = std::getenv("DTS_BENCH_FAULT_CAP");
  return v != nullptr ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10)) : 0;
}

inline std::uint64_t bench_seed() {
  const char* v = std::getenv("DTS_BENCH_SEED");
  return v != nullptr ? std::strtoull(v, nullptr, 10) : 7;
}

inline int bench_jobs() {
  const char* v = std::getenv("DTS_BENCH_JOBS");
  return v != nullptr ? static_cast<int>(std::strtol(v, nullptr, 10)) : 0;
}

/// One registry shared by every campaign a harness binary runs, so the
/// exported metrics aggregate the whole grid (same registry type the ntdts
/// CLI feeds). Exported at process exit when DTS_BENCH_METRICS_OUT is set.
inline obs::MetricsRegistry& bench_registry() {
  static obs::MetricsRegistry registry;
  static const bool export_at_exit = [] {
    if (std::getenv("DTS_BENCH_METRICS_OUT") != nullptr) {
      std::atexit([] {
        const char* path = std::getenv("DTS_BENCH_METRICS_OUT");
        std::string error;
        if (!obs::write_metrics_files(bench_registry(), path, &error)) {
          std::fprintf(stderr, "[metrics] %s\n", error.c_str());
        } else {
          std::fprintf(stderr, "[metrics] wrote %s and %s.trace.json\n", path, path);
        }
      });
    }
    return true;
  }();
  (void)export_at_exit;
  return registry;
}

inline core::WorkloadSetResult run_set(const std::string& workload, mw::MiddlewareKind m,
                                       mw::WatchdVersion v = mw::WatchdVersion::kV3) {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name(workload);
  cfg.middleware = m;
  cfg.watchd_version = v;
  core::CampaignOptions opt;
  opt.seed = bench_seed();
  opt.max_faults = fault_cap();
  opt.jobs = bench_jobs();
  opt.metrics = &bench_registry();
  std::string label = workload + "/";
  label += m == mw::MiddlewareKind::kWatchd ? std::string(to_string(v))
                                            : std::string(to_string(m));
  std::fprintf(stderr, "[campaign] %s ...\n", label.c_str());
  return core::load_or_run_workload_set(cfg, opt, cache_dir());
}

/// The paper's main grid (Figs. 2-4, Tables 1-2): every workload as a
/// stand-alone service, with MSCS, and with (the improved) watchd.
inline std::vector<core::WorkloadSetResult> standard_grid() {
  std::vector<core::WorkloadSetResult> sets;
  for (const char* w : {"Apache1", "Apache2", "IIS", "SQL"}) {
    sets.push_back(run_set(w, mw::MiddlewareKind::kNone));
    sets.push_back(run_set(w, mw::MiddlewareKind::kMscs));
    sets.push_back(run_set(w, mw::MiddlewareKind::kWatchd, mw::WatchdVersion::kV3));
  }
  return sets;
}

/// The Fig. 5 grid: the three watchd iterations over the three workloads the
/// paper shows (Apache2 omitted — watchd has no effect on it, §4.3).
inline std::vector<core::WorkloadSetResult> watchd_grid() {
  std::vector<core::WorkloadSetResult> sets;
  for (const char* w : {"Apache1", "IIS", "SQL"}) {
    sets.push_back(run_set(w, mw::MiddlewareKind::kWatchd, mw::WatchdVersion::kV1));
    sets.push_back(run_set(w, mw::MiddlewareKind::kWatchd, mw::WatchdVersion::kV2));
    sets.push_back(run_set(w, mw::MiddlewareKind::kWatchd, mw::WatchdVersion::kV3));
  }
  return sets;
}

}  // namespace dts::bench
