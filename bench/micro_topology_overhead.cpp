// micro_topology_overhead — guards the topology subsystem's zero-cost
// contract for classic campaigns (DESIGN §topo): a campaign with no
// [topology] section must flow through the topology-aware pipeline with no
// topology artifacts anywhere —
//
//   1. Run lines carry no `topo` trailer and fault ids no tier prefix; the
//      serialized campaign has no topology identity lines and round-trips
//      byte-identically.
//   2. The run journal stays schema v5 and no record carries a tier
//      annotation.
//   3. The campaign is deterministic: two executions serialize
//      byte-identically (the property every per-run topology branch must
//      preserve).
//
// All three are hard assertions; the binary exits 1 on violation. As the
// overhead figure, the harness reports classic runs/sec next to a three-tier
// campaign's runs/sec over the same fault budget — the cost of simulating a
// five-machine service graph per run instead of one target machine.
//
// Environment knobs:
//   DTS_BENCH_TRIALS     timing rounds (default 3)
//   DTS_BENCH_FAULT_CAP  cap faults per campaign (default 24)
//   DTS_BENCH_SEED       campaign seed (default 7)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "paper_common.h"
#include "core/config.h"
#include "exec/journal.h"

namespace {

using namespace dts;

std::size_t trials() {
  const char* v = std::getenv("DTS_BENCH_TRIALS");
  const std::size_t n = v != nullptr ? std::strtoull(v, nullptr, 10) : 3;
  return n == 0 ? 1 : n;
}

std::size_t fault_cap() {
  const std::size_t cap = bench::fault_cap();
  return cap == 0 ? 24 : cap;
}

core::DtsConfig parse_or_exit(const std::string& text) {
  std::string error;
  auto cfg = core::parse_config(text, &error);
  if (!cfg) {
    std::fprintf(stderr, "FAIL: config did not parse: %s\n", error.c_str());
    std::exit(1);
  }
  return *cfg;
}

double timed_runs_per_sec(const core::RunConfig& cfg, const core::CampaignOptions& opt,
                          std::size_t* runs_out) {
  double best = 0.0;
  const std::size_t n = trials();
  for (std::size_t t = 0; t < n; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto set = core::run_workload_set(cfg, opt);
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    *runs_out = set.runs.size();
    best = std::max(best, static_cast<double>(set.runs.size()) / dt.count());
  }
  return best;
}

}  // namespace

int main() {
  const std::size_t cap = fault_cap();
  char buf[512];

  std::snprintf(buf, sizeof(buf),
                "[test]\nworkload = SQL\nmiddleware = none\nseed = %llu\nmax_faults = %zu\n",
                static_cast<unsigned long long>(bench::bench_seed()), cap);
  const core::DtsConfig classic = parse_or_exit(buf);

  std::snprintf(buf, sizeof(buf),
                "[test]\nmiddleware = none\nseed = %llu\nmax_faults = %zu\n"
                "[topology]\ntopology = lb:2*apache -> app:2*iis -> db:1*sql_server\n"
                "tier = db\n",
                static_cast<unsigned long long>(bench::bench_seed()), cap);
  const core::DtsConfig tiered = parse_or_exit(buf);

  // --- contract 1+3: artifact-free, deterministic classic campaign --------
  const std::string journal_path =
      (std::filesystem::temp_directory_path() / "dts_topo_overhead_journal.jsonl").string();
  std::filesystem::remove(journal_path);

  core::CampaignOptions opt = classic.campaign;
  opt.journal_path = journal_path;
  const std::string first = core::serialize_workload_set(core::run_workload_set(classic.run, opt));

  opt.journal_path.clear();
  const std::string second =
      core::serialize_workload_set(core::run_workload_set(classic.run, opt));
  if (first != second) {
    std::fprintf(stderr, "FAIL: classic campaign not deterministic across executions\n");
    return 1;
  }
  if (first.find(" topo ") != std::string::npos ||
      first.find("topology") != std::string::npos) {
    std::fprintf(stderr, "FAIL: classic campaign serialization carries topology artifacts\n");
    return 1;
  }
  std::string error;
  const auto reloaded = core::deserialize_workload_set(first, &error);
  if (!reloaded || core::serialize_workload_set(*reloaded) != first) {
    std::fprintf(stderr, "FAIL: classic campaign round-trip diverged: %s\n", error.c_str());
    return 1;
  }
  std::printf("classic campaign serialization topology-free + round-trips: ok\n");

  // --- contract 2: journal schema unchanged -------------------------------
  const auto journal = exec::read_journal_file(journal_path, &error);
  std::filesystem::remove(journal_path);
  if (!journal) {
    std::fprintf(stderr, "FAIL: journal unreadable: %s\n", error.c_str());
    return 1;
  }
  if (journal->version != 5) {
    std::fprintf(stderr, "FAIL: classic journal is v%llu, want v5\n",
                 static_cast<unsigned long long>(journal->version));
    return 1;
  }
  for (const auto& rec : journal->records) {
    if (!rec.tier.empty()) {
      std::fprintf(stderr, "FAIL: classic journal record %s carries tier '%s'\n",
                   rec.fault_id.c_str(), rec.tier.c_str());
      return 1;
    }
  }
  std::printf("classic journal stays v5 with no tier annotations: ok\n");

  // --- overhead figure ----------------------------------------------------
  std::size_t classic_runs = 0, tiered_runs = 0;
  const double classic_rps = timed_runs_per_sec(classic.run, classic.campaign, &classic_runs);
  const double tiered_rps = timed_runs_per_sec(tiered.run, tiered.campaign, &tiered_runs);
  std::printf("classic   %zu runs  %.1f runs/s\n", classic_runs, classic_rps);
  std::printf("three-tier %zu runs  %.1f runs/s  (%.1fx per-run cost)\n", tiered_runs,
              tiered_rps, tiered_rps > 0 ? classic_rps / tiered_rps : 0.0);

  std::printf("PASS: classic campaigns unchanged by the topology subsystem\n");
  return 0;
}
