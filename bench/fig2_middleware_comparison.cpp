// Reproduces paper Figure 2: outcome distributions for Apache1, Apache2,
// IIS and SQL Server as stand-alone services, with MSCS, and with watchd.
//
// Expected shape (paper §4.1):
//  * middleware sharply cuts failures for Apache1, IIS and SQL;
//  * watchd(V3) reaches 0% failures for Apache1 and beats MSCS overall;
//  * Apache2's outcomes are unaffected by middleware (only the first process
//    of a service is monitored; Apache1 itself respawns the worker).
#include <cstdio>

#include "paper_common.h"

int main() {
  const auto sets = dts::bench::standard_grid();
  std::fputs(dts::core::fig2_outcome_table(sets).c_str(), stdout);
  std::printf("\nKey paper claims to check against the rows above:\n"
              "  - Failure%% drops markedly under MSCS and watchd for Apache1/IIS/SQL\n"
              "  - Apache1/Watchd3 failure%% is 0\n"
              "  - Apache2 rows are nearly identical across none/MSCS/watchd\n"
              "  - watchd(V3) failure%% <= MSCS failure%% for every workload\n");
  return 0;
}
