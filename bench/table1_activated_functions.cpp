// Reproduces paper Table 1: "Number of called KERNEL32.dll functions per
// workload" — each server program as a stand-alone NT service, with MSCS,
// and with watchd.
//
// Expected shape (paper): Apache1 << Apache2 << IIS ~ SQL; MSCS activates a
// few extra functions; watchd slightly fewer for IIS/SQL.
#include <cstdio>

#include "paper_common.h"

int main() {
  using dts::mw::MiddlewareKind;
  using dts::mw::WatchdVersion;
  std::vector<dts::core::WorkloadSetResult> sets;
  for (const char* w : {"Apache1", "Apache2", "IIS", "SQL"}) {
    // Table 1 needs only the profiling pass, so cap the fault sweep at one.
    setenv("DTS_BENCH_FAULT_CAP", "1", /*overwrite=*/0);
    sets.push_back(dts::bench::run_set(w, MiddlewareKind::kNone));
    sets.push_back(dts::bench::run_set(w, MiddlewareKind::kMscs));
    sets.push_back(dts::bench::run_set(w, MiddlewareKind::kWatchd, WatchdVersion::kV3));
  }
  std::fputs(dts::core::table1_activated_functions(sets).c_str(), stdout);
  std::printf("\nPaper reference (Table 1):\n"
              "  Apache1: 13 / 17 / 13    Apache2: 22 / 24 / 22\n"
              "  IIS:     76 / 76 / 70    SQL:     71 / 74 / 70\n");
  const auto& reg = dts::nt::Kernel32Registry::instance();
  std::printf("\nSimulated KERNEL32 surface: %zu functions (%zu with no parameters, "
              "%zu injection candidates; the paper's DLL had 681/130/551)\n",
              reg.total_functions(), reg.zero_param_functions(),
              reg.injectable_functions());
  return 0;
}
