// micro_replay_fidelity — guards the forensics subsystem's two contracts
// (DESIGN §forensics) on the seed Apache workload:
//
//   1. Replay fidelity: `ntdts replay` (forensics::replay_record) must
//      reproduce EVERY failing run of a journaled seed Apache1 sweep with
//      matching outcome, run line, trace digest and corrupted-call context —
//      100% replay-match is a hard assertion, one divergent run exits 1.
//      Replay re-derives the per-run seed from (campaign seed, fault id)
//      alone, so a mismatch means ntsim was nondeterministic.
//   2. Signature compression: clustering the journal's records by failure
//      signature (fault class × call context × outcome × detection span)
//      must actually compress — distinct signatures < journal records — and
//      cluster counts must sum exactly to the record total. The compression
//      ratio (records per distinct signature) is reported; it is the figure
//      that makes a million-run journal triageable.
//
// The campaign is the deep per-invocation Apache1 sweep (iterations=48),
// matching micro_snapshot_speedup, so the journal carries a meaningful mix
// of never-fired, tolerated and failing runs.
//
// Environment knobs:
//   DTS_BENCH_FAULT_CAP    cap faults in the sweep (default 0 = full sweep)
//   DTS_BENCH_SEED         campaign seed (default 7)
//   DTS_BENCH_METRICS_OUT  export the campaign-metrics registry at exit
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "paper_common.h"
#include "core/campaign.h"
#include "exec/executor.h"
#include "exec/journal.h"
#include "forensics/replay.h"
#include "forensics/signature.h"

namespace {

using namespace dts;

core::RunConfig apache_config() {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("Apache1");
  cfg.middleware = mw::MiddlewareKind::kNone;
  return cfg;
}

}  // namespace

int main() {
  const std::string journal_path =
      (std::filesystem::temp_directory_path() / "dts_replay_fidelity.jsonl").string();
  std::filesystem::remove(journal_path);

  core::CampaignOptions opt;
  opt.seed = bench::bench_seed();
  opt.iterations = 48;
  opt.max_faults = bench::fault_cap();
  opt.jobs = 0;  // replay fidelity must hold for journals written at any -j
  opt.journal_path = journal_path;
  opt.metrics = &bench::bench_registry();
  std::fprintf(stderr, "[campaign] Apache1 sweep (journaled) ...\n");
  const core::WorkloadSetResult set = core::run_workload_set(apache_config(), opt);
  std::printf("campaign: %zu runs journaled\n", set.runs.size());

  std::string error;
  const auto file = exec::read_journal_file(journal_path, &error);
  if (!file) {
    std::fprintf(stderr, "FAIL: cannot read journal: %s\n", error.c_str());
    return 1;
  }

  // 1. Replay every failing record; 100% must match the journal.
  const std::string image = apache_config().workload.target_image;
  std::size_t failures = 0, matched = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const exec::JournalRecord& rec : file->records) {
    core::RunResult journaled;
    if (!core::parse_run_line(image, rec.run_line, &journaled, &error)) continue;
    if (journaled.outcome != core::Outcome::kFailure) continue;
    ++failures;
    const auto replay = forensics::replay_record(*file, rec, {}, &error);
    if (!replay) {
      std::fprintf(stderr, "FAIL: replay of %s errored: %s\n", rec.fault_id.c_str(),
                   error.c_str());
      return 1;
    }
    if (!replay->matches()) {
      std::fprintf(stderr,
                   "FAIL: replay of %s diverged (outcome %s vs %s) — "
                   "ntsim nondeterminism\n",
                   rec.fault_id.c_str(), replay->journal_outcome.c_str(),
                   std::string(exec::outcome_label(replay->run.outcome)).c_str());
      return 1;
    }
    ++matched;
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  if (failures == 0) {
    std::fprintf(stderr, "FAIL: seed sweep produced no failing runs to replay\n");
    return 1;
  }
  std::printf("replayed %zu/%zu failing runs: all matched (%.3fs, %.1f replays/s)\n",
              matched, failures, elapsed.count(),
              static_cast<double>(matched) / elapsed.count());

  // 2. Signature clustering: counts reconcile exactly, and clustering
  //    compresses the journal.
  forensics::SignatureIndex index;
  for (const exec::JournalRecord& rec : file->records) {
    core::RunResult run;
    if (core::parse_run_line(image, rec.run_line, &run, &error)) {
      index.add(forensics::signature_of(run, rec.call_context), rec.fault_id,
                rec.exec_index, "seed");
    } else {
      index.add(forensics::unparsed_signature(), rec.fault_id, rec.exec_index, "seed");
    }
  }
  std::uint64_t sum = 0;
  for (const forensics::SignatureCluster& c : index.ranked()) sum += c.count;
  if (sum != index.total() || index.total() != file->records.size()) {
    std::fprintf(stderr, "FAIL: cluster counts (%llu) != journal records (%zu)\n",
                 static_cast<unsigned long long>(sum), file->records.size());
    return 1;
  }
  if (index.distinct() >= file->records.size()) {
    std::fprintf(stderr, "FAIL: %zu signatures for %zu records — no compression\n",
                 index.distinct(), file->records.size());
    return 1;
  }
  const double ratio =
      static_cast<double>(file->records.size()) / static_cast<double>(index.distinct());
  std::printf("signatures: %zu records -> %zu clusters (%.1fx compression)\n",
              file->records.size(), index.distinct(), ratio);

  std::filesystem::remove(journal_path);
  std::printf("PASS: 100%% replay-match on %zu failures, %.1fx signature compression\n",
              failures, ratio);
  return 0;
}
