// Ablation: inject deeper invocations (the I axis of the paper's Fig. 1).
//
// The paper injects only the FIRST invocation of each function: "Further
// invocations can also be injected, but preliminary experiments showed that
// such injections produced similar results." This harness checks that claim
// on the Apache master workload: outcome distributions for invocation #1
// faults vs invocation #2 faults.
#include <cstdio>

#include "paper_common.h"

int main() {
  using namespace dts;
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("Apache1");
  cfg.middleware = mw::MiddlewareKind::kWatchd;
  core::CampaignOptions opt;
  opt.seed = dts::bench::bench_seed();
  opt.iterations = 2;  // sweep invocation #1 AND invocation #2
  std::fprintf(stderr, "[campaign] Apache1/Watchd3 with iterations=2 ...\n");
  const core::WorkloadSetResult set = core::run_workload_set(cfg, opt);

  // Split the runs by invocation index.
  core::OutcomeDistribution inv[3];
  for (const auto& r : set.runs) {
    if (!r.activated || r.fault.invocation > 2) continue;
    ++inv[r.fault.invocation].activated;
    ++inv[r.fault.invocation].counts[r.outcome];
  }

  std::printf("Ablation: first- vs second-invocation injection (Apache1/Watchd3)\n");
  std::printf("%-14s %10s", "invocation", "activated");
  for (core::Outcome o : core::kAllOutcomes) std::printf(" %10s", std::string(short_label(o)).c_str());
  std::printf("\n");
  for (int i = 1; i <= 2; ++i) {
    std::printf("%-14d %10zu", i, inv[i].activated);
    for (core::Outcome o : core::kAllOutcomes) std::printf(" %9.2f%%", inv[i].percent(o));
    std::printf("\n");
  }
  std::printf("\nPaper claim (section 4): deeper invocations produce similar results,\n"
              "so the default campaign injects only the first invocation.\n"
              "(Second invocations activate fewer faults: most functions are called\n"
              "once during startup and never again.)\n");
  return 0;
}
