// Reproduces paper Figure 4: average response times for Apache and IIS by
// outcome class, with 95% confidence intervals. Failures are split into
// wrong-response (finite time) and no-response (unbounded, omitted).
//
// Expected shape (paper §4.2):
//  * no appreciable response-time overhead from MSCS or watchd;
//  * Apache faster than IIS for normal-success outcomes (paper: 14.21 s vs
//    18.94 s, matching the fault-free times);
//  * restart outcomes SLOWER for Apache than IIS — Apache's dead service
//    wedges in the SCM's Start Pending state (database locked) for its long
//    wait hint before any restart can proceed.
#include <cstdio>

#include "paper_common.h"

int main() {
  using dts::mw::MiddlewareKind;
  std::vector<dts::core::WorkloadSetResult> sets;
  for (const char* w : {"Apache1", "Apache2", "IIS"}) {
    sets.push_back(dts::bench::run_set(w, MiddlewareKind::kNone));
    sets.push_back(dts::bench::run_set(w, MiddlewareKind::kMscs));
    sets.push_back(dts::bench::run_set(w, MiddlewareKind::kWatchd));
  }
  std::fputs(dts::core::fig4_response_times(sets).c_str(), stdout);
  std::printf("\nPaper reference: normal success 14.21 s (Apache) vs 18.94 s (IIS).\n");
  return 0;
}
