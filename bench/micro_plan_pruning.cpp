// micro_plan_pruning — guards the campaign planner's two contracts (DESIGN
// §plan) on the seed Apache workload:
//
//   1. Outcome neutrality: the planned campaign (golden-run pruning +
//      value-equivalence dedup, adaptive sampling OFF) reproduces the
//      exhaustive sweep's aggregate outcome counts exactly — activated
//      faults, per-outcome counts, and the failure-response split.
//   2. Savings: the planned campaign executes at most 0.75× the fresh
//      simulations of the exhaustive sweep (the ISSUE acceptance bar is a
//      >= 25% reduction).
//
// Both are hard assertions; the binary exits 1 on violation. Wall-clock for
// the full vs planned campaign is reported per round (median of
// DTS_BENCH_TRIALS rounds, default 5), including the planning pass itself —
// the golden profile is one fault-free run, so the planned campaign must win
// on time as well as on run count.
//
// Environment knobs:
//   DTS_BENCH_TRIALS  timing rounds (default 5)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/campaign.h"
#include "plan/plan.h"

namespace {

using namespace dts;

std::size_t trials() {
  const char* v = std::getenv("DTS_BENCH_TRIALS");
  const std::size_t n = v != nullptr ? std::strtoull(v, nullptr, 10) : 5;
  return n == 0 ? 1 : n;
}

core::RunConfig apache_config() {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("Apache1");
  cfg.middleware = mw::MiddlewareKind::kNone;
  return cfg;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

struct Timed {
  core::WorkloadSetResult set;
  double seconds = 0.0;
};

Timed timed_campaign(const core::CampaignOptions& opt) {
  const auto start = std::chrono::steady_clock::now();
  Timed t;
  t.set = core::run_workload_set(apache_config(), opt);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  t.seconds = elapsed.count();
  return t;
}

bool same_aggregates(const core::WorkloadSetResult& a, const core::WorkloadSetResult& b) {
  return a.activated_functions == b.activated_functions &&
         a.activated_faults() == b.activated_faults() &&
         a.outcome_counts() == b.outcome_counts() &&
         a.failures_with_response() == b.failures_with_response() &&
         a.failures_without_response() == b.failures_without_response();
}

}  // namespace

int main() {
  core::CampaignOptions full_opt;
  full_opt.seed = 1;

  core::CampaignOptions plan_opt = full_opt;
  plan_opt.plan.mode = plan::PlanOptions::Mode::kAuto;

  std::vector<double> full_times, plan_times;
  std::size_t full_runs = 0, plan_runs = 0;
  const std::size_t n = trials();
  for (std::size_t t = 0; t < n; ++t) {
    // Strictly back-to-back, order alternating, as in micro_trace_overhead.
    Timed full, planned;
    if (t % 2 == 0) {
      full = timed_campaign(full_opt);
      planned = timed_campaign(plan_opt);
    } else {
      planned = timed_campaign(plan_opt);
      full = timed_campaign(full_opt);
    }

    if (!same_aggregates(full.set, planned.set)) {
      std::fprintf(stderr,
                   "FAIL: planned campaign changed the aggregate outcomes "
                   "(activated %zu vs %zu)\n",
                   full.set.activated_faults(), planned.set.activated_faults());
      return 1;
    }
    full_runs = full.set.executed_runs;
    plan_runs = planned.set.executed_runs;
    full_times.push_back(full.seconds);
    plan_times.push_back(planned.seconds);
    std::printf("round %2zu/%zu  exhaustive %.3fs (%zu runs)  planned %.3fs (%zu runs)\n",
                t + 1, n, full.seconds, full_runs, planned.seconds, plan_runs);
  }

  const double full_s = median(full_times);
  const double plan_s = median(plan_times);
  std::printf("median-of-%zu  exhaustive %.3fs  planned %.3fs  (%.1f%% time, "
              "%.1f%% runs)\n",
              n, full_s, plan_s, 100.0 * (1.0 - plan_s / full_s),
              100.0 * (1.0 - static_cast<double>(plan_runs) /
                                 static_cast<double>(full_runs)));

  if (plan_runs * 4 > full_runs * 3) {
    std::fprintf(stderr,
                 "FAIL: planned campaign executed %zu of %zu runs — less than "
                 "the required 25%% reduction\n",
                 plan_runs, full_runs);
    return 1;
  }
  std::printf("PASS: outcome-neutral, %zu of %zu runs executed\n", plan_runs, full_runs);
  return 0;
}
