// Campaign execution scaling curve: runs/sec of a capped Apache1 stand-alone
// sweep at 1/2/4/8 workers. Parallel output is byte-identical to serial
// (asserted here per iteration against the jobs=1 baseline), so throughput
// is the only observable difference; the curve quantifies it per machine.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "core/campaign.h"
#include "exec/executor.h"

namespace {

using namespace dts;

constexpr std::uint64_t kSeed = 7;
constexpr std::size_t kFaultCap = 32;

struct CampaignFixture {
  core::RunConfig cfg;
  inject::FaultList list;
  std::string serial_output;  // jobs=1 reference serialization

  static const CampaignFixture& instance() {
    static const CampaignFixture f;
    return f;
  }

 private:
  CampaignFixture() {
    cfg.workload = core::workload_by_name("Apache1");
    const std::set<nt::Fn> fns = core::profile_workload(cfg, kSeed);
    list = inject::FaultList::for_functions(cfg.workload.target_image, fns)
               .sampled(kFaultCap);
    serial_output = serialize(run_at(1));
  }

 public:
  exec::CampaignResult run_at(int jobs) const {
    exec::ExecOptions eo;
    eo.jobs = jobs;
    return exec::CampaignExecutor(eo).run(cfg, list, kSeed);
  }

  std::string serialize(const exec::CampaignResult& r) const {
    core::WorkloadSetResult set;
    set.base_config = cfg;
    set.runs = r.runs;
    return core::serialize_workload_set(set);
  }
};

void BM_ParallelCampaign(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const CampaignFixture& fx = CampaignFixture::instance();
  std::size_t runs = 0;
  for (auto _ : state) {
    const exec::CampaignResult r = fx.run_at(jobs);
    runs += r.runs.size();
    if (fx.serialize(r) != fx.serial_output) {
      state.SkipWithError("parallel output diverged from serial baseline");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(runs));
  state.counters["workers"] = jobs;
  state.counters["runs_per_sec"] =
      benchmark::Counter(static_cast<double>(runs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelCampaign)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
