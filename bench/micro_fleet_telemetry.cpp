// micro_fleet_telemetry — guards the fleet telemetry layer's two claims:
//
//  1. Correctness: a coordinator + 1 worker process WITH telemetry shipping
//     enabled produces output byte-identical to the in-process `--jobs=1`
//     executor (exits 1 on divergence), and the per-worker run totals the
//     coordinator merges out of the TELEMETRY frames equal the number of
//     executed runs exactly — the fleet view agrees with the results run
//     for run.
//  2. Cost: telemetry shipping must not slow the distributed campaign by
//     more than 3% — asserted as the MEDIAN of per-round paired ratios
//     telemetry-on/telemetry-off, both sides coordinator + 1 worker over
//     the identical fault list. Adjacent pairing cancels load drift on a
//     shared box; the median tolerates preemption spikes. Because the
//     budget sits near the noise floor of a 1-core container, the whole
//     measurement retries up to 3 attempts and passes if ANY attempt lands
//     under budget — a real regression fails all three.
//
// Environment knobs:
//   DTS_BENCH_TRIALS     paired rounds per attempt (default 8)
//   DTS_BENCH_FAULT_CAP  faults in the measured campaign (default 64)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "dist/coordinator.h"
#include "exec/executor.h"
#include "obs/metrics.h"

namespace {

using namespace dts;

constexpr std::uint64_t kSeed = 7;

std::size_t trials() {
  const char* v = std::getenv("DTS_BENCH_TRIALS");
  const std::size_t n = v != nullptr ? std::strtoull(v, nullptr, 10) : 8;
  return n == 0 ? 1 : n;
}

std::size_t fault_cap() {
  const char* v = std::getenv("DTS_BENCH_FAULT_CAP");
  const std::size_t n = v != nullptr ? std::strtoull(v, nullptr, 10) : 64;
  return n == 0 ? 64 : n;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

std::vector<std::string> run_lines(const std::vector<core::RunResult>& runs) {
  std::vector<std::string> out;
  out.reserve(runs.size());
  for (const auto& r : runs) out.push_back(core::serialize_run_line(r));
  return out;
}

struct DistSample {
  double seconds = 0.0;
  std::vector<std::string> lines;
  std::uint64_t worker_runs = 0;       // summed from worker="..." children
  std::uint64_t telemetry_frames = 0;
  std::size_t executed = 0;
};

/// One coordinator + 1 worker campaign; telemetry on or off.
DistSample run_distributed(const core::RunConfig& cfg, const inject::FaultList& list,
                           bool telemetry) {
  obs::MetricsRegistry metrics;
  dist::DistOptions d;
  d.spawn_workers = 1;
  d.metrics = &metrics;
  d.telemetry_ms = telemetry ? 50 : 0;
  const auto t0 = std::chrono::steady_clock::now();
  dist::Coordinator coordinator(cfg, list, kSeed, d);
  const exec::CampaignResult result = coordinator.run();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - t0;

  DistSample sample;
  sample.seconds = elapsed.count();
  sample.lines = run_lines(result.runs);
  sample.executed = result.executed;
  sample.telemetry_frames =
      metrics.counter("dts_fleet_telemetry_frames_total").value();
  for (const auto& s : metrics.snapshot()) {
    if (s.name == "dts_runs_total" &&
        s.labels.find("worker=\"") != std::string::npos) {
      sample.worker_runs += s.counter_value;
    }
  }
  return sample;
}

}  // namespace

int main() {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("Apache1");
  const auto fns = core::profile_workload(cfg, kSeed);
  const inject::FaultList list =
      inject::FaultList::for_functions(cfg.workload.target_image, fns)
          .sampled(fault_cap());
  std::printf("campaign: Apache1, %zu faults, coordinator + 1 worker process\n",
              list.faults.size());

  exec::ExecOptions eo;
  eo.jobs = 1;
  const exec::CampaignResult serial = exec::CampaignExecutor(eo).run(cfg, list, kSeed);
  const std::vector<std::string> baseline = run_lines(serial.runs);

  constexpr int kAttempts = 3;
  constexpr double kBudget = 0.03;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    std::printf("--- attempt %d/%d ---\n", attempt, kAttempts);
    std::vector<double> ratios;
    for (std::size_t t = 0; t < trials(); ++t) {
      // The asserted pair runs strictly back-to-back, order alternating so
      // neither config systematically absorbs warm-up or runs first.
      DistSample off, on;
      if (t % 2 == 0) {
        off = run_distributed(cfg, list, false);
        on = run_distributed(cfg, list, true);
      } else {
        on = run_distributed(cfg, list, true);
        off = run_distributed(cfg, list, false);
      }

      // Correctness is asserted on every round, both configs.
      if (off.lines != baseline || on.lines != baseline) {
        std::fprintf(stderr,
                     "FAIL: distributed output diverged from --jobs=1 "
                     "(telemetry %s)\n",
                     off.lines != baseline ? "off" : "on");
        return 1;
      }
      if (on.telemetry_frames == 0) {
        std::fprintf(stderr, "FAIL: telemetry enabled but no frames arrived\n");
        return 1;
      }
      if (on.worker_runs != on.executed) {
        std::fprintf(stderr,
                     "FAIL: merged worker run totals (%llu) != executed runs "
                     "(%zu)\n",
                     static_cast<unsigned long long>(on.worker_runs), on.executed);
        return 1;
      }

      ratios.push_back(on.seconds / off.seconds);
      std::printf("round %2zu/%zu  telemetry-off %.3fs  telemetry-on %.3fs "
                  "(%+.2f%%, %llu frames)\n",
                  t + 1, trials(), off.seconds, on.seconds,
                  100.0 * (on.seconds / off.seconds - 1.0),
                  static_cast<unsigned long long>(on.telemetry_frames));
    }
    const double overhead = median(ratios) - 1.0;
    std::printf("median-of-%zu paired ratios  telemetry overhead %+.2f%%\n",
                trials(), 100.0 * overhead);
    if (overhead < kBudget) {
      std::printf("PASS: telemetry-on byte-identical to --jobs=1, overhead "
                  "%.2f%% within the 3%% budget\n",
                  100.0 * overhead);
      return 0;
    }
    std::printf("attempt %d over budget (%.2f%%)%s\n", attempt, 100.0 * overhead,
                attempt < kAttempts ? ", retrying" : "");
  }
  std::printf(
      "FAIL: telemetry overhead exceeded the 3%% budget in all %d attempts\n",
      kAttempts);
  return 1;
}
