// Engineering microbenchmarks (google-benchmark): throughput of the
// simulation substrate and end-to-end run latency. Includes the DESIGN.md
// ablation: syscall dispatch with and without the interception hook.
#include <benchmark/benchmark.h>

#include "apps/sql_engine.h"
#include "apps/http.h"
#include "core/campaign.h"
#include "inject/interceptor.h"
#include "ntsim/kernel.h"
#include "ntsim/kernel32.h"

namespace {

using namespace dts;

void BM_SimEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation simu;
    int fired = 0;
    for (int i = 0; i < 10000; ++i) {
      simu.schedule(sim::Duration::micros(i), [&fired] { ++fired; });
    }
    simu.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimEventThroughput);

void BM_VirtualMemoryAllocFree(benchmark::State& state) {
  nt::VirtualMemory vm;
  for (auto _ : state) {
    nt::Ptr p = vm.alloc(256);
    vm.write_u32(p, 42);
    benchmark::DoNotOptimize(vm.read_u32(p));
    vm.free(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VirtualMemoryAllocFree);

/// Ablation: cost of a syscall through the dispatcher, with and without the
/// DTS interception hook installed (the paper's LCI layer).
void BM_SyscallDispatch(benchmark::State& state) {
  const bool hooked = state.range(0) != 0;
  sim::Simulation simu;
  nt::Machine m{simu, nt::MachineConfig{}};
  inject::Interceptor icept;
  if (hooked) m.k32().set_hook(&icept);

  std::uint64_t calls = 0;
  m.register_program("bench.exe", [&](nt::Ctx c) -> sim::Task {
    for (;;) {
      (void)co_await c.m().k32().call(c, nt::Fn::GetCurrentProcessId);
      ++calls;
    }
  });
  m.start_process("bench.exe", "bench.exe");
  for (auto _ : state) {
    const std::uint64_t before = calls;
    while (calls < before + 1000) simu.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
  state.SetLabel(hooked ? "interception on" : "interception off");
}
BENCHMARK(BM_SyscallDispatch)->Arg(0)->Arg(1);

void BM_HttpParse(benchmark::State& state) {
  const std::string raw =
      "GET /cgi-bin/test.cgi?id=42 HTTP/1.0\r\nHost: target\r\n"
      "User-Agent: DTS-HttpClient\r\nAccept: */*\r\n\r\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::http::parse_request(raw));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HttpParse);

void BM_SqlSelect(benchmark::State& state) {
  apps::sql::Database db;
  apps::sql::execute(db, "CREATE TABLE t (id INT, name TEXT)");
  for (int i = 0; i < 1000; ++i) {
    apps::sql::execute(db, "INSERT INTO t VALUES (" + std::to_string(i) + ", 'row')");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::sql::execute(db, "SELECT name FROM t WHERE id = 500"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlSelect);

/// End-to-end: one complete fault-free Apache run (world build, service
/// start, two HTTP requests, teardown).
void BM_FullRunApacheFaultFree(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::RunConfig cfg;
    cfg.workload = core::workload_by_name("Apache1");
    cfg.seed = seed++;
    benchmark::DoNotOptimize(core::execute_run(cfg, std::nullopt));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullRunApacheFaultFree)->Unit(benchmark::kMillisecond);

/// End-to-end: one injected run that crashes IIS during init (the expensive
/// failure path: client retries against a dead server).
void BM_FullRunIisInitCrash(benchmark::State& state) {
  auto spec = inject::parse_fault_id("inetinfo.exe", "GetStartupInfoA.lpStartupInfo#1:flip");
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::RunConfig cfg;
    cfg.workload = core::workload_by_name("IIS");
    cfg.seed = seed++;
    benchmark::DoNotOptimize(core::execute_run(cfg, *spec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullRunIisInitCrash)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
