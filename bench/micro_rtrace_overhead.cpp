// micro_rtrace_overhead — guards request tracing's two cost contracts
// (DESIGN §obs/rtrace, decision 16):
//
//   1. `rtrace = off` is byte-identical to the untraced pipeline: no run
//      carries a trace, the journal stays schema v6 with no "rt" trailer
//      anywhere in its bytes, and the campaign serializes deterministically
//      and round-trips byte-identically.
//   2. `rtrace = failures` journals a parseable v7 "rt" trailer (non-zero
//      path digest, non-empty span set) for every failed or non-masked run,
//      and costs < 3% of the untraced campaign's throughput (override with
//      DTS_BENCH_RTRACE_MAX_OVERHEAD, in percent).
//
// Both are hard assertions; the binary exits 1 on violation. Reports
// untraced vs traced runs/sec and the journaled trace sizes. Campaign
// metrics flow through the shared bench registry, so DTS_BENCH_METRICS_OUT
// exports Prometheus text + a Chrome trace at exit like every other harness.
//
// Environment knobs:
//   DTS_BENCH_TRIALS     timing rounds, best-of (default 3)
//   DTS_BENCH_FAULT_CAP  cap faults per campaign (default 24)
//   DTS_BENCH_SEED       campaign seed (default 7)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "paper_common.h"
#include "core/config.h"
#include "exec/journal.h"
#include "obs/rtrace/rtrace.h"

namespace {

using namespace dts;

std::size_t trials() {
  const char* v = std::getenv("DTS_BENCH_TRIALS");
  const std::size_t n = v != nullptr ? std::strtoull(v, nullptr, 10) : 3;
  return n == 0 ? 1 : n;
}

std::size_t fault_cap() {
  const std::size_t cap = bench::fault_cap();
  return cap == 0 ? 24 : cap;
}

double max_overhead_pct() {
  const char* v = std::getenv("DTS_BENCH_RTRACE_MAX_OVERHEAD");
  return v != nullptr ? std::strtod(v, nullptr) : 3.0;
}

core::DtsConfig parse_or_exit(const std::string& text) {
  std::string error;
  auto cfg = core::parse_config(text, &error);
  if (!cfg) {
    std::fprintf(stderr, "FAIL: config did not parse: %s\n", error.c_str());
    std::exit(1);
  }
  return *cfg;
}

double timed_runs_per_sec(const core::RunConfig& cfg,
                          const core::CampaignOptions& opt, std::size_t* runs_out) {
  double best = 0.0;
  const std::size_t n = trials();
  for (std::size_t t = 0; t < n; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto set = core::run_workload_set(cfg, opt);
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    *runs_out = set.runs.size();
    best = std::max(best, static_cast<double>(set.runs.size()) / dt.count());
  }
  return best;
}

std::string three_tier_config(const char* rtrace_line) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "[test]\nmiddleware = none\nseed = %llu\nmax_faults = %zu\n"
                "[topology]\ntopology = lb:2*apache -> app:2*iis -> db:1*sql_server\n"
                "tier = db\n%s",
                static_cast<unsigned long long>(bench::bench_seed()), fault_cap(),
                rtrace_line);
  return buf;
}

std::string slurp(const std::string& path) {
  std::string out;
  if (FILE* f = std::fopen(path.c_str(), "rb")) {
    char chunk[4096];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) out.append(chunk, n);
    std::fclose(f);
  }
  return out;
}

}  // namespace

int main() {
  const core::DtsConfig untraced = parse_or_exit(three_tier_config(""));
  const core::DtsConfig off = parse_or_exit(three_tier_config("rtrace = off\n"));
  const core::DtsConfig traced = parse_or_exit(three_tier_config("rtrace = failures\n"));

  const auto temp = std::filesystem::temp_directory_path();
  const std::string off_journal = (temp / "dts_rtrace_off_journal.jsonl").string();
  const std::string traced_journal = (temp / "dts_rtrace_on_journal.jsonl").string();
  std::filesystem::remove(off_journal);
  std::filesystem::remove(traced_journal);
  std::string error;

  // --- contract 1: off is byte-identical to the untraced pipeline ---------
  core::CampaignOptions opt = untraced.campaign;
  opt.metrics = &bench::bench_registry();
  const std::string baseline =
      core::serialize_workload_set(core::run_workload_set(untraced.run, opt));

  core::CampaignOptions off_opt = off.campaign;
  off_opt.metrics = &bench::bench_registry();
  off_opt.journal_path = off_journal;
  const std::string off_bytes =
      core::serialize_workload_set(core::run_workload_set(off.run, off_opt));
  if (off_bytes != baseline) {
    std::fprintf(stderr, "FAIL: rtrace=off campaign diverged from untraced bytes\n");
    return 1;
  }
  const auto reloaded = core::deserialize_workload_set(off_bytes, &error);
  if (!reloaded || core::serialize_workload_set(*reloaded) != baseline) {
    std::fprintf(stderr, "FAIL: rtrace=off round-trip diverged: %s\n", error.c_str());
    return 1;
  }
  const auto off_file = exec::read_journal_file(off_journal, &error);
  if (!off_file) {
    std::fprintf(stderr, "FAIL: off journal unreadable: %s\n", error.c_str());
    return 1;
  }
  if (off_file->version != 6) {
    std::fprintf(stderr, "FAIL: rtrace=off journal is v%llu, want v6\n",
                 static_cast<unsigned long long>(off_file->version));
    return 1;
  }
  if (slurp(off_journal).find("\"rt\"") != std::string::npos) {
    std::fprintf(stderr, "FAIL: rtrace=off journal bytes carry an rt trailer\n");
    return 1;
  }
  std::filesystem::remove(off_journal);
  std::printf("rtrace=off byte-identical to untraced (journal v6, rt-free): ok\n");

  // --- contract 2a: failures journals parseable v7 traces -----------------
  core::CampaignOptions traced_opt = traced.campaign;
  traced_opt.metrics = &bench::bench_registry();
  traced_opt.journal_path = traced_journal;
  (void)core::run_workload_set(traced.run, traced_opt);
  const auto traced_file = exec::read_journal_file(traced_journal, &error);
  std::filesystem::remove(traced_journal);
  if (!traced_file) {
    std::fprintf(stderr, "FAIL: traced journal unreadable: %s\n", error.c_str());
    return 1;
  }
  if (traced_file->version != 7) {
    std::fprintf(stderr, "FAIL: traced journal is v%llu, want v7\n",
                 static_cast<unsigned long long>(traced_file->version));
    return 1;
  }
  std::size_t traced_records = 0, spans = 0;
  for (const auto& rec : traced_file->records) {
    if (rec.rtrace.empty()) continue;
    ++traced_records;
    if (obs::rtrace::digest_of_serialized(rec.rtrace) == 0) {
      std::fprintf(stderr, "FAIL: record %s has a zero path digest\n",
                   rec.fault_id.c_str());
      return 1;
    }
    const auto rt = obs::rtrace::RunTrace::parse(rec.rtrace);
    if (!rt || rt->spans.empty()) {
      std::fprintf(stderr, "FAIL: record %s rt trailer did not parse\n",
                   rec.fault_id.c_str());
      return 1;
    }
    spans += rt->spans.size();
  }
  if (traced_records == 0) {
    std::fprintf(stderr, "FAIL: no journal record carries a request trace\n");
    return 1;
  }
  std::printf("rtrace=failures journal v7: %zu traced records, %zu spans: ok\n",
              traced_records, spans);

  // --- contract 2b: tracing costs < max_overhead_pct ----------------------
  std::size_t untraced_runs = 0, traced_runs = 0;
  core::CampaignOptions time_opt = untraced.campaign;
  const double untraced_rps = timed_runs_per_sec(untraced.run, time_opt, &untraced_runs);
  core::CampaignOptions traced_time_opt = traced.campaign;
  const double traced_rps =
      timed_runs_per_sec(traced.run, traced_time_opt, &traced_runs);
  const double overhead_pct =
      untraced_rps > 0 ? (1.0 - traced_rps / untraced_rps) * 100.0 : 0.0;
  std::printf("untraced %zu runs  %.1f runs/s\n", untraced_runs, untraced_rps);
  std::printf("traced   %zu runs  %.1f runs/s  (%.2f%% overhead)\n", traced_runs,
              traced_rps, overhead_pct);
  if (overhead_pct > max_overhead_pct()) {
    std::fprintf(stderr, "FAIL: tracing overhead %.2f%% exceeds %.2f%%\n",
                 overhead_pct, max_overhead_pct());
    return 1;
  }

  std::printf("PASS: request tracing free at off, < %.1f%% at failures\n",
              max_overhead_pct());
  return 0;
}
