// micro_dist_overhead — guards the distributed subsystem's two claims:
//
//  1. Correctness: a coordinator + 1 local worker process produces output
//     byte-identical to the in-process `--jobs=1` executor over the same
//     campaign (exits 1 on any divergence).
//  2. Cost: reports the wire overhead — wall-clock ratio distributed/serial
//     for a single worker (the distributed path adds fork, TCP loopback
//     round-trips, JSON encode/decode and journal-equivalent bookkeeping on
//     top of the same simulations) plus protocol bytes per run.
//
// The overhead figure is informational, not asserted: it is dominated by
// per-lease round-trip latency, which shrinks as runs get longer — the
// campaigns worth distributing are exactly the ones where it vanishes.
//
// Environment knobs:
//   DTS_BENCH_TRIALS     rounds (default 5; median reported)
//   DTS_BENCH_FAULT_CAP  faults in the measured campaign (default 64)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/campaign.h"
#include "dist/coordinator.h"
#include "exec/executor.h"
#include "obs/metrics.h"

namespace {

using namespace dts;

constexpr std::uint64_t kSeed = 7;

std::size_t trials() {
  const char* v = std::getenv("DTS_BENCH_TRIALS");
  const std::size_t n = v != nullptr ? std::strtoull(v, nullptr, 10) : 5;
  return n == 0 ? 1 : n;
}

std::size_t fault_cap() {
  const char* v = std::getenv("DTS_BENCH_FAULT_CAP");
  const std::size_t n = v != nullptr ? std::strtoull(v, nullptr, 10) : 64;
  return n == 0 ? 64 : n;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

std::vector<std::string> run_lines(const std::vector<core::RunResult>& runs) {
  std::vector<std::string> out;
  out.reserve(runs.size());
  for (const auto& r : runs) out.push_back(core::serialize_run_line(r));
  return out;
}

}  // namespace

int main() {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("Apache1");
  const auto fns = core::profile_workload(cfg, kSeed);
  const inject::FaultList list =
      inject::FaultList::for_functions(cfg.workload.target_image, fns)
          .sampled(fault_cap());
  std::printf("campaign: Apache1, %zu faults, coordinator + 1 worker process\n",
              list.faults.size());

  std::vector<double> serial_s, dist_s;
  std::uint64_t wire_bytes = 0;
  std::size_t executed = 0;
  for (std::size_t t = 0; t < trials(); ++t) {
    const auto s0 = std::chrono::steady_clock::now();
    exec::ExecOptions eo;
    eo.jobs = 1;
    const exec::CampaignResult serial = exec::CampaignExecutor(eo).run(cfg, list, kSeed);
    const std::chrono::duration<double> se = std::chrono::steady_clock::now() - s0;

    obs::MetricsRegistry metrics;
    dist::DistOptions d;
    d.spawn_workers = 1;
    d.metrics = &metrics;
    const auto d0 = std::chrono::steady_clock::now();
    dist::Coordinator coordinator(cfg, list, kSeed, d);
    const exec::CampaignResult distributed = coordinator.run();
    const std::chrono::duration<double> de = std::chrono::steady_clock::now() - d0;

    if (run_lines(distributed.runs) != run_lines(serial.runs)) {
      std::fprintf(stderr,
                   "FAIL: distributed output diverged from the serial baseline\n");
      return 1;
    }
    serial_s.push_back(se.count());
    dist_s.push_back(de.count());
    wire_bytes = metrics.counter("dts_dist_bytes_sent_total").value() +
                 metrics.counter("dts_dist_bytes_received_total").value();
    executed = distributed.executed;
    std::printf("round %2zu/%zu  serial %.3fs  distributed %.3fs (%+.1f%%)\n", t + 1,
                trials(), se.count(), de.count(),
                100.0 * (de.count() / se.count() - 1.0));
  }

  const double s = median(serial_s), d = median(dist_s);
  std::printf("median  serial %.3fs  distributed %.3fs  wire overhead %+.1f%%\n", s, d,
              100.0 * (d / s - 1.0));
  if (executed > 0) {
    std::printf("wire traffic: %llu bytes total, %.0f bytes per executed run\n",
                static_cast<unsigned long long>(wire_bytes),
                static_cast<double>(wire_bytes) / static_cast<double>(executed));
  }
  std::printf("PASS: coordinator + 1 worker byte-identical to --jobs=1\n");
  return 0;
}
