// Ablation: the paper's second testbed. "Additional experiments were
// conducted on a faster 400 MHz Pentium II ... the results for Apache, IIS,
// and SQL Server as stand-alone services and with watchd were essentially
// identical to those on the slower machine."
//
// This harness runs the Apache1 workload stand-alone and with watchd on both
// simulated machines (cpu_scale 1.0 = 100 MHz Pentium, 0.25 = 400 MHz
// Pentium II) and compares the outcome distributions.
#include <cstdio>

#include "paper_common.h"

int main() {
  using namespace dts;
  std::printf("Ablation: 100 MHz vs 400 MHz target machine (Apache1)\n\n");
  std::printf("%-26s %10s", "configuration", "activated");
  for (core::Outcome o : core::kAllOutcomes) std::printf(" %10s", std::string(short_label(o)).c_str());
  std::printf("\n");

  for (const double scale : {1.0, 0.25}) {
    for (const auto kind : {mw::MiddlewareKind::kNone, mw::MiddlewareKind::kWatchd}) {
      core::RunConfig cfg;
      cfg.workload = core::workload_by_name("Apache1");
      cfg.middleware = kind;
      cfg.target_cpu_scale = scale;
      core::CampaignOptions opt;
      opt.seed = dts::bench::bench_seed();
      opt.max_faults = dts::bench::fault_cap();
      std::fprintf(stderr, "[campaign] Apache1 %s @%s ...\n",
                   kind == mw::MiddlewareKind::kNone ? "stand-alone" : "watchd",
                   scale == 1.0 ? "100MHz" : "400MHz");
      const core::WorkloadSetResult set = core::run_workload_set(cfg, opt);
      const core::OutcomeDistribution d = core::distribution_of(set);
      char label[64];
      std::snprintf(label, sizeof label, "%s @ %s",
                    kind == mw::MiddlewareKind::kNone ? "stand-alone" : "watchd3",
                    scale == 1.0 ? "100 MHz" : "400 MHz");
      std::printf("%-26s %10zu", label, d.activated);
      for (core::Outcome o : core::kAllOutcomes) std::printf(" %9.2f%%", d.percent(o));
      std::printf("\n");
    }
  }
  std::printf("\nPaper claim (section 4): outcome distributions are essentially\n"
              "identical on the faster machine — reliability behaviour is driven by\n"
              "fault semantics and protocol timeouts, not raw CPU speed.\n");
  return 0;
}
