// micro_fault_models — guards the fault-model registry's compatibility
// contract (DESIGN §fault) on the seed Apache workload:
//
//   1. Sweep identity: the registry's paper enumerator emits the legacy
//      sweep byte for byte (full sweep and activated-function sweep).
//   2. Campaign identity: the default-model campaign routed through the
//      registry produces run lines byte-identical to the pre-registry
//      pipeline — profile, FaultList::for_functions, executor — executed
//      in-process as the baseline.
//   3. Overhead: the registry path's runs/sec stays within noise of that
//      baseline (generous 20% tolerance, best-of-N retries — enumeration is
//      a few hundred struct pushes against a full campaign's simulation
//      work, so a real regression shows up far above this bar).
//
// All three are hard assertions; the binary exits 1 on violation. The new
// model families are reported (sweep size, runs/sec) but not gated: their
// outcome distributions are the experiment, not the contract.
//
// Environment knobs:
//   DTS_BENCH_TRIALS       timing rounds (default 3)
//   DTS_BENCH_FAULT_CAP    cap faults per campaign (default 0 = full sweep)
//   DTS_BENCH_SEED         campaign seed (default 7)
//   DTS_BENCH_METRICS_OUT  export the campaign-metrics registry at exit
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "paper_common.h"
#include "core/campaign.h"
#include "exec/executor.h"
#include "fault/model.h"
#include "inject/fault_list.h"

namespace {

using namespace dts;

std::size_t trials() {
  const char* v = std::getenv("DTS_BENCH_TRIALS");
  const std::size_t n = v != nullptr ? std::strtoull(v, nullptr, 10) : 3;
  return n == 0 ? 1 : n;
}

core::RunConfig apache_config() {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("Apache1");
  cfg.middleware = mw::MiddlewareKind::kNone;
  return cfg;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

struct Timed {
  std::vector<std::string> run_lines;
  double seconds = 0.0;
};

/// The registry path: run_workload_set with the given model selection.
Timed registry_campaign(const std::string& models) {
  core::CampaignOptions opt;
  opt.seed = bench::bench_seed();
  opt.max_faults = bench::fault_cap();
  opt.metrics = &bench::bench_registry();
  opt.models = models;
  const auto start = std::chrono::steady_clock::now();
  const core::WorkloadSetResult set = core::run_workload_set(apache_config(), opt);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  Timed out;
  out.seconds = elapsed.count();
  out.run_lines.reserve(set.runs.size());
  for (const auto& r : set.runs) out.run_lines.push_back(core::serialize_run_line(r));
  return out;
}

/// The pre-registry pipeline, inlined as the in-process baseline: profiling
/// pass, activated-function fault list, campaign executor.
Timed legacy_campaign() {
  const core::RunConfig cfg = apache_config();
  const auto start = std::chrono::steady_clock::now();
  const auto fns = core::profile_workload(cfg, bench::bench_seed());
  const inject::FaultList list =
      inject::FaultList::for_functions(cfg.workload.target_image, fns)
          .sampled(bench::fault_cap());
  exec::ExecOptions eo;
  eo.jobs = 1;
  const exec::CampaignResult r =
      exec::CampaignExecutor(eo).run(cfg, list, bench::bench_seed());
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  Timed out;
  out.seconds = elapsed.count();
  out.run_lines.reserve(r.runs.size());
  for (const auto& run : r.runs) out.run_lines.push_back(core::serialize_run_line(run));
  return out;
}

}  // namespace

int main() {
  const core::RunConfig cfg = apache_config();
  const std::string& image = cfg.workload.target_image;

  // 1. Sweep identity.
  const auto def = fault::ModelSet::paper_default();
  if (fault::build_sweep(image, def, nullptr, 1).serialize() !=
      inject::FaultList::full_sweep(image).serialize()) {
    std::fprintf(stderr, "FAIL: paper-model full sweep diverged from legacy sweep\n");
    return 1;
  }
  const auto fns = core::profile_workload(cfg, bench::bench_seed());
  if (fault::build_sweep(image, def, &fns, 1).serialize() !=
      inject::FaultList::for_functions(image, fns).serialize()) {
    std::fprintf(stderr, "FAIL: paper-model activated sweep diverged from legacy sweep\n");
    return 1;
  }
  std::printf("paper sweep byte-identical to legacy enumeration: ok\n");

  // 2 + 3. Campaign identity and overhead, measured back to back with
  // alternating order; identity is checked every round, timing on medians.
  const std::size_t n = trials();
  std::vector<double> legacy_times, registry_times;
  std::size_t runs = 0;
  for (std::size_t t = 0; t < n; ++t) {
    Timed legacy, registry;
    if (t % 2 == 0) {
      legacy = legacy_campaign();
      registry = registry_campaign("");
    } else {
      registry = registry_campaign("");
      legacy = legacy_campaign();
    }
    if (registry.run_lines != legacy.run_lines) {
      std::fprintf(stderr,
                   "FAIL: default-model campaign diverged from the legacy pipeline "
                   "in round %zu\n",
                   t + 1);
      return 1;
    }
    runs = legacy.run_lines.size();
    legacy_times.push_back(legacy.seconds);
    registry_times.push_back(registry.seconds);
    std::printf("round %2zu/%zu  legacy %.3fs  registry %.3fs\n", t + 1, n,
                legacy.seconds, registry.seconds);
  }
  const double legacy_s = median(legacy_times);
  const double registry_s = median(registry_times);
  const double rate_legacy = static_cast<double>(runs) / legacy_s;
  const double rate_registry = static_cast<double>(runs) / registry_s;
  std::printf("paper model: %zu runs  legacy %.1f runs/s  registry %.1f runs/s\n", runs,
              rate_legacy, rate_registry);
  if (rate_registry < 0.8 * rate_legacy) {
    std::fprintf(stderr, "FAIL: registry path %.1f runs/s < 80%% of legacy %.1f runs/s\n",
                 rate_registry, rate_legacy);
    return 1;
  }

  // Per-model report (informational): sweep size over the activated
  // functions and end-to-end campaign throughput.
  for (const char* models : {"mutation", "oserror", "temporal"}) {
    std::string error;
    const auto set = fault::ModelSet::parse(models, &error);
    const std::size_t sweep = fault::build_sweep(image, *set, &fns, 1).faults.size();
    const Timed timed = registry_campaign(models);
    std::printf("%-8s sweep %4zu faults  %zu runs  %.1f runs/s\n", models, sweep,
                timed.run_lines.size(),
                static_cast<double>(timed.run_lines.size()) / timed.seconds);
  }

  std::printf("PASS: paper sweep + campaign byte-identical, throughput within noise\n");
  return 0;
}
