// micro_trace_overhead — guards the "near-zero overhead when off" claim of
// the observability layer (DESIGN §obs): a campaign with tracing off must not
// be measurably slower than the plain executor configuration that PR 1
// shipped (same user-visible config: trace off, no metrics sink — the only
// residual per-syscall cost is one sequence-counter increment and a virtual
// on_result call that early-returns).
//
// Three configurations over the identical capped fault list:
//   A  baseline      trace off, no metrics        (PR 1-equivalent config)
//   B  obs-off       trace off, metrics attached  (asserted: B < A * 1.02)
//   C  trace-all     trace all, metrics attached  (informational only)
//
// Measurement: every round times baseline and obs-off strictly back-to-back
// (the pair order alternates so neither systematically runs first; trace-all
// follows the pair), and the asserted statistic is the MEDIAN of the
// per-round paired ratios obs-off/baseline. Adjacent pairing cancels the
// slow load drift of a shared box (both samples see the same machine state)
// and the median tolerates the occasional 30% preemption spike that ruins
// means and the asymmetric luck that ruins per-config minima. Per-config
// minima are still printed as a second opinion. Because the budget is close
// to the residual noise floor, the whole measurement retries up to 3
// attempts and passes if ANY attempt lands under budget — a real regression
// fails all three; only then does the binary exit 1.
//
// Environment knobs:
//   DTS_BENCH_TRIALS     rounds, one paired sample each (default 16)
//   DTS_BENCH_REPS       campaigns summed into one sample (default 1)
//   DTS_BENCH_FAULT_CAP  faults in the measured campaign (default 240 — large
//                        enough that the one-time per-campaign metric handle
//                        registration is amortised out of the comparison)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "obs/metrics.h"

namespace {

using namespace dts;

std::size_t trials() {
  const char* v = std::getenv("DTS_BENCH_TRIALS");
  const std::size_t n = v != nullptr ? std::strtoull(v, nullptr, 10) : 16;
  return n == 0 ? 1 : n;
}

std::size_t reps() {
  const char* v = std::getenv("DTS_BENCH_REPS");
  const std::size_t n = v != nullptr ? std::strtoull(v, nullptr, 10) : 1;
  return n == 0 ? 1 : n;
}

std::size_t fault_cap() {
  const char* v = std::getenv("DTS_BENCH_FAULT_CAP");
  const std::size_t n = v != nullptr ? std::strtoull(v, nullptr, 10) : 240;
  return n == 0 ? 240 : n;
}

double run_campaigns(obs::TraceMode trace, obs::MetricsRegistry* metrics) {
  static bool printed_size = false;
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("IIS");
  core::CampaignOptions opt;
  opt.seed = 7;
  opt.max_faults = fault_cap();
  opt.jobs = 1;
  opt.trace = trace;
  opt.metrics = metrics;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps(); ++r) {
    const auto set = core::run_workload_set(cfg, opt);
    if (set.runs.empty()) {
      std::fprintf(stderr, "campaign produced no runs\n");
      std::exit(2);
    }
    if (!printed_size) {
      printed_size = true;
      std::printf("campaign: IIS, %zu runs per campaign, %zu rep(s) per sample\n",
                  set.runs.size(), reps());
    }
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// One full measurement: n paired rounds, returns the median paired overhead.
double measure(std::size_t n) {
  double best_a = 1e100, best_b = 1e100, best_c = 1e100;
  std::vector<double> off_ratios, all_ratios;
  for (std::size_t t = 0; t < n; ++t) {
    // Fresh registries per sample: registry size must not grow across rounds.
    obs::MetricsRegistry reg_b, reg_c;
    double a = 0.0, b = 0.0;
    // The asserted pair runs strictly back-to-back, order alternating so
    // neither config systematically absorbs warm-up or runs first.
    if (t % 2 == 0) {
      a = run_campaigns(obs::TraceMode::kOff, nullptr);
      b = run_campaigns(obs::TraceMode::kOff, &reg_b);
    } else {
      b = run_campaigns(obs::TraceMode::kOff, &reg_b);
      a = run_campaigns(obs::TraceMode::kOff, nullptr);
    }
    const double c = run_campaigns(obs::TraceMode::kAll, &reg_c);
    best_a = std::min(best_a, a);
    best_b = std::min(best_b, b);
    best_c = std::min(best_c, c);
    off_ratios.push_back(b / a);
    all_ratios.push_back(c / a);
    std::printf("round %2zu/%zu  baseline %.3fs  obs-off %.3fs (%+.2f%%)  "
                "trace-all %.3fs (%+.2f%%)\n",
                t + 1, n, a, b, 100.0 * (b / a - 1.0), c, 100.0 * (c / a - 1.0));
  }
  const double off_overhead = median(off_ratios) - 1.0;
  const double all_overhead = median(all_ratios) - 1.0;
  std::printf("min-of-%zu   baseline %.3fs  obs-off %.3fs (%+.2f%%)  "
              "trace-all %.3fs (%+.2f%%)\n",
              n, best_a, best_b, 100.0 * (best_b / best_a - 1.0), best_c,
              100.0 * (best_c / best_a - 1.0));
  std::printf("median-of-%zu paired ratios  obs-off %+.2f%%  trace-all %+.2f%%\n",
              n, 100.0 * off_overhead, 100.0 * all_overhead);
  return off_overhead;
}

}  // namespace

int main() {
  constexpr int kAttempts = 3;
  constexpr double kBudget = 0.02;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    std::printf("--- attempt %d/%d ---\n", attempt, kAttempts);
    const double off_overhead = measure(trials());
    if (off_overhead < kBudget) {
      std::printf("PASS: tracing-off overhead %.2f%% within the 2%% budget\n",
                  100.0 * off_overhead);
      return 0;
    }
    std::printf("attempt %d over budget (%.2f%%)%s\n", attempt,
                100.0 * off_overhead,
                attempt < kAttempts ? ", retrying" : "");
  }
  std::printf("FAIL: tracing-off overhead exceeded the 2%% budget in all %d attempts\n",
              kAttempts);
  return 1;
}
