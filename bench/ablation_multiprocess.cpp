// Ablation: Apache's default multi-child pool vs the paper's single-child
// pin (§4.1): "By default, Apache spawns multiple child processes. Since the
// tool only targets one process for injection, if one of the other child
// processes picks up the request, then injected faults may not be activated
// in a reproducible manner. Configuring Apache for only one child process
// guarantees that the same child process will pick up the request each time."
//
// This harness quantifies that: for the Apache2 workload it runs each fault
// under two different campaign seeds and counts outcome disagreements, with
// one worker and with a three-worker pool. Expected: zero disagreement with
// one child; a visible disagreement rate with the pool (whichever child wins
// the accept race determines whether the armed invocation count lines up).
#include <cstdio>

#include "paper_common.h"

int main() {
  using namespace dts;
  std::printf("Ablation: Apache worker-pool size vs fault-activation reproducibility\n\n");
  std::printf("%-12s %10s %12s %14s %16s\n", "children", "faults", "activated@s1",
              "activated@s2", "outcome diffs");

  for (const int children : {1, 3}) {
    core::RunConfig base;
    base.workload = core::workload_by_name("Apache2");
    base.apache.max_children = children;
    base.target_jitter = 0.05;  // scheduling noise: the accept race is real
    core::CampaignOptions opt;
    opt.max_faults = dts::bench::fault_cap() != 0 ? dts::bench::fault_cap() : 0;

    opt.seed = 1001;
    std::fprintf(stderr, "[campaign] Apache2 children=%d seed=1001 ...\n", children);
    const auto s1 = core::run_workload_set(base, opt);
    opt.seed = 2002;
    std::fprintf(stderr, "[campaign] Apache2 children=%d seed=2002 ...\n", children);
    const auto s2 = core::run_workload_set(base, opt);

    std::size_t diffs = 0;
    const std::size_t n = std::min(s1.runs.size(), s2.runs.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (s1.runs[i].fault.id() != s2.runs[i].fault.id()) continue;
      if (s1.runs[i].activated != s2.runs[i].activated ||
          s1.runs[i].outcome != s2.runs[i].outcome) {
        ++diffs;
      }
    }
    std::printf("%-12d %10zu %12zu %14zu %16zu\n", children, n, s1.activated_faults(),
                s2.activated_faults(), diffs);
  }
  std::printf("\nPaper rationale (section 4.1): the single-child configuration makes the\n"
              "same worker serve every request, so a fault list replays identically;\n"
              "with a pool, accept races reroute requests and activation drifts.\n");
  return 0;
}
