// Ablation: watchd with application-level heartbeats (an NT-SwiFT capability
// the paper's default configuration did not use).
//
// The residual failures shared by MSCS and default watchd are HANGS: the
// service process stays alive (the SCM says Running) but stops answering, so
// neither polling-IsAlive nor the process death-watch ever fires. A port
// heartbeat converts those hangs into detected failures and restarts.
//
// This harness compares IIS under plain Watchd3 against Watchd3+heartbeat.
// Expected: the failure-with-no-response class shrinks toward zero and
// reappears as restart outcomes; wrong-response loops (poisoned content
// cache) remain, because the service still answers the probe.
#include <cstdio>

#include "paper_common.h"

int main() {
  using namespace dts;
  std::vector<core::WorkloadSetResult> sets;
  for (const bool heartbeat : {false, true}) {
    core::RunConfig cfg;
    cfg.workload = core::workload_by_name("IIS");
    cfg.middleware = mw::MiddlewareKind::kWatchd;
    cfg.watchd.heartbeat = heartbeat;
    core::CampaignOptions opt;
    opt.seed = dts::bench::bench_seed();
    opt.max_faults = dts::bench::fault_cap();
    std::fprintf(stderr, "[campaign] IIS/Watchd3 heartbeat=%d ...\n", heartbeat ? 1 : 0);
    sets.push_back(core::run_workload_set(cfg, opt));
  }

  std::printf("Ablation: watchd heartbeat (IIS workload)\n");
  std::printf("%-26s %10s", "configuration", "activated");
  for (core::Outcome o : core::kAllOutcomes) std::printf(" %10s", std::string(short_label(o)).c_str());
  std::printf(" %10s %10s\n", "Fail(resp)", "Fail(none)");
  const char* labels[] = {"Watchd3 (paper default)", "Watchd3 + heartbeat"};
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const core::OutcomeDistribution d = core::distribution_of(sets[i]);
    std::printf("%-26s %10zu", labels[i], d.activated);
    for (core::Outcome o : core::kAllOutcomes) std::printf(" %9.2f%%", d.percent(o));
    std::printf(" %10zu %10zu\n", sets[i].failures_with_response(),
                sets[i].failures_without_response());
  }
  std::printf("\nPaper connection (section 5): 'The improvement may target ... the fault\n"
              "tolerance middleware' — this is the next watchd iteration the paper's\n"
              "methodology would have produced.\n");
  return 0;
}
