// Reproduces paper Figure 3: Apache (Apache1+Apache2 combined, weighted by
// activated faults) compared to IIS, per middleware configuration.
//
// Expected shape (paper §4.2): IIS shows roughly twice Apache's failure
// percentage as a stand-alone service and with MSCS; under watchd both are
// low and the gap narrows (paper: 7.60% vs 5.80%).
#include <cstdio>

#include "paper_common.h"

int main() {
  using dts::mw::MiddlewareKind;
  std::vector<dts::core::WorkloadSetResult> sets;
  for (const char* w : {"Apache1", "Apache2", "IIS"}) {
    sets.push_back(dts::bench::run_set(w, MiddlewareKind::kNone));
    sets.push_back(dts::bench::run_set(w, MiddlewareKind::kMscs));
    sets.push_back(dts::bench::run_set(w, MiddlewareKind::kWatchd));
  }
  std::fputs(dts::core::fig3_apache_vs_iis(sets).c_str(), stdout);
  std::printf("\nPaper reference: stand-alone 20.58%% (Apache) vs 41.90%% (IIS) failures;\n"
              "with watchd 5.80%% vs 7.60%%.\n");
  return 0;
}
