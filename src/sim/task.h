// Coroutine machinery for simulated threads of execution.
//
// A simulated NT thread runs as a C++20 coroutine of type Task. Blocking
// syscalls suspend the coroutine; the kernel resumes it — always via the
// simulation event queue, never inline — through a WakeToken. WakeTokens make
// it safe to destroy a whole simulated process (crash semantics) while its
// threads are blocked: killing marks each token dead, and any already-queued
// resume event sees the flag and does nothing.
#pragma once

#include <coroutine>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "sim/simulation.h"

namespace dts::sim {

/// Why a blocked coroutine was woken.
enum class WakeReason : int {
  kSignaled = 0,   // the awaited condition became true
  kTimeout = 1,    // the wait's deadline passed first
  kAbandoned = 2,  // the awaited object was destroyed / the wait was cancelled
};

/// One-shot wake channel shared between a blocked coroutine, the kernel
/// object it waits on, and any timeout event racing against the signal.
struct WakeToken {
  std::coroutine_handle<> handle{};
  bool fired = false;  // a wake has been accepted; later wakes are ignored
  bool dead = false;   // coroutine destroyed; never resume
  WakeReason reason = WakeReason::kSignaled;
};

using WakePtr = std::shared_ptr<WakeToken>;

/// Delivers a wake to `tok` (first wake wins). The actual resume happens on
/// the event queue, so callers may hold kernel locks / iterate waiter lists.
inline void wake(Simulation& sim, const WakePtr& tok, WakeReason reason) {
  if (!tok || tok->fired || tok->dead) return;
  tok->fired = true;
  tok->reason = reason;
  sim.schedule(Duration{}, [tok] {
    if (!tok->dead && tok->handle) tok->handle.resume();
  });
}

/// Schedules a wake for `tok` after `d` of simulated time.
inline void wake_later(Simulation& sim, const WakePtr& tok, Duration d, WakeReason reason) {
  sim.schedule(d, [&sim, tok, reason] { wake(sim, tok, reason); });
}

/// Awaitable that suspends the current coroutine until its token is woken.
/// The caller creates the token, registers it wherever the wake will come
/// from (waiter list, timer, ...), then `co_await WaitOn{tok}`.
class WaitOn {
 public:
  explicit WaitOn(WakePtr tok) : tok_(std::move(tok)) {}

  bool await_ready() const noexcept { return tok_->fired; }
  void await_suspend(std::coroutine_handle<> h) noexcept { tok_->handle = h; }
  WakeReason await_resume() const noexcept { return tok_->reason; }

 private:
  WakePtr tok_;
};

/// Fire-and-forget coroutine representing a simulated thread body. Owned by
/// the simulated Thread object; destroying the Task while suspended kills the
/// thread (stack unwinding runs destructors of locals in every frame).
class Task {
 public:
  struct promise_type {
    std::function<void(std::exception_ptr)> on_complete;
    std::exception_ptr error;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        auto& p = h.promise();
        // The callback runs while this frame sits at its final suspend
        // point; it must defer any destruction of the frame (our Process
        // reaps exited threads via a zero-delay event).
        if (p.on_complete) p.on_complete(p.error);
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  Task() noexcept = default;
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return h_ && h_.done(); }

  /// Registers a completion callback (invoked with the escaped exception, or
  /// nullptr on clean return). Must be set before start().
  void on_complete(std::function<void(std::exception_ptr)> fn) {
    h_.promise().on_complete = std::move(fn);
  }

  /// Schedules the first resume on the simulation queue.
  void start(Simulation& sim) {
    auto h = h_;
    sim.schedule(Duration{}, [h] {
      if (h && !h.done()) h.resume();
    });
  }

  /// Destroys the coroutine frame. The coroutine must be suspended (it is,
  /// whenever control is outside it — the simulator is single-threaded).
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  /// Releases ownership without destroying (used by Process teardown when the
  /// frame is the one currently executing and must be reaped later).
  std::coroutine_handle<promise_type> release() { return std::exchange(h_, {}); }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

/// Awaitable sub-coroutine: a helper the thread body co_awaits. Lazily
/// started; completion resumes the awaiting frame by symmetric transfer.
/// Exceptions propagate to the awaiter. Destroying an CoTask that is still
/// suspended destroys its frame (and transitively any CoTasks it owns).
template <typename T>
class [[nodiscard]] CoTask {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;
    std::optional<T> value;
    std::exception_ptr error;

    CoTask get_return_object() {
      return CoTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
    void unhandled_exception() { error = std::current_exception(); }
  };

  CoTask(CoTask&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  CoTask& operator=(CoTask&&) = delete;
  ~CoTask() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    h_.promise().continuation = awaiter;
    return h_;  // symmetric transfer into the child
  }
  T await_resume() {
    auto& p = h_.promise();
    if (p.error) std::rethrow_exception(p.error);
    return std::move(*p.value);
  }

 private:
  explicit CoTask(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

/// void specialization of CoTask.
template <>
class [[nodiscard]] CoTask<void> {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;
    std::exception_ptr error;

    CoTask get_return_object() {
      return CoTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  CoTask(CoTask&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  CoTask& operator=(CoTask&&) = delete;
  ~CoTask() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    h_.promise().continuation = awaiter;
    return h_;
  }
  void await_resume() {
    if (h_.promise().error) std::rethrow_exception(h_.promise().error);
  }

 private:
  explicit CoTask(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

}  // namespace dts::sim
