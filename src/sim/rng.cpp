#include "sim/rng.h"

namespace dts::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

void Rng::reseed(std::uint64_t seed, std::uint64_t replay_draws) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
  draws_ = 0;
  for (std::uint64_t i = 0; i < replay_draws; ++i) next();
}

std::uint64_t Rng::next() {
  ++draws_;
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span + 1) % span;
  std::uint64_t v = next();
  while (v > limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::split(std::uint64_t label) {
  return Rng{mix(next(), label)};
}

std::uint64_t Rng::hash(std::string_view s) {
  // FNV-1a, then one splitmix64 finalization round for diffusion.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  std::uint64_t x = h;
  return splitmix64(x);
}

std::uint64_t Rng::mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ rotl(b, 32) ^ 0xA0761D6478BD642FULL;
  return splitmix64(x);
}

}  // namespace dts::sim
