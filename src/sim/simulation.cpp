#include "sim/simulation.h"

#include <utility>

namespace dts::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

void Simulation::schedule(Duration delay, std::function<void()> fn) {
  schedule_at(now_ + (delay.is_negative() ? Duration{} : delay), std::move(fn));
}

void Simulation::schedule_at(TimePoint at, std::function<void()> fn) {
  if (at < now_) at = now_;
  queue_.push(at, std::move(fn));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  TimePoint at;
  auto fn = queue_.pop(&at);
  now_ = at;
  ++events_processed_;
  if (events_processed_ > event_budget_) throw SimBudgetExhausted{};
  fn();
  return true;
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulation::run_until(TimePoint t) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= t) {
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace dts::sim
