// Deterministic pseudo-random number generation for the simulator.
//
// xoshiro256** by Blackman & Vigna: fast, high quality, and trivially
// seedable — we need bit-for-bit reproducible runs across platforms, so we
// do not use std::mt19937 whose distributions are not portable.
//
// Snapshot support (src/snap/): the generator's complete state is the four
// state words plus the draw cursor — there is no hidden global state (no
// static engines, no thread-local caches; hash()/mix() are pure functions).
// cursor()/reseed() let a forked run swap in its own seed and fast-forward
// to the exact draw position the snapshotted prefix had reached.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace dts::sim {

class Rng {
 public:
  /// Seeds the generator via splitmix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Creates an independent generator derived from this one's stream and a
  /// caller-supplied label, so subsystems cannot perturb each other's draws.
  Rng split(std::uint64_t label);

  /// Number of raw next() calls made since construction or the last
  /// reseed(). Counts *raw* draws, not API calls: uniform() uses rejection
  /// sampling and may burn several next() values per call, and replaying the
  /// cursor must replay exactly those.
  std::uint64_t cursor() const { return draws_; }

  /// Re-initializes from `seed` and replays `replay_draws` raw next() calls,
  /// leaving the generator exactly where a fresh Rng{seed} would be after
  /// that many draws. Snapshot restore for a different seed stream.
  void reseed(std::uint64_t seed, std::uint64_t replay_draws = 0);

  /// The raw state words (with the cursor, the generator's entire state) —
  /// what snapshot digests fold in.
  const std::array<std::uint64_t, 4>& state() const { return s_; }

  /// Stable 64-bit hash of a string, usable as a seed label.
  static std::uint64_t hash(std::string_view s);

  /// Mixes two seed values into one.
  static std::uint64_t mix(std::uint64_t a, std::uint64_t b);

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t draws_ = 0;
};

}  // namespace dts::sim
