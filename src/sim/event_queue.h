// Priority queue of timed simulation events.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.h"

namespace dts::sim {

/// Timed callback queue. Ties are broken by insertion order so that
/// same-instant events run FIFO — required for deterministic replay.
///
/// The heap is an explicit vector (std::push_heap/pop_heap — the exact
/// algorithm std::priority_queue wraps, so pop order is unchanged) rather
/// than std::priority_queue, whose container is inaccessible: snapshots
/// (src/snap/) must capture and restore the pending-event set. A Snapshot
/// copies the std::function callbacks, which is a shallow copy of their
/// closures — restoring one is only meaningful within the world the capture
/// came from (cross-world resume uses process-level fork instead).
class EventQueue {
 public:
  using Callback = std::function<void()>;

  struct Event {
    TimePoint at;
    std::uint64_t seq = 0;
    Callback fn;
  };

  struct Snapshot {
    std::vector<Event> heap;  // raw heap array, not sorted
    std::uint64_t next_seq = 0;
  };

  /// Enqueues `fn` to run at time `at`. Returns a unique event id.
  std::uint64_t push(TimePoint at, Callback fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  TimePoint next_time() const;

  /// Removes and returns the earliest event's callback. Requires !empty().
  Callback pop(TimePoint* at = nullptr);

  void clear();

  Snapshot capture() const { return Snapshot{heap_, next_seq_}; }
  void restore(const Snapshot& s) {
    heap_ = s.heap;
    next_seq_ = s.next_seq;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dts::sim
