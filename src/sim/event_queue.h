// Priority queue of timed simulation events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace dts::sim {

/// Timed callback queue. Ties are broken by insertion order so that
/// same-instant events run FIFO — required for deterministic replay.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Enqueues `fn` to run at time `at`. Returns a unique event id.
  std::uint64_t push(TimePoint at, Callback fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  TimePoint next_time() const;

  /// Removes and returns the earliest event's callback. Requires !empty().
  Callback pop(TimePoint* at = nullptr);

  void clear();

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dts::sim
