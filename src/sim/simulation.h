// The discrete-event simulation kernel.
//
// A Simulation owns the virtual clock, the event queue, and the root random
// stream. All other subsystems (the simulated NT machines, the network, the
// fault injector) schedule work through it. One fault-injection run = one
// Simulation instance, so runs cannot contaminate each other.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace dts::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 0);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedules `fn` to run `delay` from now (delay may be zero).
  void schedule(Duration delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `at` (clamped to now if in the past).
  void schedule_at(TimePoint at, std::function<void()> fn);

  /// Runs a single event. Returns false if the queue was empty.
  bool step();

  /// Runs until the queue drains, `stop()` is called, or the event budget
  /// (a runaway-loop backstop) is exhausted.
  void run();

  /// Runs events with time <= t, then advances the clock to exactly t.
  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(now_ + d); }

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const { return queue_.size(); }

  /// Maximum number of events run() will process before throwing
  /// SimBudgetExhausted; guards against accidental infinite event loops.
  void set_event_budget(std::uint64_t budget) { event_budget_ = budget; }

 private:
  TimePoint now_;
  EventQueue queue_;
  Rng rng_;
  bool stopped_ = false;
  std::uint64_t events_processed_ = 0;
  std::uint64_t event_budget_ = 50'000'000;
};

/// Thrown when a simulation exceeds its event budget.
class SimBudgetExhausted : public std::runtime_error {
 public:
  SimBudgetExhausted() : std::runtime_error("simulation event budget exhausted") {}
};

}  // namespace dts::sim
