// The discrete-event simulation kernel.
//
// A Simulation owns the virtual clock, the event queue, and the root random
// stream. All other subsystems (the simulated NT machines, the network, the
// fault injector) schedule work through it. One fault-injection run = one
// Simulation instance, so runs cannot contaminate each other.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace dts::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 0);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Complete value state of the kernel: clock, pending events, RNG (state +
  /// cursor) and counters. Captured/restored by the snapshot subsystem
  /// (src/snap/); the event-queue caveat in event_queue.h applies.
  struct Snapshot {
    TimePoint now;
    EventQueue::Snapshot queue;
    Rng rng{0};
    std::uint64_t rng_cursor = 0;
    bool stopped = false;
    std::uint64_t events_processed = 0;
    std::uint64_t semantic_rng_draws = 0;
  };

  Snapshot capture() const {
    return Snapshot{now_,     queue_.capture(),  rng_, rng_.cursor(),
                    stopped_, events_processed_, semantic_rng_draws_};
  }
  void restore(const Snapshot& s) {
    now_ = s.now;
    queue_.restore(s.queue);
    rng_ = s.rng;
    stopped_ = s.stopped;
    events_processed_ = s.events_processed;
    semantic_rng_draws_ = s.semantic_rng_draws;
  }

  /// Called by simulated kernel code whenever a root-RNG draw's *value*
  /// escapes into machine state (e.g. GetTempFileName's unique suffix). A
  /// golden-prefix fork is only valid for a different per-fault seed while
  /// this count is zero: the prefix trajectory is seed-invariant, but an
  /// escaped draw value is not. The fork runner checks this at every
  /// checkpoint and falls back to full runs once it goes positive.
  void note_semantic_rng_draw() { ++semantic_rng_draws_; }
  std::uint64_t semantic_rng_draws() const { return semantic_rng_draws_; }

  /// Schedules `fn` to run `delay` from now (delay may be zero).
  void schedule(Duration delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `at` (clamped to now if in the past).
  void schedule_at(TimePoint at, std::function<void()> fn);

  /// Runs a single event. Returns false if the queue was empty.
  bool step();

  /// Runs until the queue drains, `stop()` is called, or the event budget
  /// (a runaway-loop backstop) is exhausted.
  void run();

  /// Runs events with time <= t, then advances the clock to exactly t.
  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(now_ + d); }

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const { return queue_.size(); }

  /// Maximum number of events run() will process before throwing
  /// SimBudgetExhausted; guards against accidental infinite event loops.
  void set_event_budget(std::uint64_t budget) { event_budget_ = budget; }

 private:
  TimePoint now_;
  EventQueue queue_;
  Rng rng_;
  bool stopped_ = false;
  std::uint64_t events_processed_ = 0;
  std::uint64_t event_budget_ = 50'000'000;
  std::uint64_t semantic_rng_draws_ = 0;
};

/// Thrown when a simulation exceeds its event budget.
class SimBudgetExhausted : public std::runtime_error {
 public:
  SimBudgetExhausted() : std::runtime_error("simulation event budget exhausted") {}
};

}  // namespace dts::sim
