#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dts::sim {

std::uint64_t EventQueue::push(TimePoint at, Callback fn) {
  const std::uint64_t id = next_seq_++;
  heap_.push_back(Event{at, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return id;
}

TimePoint EventQueue::next_time() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty queue");
  return heap_.front().at;
}

EventQueue::Callback EventQueue::pop(TimePoint* at) {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  if (at != nullptr) *at = heap_.back().at;
  Callback fn = std::move(heap_.back().fn);
  heap_.pop_back();
  return fn;
}

void EventQueue::clear() {
  heap_.clear();
}

}  // namespace dts::sim
