#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace dts::sim {

std::uint64_t EventQueue::push(TimePoint at, Callback fn) {
  const std::uint64_t id = next_seq_++;
  heap_.push(Event{at, id, std::move(fn)});
  return id;
}

TimePoint EventQueue::next_time() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty queue");
  return heap_.top().at;
}

EventQueue::Callback EventQueue::pop(TimePoint* at) {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
  // priority_queue::top() is const; the callback must be moved out, so we
  // const_cast the owned element just before popping it.
  Event& top = const_cast<Event&>(heap_.top());
  if (at != nullptr) *at = top.at;
  Callback fn = std::move(top.fn);
  heap_.pop();
  return fn;
}

void EventQueue::clear() {
  heap_ = {};
}

}  // namespace dts::sim
