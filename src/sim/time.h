// Virtual time for the discrete-event simulator.
//
// All simulated clocks are integer microsecond counts. Wall-clock time never
// enters the simulation, which is what makes every fault-injection run
// exactly reproducible.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace dts::sim {

/// A span of simulated time. Internally a signed microsecond count.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration micros(std::int64_t v) { return Duration{v}; }
  static constexpr Duration millis(std::int64_t v) { return Duration{v * 1000}; }
  static constexpr Duration seconds(std::int64_t v) { return Duration{v * 1000000}; }

  /// Fractional seconds, rounded to the microsecond.
  static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5))};
  }

  constexpr std::int64_t count_micros() const { return us_; }
  constexpr std::int64_t count_millis() const { return us_ / 1000; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr bool is_zero() const { return us_ == 0; }
  constexpr bool is_negative() const { return us_ < 0; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.us_ + b.us_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.us_ - b.us_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.us_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return a * k; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.us_ / k}; }
  constexpr Duration& operator+=(Duration b) { us_ += b.us_; return *this; }
  constexpr Duration& operator-=(Duration b) { us_ -= b.us_; return *this; }

  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// An instant on the simulation clock. Time zero is simulation start.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint from_micros(std::int64_t v) { return TimePoint{v}; }
  constexpr std::int64_t count_micros() const { return us_; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.us_ + d.count_micros()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::micros(a.us_ - b.us_);
  }
  constexpr TimePoint& operator+=(Duration d) { us_ += d.count_micros(); return *this; }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

 private:
  constexpr explicit TimePoint(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// Formats a duration as a human-readable string, e.g. "14.21s" or "350ms".
inline std::string to_string(Duration d) {
  const std::int64_t us = d.count_micros();
  char buf[48];
  if (us >= 1000000 || us <= -1000000) {
    std::snprintf(buf, sizeof buf, "%.2fs", d.to_seconds());
  } else if (us >= 1000 || us <= -1000) {
    std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(us / 1000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(us));
  }
  return buf;
}

inline std::string to_string(TimePoint t) { return to_string(t - TimePoint{}); }

}  // namespace dts::sim
