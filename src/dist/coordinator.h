// The control-machine half of a distributed campaign (the paper's DTS
// architecture, §3: management on the control machine, fault injection on
// target machines — here scaled to a fleet of worker processes).
//
// The coordinator owns the fault list and the run journal. It leases
// contiguous shards of the remaining sweep to connected workers, tracks
// per-worker liveness via streamed results and heartbeats, expires leases
// whose worker went silent, and returns the unfinished remainder of a lost
// lease to the queue for reassignment. Completed runs are journalled exactly
// as the in-process executor journals them (same key, same record schema),
// so a distributed journal resumes an in-process campaign and vice versa;
// at-most-once output is enforced the same way — the first record for a
// fault index wins, later duplicates are dropped.
//
// Output is merged through exec::merge_completed_runs, the same serial
// replay of the paper-§4 skip-uncalled rule the in-process executor uses, so
// a distributed campaign's results are byte-identical to `--jobs=1` no
// matter how many workers ran it, which ones crashed, or how leases were
// scheduled.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/campaign.h"
#include "exec/executor.h"
#include "exec/progress.h"
#include "inject/fault_list.h"
#include "obs/metrics.h"
#include "dist/worker.h"

namespace dts::obs::fleet {
class FleetEventLog;
}  // namespace dts::obs::fleet

namespace dts::dist {

struct DistOptions {
  /// Listen endpoint; port 0 binds an ephemeral port (read back via
  /// Coordinator::port()).
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;

  /// Local worker processes to spawn (fork + run_worker against the
  /// loopback). 0 = none: the campaign waits for external workers
  /// (`ntdts worker --connect=host:port`).
  int spawn_workers = 0;

  /// Faults per lease. 0 = auto (scales with the sweep size).
  std::size_t lease_size = 0;

  /// A leased worker that streams neither results nor heartbeats for this
  /// long is declared dead: its lease expires and the unfinished remainder
  /// is reassigned.
  int lease_timeout_ms = 30000;

  /// Per-message write deadline towards a worker.
  int io_timeout_ms = 10000;

  /// Apply the paper-§4 skip-uncalled rule (campaign sweeps). Off for
  /// explicit user-supplied fault lists, as in the in-process executor.
  bool skip_uncalled = true;

  /// Run journal (same format and key as exec::RunJournal — distributed and
  /// in-process campaigns resume each other's journals). Empty = none.
  std::string journal_path;
  bool resume = false;

  /// dts_dist_* counters and gauges land here; with telemetry enabled,
  /// worker-shipped metrics are merged here too (worker="<id>" labels).
  /// Null = no metrics.
  obs::MetricsRegistry* metrics = nullptr;

  /// Telemetry cadence advertised to workers in WELCOME, in milliseconds.
  /// 0 disables telemetry shipping; forced to 0 when metrics is null (there
  /// is nowhere to merge snapshots into).
  std::uint64_t telemetry_ms = 1000;

  /// Structured fleet event log: worker connect/disconnect, lease issue/
  /// expiry/reassignment. Must outlive run(). Null = off.
  obs::fleet::FleetEventLog* events = nullptr;

  /// Live status board for the HTTP endpoint (/status, /runs). Must outlive
  /// run(). Null = off.
  obs::fleet::StatusBoard* status = nullptr;

  /// Stall detector fed every streamed result's wall time. Must outlive
  /// run(). Null = off.
  obs::fleet::StallDetector* stall = nullptr;

  std::function<void(const exec::ProgressSnapshot&)> on_progress;

  /// Fired by run_workload_set_distributed once the listener is bound, with
  /// the actual port — lets the CLI print a connect line before blocking.
  std::function<void(std::uint16_t)> on_listen;

  /// Template for spawned local workers (host/port are filled in).
  WorkerOptions worker;
};

/// One campaign's coordinator. Binds its listener on construction (throws
/// std::runtime_error when the endpoint is unavailable); run() serves until
/// every fault is accounted for.
class Coordinator {
 public:
  Coordinator(core::RunConfig base, inject::FaultList list, std::uint64_t seed,
              DistOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// The bound listen port (useful with listen_port = 0).
  std::uint16_t port() const;

  /// Serves workers until the sweep is complete, then merges. Throws
  /// std::runtime_error when the campaign can no longer make progress
  /// (journal conflict, endpoint failure, or every worker lost with the
  /// respawn budget exhausted).
  exec::CampaignResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Forks a local worker process running run_worker(options); the child never
/// returns (it _exit()s with run_worker's code). `close_fd` is closed in the
/// child when >= 0 (the coordinator's listener, so the child does not hold
/// the port). Returns the child pid, or -1 on fork failure.
pid_t spawn_worker_process(const WorkerOptions& options, int close_fd);

/// Distributed twin of core::run_workload_set's exhaustive path: profiles,
/// builds the fault list (or takes the explicit one — executed without the
/// skip-uncalled rule, as in-process), then runs it through a Coordinator.
/// Journal, resume, metrics and progress flow from `options` as usual.
core::WorkloadSetResult run_workload_set_distributed(
    const core::RunConfig& base, const core::CampaignOptions& options,
    DistOptions dist,
    const std::optional<inject::FaultList>& explicit_faults = std::nullopt);

}  // namespace dts::dist
