// The target-machine half of a distributed campaign: connects to a
// coordinator, validates the campaign's identity, then executes leased
// fault-injection runs and streams their records back. Stateless between
// leases — every run builds a fresh simulated world, exactly as in-process
// execution does, and per-run seeds derive from (campaign seed, fault id)
// alone, so a run computes the same bits no matter which process hosts it.
#pragma once

#include <cstdint>
#include <string>

namespace dts::dist {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// Connect deadline per attempt, plus bounded retry (the worker commonly
  /// races the coordinator's listen()).
  int connect_timeout_ms = 5000;
  int connect_retries = 25;

  /// Read/write deadline for every protocol exchange. Also bounds how long
  /// an idle worker waits for its next lease before giving up.
  int io_timeout_ms = 60000;

  /// A heartbeat is sent between runs when this much time passed since the
  /// last message to the coordinator. Runs complete in milliseconds of wall
  /// clock, so between-run heartbeats keep a healthy worker visibly alive.
  int heartbeat_ms = 1000;

  /// Test hook: after streaming this many results, _exit() abruptly —
  /// simulating a worker crash mid-shard (lease reassignment path).
  /// -1 = never.
  int crash_after_runs = -1;
};

/// Runs one worker until the coordinator reports the campaign done.
/// Returns 0 on a completed campaign, 1 on a lost connection or timeout,
/// 2 on a failed handshake / campaign-identity validation; *error describes
/// non-zero exits.
int run_worker(const WorkerOptions& options, std::string* error);

}  // namespace dts::dist
