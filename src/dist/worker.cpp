#include "dist/worker.h"

#include <unistd.h>

#include <chrono>
#include <deque>
#include <map>
#include <optional>

#include "core/config.h"
#include "core/run.h"
#include "dist/protocol.h"
#include "dist/socket.h"
#include "dist/wire.h"
#include "exec/executor.h"
#include "inject/fault.h"
#include "obs/fleet/telemetry.h"
#include "obs/metrics.h"
#include "sim/rng.h"

namespace dts::dist {

namespace {

/// Blocking framed connection: one frame out, one frame in, each under the
/// worker's io deadline.
struct FramedConn {
  Socket sock;
  FrameDecoder decoder;
  int io_timeout_ms = 60000;

  bool write_msg(const std::string& payload) {
    return send_all(sock.fd(), encode_frame(payload), io_timeout_ms);
  }

  /// nullopt on timeout/close/protocol violation, with *why set.
  std::optional<std::string> read_msg(std::string* why) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(io_timeout_ms);
    for (;;) {
      if (auto frame = decoder.next()) return frame;
      if (!decoder.error().empty()) {
        *why = "protocol violation: " + decoder.error();
        return std::nullopt;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      if (left <= 0) {
        *why = "timed out waiting for the coordinator";
        return std::nullopt;
      }
      std::string chunk;
      switch (recv_some(sock.fd(), &chunk, 64 * 1024, static_cast<int>(left))) {
        case RecvStatus::kData:
          decoder.feed(chunk);
          break;
        case RecvStatus::kClosed:
          *why = "coordinator closed the connection";
          return std::nullopt;
        case RecvStatus::kTimeout:
          *why = "timed out waiting for the coordinator";
          return std::nullopt;
        case RecvStatus::kError:
          *why = "read error";
          return std::nullopt;
      }
    }
  }
};

int fail(std::string* error, int code, const std::string& why) {
  if (error != nullptr) *error = why;
  return code;
}

}  // namespace

int run_worker(const WorkerOptions& options, std::string* error) {
  std::string why;
  FramedConn conn;
  conn.io_timeout_ms = options.io_timeout_ms;
  conn.sock = tcp_connect(options.host, options.port, options.connect_timeout_ms,
                          options.connect_retries, &why);
  if (!conn.sock.valid()) return fail(error, 1, why);

  if (!conn.write_msg(encode_hello(Hello{}))) {
    return fail(error, 1, "cannot send hello");
  }
  const auto welcome_line = conn.read_msg(&why);
  if (!welcome_line) return fail(error, 1, why);
  const auto welcome = decode_welcome(*welcome_line);
  if (!welcome) return fail(error, 2, "bad welcome from coordinator");
  if (welcome->proto != kProtocolVersion) {
    conn.write_msg(encode_error("protocol version mismatch"));
    return fail(error, 2,
                "coordinator speaks protocol v" + std::to_string(welcome->proto));
  }

  // Campaign identity validation: reconstruct the exact run configuration
  // from the shipped config text and cross-check it against the explicit
  // identity fields. A worker that cannot reproduce the campaign's
  // configuration must not execute any of its leases.
  auto cfg = core::parse_config(welcome->config, &why);
  if (!cfg) {
    conn.write_msg(encode_error("bad campaign config: " + why));
    return fail(error, 2, "bad campaign config: " + why);
  }
  if (cfg->run.workload.name != welcome->workload ||
      static_cast<int>(cfg->run.middleware) != welcome->middleware ||
      static_cast<int>(cfg->run.watchd_version) != welcome->watchd_version ||
      cfg->campaign.seed != welcome->seed) {
    conn.write_msg(encode_error("campaign identity mismatch"));
    return fail(error, 2, "campaign identity mismatch between config and welcome");
  }

  // Worker-local observability: the same per-run metrics the in-process
  // executor records, shipped to the coordinator as cumulative snapshots
  // when the welcome asked for telemetry. Purely additive — a worker whose
  // frames never arrive still streams byte-identical results.
  obs::MetricsRegistry registry;
  const obs::Labels set_labels = {
      {"workload", cfg->run.workload.name},
      {"middleware", exec::middleware_label(cfg->run)}};
  obs::Histogram& resp_hist = registry.histogram(
      "dts_response_time_seconds", set_labels, obs::response_time_buckets(),
      "client response time per run (seconds)");
  obs::Histogram& wall_hist = registry.histogram(
      "dts_run_wall_seconds", set_labels, obs::wall_time_buckets(),
      "host wall-clock time per executed run (seconds)");
  std::map<core::Outcome, obs::Counter*> outcome_counters;
  for (core::Outcome o : core::kAllOutcomes) {
    obs::Labels run_labels = set_labels;
    run_labels.emplace_back("outcome", std::string(exec::outcome_label(o)));
    outcome_counters[o] =
        &registry.counter("dts_runs_total", run_labels, "executed runs by outcome");
  }

  std::uint64_t failures = 0;
  std::deque<std::string> recent_failures;
  std::uint64_t telemetry_seq = 0;
  const bool telemetry_on = welcome->telemetry_ms > 0;
  auto send_telemetry = [&]() -> bool {
    if (!telemetry_on) return true;
    Telemetry t;
    t.seq = ++telemetry_seq;
    t.metrics = obs::fleet::encode_samples(registry.snapshot());
    t.failures = failures;
    for (std::size_t i = 0; i < recent_failures.size(); ++i) {
      if (i > 0) t.recent_failures += ' ';
      t.recent_failures += recent_failures[i];
    }
    return conn.write_msg(encode_telemetry(t));
  };

  if (!conn.write_msg(encode_ready(Ready{welcome->digest}))) {
    return fail(error, 1, "cannot send ready");
  }

  int runs_streamed = 0;
  auto last_send = std::chrono::steady_clock::now();
  auto last_telemetry = last_send;
  for (;;) {
    const auto line = conn.read_msg(&why);
    if (!line) return fail(error, 1, why);
    const auto type = message_type(*line);
    if (type == MsgType::kDone) {
      // Final snapshot: sent after DONE and before the socket closes, so TCP
      // ordering delivers it ahead of the FIN the coordinator drains to.
      send_telemetry();
      return 0;
    }
    if (type == MsgType::kError) {
      const auto e = decode_error(*line);
      return fail(error, 2, "coordinator error: " + (e ? e->detail : *line));
    }
    if (type != MsgType::kLease) {
      conn.write_msg(encode_error("unexpected message"));
      return fail(error, 2, "unexpected message from coordinator: " + *line);
    }
    const auto lease = decode_lease(*line);
    if (!lease) return fail(error, 2, "bad lease from coordinator");
    if (lease->digest != welcome->digest) {
      // The lease belongs to a different campaign than the one this worker
      // accepted — refuse it rather than corrupt either campaign's results.
      conn.write_msg(encode_error("lease digest does not match accepted campaign"));
      return fail(error, 2, "lease digest mismatch");
    }

    for (std::size_t k = 0; k < lease->indices.size(); ++k) {
      const std::string& fault_id = lease->fault_ids[k];
      const auto spec =
          inject::parse_fault_id(cfg->run.workload.target_image, fault_id);
      if (!spec) {
        conn.write_msg(encode_error("unparseable fault id: " + fault_id));
        return fail(error, 2, "unparseable fault id: " + fault_id);
      }

      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration_cast<std::chrono::milliseconds>(now - last_send)
              .count() >= options.heartbeat_ms) {
        if (!conn.write_msg(encode_heartbeat(Heartbeat{lease->lease_id}))) {
          return fail(error, 1, "cannot send heartbeat");
        }
        last_send = now;
      }
      if (telemetry_on &&
          std::chrono::duration_cast<std::chrono::milliseconds>(now - last_telemetry)
                  .count() >= static_cast<long long>(welcome->telemetry_ms)) {
        if (!send_telemetry()) return fail(error, 1, "cannot send telemetry");
        last_telemetry = now;
        last_send = now;
      }

      // Seed derivation identical to the in-process executor: the result is
      // bit-for-bit what a serial sweep computes for this fault.
      core::RunConfig rc = cfg->run;
      rc.seed = sim::Rng::mix(welcome->seed, sim::Rng::hash(fault_id));
      const auto wall_start = std::chrono::steady_clock::now();
      core::FaultInjectionRun run(rc);
      const core::RunResult r = run.execute(*spec);
      const double wall_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - wall_start)
                                .count();

      WireResult res;
      res.lease_id = lease->lease_id;
      res.index = lease->indices[k];
      res.fault_id = fault_id;
      res.fn_called = run.interceptor().target_function_called();
      res.run_line = core::serialize_run_line(r);
      res.wall_us = static_cast<std::uint64_t>(wall_s * 1e6);
      res.sim_us = static_cast<std::uint64_t>(r.sim_elapsed.count_micros());
      res.requests = encode_requests(r.requests);
      res.detail = r.detail;
      res.trace_digest = run.interceptor().trace_digest();
      const auto& inj_ctx = run.interceptor().injection_context();
      res.call_context = inj_ctx ? inj_ctx->to_string() : "";

      outcome_counters.at(r.outcome)->inc();
      resp_hist.observe(r.response_time.to_seconds());
      wall_hist.observe(wall_s);
      if (r.outcome == core::Outcome::kFailure) {
        ++failures;
        recent_failures.push_back(fault_id);
        if (recent_failures.size() > 8) recent_failures.pop_front();
      }

      if (!conn.write_msg(encode_result(res))) {
        return fail(error, 1, "cannot stream result");
      }
      last_send = std::chrono::steady_clock::now();

      ++runs_streamed;
      if (options.crash_after_runs >= 0 && runs_streamed >= options.crash_after_runs) {
        // Crash simulation for the reassignment tests: no goodbye, no flush —
        // the coordinator sees a mid-shard disconnect.
        _exit(3);
      }
    }

    // Snapshot before asking for more work: the coordinator's fleet view is
    // exact at every lease boundary, not just at shutdown.
    if (!send_telemetry()) return fail(error, 1, "cannot send telemetry");
    last_telemetry = std::chrono::steady_clock::now();

    if (!conn.write_msg(encode_ready(Ready{welcome->digest}))) {
      return fail(error, 1, "cannot send ready");
    }
  }
}

}  // namespace dts::dist
