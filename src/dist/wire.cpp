#include "dist/wire.h"

#include <stdexcept>

namespace dts::dist {

std::string encode_frame(std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::length_error("dist frame payload exceeds " +
                            std::to_string(kMaxFramePayload) + " bytes");
  }
  std::string out = std::to_string(payload.size());
  out += '\n';
  out += payload;
  return out;
}

void FrameDecoder::feed(std::string_view bytes) {
  if (!error_.empty()) return;
  buffer_.append(bytes);
}

std::optional<std::string> FrameDecoder::next() {
  if (!error_.empty()) return std::nullopt;
  const std::size_t nl = buffer_.find('\n');
  if (nl == std::string::npos) {
    // A length prefix is at most 7 digits (kMaxFramePayload fits); anything
    // longer without a newline is not this protocol.
    if (buffer_.size() > 8) error_ = "malformed frame length prefix";
    return std::nullopt;
  }
  if (nl == 0 || nl > 8) {
    error_ = "malformed frame length prefix";
    return std::nullopt;
  }
  std::size_t len = 0;
  for (std::size_t i = 0; i < nl; ++i) {
    const char c = buffer_[i];
    if (c < '0' || c > '9') {
      error_ = "malformed frame length prefix";
      return std::nullopt;
    }
    len = len * 10 + static_cast<std::size_t>(c - '0');
  }
  if (len > kMaxFramePayload) {
    error_ = "oversized frame (" + std::to_string(len) + " bytes)";
    return std::nullopt;
  }
  if (buffer_.size() - nl - 1 < len) return std::nullopt;  // short read
  std::string payload = buffer_.substr(nl + 1, len);
  buffer_.erase(0, nl + 1 + len);
  return payload;
}

}  // namespace dts::dist
