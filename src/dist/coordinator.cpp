#include "dist/coordinator.h"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <iostream>

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/config.h"
#include "dist/protocol.h"
#include "dist/socket.h"
#include "dist/wire.h"
#include "exec/journal.h"
#include "fault/model.h"
#include "forensics/signature.h"
#include "obs/fleet/events.h"
#include "obs/fleet/span.h"
#include "obs/fleet/stall.h"
#include "obs/fleet/status.h"
#include "obs/fleet/telemetry.h"
#include "plan/plan.h"

namespace dts::dist {

namespace {

using Clock = std::chrono::steady_clock;

int ms_between(Clock::time_point from, Clock::time_point to) {
  return static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(to - from).count());
}

// fn -> lowest fault index whose executed run proved the function uncalled;
// the same induction the in-process executor uses (a lease may elide fault i
// only given a proof at index j < i), single-threaded here.
class Proofs {
 public:
  void record(nt::Fn fn, std::size_t index) {
    auto [it, inserted] = proofs_.emplace(fn, index);
    if (!inserted && index < it->second) it->second = index;
  }
  bool proven_before(nt::Fn fn, std::size_t index) const {
    auto it = proofs_.find(fn);
    return it != proofs_.end() && it->second < index;
  }

 private:
  std::map<nt::Fn, std::size_t> proofs_;
};

enum class SlotState : std::uint8_t { kPending, kExecuted, kElided };

struct Slot {
  core::RunResult result;
  bool fn_called = false;
  SlotState state = SlotState::kPending;
};

struct ActiveLease {
  std::uint64_t id = 0;
  std::set<std::size_t> outstanding;  // leased indices with no result yet
};

struct Conn {
  Socket sock;
  FrameDecoder decoder;
  enum class State : std::uint8_t { kAwaitHello, kAwaitReady, kIdle, kLeased };
  State state = State::kAwaitHello;
  int worker_id = 0;
  std::optional<ActiveLease> lease;
  Clock::time_point first_seen;
  Clock::time_point last_seen;
  std::uint64_t runs = 0;
  bool dead = false;  // marked mid-iteration, swept afterwards

  // Latest telemetry summary (protocol v2; zero/empty until a frame lands).
  std::uint64_t telemetry_seq = 0;
  std::uint64_t failures = 0;
  std::string recent_failures;
};

}  // namespace

struct Coordinator::Impl {
  core::RunConfig base;
  inject::FaultList list;
  std::uint64_t seed = 0;
  DistOptions options;

  Listener listener;
  std::uint64_t digest = 0;
  std::string welcome_line;  // identical for every worker; rendered once
  std::string welcome_config;  // serialize_config text, journal v4 header

  std::vector<Slot> slots;
  std::vector<std::string> fault_ids;  // pre-rendered, reused everywhere
  std::deque<std::size_t> pending;     // ascending fault indices awaiting a lease
  Proofs proofs;
  exec::RunJournal journal;
  std::unique_ptr<exec::ProgressTracker> tracker;

  std::vector<std::unique_ptr<Conn>> conns;
  std::uint64_t next_lease_id = 0;
  int next_worker_id = 0;
  std::size_t outstanding_total = 0;  // leased indices with no result yet
  std::size_t executed_fresh = 0;
  std::size_t reused = 0;

  std::vector<pid_t> children;  // spawned local workers not yet reaped
  int respawns_left = 0;

  // dts_dist_* handles (null registry => all null).
  obs::Gauge* workers_live = nullptr;
  obs::Counter* leases_issued = nullptr;
  obs::Counter* leases_expired = nullptr;
  obs::Counter* leases_reassigned = nullptr;
  obs::Counter* bytes_sent = nullptr;
  obs::Counter* bytes_received = nullptr;
  obs::Counter* telemetry_frames = nullptr;

  // --- small helpers ------------------------------------------------------

  bool complete() const { return pending.empty() && outstanding_total == 0; }

  void event(obs::fleet::FleetEventKind kind, int worker_id, std::uint64_t lease_id,
             std::string detail) {
    if (options.events != nullptr) {
      options.events->record(kind, worker_id, lease_id, std::move(detail));
    }
  }

  void progress(bool fresh) {
    const exec::ProgressSnapshot s = tracker->completed(fresh);
    if (options.on_progress) options.on_progress(s);
    if (options.status != nullptr) {
      obs::fleet::CampaignStatus cs;
      cs.done = s.done;
      cs.total = s.total;
      cs.executed = s.executed;
      cs.reused = s.reused;
      cs.elapsed_s = s.elapsed_s;
      cs.runs_per_sec = s.runs_per_sec;
      cs.eta_s = s.eta_s;
      options.status->update_campaign(cs);
    }
  }

  void update_status_workers(Clock::time_point now) {
    if (options.status == nullptr) return;
    std::vector<obs::fleet::WorkerRow> rows;
    rows.reserve(conns.size());
    for (const auto& c : conns) {
      if (c->dead) continue;
      obs::fleet::WorkerRow row;
      row.worker_id = c->worker_id;
      row.runs = c->runs;
      const double secs = ms_between(c->first_seen, now) / 1e3;
      row.runs_per_sec = secs > 0 ? static_cast<double>(c->runs) / secs : 0.0;
      row.lease_id = c->lease ? c->lease->id : 0;
      row.outstanding = c->lease ? c->lease->outstanding.size() : 0;
      row.failures = c->failures;
      row.recent_failures = c->recent_failures;
      rows.push_back(std::move(row));
    }
    options.status->update_workers(std::move(rows));
  }

  void update_live() {
    if (workers_live != nullptr) {
      workers_live->set(static_cast<double>(conns.size()));
    }
  }

  bool send_msg(Conn& c, const std::string& payload) {
    const std::string frame = encode_frame(payload);
    if (!send_all(c.sock.fd(), frame, options.io_timeout_ms)) {
      c.dead = true;
      return false;
    }
    if (bytes_sent != nullptr) bytes_sent->inc(frame.size());
    return true;
  }

  void finish_worker_rate(const Conn& c, Clock::time_point now) {
    if (options.metrics == nullptr) return;
    const double secs = ms_between(c.first_seen, now) / 1e3;
    options.metrics
        ->gauge("dts_dist_worker_runs_per_sec",
                {{"worker", std::to_string(c.worker_id)}},
                "observed fresh-run throughput per distributed worker")
        .set(secs > 0 ? static_cast<double>(c.runs) / secs : 0.0);
  }

  /// Returns a lost lease's unfinished indices to the queue. Leases are cut
  /// from the front of the ascending queue, so the remainder sorts before
  /// everything still pending — push_front keeps the queue ascending.
  void reassign_lease(Conn& c, bool expired) {
    if (!c.lease || c.lease->outstanding.empty()) {
      c.lease.reset();
      return;
    }
    const std::uint64_t lease_id = c.lease->id;
    const std::size_t returned = c.lease->outstanding.size();
    for (auto it = c.lease->outstanding.rbegin(); it != c.lease->outstanding.rend();
         ++it) {
      pending.push_front(*it);
    }
    outstanding_total -= returned;
    c.lease.reset();
    if (leases_reassigned != nullptr) leases_reassigned->inc();
    if (expired && leases_expired != nullptr) leases_expired->inc();
    event(expired ? obs::fleet::FleetEventKind::kLeaseExpired
                  : obs::fleet::FleetEventKind::kLeaseReassigned,
          c.worker_id, lease_id,
          std::to_string(returned) + " unfinished faults returned to the queue");
  }

  /// Leases the next contiguous shard to an idle worker. Faults already
  /// proven uncalled are elided here (the serial sweep would skip them), so
  /// wire time is only spent on faults that need a simulation.
  void try_assign(Conn& c) {
    if (c.state != Conn::State::kIdle || pending.empty()) return;
    const std::size_t shard = options.lease_size > 0
                                  ? options.lease_size
                                  : std::clamp<std::size_t>(slots.size() / 16, 1, 64);
    Lease lease;
    lease.digest = digest;
    ActiveLease active;
    while (!pending.empty() && lease.indices.size() < shard) {
      const std::size_t i = pending.front();
      pending.pop_front();
      if (options.skip_uncalled && proofs.proven_before(list.faults[i].fn, i)) {
        slots[i].state = SlotState::kElided;
        progress(/*fresh=*/false);
        continue;
      }
      lease.indices.push_back(i);
      lease.fault_ids.push_back(fault_ids[i]);
      active.outstanding.insert(i);
    }
    if (lease.indices.empty()) return;  // everything up front elided
    lease.lease_id = active.id = ++next_lease_id;
    c.lease = std::move(active);
    c.state = Conn::State::kLeased;
    outstanding_total += c.lease->outstanding.size();
    if (send_msg(c, encode_lease(lease))) {
      if (leases_issued != nullptr) leases_issued->inc();
      event(obs::fleet::FleetEventKind::kLeaseIssued, c.worker_id, lease.lease_id,
            std::to_string(lease.indices.size()) + " faults");
    }
    // On send failure the conn is marked dead; the sweep reassigns the lease.
  }

  void record_result(Conn& c, const WireResult& r) {
    if (!c.lease || r.lease_id != c.lease->id) return;  // stale, ignore
    if (r.index >= slots.size() || fault_ids[r.index] != r.fault_id) {
      c.dead = true;
      return;
    }
    if (c.lease->outstanding.erase(r.index) == 0) return;  // duplicate
    --outstanding_total;
    ++c.runs;
    if (options.metrics != nullptr) {
      options.metrics
          ->counter("dts_dist_worker_runs_total",
                    {{"worker", std::to_string(c.worker_id)}},
                    "fresh runs streamed back per distributed worker")
          .inc();
    }

    Slot& slot = slots[r.index];
    if (slot.state != SlotState::kPending) return;  // at-most-once: first wins
    if (!core::parse_run_line(base.workload.target_image, r.run_line, &slot.result,
                              nullptr)) {
      c.dead = true;
      return;
    }
    // The run line round-trips the journal fields; the wire additionally
    // carries what results.csv renders but the journal elides.
    slot.result.detail = r.detail;
    slot.result.requests = decode_requests(r.requests);
    slot.result.sim_elapsed = sim::Duration::micros(static_cast<std::int64_t>(r.sim_us));
    slot.fn_called = r.fn_called;
    slot.state = SlotState::kExecuted;
    if (!slot.result.activated && !slot.fn_called) {
      proofs.record(list.faults[r.index].fn, r.index);
    }
    ++executed_fresh;

    // The run's causal name: which campaign, which lease, which fault — the
    // same identifier the worker's journal-v3 twin record would carry.
    const std::string exec_index =
        obs::fleet::ExecutionIndex{digest, r.lease_id, r.index}.to_string();

    if (journal.is_open()) {
      exec::JournalRecord rec;
      rec.index = r.index;
      rec.fault_id = r.fault_id;
      rec.fn_called = r.fn_called;
      rec.run_line = r.run_line;
      rec.wall_us = r.wall_us;
      rec.sim_us = r.sim_us;
      rec.exec_index = exec_index;
      rec.trace_digest = r.trace_digest;
      rec.call_context = r.call_context;
      rec.model = fault::model_annotation(list.faults[r.index]);
      journal.append(rec);
    }

    if (options.stall != nullptr) {
      options.stall->observe(
          plan::StratumKey{list.faults[r.index].fn, list.faults[r.index].type},
          static_cast<double>(r.wall_us) / 1e6, r.fault_id, exec_index);
    }
    if (options.status != nullptr) {
      obs::fleet::RunEntry entry;
      entry.index = r.index;
      entry.fault_id = r.fault_id;
      entry.outcome = std::string(exec::outcome_label(slot.result.outcome));
      entry.wall_us = r.wall_us;
      entry.worker_id = c.worker_id;
      entry.lease_id = r.lease_id;
      entry.exec_index = exec_index;
      options.status->record_run(std::move(entry));
      const forensics::SignatureKey sig_key =
          forensics::signature_of(slot.result, r.call_context);
      obs::fleet::SignatureEntry sig;
      sig.id = forensics::signature_id(sig_key);
      sig.fault_class = sig_key.fault_class;
      sig.call_context = sig_key.call_context;
      sig.outcome = sig_key.outcome;
      sig.span = sig_key.span;
      sig.example_fault = r.fault_id;
      sig.example_xi = exec_index;
      options.status->record_signature(sig);
      if (slot.result.topo) {
        options.status->record_topology(slot.result.topo->tier,
                                        slot.result.topo->user_outcome);
      }
    }
    progress(/*fresh=*/true);
  }

  void record_telemetry(Conn& c, const std::string& line) {
    const auto t = decode_telemetry(line);
    if (!t) {
      c.dead = true;
      return;
    }
    // Frames arrive in order on the connection, but a conn that died and was
    // respawned restarts at seq 1 against an already-advanced worker id —
    // never the case today (worker ids are never reused), so the seq check is
    // pure belt-and-braces against a future transport that reorders.
    if (t->seq <= c.telemetry_seq) return;
    c.telemetry_seq = t->seq;
    c.failures = t->failures;
    c.recent_failures = t->recent_failures;
    if (options.metrics != nullptr) {
      obs::fleet::merge_samples(*options.metrics, c.worker_id,
                                obs::fleet::decode_samples(t->metrics));
    }
    if (telemetry_frames != nullptr) telemetry_frames->inc();
  }

  /// Handles one decoded message; marks the conn dead on protocol violations.
  void handle(Conn& c, const std::string& line) {
    c.last_seen = Clock::now();
    const auto type = message_type(line);
    if (!type) {
      c.dead = true;
      return;
    }
    switch (*type) {
      case MsgType::kHello: {
        const auto hello = decode_hello(line);
        if (c.state != Conn::State::kAwaitHello || !hello ||
            hello->proto != kProtocolVersion) {
          send_msg(c, encode_error("protocol version mismatch"));
          c.dead = true;
          return;
        }
        if (send_msg(c, welcome_line)) c.state = Conn::State::kAwaitReady;
        return;
      }
      case MsgType::kReady: {
        const auto ready = decode_ready(line);
        if (!ready || ready->digest != digest) {
          // The worker validated against a different campaign; none of its
          // results would be trustworthy.
          send_msg(c, encode_error("campaign digest mismatch"));
          c.dead = true;
          return;
        }
        if (c.state == Conn::State::kLeased) {
          if (!c.lease->outstanding.empty()) {
            c.dead = true;  // READY with results still owed: protocol violation
            return;
          }
          c.lease.reset();
        } else if (c.state != Conn::State::kAwaitReady &&
                   c.state != Conn::State::kIdle) {
          c.dead = true;
          return;
        }
        c.state = Conn::State::kIdle;
        try_assign(c);
        return;
      }
      case MsgType::kResult:
        if (const auto r = decode_result(line)) {
          record_result(c, *r);
        } else {
          c.dead = true;
        }
        return;
      case MsgType::kHeartbeat:
        return;  // last_seen already refreshed
      case MsgType::kTelemetry:
        record_telemetry(c, line);
        return;
      case MsgType::kError:
      default:
        c.dead = true;  // worker gave up, or speaks something else entirely
        return;
    }
  }

  void pump_conn(Conn& c) {
    std::string chunk;
    switch (recv_some(c.sock.fd(), &chunk, 64 * 1024, /*timeout_ms=*/0)) {
      case RecvStatus::kData:
        if (bytes_received != nullptr) bytes_received->inc(chunk.size());
        c.decoder.feed(chunk);
        break;
      case RecvStatus::kTimeout:
        return;  // spurious wakeup
      case RecvStatus::kClosed:
      case RecvStatus::kError:
        c.dead = true;
        return;
    }
    while (!c.dead) {
      const auto frame = c.decoder.next();
      if (!frame) break;
      handle(c, *frame);
    }
    if (!c.decoder.error().empty()) c.dead = true;
  }

  /// Removes dead connections, reassigning whatever they still owed.
  void sweep_dead(Clock::time_point now) {
    for (auto& c : conns) {
      if (!c->dead) continue;
      reassign_lease(*c, /*expired=*/false);
      finish_worker_rate(*c, now);
      event(obs::fleet::FleetEventKind::kWorkerDisconnect, c->worker_id, 0,
            std::to_string(c->runs) + " runs streamed");
    }
    std::erase_if(conns, [](const auto& c) { return c->dead; });
    update_live();
  }

  void expire_leases(Clock::time_point now) {
    for (auto& c : conns) {
      if (c->dead || c->state != Conn::State::kLeased) continue;
      if (ms_between(c->last_seen, now) <= options.lease_timeout_ms) continue;
      reassign_lease(*c, /*expired=*/true);
      finish_worker_rate(*c, now);
      c->dead = true;  // the socket may still be open; the worker is not
      event(obs::fleet::FleetEventKind::kWorkerDisconnect, c->worker_id, 0,
            "lease timeout");
    }
    std::erase_if(conns, [](const auto& c) { return c->dead; });
    update_live();
  }

  void spawn_one() {
    WorkerOptions w = options.worker;
    w.host = "127.0.0.1";
    w.port = listener.port();
    const pid_t pid = spawn_worker_process(w, listener.fd());
    if (pid > 0) children.push_back(pid);
  }

  void reap_children() {
    std::erase_if(children, [](pid_t pid) {
      int status = 0;
      return ::waitpid(pid, &status, WNOHANG) == pid;
    });
  }

  /// Keeps local fleets alive: when every spawned worker died with work still
  /// outstanding, spawn a replacement (bounded). Throws once the campaign
  /// provably cannot finish. Listen-only campaigns (spawn_workers == 0) wait
  /// for external workers indefinitely instead.
  void ensure_workers() {
    if (options.spawn_workers <= 0 || complete()) return;
    reap_children();
    if (!children.empty() || !conns.empty()) return;
    if (respawns_left <= 0) {
      throw std::runtime_error(
          "distributed campaign stalled: every worker exited and the respawn "
          "budget is exhausted");
    }
    --respawns_left;
    spawn_one();
  }

  void accept_new(Clock::time_point now) {
    for (;;) {
      Socket s = listener.accept(/*timeout_ms=*/0);
      if (!s.valid()) break;
      auto c = std::make_unique<Conn>();
      c->sock = std::move(s);
      c->worker_id = next_worker_id++;
      c->first_seen = c->last_seen = now;
      event(obs::fleet::FleetEventKind::kWorkerConnect, c->worker_id, 0, "");
      conns.push_back(std::move(c));
    }
    update_live();
  }

  void serve() {
    while (!complete()) {
      ensure_workers();

      std::vector<pollfd> fds;
      fds.reserve(conns.size() + 1);
      fds.push_back({listener.fd(), POLLIN, 0});
      for (const auto& c : conns) fds.push_back({c->sock.fd(), POLLIN, 0});
      const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/50);
      if (rc < 0 && errno != EINTR) {
        throw std::runtime_error("coordinator poll() failed");
      }

      const auto now = Clock::now();
      if (rc > 0) {
        // conns may grow via accept below; iterate the polled prefix only.
        for (std::size_t k = 1; k < fds.size(); ++k) {
          Conn& c = *conns[k - 1];
          if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) pump_conn(c);
        }
        if (fds[0].revents & POLLIN) accept_new(now);
      }
      sweep_dead(now);
      expire_leases(now);
      // A reassignment may have refilled the queue while workers sit idle.
      for (auto& c : conns) {
        if (pending.empty()) break;
        try_assign(*c);
      }
      sweep_dead(now);
      update_status_workers(now);
    }
  }

  /// Drains each connection until EOF or the deadline, merging telemetry
  /// frames and ignoring everything else. A worker answers DONE with one
  /// final snapshot and then closes the socket, and TCP ordering delivers
  /// that snapshot ahead of the FIN — so reaching every EOF here makes the
  /// fleet-wide totals exact, not merely latest-known.
  void drain_final_telemetry() {
    const auto deadline = Clock::now() + std::chrono::milliseconds(2000);
    for (;;) {
      std::size_t open = 0;
      for (auto& c : conns) {
        if (c->dead) continue;
        ++open;
        std::string chunk;
        switch (recv_some(c->sock.fd(), &chunk, 64 * 1024, /*timeout_ms=*/10)) {
          case RecvStatus::kData:
            if (bytes_received != nullptr) bytes_received->inc(chunk.size());
            c->decoder.feed(chunk);
            break;
          case RecvStatus::kTimeout:
            break;
          case RecvStatus::kClosed:
          case RecvStatus::kError:
            c->dead = true;
            break;
        }
        for (;;) {
          const auto frame = c->decoder.next();
          if (!frame) break;
          if (message_type(*frame) == MsgType::kTelemetry) {
            record_telemetry(*c, *frame);
          }
          // READY/heartbeat frames racing the DONE are expected; drop them.
        }
        if (!c->decoder.error().empty()) c->dead = true;
      }
      if (open == 0 || Clock::now() >= deadline) return;
    }
  }

  void shutdown() {
    for (auto& c : conns) send_msg(*c, encode_done());
    if (options.telemetry_ms > 0) drain_final_telemetry();
    const auto now = Clock::now();
    update_status_workers(now);
    for (auto& c : conns) finish_worker_rate(*c, now);
    conns.clear();
    update_live();
    for (pid_t pid : children) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    children.clear();
  }
};

Coordinator::Coordinator(core::RunConfig base, inject::FaultList list,
                         std::uint64_t seed, DistOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->base = std::move(base);
  impl_->list = std::move(list);
  impl_->seed = seed;
  impl_->options = std::move(options);
  // No registry means nowhere to merge worker snapshots into — don't ask
  // workers to ship any.
  if (impl_->options.metrics == nullptr) impl_->options.telemetry_ms = 0;

  std::string error;
  impl_->listener =
      Listener::open(impl_->options.listen_host, impl_->options.listen_port, &error);
  if (!impl_->listener.valid()) {
    throw std::runtime_error("cannot listen on " + impl_->options.listen_host + ":" +
                             std::to_string(impl_->options.listen_port) + ": " + error);
  }

  impl_->digest = plan::sweep_digest(impl_->list);
  impl_->fault_ids.reserve(impl_->list.faults.size());
  for (const auto& f : impl_->list.faults) impl_->fault_ids.push_back(f.id());

  core::DtsConfig shipped;
  shipped.run = impl_->base;
  shipped.campaign.seed = seed;
  Welcome welcome;
  welcome.workload = impl_->base.workload.name;
  welcome.middleware = static_cast<int>(impl_->base.middleware);
  welcome.watchd_version = static_cast<int>(impl_->base.watchd_version);
  welcome.seed = seed;
  welcome.fault_count = impl_->list.faults.size();
  welcome.digest = impl_->digest;
  welcome.telemetry_ms = impl_->options.telemetry_ms;
  welcome.config = core::serialize_config(shipped);
  impl_->welcome_line = encode_welcome(welcome);
  impl_->welcome_config = welcome.config;

  if (impl_->options.metrics != nullptr) {
    obs::MetricsRegistry& m = *impl_->options.metrics;
    impl_->workers_live =
        &m.gauge("dts_dist_workers_live", {}, "connected distributed workers");
    impl_->leases_issued =
        &m.counter("dts_dist_leases_issued_total", {}, "shard leases handed to workers");
    impl_->leases_expired = &m.counter(
        "dts_dist_leases_expired_total", {},
        "leases whose worker went silent past the lease timeout");
    impl_->leases_reassigned = &m.counter(
        "dts_dist_leases_reassigned_total", {},
        "lost leases whose unfinished remainder went back to the queue");
    impl_->bytes_sent =
        &m.counter("dts_dist_bytes_sent_total", {}, "protocol bytes sent to workers");
    impl_->bytes_received = &m.counter("dts_dist_bytes_received_total", {},
                                       "protocol bytes received from workers");
    impl_->telemetry_frames =
        &m.counter("dts_fleet_telemetry_frames_total", {},
                   "worker telemetry snapshots merged by the coordinator");
  }
}

Coordinator::~Coordinator() {
  if (impl_ == nullptr) return;
  impl_->conns.clear();
  for (pid_t pid : impl_->children) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
}

std::uint16_t Coordinator::port() const { return impl_->listener.port(); }

exec::CampaignResult Coordinator::run() {
  Impl& im = *impl_;
  const std::size_t n = im.list.faults.size();
  im.slots.assign(n, Slot{});

  exec::JournalKey key;
  key.workload = im.base.workload.name;
  key.middleware = static_cast<int>(im.base.middleware);
  key.watchd_version = static_cast<int>(im.base.watchd_version);
  key.seed = im.seed;
  key.fault_count = n;

  if (!im.options.journal_path.empty() && im.options.resume) {
    std::string error;
    auto records = exec::read_journal(im.options.journal_path, key, &error);
    if (!records) throw std::runtime_error(error);
    std::size_t foreign = 0;
    for (const auto& rec : *records) {
      if (rec.index >= n) continue;
      if (im.fault_ids[rec.index] != rec.fault_id) continue;
      if (!rec.exec_index.empty()) {
        const auto ei = obs::fleet::ExecutionIndex::parse(rec.exec_index);
        if (ei && ei->campaign_digest != im.digest) {
          // A foreign campaign digest: merging the record would silently mix
          // another campaign's results into this one.
          ++foreign;
          continue;
        }
      }
      Slot& slot = im.slots[rec.index];
      if (slot.state != SlotState::kPending) continue;  // duplicate record
      if (!core::parse_run_line(im.base.workload.target_image, rec.run_line,
                                &slot.result, nullptr)) {
        continue;
      }
      slot.fn_called = rec.fn_called;
      slot.state = SlotState::kExecuted;
      if (!slot.result.activated && !slot.fn_called) {
        im.proofs.record(im.list.faults[rec.index].fn, rec.index);
      }
      ++im.reused;
    }
    if (foreign > 0) {
      std::cerr << "warning: " << im.options.journal_path << ": skipped "
                << foreign
                << " journal record(s) whose execution index names a foreign "
                   "campaign digest\n";
      if (im.options.metrics != nullptr) {
        im.options.metrics
            ->counter("dts_report_foreign_records_total", {},
                      "journal records skipped for carrying a foreign campaign "
                      "digest in their execution index")
            .inc(foreign);
      }
    }
  }

  if (!im.options.journal_path.empty()) {
    std::string error;
    if (!im.journal.open(im.options.journal_path, key, im.options.resume, &error,
                         im.welcome_config, im.base.topo.empty() ? 5 : 6)) {
      throw std::runtime_error(error);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (im.slots[i].state == SlotState::kPending) im.pending.push_back(i);
  }
  im.tracker = std::make_unique<exec::ProgressTracker>(n, im.reused);

  if (im.pending.empty()) {
    // Fully resumed (or an empty sweep): nothing to distribute.
    if (im.options.on_progress) im.options.on_progress(im.tracker->snapshot());
  } else {
    im.respawns_left = im.options.spawn_workers;
    for (int w = 0; w < im.options.spawn_workers; ++w) im.spawn_one();
    im.serve();
  }
  im.shutdown();

  // Same merge as the in-process executor: replay the skip rule serially so
  // the distributed output is byte-identical to --jobs=1.
  std::vector<exec::CompletedRun> completed(n);
  for (std::size_t i = 0; i < n; ++i) {
    completed[i].result = std::move(im.slots[i].result);
    completed[i].fn_called = im.slots[i].fn_called;
    completed[i].executed = im.slots[i].state == SlotState::kExecuted;
  }
  exec::CampaignResult out = exec::merge_completed_runs(
      im.base, im.list, im.seed, im.options.skip_uncalled, std::move(completed));
  out.executed += im.executed_fresh;
  out.reused = im.reused;
  return out;
}

pid_t spawn_worker_process(const WorkerOptions& options, int close_fd) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  if (close_fd >= 0) ::close(close_fd);
  std::string error;
  _exit(run_worker(options, &error));
}

core::WorkloadSetResult run_workload_set_distributed(
    const core::RunConfig& base, const core::CampaignOptions& options,
    DistOptions dist, const std::optional<inject::FaultList>& explicit_faults) {
  core::WorkloadSetResult result;
  result.base_config = base;
  result.activated_functions = core::profile_workload(base, options.seed);

  inject::FaultList list;
  if (explicit_faults) {
    list = *explicit_faults;
    // Explicit lists execute in full, as in-process campaigns do.
    dist.skip_uncalled = false;
  } else {
    // The model registry enumerates the sweep exactly like the in-process
    // path, so a distributed campaign's merged output stays byte-identical
    // to --jobs=1 under any model set.
    std::string model_error;
    const auto models = fault::ModelSet::parse(options.models, &model_error);
    if (!models) throw std::runtime_error(model_error);
    list = fault::build_sweep(base.workload.target_image, *models,
                              options.profile_first ? &result.activated_functions : nullptr,
                              options.iterations)
               .sampled(options.max_faults);
    // Same tier stamping as run_workload_set: lease fault ids carry the
    // topology tier prefix, so worker-side parsing, per-run seeds and run
    // lines stay byte-identical to the in-process path.
    if (!base.topo.empty()) {
      for (auto& f : list.faults) f.tier = base.topo.fault_tier;
    }
  }

  dist.journal_path = options.journal_path;
  dist.resume = options.resume;
  dist.metrics = options.metrics;
  if (dist.stall == nullptr) dist.stall = options.stall;
  if (dist.status == nullptr) dist.status = options.status;
  if (options.on_snapshot || options.on_progress) {
    dist.on_progress = [&options](const exec::ProgressSnapshot& s) {
      if (options.on_snapshot) options.on_snapshot(s);
      if (options.on_progress) options.on_progress(s.done, s.total);
    };
  }

  const auto on_listen = dist.on_listen;
  Coordinator coordinator(base, list, options.seed, std::move(dist));
  if (on_listen) on_listen(coordinator.port());
  exec::CampaignResult campaign = coordinator.run();
  result.executed_runs = campaign.executed;
  result.runs = std::move(campaign.runs);
  return result;
}

}  // namespace dts::dist
