// Wire framing for the distributed campaign protocol: length-prefixed JSONL.
// A frame is `<decimal byte count>\n<payload>`, where the payload is one flat
// JSON object (the grammar obs/jsonl.h parses — the same subset the run
// journal uses). The explicit length prefix makes framing independent of the
// payload's content: a forensics dump embedded in a record may contain
// newlines once unescaped, and a reader never has to scan for a terminator.
//
// The decoder is incremental — feed() accepts arbitrary byte slices (short
// reads included) and next() yields complete frames — and defensive: a
// malformed or oversized length prefix poisons the stream (a peer speaking
// the wrong protocol is unrecoverable mid-stream).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace dts::dist {

/// Frames larger than this are rejected by encoder and decoder alike. Big
/// enough for a journal-v2 record with an embedded forensics dump, small
/// enough that a garbage length prefix cannot make the decoder buffer
/// gigabytes.
constexpr std::size_t kMaxFramePayload = 4 * 1024 * 1024;

/// Renders one frame. Throws std::length_error beyond kMaxFramePayload.
std::string encode_frame(std::string_view payload);

/// Incremental frame decoder for one connection's byte stream.
class FrameDecoder {
 public:
  /// Appends raw bytes from the peer (any slicing, including 1 byte at a
  /// time). No-op once the stream is poisoned.
  void feed(std::string_view bytes);

  /// Extracts the next complete frame payload, or nullopt when more bytes
  /// are needed. After a protocol violation (non-numeric or oversized length
  /// prefix) returns nullopt forever and error() is non-empty.
  std::optional<std::string> next();

  /// Empty while the stream is healthy.
  const std::string& error() const { return error_; }

  /// True when no partial frame is buffered — i.e. the peer closing the
  /// connection here would not tear a frame.
  bool at_frame_boundary() const { return buffer_.empty() && error_.empty(); }

 private:
  std::string buffer_;
  std::string error_;
};

}  // namespace dts::dist
