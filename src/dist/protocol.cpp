#include "dist/protocol.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/jsonl.h"

namespace dts::dist {

namespace {

using obs::json_escape;
using obs::json_string_field;
using obs::json_uint_field;

std::string type_field(const char* type) {
  return std::string("{\"type\":\"") + type + "\"";
}

}  // namespace

std::optional<MsgType> message_type(const std::string& line) {
  std::string t;
  if (!json_string_field(line, "type", &t)) return std::nullopt;
  if (t == "hello") return MsgType::kHello;
  if (t == "welcome") return MsgType::kWelcome;
  if (t == "ready") return MsgType::kReady;
  if (t == "lease") return MsgType::kLease;
  if (t == "result") return MsgType::kResult;
  if (t == "heartbeat") return MsgType::kHeartbeat;
  if (t == "telemetry") return MsgType::kTelemetry;
  if (t == "done") return MsgType::kDone;
  if (t == "error") return MsgType::kError;
  return std::nullopt;
}

std::string encode_hello(const Hello& m) {
  std::ostringstream out;
  out << type_field("hello") << ",\"proto\":" << m.proto << "}";
  return out.str();
}

std::optional<Hello> decode_hello(const std::string& line) {
  Hello m;
  if (message_type(line) != MsgType::kHello) return std::nullopt;
  if (!json_uint_field(line, "proto", &m.proto)) return std::nullopt;
  return m;
}

std::string encode_welcome(const Welcome& m) {
  std::ostringstream out;
  out << type_field("welcome") << ",\"proto\":" << m.proto << ",\"workload\":\""
      << json_escape(m.workload) << "\",\"middleware\":" << m.middleware
      << ",\"watchd\":" << m.watchd_version << ",\"seed\":" << m.seed
      << ",\"faults\":" << m.fault_count << ",\"digest\":" << m.digest
      << ",\"telemetry_ms\":" << m.telemetry_ms << ",\"config\":\""
      << json_escape(m.config) << "\"}";
  return out.str();
}

std::optional<Welcome> decode_welcome(const std::string& line) {
  Welcome m;
  if (message_type(line) != MsgType::kWelcome) return std::nullopt;
  std::uint64_t mw = 0, wv = 0;
  if (!json_uint_field(line, "proto", &m.proto) ||
      !json_string_field(line, "workload", &m.workload) ||
      !json_uint_field(line, "middleware", &mw) ||
      !json_uint_field(line, "watchd", &wv) ||
      !json_uint_field(line, "seed", &m.seed) ||
      !json_uint_field(line, "faults", &m.fault_count) ||
      !json_uint_field(line, "digest", &m.digest) ||
      !json_string_field(line, "config", &m.config)) {
    return std::nullopt;
  }
  m.middleware = static_cast<int>(mw);
  m.watchd_version = static_cast<int>(wv);
  // Absent in v1 welcomes; tolerated so a v2 worker parses them (the proto
  // check still rejects the session afterwards).
  (void)json_uint_field(line, "telemetry_ms", &m.telemetry_ms);
  return m;
}

std::string encode_ready(const Ready& m) {
  std::ostringstream out;
  out << type_field("ready") << ",\"digest\":" << m.digest << "}";
  return out.str();
}

std::optional<Ready> decode_ready(const std::string& line) {
  Ready m;
  if (message_type(line) != MsgType::kReady) return std::nullopt;
  if (!json_uint_field(line, "digest", &m.digest)) return std::nullopt;
  return m;
}

std::string encode_lease(const Lease& m) {
  std::ostringstream out;
  out << type_field("lease") << ",\"lease\":" << m.lease_id
      << ",\"digest\":" << m.digest << ",\"idx\":\"";
  for (std::size_t i = 0; i < m.indices.size(); ++i) {
    if (i > 0) out << ' ';
    out << m.indices[i];
  }
  out << "\",\"faults\":\"";
  // Fault ids never contain spaces (Fn.param#inv:type), so a space-joined
  // list is unambiguous — and json_escape keeps the line one frame payload.
  std::string joined;
  for (std::size_t i = 0; i < m.fault_ids.size(); ++i) {
    if (i > 0) joined += ' ';
    joined += m.fault_ids[i];
  }
  out << json_escape(joined) << "\"}";
  return out.str();
}

std::optional<Lease> decode_lease(const std::string& line) {
  Lease m;
  if (message_type(line) != MsgType::kLease) return std::nullopt;
  std::string idx, faults;
  if (!json_uint_field(line, "lease", &m.lease_id) ||
      !json_uint_field(line, "digest", &m.digest) ||
      !json_string_field(line, "idx", &idx) ||
      !json_string_field(line, "faults", &faults)) {
    return std::nullopt;
  }
  std::istringstream idx_in(idx);
  std::uint64_t v = 0;
  while (idx_in >> v) m.indices.push_back(v);
  std::istringstream faults_in(faults);
  std::string id;
  while (faults_in >> id) m.fault_ids.push_back(std::move(id));
  if (m.indices.size() != m.fault_ids.size() || m.indices.empty()) {
    return std::nullopt;
  }
  return m;
}

std::string encode_result(const WireResult& m) {
  std::ostringstream out;
  out << type_field("result") << ",\"lease\":" << m.lease_id << ",\"i\":" << m.index
      << ",\"fault\":\"" << json_escape(m.fault_id)
      << "\",\"called\":" << (m.fn_called ? 1 : 0) << ",\"run\":\""
      << json_escape(m.run_line) << "\",\"wall_us\":" << m.wall_us
      << ",\"sim_us\":" << m.sim_us << ",\"req\":\"" << json_escape(m.requests)
      << "\",\"detail\":\"" << json_escape(m.detail) << "\"";
  // v4 forensics fields, omitted when empty (see WireResult).
  if (m.trace_digest != 0) {
    char td[24];
    std::snprintf(td, sizeof td, "%016llx",
                  static_cast<unsigned long long>(m.trace_digest));
    out << ",\"td\":\"" << td << "\"";
  }
  if (!m.call_context.empty()) {
    out << ",\"cc\":\"" << json_escape(m.call_context) << "\"";
  }
  out << "}";
  return out.str();
}

std::optional<WireResult> decode_result(const std::string& line) {
  WireResult m;
  if (message_type(line) != MsgType::kResult) return std::nullopt;
  std::uint64_t called = 0;
  if (!json_uint_field(line, "lease", &m.lease_id) ||
      !json_uint_field(line, "i", &m.index) ||
      !json_string_field(line, "fault", &m.fault_id) ||
      !json_uint_field(line, "called", &called) ||
      !json_string_field(line, "run", &m.run_line) ||
      !json_uint_field(line, "wall_us", &m.wall_us) ||
      !json_uint_field(line, "sim_us", &m.sim_us) ||
      !json_string_field(line, "req", &m.requests) ||
      !json_string_field(line, "detail", &m.detail)) {
    return std::nullopt;
  }
  m.fn_called = called != 0;
  std::string td;
  if (json_string_field(line, "td", &td)) {
    m.trace_digest = std::strtoull(td.c_str(), nullptr, 16);
  }
  (void)json_string_field(line, "cc", &m.call_context);
  return m;
}

std::string encode_requests(const std::vector<core::RequestResult>& requests) {
  std::string out;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (i > 0) out += '|';
    out += requests[i].ok ? 'o' : 'x';
    out += std::to_string(requests[i].attempts);
  }
  return out;
}

std::vector<core::RequestResult> decode_requests(const std::string& text) {
  std::vector<core::RequestResult> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('|', pos);
    if (end == std::string::npos) end = text.size();
    if (end > pos) {
      core::RequestResult r;
      r.ok = text[pos] == 'o';
      r.attempts = std::atoi(text.substr(pos + 1, end - pos - 1).c_str());
      out.push_back(r);
    }
    pos = end + 1;
  }
  return out;
}

std::string encode_heartbeat(const Heartbeat& m) {
  std::ostringstream out;
  out << type_field("heartbeat") << ",\"lease\":" << m.lease_id << "}";
  return out.str();
}

std::optional<Heartbeat> decode_heartbeat(const std::string& line) {
  Heartbeat m;
  if (message_type(line) != MsgType::kHeartbeat) return std::nullopt;
  if (!json_uint_field(line, "lease", &m.lease_id)) return std::nullopt;
  return m;
}

std::string encode_telemetry(const Telemetry& m) {
  std::ostringstream out;
  out << type_field("telemetry") << ",\"seq\":" << m.seq << ",\"fails\":" << m.failures
      << ",\"recent\":\"" << json_escape(m.recent_failures) << "\",\"metrics\":\""
      << json_escape(m.metrics) << "\"}";
  return out.str();
}

std::optional<Telemetry> decode_telemetry(const std::string& line) {
  Telemetry m;
  if (message_type(line) != MsgType::kTelemetry) return std::nullopt;
  if (!json_uint_field(line, "seq", &m.seq) ||
      !json_uint_field(line, "fails", &m.failures) ||
      !json_string_field(line, "recent", &m.recent_failures) ||
      !json_string_field(line, "metrics", &m.metrics)) {
    return std::nullopt;
  }
  return m;
}

std::string encode_done() { return type_field("done") + "}"; }

std::string encode_error(const std::string& detail) {
  return type_field("error") + ",\"detail\":\"" + obs::json_escape(detail) + "\"}";
}

std::optional<ProtocolError> decode_error(const std::string& line) {
  ProtocolError m;
  if (message_type(line) != MsgType::kError) return std::nullopt;
  if (!json_string_field(line, "detail", &m.detail)) return std::nullopt;
  return m;
}

}  // namespace dts::dist
