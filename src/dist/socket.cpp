#include "dist/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

namespace dts::dist {

namespace {

/// Resolves a numeric IPv4 address ("localhost" included — workers usually
/// target the loopback). getaddrinfo is deliberately avoided: the campaign
/// protocol only ever names explicit endpoints, and numeric parsing cannot
/// block on a resolver.
bool resolve_ipv4(const std::string& host, in_addr* out) {
  if (host.empty() || host == "localhost") {
    return inet_pton(AF_INET, "127.0.0.1", out) == 1;
  }
  return inet_pton(AF_INET, host.c_str(), out) == 1;
}

bool set_nonblocking(int fd, bool on) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK)) >= 0;
}

/// poll() for one event with EINTR retry against an absolute deadline.
int poll_one(int fd, short events, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, left < 0 ? 0 : static_cast<int>(left));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return rc;  // timeout or error
    return 1;
  }
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<std::pair<std::string, std::uint16_t>> parse_host_port(
    const std::string& addr, bool allow_port_zero) {
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon + 1 >= addr.size()) return std::nullopt;
  const std::string host = addr.substr(0, colon);
  const std::string port_s = addr.substr(colon + 1);
  std::uint32_t port = 0;
  for (char c : port_s) {
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535) return std::nullopt;
  }
  if (port == 0 && !allow_port_zero) return std::nullopt;
  return std::make_pair(host, static_cast<std::uint16_t>(port));
}

Socket tcp_connect(const std::string& host, std::uint16_t port, int timeout_ms,
                   int retries, std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!resolve_ipv4(host, &addr.sin_addr)) {
    if (error != nullptr) *error = "bad IPv4 address: " + host;
    return Socket();
  }

  std::string last_error = "no attempt made";
  for (int attempt = 0; attempt <= retries; ++attempt) {
    if (attempt > 0) {
      // Linear backoff: the common failure is the worker starting before the
      // coordinator listens; tens of milliseconds cover it.
      std::this_thread::sleep_for(std::chrono::milliseconds(20 * attempt));
    }
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) {
      last_error = std::string("socket(): ") + strerror(errno);
      continue;
    }
    set_nonblocking(sock.fd(), true);
    const int rc =
        ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc < 0 && errno != EINPROGRESS) {
      last_error = std::string("connect(): ") + strerror(errno);
      continue;
    }
    if (rc < 0) {
      if (poll_one(sock.fd(), POLLOUT, timeout_ms) <= 0) {
        last_error = "connect timeout";
        continue;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
          so_error != 0) {
        last_error = std::string("connect(): ") + strerror(so_error);
        continue;
      }
    }
    set_nonblocking(sock.fd(), false);
    const int one = 1;
    setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return sock;
  }
  if (error != nullptr) {
    *error = "cannot connect to " + host + ":" + std::to_string(port) + " after " +
             std::to_string(retries + 1) + " attempts: " + last_error;
  }
  return Socket();
}

Listener Listener::open(const std::string& host, std::uint16_t port,
                        std::string* error) {
  Listener l;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!resolve_ipv4(host, &addr.sin_addr)) {
    if (error != nullptr) *error = "bad IPv4 address: " + host;
    return l;
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    if (error != nullptr) *error = std::string("socket(): ") + strerror(errno);
    return l;
  }
  const int one = 1;
  setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) {
      *error = "bind " + host + ":" + std::to_string(port) + ": " + strerror(errno);
    }
    return l;
  }
  if (::listen(sock.fd(), 64) < 0) {
    if (error != nullptr) *error = std::string("listen(): ") + strerror(errno);
    return l;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    if (error != nullptr) *error = std::string("getsockname(): ") + strerror(errno);
    return l;
  }
  l.sock_ = std::move(sock);
  l.port_ = ntohs(bound.sin_port);
  return l;
}

Socket Listener::accept(int timeout_ms) {
  if (!sock_.valid()) return Socket();
  if (poll_one(sock_.fd(), POLLIN, timeout_ms) <= 0) return Socket();
  const int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) return Socket();
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

bool send_all(int fd, std::string_view data, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t off = 0;
  while (off < data.size()) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) return false;
    if (poll_one(fd, POLLOUT, static_cast<int>(left)) <= 0) return false;
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

RecvStatus recv_some(int fd, std::string* out, std::size_t cap, int timeout_ms) {
  const int rc = poll_one(fd, POLLIN, timeout_ms);
  if (rc < 0) return RecvStatus::kError;
  if (rc == 0) return RecvStatus::kTimeout;
  std::string buf(cap, '\0');
  const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
  if (n == 0) return RecvStatus::kClosed;
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
      return RecvStatus::kTimeout;
    }
    return RecvStatus::kError;
  }
  out->append(buf.data(), static_cast<std::size_t>(n));
  return RecvStatus::kData;
}

void SocketTransport::fail(const std::string& why) {
  if (error_.empty()) error_ = why;
  sock_.close();
}

void SocketTransport::send(const std::string& message) {
  if (!ok()) return;
  std::string frame;
  try {
    frame = encode_frame(message);
  } catch (const std::length_error& e) {
    fail(e.what());
    return;
  }
  if (!send_all(sock_.fd(), frame, options_.io_timeout_ms)) {
    fail("write failed or timed out");
    return;
  }
  bytes_sent_ += frame.size();
  if (options_.sync_request) {
    // Request/reply mode: the reply frame is part of this send from the
    // caller's point of view (core::Controller reads it right after).
    serve_one(options_.io_timeout_ms);
  }
}

bool SocketTransport::serve_one(int timeout_ms) {
  if (!ok()) return false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (auto frame = decoder_.next()) {
      if (receiver_) receiver_(*frame);
      return true;
    }
    if (!decoder_.error().empty()) {
      fail("protocol violation: " + decoder_.error());
      return false;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) return false;  // timeout: connection stays usable
    std::string chunk;
    const std::size_t before = chunk.size();
    switch (recv_some(sock_.fd(), &chunk, 64 * 1024, static_cast<int>(left))) {
      case RecvStatus::kData:
        bytes_received_ += chunk.size() - before;
        decoder_.feed(chunk);
        break;
      case RecvStatus::kClosed:
        fail(decoder_.at_frame_boundary() ? "peer closed connection"
                                          : "peer closed connection mid-frame");
        return false;
      case RecvStatus::kTimeout:
        return false;
      case RecvStatus::kError:
        fail("read error");
        return false;
    }
  }
}

}  // namespace dts::dist
