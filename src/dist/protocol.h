// Message vocabulary of the distributed campaign protocol. Every message is
// one flat JSON object (the obs/jsonl.h subset, same grammar as the run
// journal) carried in one wire frame (dist/wire.h).
//
// Flow — worker connects, then strictly alternates with the coordinator:
//
//   worker                        coordinator
//   HELLO {proto}            ->
//                            <-   WELCOME {campaign identity + digest}
//   READY {digest}           ->        (worker accepted the campaign)
//                            <-   LEASE {lease, indices, fault ids, digest}
//   RESULT {lease, i, run}   ->        (one per executed fault, streamed)
//   HEARTBEAT {lease}        ->        (liveness while a lease is open)
//   TELEMETRY {seq, metrics} ->        (periodic metric snapshot, optional)
//   READY {digest}           ->        (lease complete, next please)
//                            <-   DONE            (campaign complete)
//   TELEMETRY {seq, metrics} ->        (final snapshot, then disconnect)
//
// Telemetry frames ship the worker's *cumulative* metric registry (not
// deltas): the coordinator mirrors the latest snapshot, so a lost or
// reordered frame can only make the fleet view stale, never wrong. The
// final frame after DONE makes the fleet totals exact at shutdown — TCP
// ordering guarantees it precedes the worker's FIN, and the coordinator
// drains each connection to EOF before rendering final metrics.
//
// Campaign identity validation: WELCOME carries the sweep digest
// (plan::sweep_digest — an order-sensitive fingerprint of every fault id).
// The worker echoes it in READY, and every LEASE repeats it; either side
// drops the connection on a mismatch, so a worker can never execute leases
// from a campaign other than the one it accepted, and a coordinator never
// accepts results from a worker that mis-validated.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/outcome.h"

namespace dts::dist {

/// Protocol revision; bumped on any incompatible message change. v2 adds
/// the TELEMETRY message and Welcome.telemetry_ms.
constexpr std::uint64_t kProtocolVersion = 2;

enum class MsgType {
  kHello,
  kWelcome,
  kReady,
  kLease,
  kResult,
  kHeartbeat,
  kTelemetry,
  kDone,
  kError,
};

/// The "type" field of a message, or nullopt for anything unrecognized.
std::optional<MsgType> message_type(const std::string& line);

// --- handshake -----------------------------------------------------------

struct Hello {
  std::uint64_t proto = kProtocolVersion;
};
std::string encode_hello(const Hello& m);
std::optional<Hello> decode_hello(const std::string& line);

/// Campaign identity, shipped coordinator -> worker. `config` is the full
/// serialized DTS configuration (core::serialize_config round-trips through
/// parse_config), so the worker reconstructs the coordinator's exact
/// RunConfig — client timeouts, machine scale, middleware tuning — not just
/// the workload name; the explicit identity fields exist for validation and
/// must match what the config parses to.
struct Welcome {
  std::uint64_t proto = kProtocolVersion;
  std::string workload;      // core::workload_by_name key
  int middleware = 0;        // mw::MiddlewareKind as int
  int watchd_version = 0;    // mw::WatchdVersion as int
  std::uint64_t seed = 0;    // campaign seed (per-run seeds derive from it)
  std::uint64_t fault_count = 0;
  std::uint64_t digest = 0;  // plan::sweep_digest of the fault list
  std::string config;        // core::serialize_config of the campaign config
  std::uint64_t telemetry_ms = 0;  // telemetry cadence; 0 = don't ship any
};
std::string encode_welcome(const Welcome& m);
std::optional<Welcome> decode_welcome(const std::string& line);

struct Ready {
  std::uint64_t digest = 0;  // echo of Welcome.digest
};
std::string encode_ready(const Ready& m);
std::optional<Ready> decode_ready(const std::string& line);

// --- work ----------------------------------------------------------------

/// A shard lease: a contiguous slice of the remaining fault list. Indices
/// and ids travel together so the worker can sanity-check each fault parses
/// for the campaign's target image before executing anything.
struct Lease {
  std::uint64_t lease_id = 0;
  std::uint64_t digest = 0;
  std::vector<std::uint64_t> indices;   // positions in the fault list
  std::vector<std::string> fault_ids;   // same length as indices
};
std::string encode_lease(const Lease& m);
std::optional<Lease> decode_lease(const std::string& line);

/// One executed run, streamed back as it completes. Carries the journal-v2
/// record fields (run line, fn_called, timings) plus the per-request results
/// and detail string that the journal elides but results.csv renders — so a
/// distributed campaign's outputs are byte-identical to an in-process run's.
/// The journal-v4 forensics fields (trace digest, corrupted-call context)
/// travel as optional fields: a v2 peer that never sends them decodes fine
/// and its records simply lack them, exactly like a pre-v4 journal.
struct WireResult {
  std::uint64_t lease_id = 0;
  std::uint64_t index = 0;
  std::string fault_id;
  bool fn_called = false;
  std::string run_line;  // core::serialize_run_line payload
  std::uint64_t wall_us = 0;
  std::uint64_t sim_us = 0;
  std::string requests;  // encode_requests() of the per-request results
  std::string detail;
  std::uint64_t trace_digest = 0;  // interceptor trajectory fingerprint
  std::string call_context;        // corrupted-call context ("" = not fired)
};
std::string encode_result(const WireResult& m);
std::optional<WireResult> decode_result(const std::string& line);

/// "o1|x3" — ok/fail flag + attempt count per workload request, the two
/// per-request fields campaign outputs render.
std::string encode_requests(const std::vector<core::RequestResult>& requests);
std::vector<core::RequestResult> decode_requests(const std::string& text);

struct Heartbeat {
  std::uint64_t lease_id = 0;
};
std::string encode_heartbeat(const Heartbeat& m);
std::optional<Heartbeat> decode_heartbeat(const std::string& line);

/// Periodic worker -> coordinator metric snapshot. `metrics` is the TSV
/// encoding of the worker's whole registry (obs/fleet/telemetry.h) —
/// cumulative values, so mirroring the highest-seq snapshot is exact.
/// `failures` / `recent_failures` summarize the worker's failure outcomes
/// for the /status endpoint without parsing the metric payload.
struct Telemetry {
  std::uint64_t seq = 0;  // per-worker, strictly increasing
  std::string metrics;    // fleet::encode_samples payload
  std::uint64_t failures = 0;
  std::string recent_failures;  // space-joined fault ids, newest last
};
std::string encode_telemetry(const Telemetry& m);
std::optional<Telemetry> decode_telemetry(const std::string& line);

// --- control -------------------------------------------------------------

std::string encode_done();

struct ProtocolError {
  std::string detail;
};
std::string encode_error(const std::string& detail);
std::optional<ProtocolError> decode_error(const std::string& line);

}  // namespace dts::dist
