// POSIX TCP plumbing for distributed campaigns: a move-only fd wrapper,
// connect with timeout and bounded retry, a listener, timed whole-buffer
// writes / single reads, and SocketTransport — a framed socket channel that
// implements the existing core::Transport interface, so the paper's
// Controller / TargetAgent protocol runs across machines unchanged.
//
// Everything here is loopback-friendly and test-driven: ports default to
// ephemeral (bind port 0, ask the kernel), reads and writes carry explicit
// millisecond deadlines, and no call ever raises SIGPIPE.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "core/controller.h"
#include "dist/wire.h"

namespace dts::dist {

/// Move-only owner of a socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// "host:port" → (host, port). Returns nullopt on a missing/invalid port.
/// Port 0 is invalid for connect targets; listeners pass allow_port_zero to
/// accept it as "bind an ephemeral port".
std::optional<std::pair<std::string, std::uint16_t>> parse_host_port(
    const std::string& addr, bool allow_port_zero = false);

/// Connects to host:port, waiting at most `timeout_ms` per attempt and
/// retrying a refused/timed-out connection up to `retries` further times
/// (with a short linear backoff — the worker typically races the
/// coordinator's listen()). Returns an invalid Socket with *error set when
/// every attempt fails.
Socket tcp_connect(const std::string& host, std::uint16_t port, int timeout_ms,
                   int retries, std::string* error);

/// Listening TCP socket. Binds immediately; port 0 picks an ephemeral port
/// (read it back via port()).
class Listener {
 public:
  /// Returns an unbound Listener with *error set on failure.
  static Listener open(const std::string& host, std::uint16_t port,
                       std::string* error);

  bool valid() const { return sock_.valid(); }
  int fd() const { return sock_.fd(); }
  std::uint16_t port() const { return port_; }

  /// Accepts one pending connection, waiting at most timeout_ms (0 = just
  /// poll). Invalid Socket when nothing arrived.
  Socket accept(int timeout_ms);

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Writes all of `data`, tolerating short writes, within timeout_ms overall.
bool send_all(int fd, std::string_view data, int timeout_ms);

/// One read of up to `cap` bytes into `out` (appended), waiting at most
/// timeout_ms for readability.
enum class RecvStatus { kData, kClosed, kTimeout, kError };
RecvStatus recv_some(int fd, std::string* out, std::size_t cap, int timeout_ms);

/// core::Transport over a framed TCP socket.
///
/// Two usage modes cover the two ends of the paper's control/target split:
///  - sync_request=true (controller end): send() writes the frame and then
///    blocks until the peer's reply frame arrives and is dispatched to the
///    receiver — core::Controller's send-then-read-reply pattern works
///    unchanged.
///  - sync_request=false (agent end): send() only writes; the owner pumps
///    incoming frames explicitly with serve_one() (the agent's serve loop).
///
/// The base interface has no error channel, so failures latch into error()
/// and the transport goes silent — the controller observes a missing reply
/// and counts a protocol error, exactly as for a garbled one.
class SocketTransport final : public core::Transport {
 public:
  struct Options {
    int io_timeout_ms = 30000;  // per send() / serve_one() deadline
    bool sync_request = false;
  };

  SocketTransport(Socket sock, Options options)
      : sock_(std::move(sock)), options_(options) {}

  void send(const std::string& message) override;
  void set_receiver(std::function<void(const std::string&)> on_message) override {
    receiver_ = std::move(on_message);
  }

  /// Reads until one complete frame is dispatched to the receiver. False on
  /// timeout, peer close, or protocol violation (see error()).
  bool serve_one(int timeout_ms);

  bool ok() const { return error_.empty() && sock_.valid(); }
  const std::string& error() const { return error_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  void fail(const std::string& why);

  Socket sock_;
  Options options_;
  FrameDecoder decoder_;
  std::function<void(const std::string&)> receiver_;
  std::string error_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace dts::dist
