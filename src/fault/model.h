// The pluggable fault-model registry.
//
// A fault MODEL is a named, selectable family of fault operators: it
// contributes (a) a sweep ENUMERATOR that expands injection points
// (function × parameter × invocation) into concrete inject::FaultSpecs, and
// (b) an apply OPERATOR — the FaultType the interceptor executes at the
// injection point. The two are deliberately split: enumerators run at
// campaign-planning time and decide sweep SIZE and shape (they are pure
// functions of the registry/profile, so fault lists stay serializable and
// shardable), while operators run inside the simulated kernel dispatch and
// decide fault SEMANTICS. Everything between — plan/prune, snapshot/fork,
// distributed sharding, journal, replay, signatures — only ever sees
// FaultSpecs and fault ids, so every model rides the existing pipeline
// without custom code paths.
//
// Four models ship:
//   paper     zero/ones/flip parameter corruption, transient (the default;
//             byte-identical sweeps to the pre-registry code)
//   mutation  MINIX-faultlib-style operators: no-load / corrupt-pointer on
//             parameters, no-store / flip-branch on results
//   oserror   OS-level failure semantics: error returns (no memory, handle
//             exhaustion, disk full) plus delayed and dropped completions
//   temporal  the paper operators on intermittent (every 2nd) and persistent
//             (sticky) schedules instead of single-shot
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "inject/fault_list.h"

namespace dts::fault {

enum class Model { kPaper, kMutation, kOsError, kTemporal };

constexpr Model kAllModels[] = {Model::kPaper, Model::kMutation, Model::kOsError,
                                Model::kTemporal};

std::string_view to_string(Model m);
std::optional<Model> model_from_string(std::string_view s);

/// "paper, mutation, oserror, temporal" — for diagnostics.
std::string valid_model_names();

/// Ordered, de-duplicated model selection, as parsed from the `--model=`
/// flag / `models` config key (CSV of model names).
struct ModelSet {
  std::vector<Model> models;  // first-mention order; never empty after parse

  bool contains(Model m) const;
  bool is_paper_default() const { return models.size() == 1 && models[0] == Model::kPaper; }

  /// Canonical CSV ("paper,oserror") — round-trips through parse.
  std::string to_string() const;

  /// Rejects unknown names with an error naming the valid model set.
  /// An empty/blank csv parses to the paper default.
  static std::optional<ModelSet> parse(std::string_view csv, std::string* error);

  static ModelSet paper_default() { return ModelSet{{Model::kPaper}}; }

  friend bool operator==(const ModelSet&, const ModelSet&) = default;
};

/// Sweep enumerator: every fault the model contributes for one injectable
/// function. Order is deterministic; for Model::kPaper it is byte-identical
/// to the classic paper sweep (param × invocation × zero/ones/flip).
void append_model_faults(std::vector<inject::FaultSpec>& out, Model m,
                         const std::string& target_image, const nt::FunctionInfo& info,
                         int iterations);

/// Builds the campaign fault list for a model set: models in set order, each
/// sweeping every injectable function (or just `functions` when non-null).
/// ModelSet::paper_default() reproduces FaultList::full_sweep/for_functions
/// byte for byte.
inject::FaultList build_sweep(const std::string& target_image, const ModelSet& models,
                              const std::set<nt::Fn>* functions, int iterations);

/// Journal/report annotation of the model axis for one fault:
/// "<operator-family>:<temporal>", e.g. "oserror:transient", "paper:every2",
/// "mutation:sticky". EMPTY for the default axis (paper operator, transient)
/// so default-model journals stay byte-identical to schema v4 ones. Derived
/// purely from the spec: every pipeline stage (executor, distributed
/// coordinator, replay) computes the same annotation from the same id.
std::string model_annotation(const inject::FaultSpec& f);

/// The annotation a default-axis fault would carry if it were not elided —
/// what reports display for records without an "fm" field.
inline constexpr std::string_view kDefaultAnnotation = "paper:transient";

}  // namespace dts::fault
