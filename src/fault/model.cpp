#include "fault/model.h"

#include <algorithm>

#include "inject/fault_class.h"

namespace dts::fault {

namespace {

using inject::FaultSpec;
using inject::FaultType;
using inject::Temporal;

FaultSpec base_spec(const std::string& target_image, const nt::FunctionInfo& info) {
  FaultSpec f;
  f.target_image = target_image;
  f.fn = static_cast<nt::Fn>(info.id);
  return f;
}

/// corrupt-pointer only makes sense on parameters that hold pointers; the
/// fault-class taxonomy already knows which those are.
bool pointer_like(nt::Fn fn, int param) {
  const auto cls = inject::classify(fn, param);
  return cls == inject::FaultClass::kPathArgument ||
         cls == inject::FaultClass::kBufferPointer ||
         cls == inject::FaultClass::kConfigString;
}

}  // namespace

std::string_view to_string(Model m) {
  switch (m) {
    case Model::kPaper: return "paper";
    case Model::kMutation: return "mutation";
    case Model::kOsError: return "oserror";
    case Model::kTemporal: return "temporal";
  }
  return "?";
}

std::optional<Model> model_from_string(std::string_view s) {
  for (Model m : kAllModels) {
    if (to_string(m) == s) return m;
  }
  return std::nullopt;
}

std::string valid_model_names() {
  std::string out;
  for (Model m : kAllModels) {
    if (!out.empty()) out += ", ";
    out += to_string(m);
  }
  return out;
}

bool ModelSet::contains(Model m) const {
  return std::find(models.begin(), models.end(), m) != models.end();
}

std::string ModelSet::to_string() const {
  std::string out;
  for (Model m : models) {
    if (!out.empty()) out += ",";
    out += fault::to_string(m);
  }
  return out;
}

std::optional<ModelSet> ModelSet::parse(std::string_view csv, std::string* error) {
  ModelSet set;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string_view::npos) comma = csv.size();
    std::string_view token = csv.substr(pos, comma - pos);
    while (!token.empty() && token.front() == ' ') token.remove_prefix(1);
    while (!token.empty() && token.back() == ' ') token.remove_suffix(1);
    if (!token.empty()) {
      const auto m = model_from_string(token);
      if (!m) {
        if (error != nullptr) {
          *error = "unknown fault model '" + std::string(token) +
                   "' (valid models: " + valid_model_names() + ")";
        }
        return std::nullopt;
      }
      if (!set.contains(*m)) set.models.push_back(*m);
    }
    if (comma == csv.size()) break;
    pos = comma + 1;
  }
  if (set.models.empty()) set = paper_default();
  return set;
}

void append_model_faults(std::vector<FaultSpec>& out, Model m, const std::string& target_image,
                         const nt::FunctionInfo& info, int iterations) {
  switch (m) {
    case Model::kPaper:
      // MUST stay byte-identical to the classic sweep — the planner cache
      // key, journal resume, and dist digests all hang off this order.
      for (int param = 0; param < info.param_count(); ++param) {
        for (int inv = 1; inv <= iterations; ++inv) {
          for (FaultType type : inject::kAllFaultTypes) {
            FaultSpec f = base_spec(target_image, info);
            f.param_index = param;
            f.invocation = inv;
            f.type = type;
            out.push_back(std::move(f));
          }
        }
      }
      break;

    case Model::kMutation:
      for (int param = 0; param < info.param_count(); ++param) {
        for (int inv = 1; inv <= iterations; ++inv) {
          FaultSpec f = base_spec(target_image, info);
          f.param_index = param;
          f.invocation = inv;
          f.type = FaultType::kNoLoad;
          out.push_back(f);
          if (pointer_like(f.fn, param)) {
            f.type = FaultType::kCorruptPointer;
            out.push_back(f);
          }
        }
      }
      for (int inv = 1; inv <= iterations; ++inv) {
        for (FaultType type : {FaultType::kNoStore, FaultType::kFlipBranch}) {
          FaultSpec f = base_spec(target_image, info);
          f.param_index = -1;
          f.invocation = inv;
          f.type = type;
          out.push_back(std::move(f));
        }
      }
      break;

    case Model::kOsError:
      for (int inv = 1; inv <= iterations; ++inv) {
        for (FaultType type : {FaultType::kErrNoMemory, FaultType::kErrNoHandles,
                               FaultType::kErrDiskFull, FaultType::kDelay, FaultType::kDrop}) {
          FaultSpec f = base_spec(target_image, info);
          f.param_index = -1;
          f.invocation = inv;
          f.type = type;
          out.push_back(std::move(f));
        }
      }
      break;

    case Model::kTemporal:
      for (int param = 0; param < info.param_count(); ++param) {
        for (int inv = 1; inv <= iterations; ++inv) {
          for (FaultType type : inject::kAllFaultTypes) {
            FaultSpec f = base_spec(target_image, info);
            f.param_index = param;
            f.invocation = inv;
            f.type = type;
            f.temporal = Temporal::kIntermittent;
            f.period = 2;
            out.push_back(f);
            f.temporal = Temporal::kPersistent;
            f.period = 0;
            out.push_back(f);
          }
        }
      }
      break;
  }
}

inject::FaultList build_sweep(const std::string& target_image, const ModelSet& models,
                              const std::set<nt::Fn>* functions, int iterations) {
  inject::FaultList list;
  const auto& reg = nt::Kernel32Registry::instance();
  for (Model m : models.models) {
    if (functions == nullptr) {
      for (const auto& info : reg.all()) {
        if (info.param_count() == 0) continue;  // not an injection candidate
        append_model_faults(list.faults, m, target_image, info, iterations);
      }
    } else {
      for (nt::Fn fn : *functions) {
        const auto& info = reg.info(fn);
        if (info.param_count() == 0) continue;
        append_model_faults(list.faults, m, target_image, info, iterations);
      }
    }
  }
  return list;
}

std::string model_annotation(const inject::FaultSpec& f) {
  const bool default_op = inject::operator_family(f.type) == "paper";
  const bool default_temporal = f.temporal == Temporal::kTransient;
  if (default_op && default_temporal) return {};
  std::string out = std::string(inject::operator_family(f.type)) + ":";
  switch (f.temporal) {
    case Temporal::kTransient: out += "transient"; break;
    case Temporal::kIntermittent: out += "every" + std::to_string(f.period); break;
    case Temporal::kPersistent: out += "sticky"; break;
  }
  return out;
}

}  // namespace dts::fault
