#include "core/run.h"

#include <algorithm>
#include <cmath>

#include "apps/http.h"
#include "ntsim/kernel32.h"
#include "ntsim/scm.h"
#include "topo/install.h"
#include "topo/loadgen.h"

namespace dts::core {

/// The simulated world of one run. Declaration order is load-bearing: the
/// Network must outlive the machines — including the topology machines in
/// `machines`, declared (hence destroyed) after it (see netsim.h).
struct FaultInjectionRun::World {
  World(std::uint64_t seed, double target_cpu_scale, double target_jitter,
        nt::net::NetworkConfig net_cfg)
      : simulation(seed),
        network(simulation, net_cfg),
        target(simulation, nt::MachineConfig{.name = "target",
                                             .cpu_scale = target_cpu_scale,
                                             .jitter = target_jitter}),
        control(simulation, nt::MachineConfig{.name = "control", .cpu_scale = 0.25}) {}

  sim::Simulation simulation;
  nt::net::Network network;
  nt::Machine target;
  nt::Machine control;
  std::vector<std::unique_ptr<nt::Machine>> machines;  // topology machines
  topo::TopologyRuntime topo_rt;
  std::shared_ptr<ClientReport> report = std::make_shared<ClientReport>();
  obs::SpanLog spans;  // middleware latency spans (detection/recovery)
  obs::rtrace::TraceLog rtrace;  // per-hop request spans (topology runs)
};

namespace {

/// Nearest-rank percentile over successful request latencies (µs).
std::int64_t percentile_us(const std::vector<std::int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(sorted.size()))));
  return sorted[std::min(rank, sorted.size()) - 1];
}

}  // namespace

FaultInjectionRun::FaultInjectionRun(RunConfig config) : cfg_(std::move(config)) {
  cfg_.mscs.service_name = cfg_.workload.service_name;
  cfg_.watchd.service_name = cfg_.workload.service_name;
  cfg_.watchd.version = cfg_.watchd_version;
}

FaultInjectionRun::~FaultInjectionRun() = default;

nt::Machine& FaultInjectionRun::target() { return world_->target; }

nt::Machine& FaultInjectionRun::control() { return world_->control; }

sim::Simulation& FaultInjectionRun::simulation() { return world_->simulation; }

nt::net::Network& FaultInjectionRun::network() { return world_->network; }

const obs::SpanLog& FaultInjectionRun::spans() const { return world_->spans; }

const std::set<nt::Fn>& FaultInjectionRun::activated_functions() const {
  return interceptor_.called(cfg_.workload.target_image);
}

RunResult FaultInjectionRun::execute(const std::optional<inject::FaultSpec>& fault) {
  world_ = std::make_unique<World>(cfg_.seed, cfg_.target_cpu_scale, cfg_.target_jitter,
                                   cfg_.net);
  World& w = *world_;
  if (!cfg_.topo.empty()) return execute_topology(fault);

  // --- install the server -----------------------------------------------------
  std::string expected_index;
  switch (cfg_.workload.server) {
    case ServerKind::kApache:
      expected_index = apps::install_apache(w.target, w.network, cfg_.apache);
      break;
    case ServerKind::kIis:
      if (cfg_.workload.client == ClientKind::kFtp) cfg_.iis.enable_ftp = true;
      expected_index = apps::install_iis(w.target, w.network, cfg_.iis);
      break;
    case ServerKind::kSql:
      apps::install_sql_server(w.target, w.network, cfg_.sql);
      break;
  }

  // --- install middleware ------------------------------------------------------
  // Spans live in the World so middleware coroutines can write through the
  // config pointer for the whole run; refreshed here for every execute().
  cfg_.mscs.spans = &w.spans;
  cfg_.watchd.spans = &w.spans;
  switch (cfg_.middleware) {
    case mw::MiddlewareKind::kNone:
      break;
    case mw::MiddlewareKind::kMscs:
      mw::install_mscs(w.target, cfg_.mscs);
      break;
    case mw::MiddlewareKind::kWatchd:
      cfg_.watchd.heartbeat_port = cfg_.workload.port;
      mw::install_watchd(w.target, cfg_.watchd, &w.network);
      break;
  }

  // --- arm the injector ---------------------------------------------------------
  interceptor_ = inject::Interceptor{};
  if (cfg_.checkpoints != nullptr) interceptor_.set_checkpoints(*cfg_.checkpoints);
  interceptor_.set_trace_limit(cfg_.trace_limit);
  if (cfg_.golden_capture > 0) {
    interceptor_.set_golden_capture(cfg_.workload.target_image, cfg_.golden_capture);
  }
  if (fault) interceptor_.arm(*fault);
  w.target.k32().set_hook(&interceptor_);

  // --- start the service (directly, or via the middleware that owns it) ---------
  switch (cfg_.middleware) {
    case mw::MiddlewareKind::kNone:
      w.target.scm().start_service(cfg_.workload.service_name);
      break;
    case mw::MiddlewareKind::kMscs:
      mw::start_mscs(w.target, cfg_.mscs);
      break;
    case mw::MiddlewareKind::kWatchd:
      mw::start_watchd(w.target, cfg_.watchd);
      break;
  }

  // --- start the client workload -------------------------------------------------
  ClientParams params;
  params.target_machine = "target";
  params.port = cfg_.workload.port;
  params.config = cfg_.client;
  params.report = w.report;

  nt::net::Network* net = &w.network;
  if (cfg_.workload.client == ClientKind::kFtp) {
    const std::string expected = apps::ftp_download_content();
    w.control.register_program("ftpclient.exe", [params, net, expected](nt::Ctx c) {
      return ftp_client_program(c, net, params, "download.bin", expected);
    });
    w.control.start_process("ftpclient.exe", "ftpclient.exe");
  } else if (cfg_.workload.client == ClientKind::kHttp) {
    const std::string expected_cgi = apps::http::expected_cgi_body("id=42");
    w.control.register_program(
        "httpclient.exe", [params, net, expected_index, expected_cgi](nt::Ctx c) {
          return http_client_program(c, net, params, expected_index, expected_cgi);
        });
    w.control.start_process("httpclient.exe", "httpclient.exe");
  } else {
    const std::string query = apps::sql_client_query();
    const std::string expected = apps::expected_sql_reply(cfg_.sql);
    w.control.register_program("sqlclient.exe",
                               [params, net, query, expected](nt::Ctx c) {
                                 return sql_client_program(c, net, params, query, expected);
                               });
    w.control.start_process("sqlclient.exe", "sqlclient.exe");
  }

  // --- run to completion -----------------------------------------------------------
  const sim::TimePoint cap = w.simulation.now() + cfg_.run_timeout;
  while (!w.report->finished && w.simulation.now() < cap &&
         w.simulation.pending_events() > 0) {
    w.simulation.step();
  }
  // Grace period: polling monitors (MSCS) may be one tick away from logging
  // a restart the client already benefited from; let the world settle before
  // reading the logs. Does not affect response times (client timestamps).
  if (w.report->finished) {
    sim::TimePoint settle = w.simulation.now() + sim::Duration::seconds(12);
    if (cap < settle) settle = cap;
    w.simulation.run_until(settle);
  }

  // --- classify ----------------------------------------------------------------------
  RunResult result;
  result.sim_elapsed = w.simulation.now() - sim::TimePoint{};
  if (fault) result.fault = *fault;
  // An injection that left the parameter word unchanged (zeroing an already
  // zero argument, ...) is inert: it cannot change behaviour and must not
  // count toward the paper-table activated-fault denominators.
  result.activated = interceptor_.effective();
  result.client_finished = w.report->finished;
  result.retries = w.report->total_retries();
  result.requests = w.report->requests;

  // Restart accounting mirrors the paper: MSCS restarts come from the NT
  // event log, watchd restarts from its own log file (§3).
  switch (cfg_.middleware) {
    case mw::MiddlewareKind::kNone:
      result.restarts = 0;
      break;
    case mw::MiddlewareKind::kMscs:
      result.restarts = static_cast<int>(
          w.target.event_log().count("ClusSvc", mw::kMscsEventRestart));
      break;
    case mw::MiddlewareKind::kWatchd:
      result.restarts =
          static_cast<int>(mw::watchd_restarts_logged(w.target, cfg_.watchd.log_path));
      break;
  }

  if (!w.report->finished) {
    result.outcome = Outcome::kFailure;
    result.response_received = w.report->any_response();
    result.response_time = cfg_.run_timeout;
    result.detail = "client did not complete within the run timeout";
  } else {
    result.response_time = w.report->finished_at - w.report->started_at;
    if (!w.report->all_ok()) {
      result.outcome = Outcome::kFailure;
      result.response_received = w.report->any_response();
    } else if (result.restarts > 0 && result.retries > 0) {
      result.outcome = Outcome::kRestartRetrySuccess;
    } else if (result.restarts > 0) {
      result.outcome = Outcome::kRestartSuccess;
    } else if (result.retries > 0) {
      result.outcome = Outcome::kRetrySuccess;
    } else {
      result.outcome = Outcome::kNormalSuccess;
    }
  }

  // Diagnostics: the target image's abnormal exits, if any.
  for (const auto& rec : w.target.exit_history()) {
    if (rec.image == cfg_.workload.target_image && rec.exit_code >= 0xC0000000u) {
      result.detail = rec.reason;
      break;
    }
  }
  return result;
}

RunResult FaultInjectionRun::execute_topology(const std::optional<inject::FaultSpec>& fault) {
  World& w = *world_;

  // --- build the tier machines and their wiring --------------------------------
  w.rtrace.set_enabled(cfg_.rtrace != obs::rtrace::RtraceMode::kOff);
  topo::TierHostParams hp;
  hp.apache = cfg_.apache;
  hp.iis = cfg_.iis;
  hp.sql = cfg_.sql;
  hp.jitter = cfg_.target_jitter;
  hp.hop_timeout = cfg_.client.response_timeout;
  hp.ready_timeout = cfg_.client.server_up_timeout;
  hp.ready_poll = cfg_.client.server_up_poll;
  hp.trace = &w.rtrace;
  w.topo_rt = topo::install_topology(w.simulation, w.network, w.machines, cfg_.topo, hp);

  // Per-link network overrides: tier names (or "client") expand to the
  // tier's machines. Resolved before anything connects.
  for (const auto& link : cfg_.links) {
    nt::net::NetworkConfig lc = cfg_.net;
    if (link.latency_us >= 0) lc.latency = sim::Duration::micros(link.latency_us);
    if (link.bytes_per_second >= 0) {
      lc.bytes_per_second = static_cast<std::uint64_t>(link.bytes_per_second);
    }
    const auto machines_of = [&](const std::string& endpoint) {
      std::vector<std::string> out;
      if (endpoint == "client") {
        out.push_back("control");
        return out;
      }
      for (const auto& tr : w.topo_rt.tiers) {
        if (tr.spec.name != endpoint) continue;
        out.push_back(tr.lb);
        out.insert(out.end(), tr.instances.begin(), tr.instances.end());
      }
      return out;
    };
    for (const auto& a : machines_of(link.a)) {
      for (const auto& b : machines_of(link.b)) w.network.set_link(a, b, lc);
    }
  }

  // --- arm the injector on the faulted tier's instances -------------------------
  // Only that tier's machines are hooked, so invocation counting — keyed by
  // (image, fn) — numbers the tier's calls even when another tier runs the
  // same application.
  interceptor_ = inject::Interceptor{};
  if (cfg_.checkpoints != nullptr) interceptor_.set_checkpoints(*cfg_.checkpoints);
  interceptor_.set_trace_limit(cfg_.trace_limit);
  if (cfg_.golden_capture > 0) {
    interceptor_.set_golden_capture(cfg_.workload.target_image, cfg_.golden_capture);
  }
  if (fault) interceptor_.arm(*fault);
  for (nt::Machine* m : w.topo_rt.tier_instances(cfg_.topo.fault_tier)) {
    m->k32().set_hook(&interceptor_);
  }

  // --- start the open-loop generator on the control machine ----------------------
  topo::LoadgenParams lg;
  lg.front_machine = w.topo_rt.front_machine;
  lg.front_port = w.topo_rt.front_port;
  lg.requests = cfg_.topo.requests;
  lg.offered_rps_milli = cfg_.topo.offered_rps_milli;
  lg.response_timeout = cfg_.client.response_timeout;
  lg.server_up_timeout = cfg_.client.server_up_timeout;
  lg.server_up_poll = cfg_.client.server_up_poll;
  lg.report = w.report;
  lg.trace = &w.rtrace;
  nt::net::Network* net = &w.network;
  w.control.register_program(
      "loadgen.exe", [net, lg](nt::Ctx c) { return topo::loadgen_program(c, net, lg); });
  w.control.start_process("loadgen.exe", "loadgen.exe");

  // --- run to completion (same step/settle discipline as the classic path) -------
  const sim::TimePoint cap = w.simulation.now() + cfg_.run_timeout;
  while (!w.report->finished && w.simulation.now() < cap &&
         w.simulation.pending_events() > 0) {
    w.simulation.step();
  }
  if (w.report->finished) {
    sim::TimePoint settle = w.simulation.now() + sim::Duration::seconds(12);
    if (cap < settle) settle = cap;
    w.simulation.run_until(settle);
  }

  // --- classify -------------------------------------------------------------------
  RunResult result;
  result.sim_elapsed = w.simulation.now() - sim::TimePoint{};
  if (fault) result.fault = *fault;
  result.activated = interceptor_.effective();
  result.client_finished = w.report->finished;
  result.restarts = 0;  // no middleware in topology runs
  result.retries = 0;   // the generator never retries
  result.requests = w.report->requests;

  TopoRunStats ts;
  ts.tier = cfg_.topo.fault_tier;
  ts.offered_rps_milli = cfg_.topo.offered_rps_milli;
  ts.requests_total = cfg_.topo.requests;
  std::vector<std::int64_t> ok_latencies;
  for (const auto& r : w.report->requests) {
    if (r.ok) {
      ++ts.requests_ok;
      ok_latencies.push_back(r.elapsed.count_micros());
    }
  }
  std::sort(ok_latencies.begin(), ok_latencies.end());
  ts.p50_us = percentile_us(ok_latencies, 0.50);
  ts.p95_us = percentile_us(ok_latencies, 0.95);
  ts.p99_us = percentile_us(ok_latencies, 0.99);
  const std::int64_t threshold_us =
      cfg_.topo.degraded_p95_ms > 0 ? cfg_.topo.degraded_p95_ms * 1000
                                    : cfg_.client.response_timeout.count_micros() / 2;
  if (ts.requests_ok == 0) {
    ts.user_outcome = "outage";
  } else if (ts.requests_ok < ts.requests_total) {
    ts.user_outcome = "partial";
  } else if (ts.p95_us > threshold_us) {
    ts.user_outcome = "degraded";
  } else {
    ts.user_outcome = "masked";
  }
  result.topo = ts;

  // Finalize the request trace: stamp the injection onto the span the
  // corruption landed in, compute critical-path attribution and the
  // propagation-path digest.
  if (cfg_.rtrace != obs::rtrace::RtraceMode::kOff) {
    obs::rtrace::FinalizeParams fp;
    if (fault) fp.fault_id = fault->id();
    if (interceptor_.injected()) {
      fp.injection_us =
          (interceptor_.injection_time() - sim::TimePoint{}).count_micros();
      fp.injection_machine = interceptor_.injection_machine();
    }
    result.rtrace = obs::rtrace::finalize_trace(w.rtrace.take_spans(), fp);
  }

  // The classic five-way axis collapses to success/failure here: the
  // open-loop generator has no retry protocol and topology runs carry no
  // middleware, so the restart/retry outcomes cannot occur.
  if (!w.report->finished) {
    result.outcome = Outcome::kFailure;
    result.response_received = w.report->any_response();
    result.response_time = cfg_.run_timeout;
    result.detail = "workload generator did not complete within the run timeout";
  } else {
    result.response_time = w.report->finished_at - w.report->started_at;
    if (ts.requests_ok == ts.requests_total) {
      result.outcome = Outcome::kNormalSuccess;
    } else {
      result.outcome = Outcome::kFailure;
      result.response_received = w.report->any_response();
    }
  }

  // Diagnostics: the target image's abnormal exits anywhere in the faulted
  // tier.
  for (nt::Machine* m : w.topo_rt.tier_instances(cfg_.topo.fault_tier)) {
    bool found = false;
    for (const auto& rec : m->exit_history()) {
      if (rec.image == cfg_.workload.target_image && rec.exit_code >= 0xC0000000u) {
        result.detail = rec.reason;
        found = true;
        break;
      }
    }
    if (found) break;
  }
  return result;
}

RunResult execute_run(const RunConfig& config, const std::optional<inject::FaultSpec>& fault) {
  FaultInjectionRun run(config);
  return run.execute(fault);
}

}  // namespace dts::core
