// Run outcomes — the paper's five-way classification (§3), plus the Fig. 4
// refinement splitting failures into wrong-response and no-response.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "inject/fault.h"
#include "obs/rtrace/rtrace.h"
#include "sim/time.h"

namespace dts::core {

enum class Outcome {
  kNormalSuccess,        // correct responses, no restart, no retries
  kRestartSuccess,       // middleware restarted the server; no retries needed
  kRestartRetrySuccess,  // restart + at least one client retry
  kRetrySuccess,         // at least one client retry, no restart
  kFailure,              // some request never got a correct response
};

constexpr Outcome kAllOutcomes[] = {
    Outcome::kNormalSuccess, Outcome::kRestartSuccess, Outcome::kRestartRetrySuccess,
    Outcome::kRetrySuccess, Outcome::kFailure,
};

std::string_view to_string(Outcome o);
std::string_view short_label(Outcome o);  // for table columns

/// One client request's fate across its (up to three) attempts.
struct RequestResult {
  bool ok = false;
  int attempts = 0;
  bool any_response = false;  // something came back, even if wrong
  sim::Duration elapsed{};
  std::string detail;
};

/// What the client program observed (most DTS results are client-oriented,
/// paper §3).
struct ClientReport {
  std::vector<RequestResult> requests;
  bool finished = false;
  sim::TimePoint started_at{};
  sim::TimePoint finished_at{};

  bool all_ok() const;
  int total_retries() const;
  bool any_response() const;
};

/// User-visible outcome of a multi-tier run, as the propagation matrix
/// classifies it (src/topo/): in severity order.
constexpr std::string_view kTopoOutcomes[] = {
    "masked",    // every request correct, latency within the threshold
    "degraded",  // every request correct, but p95 latency over the threshold
    "partial",   // some requests failed, some succeeded (partial outage)
    "outage",    // no request succeeded (full outage)
};

/// Per-run statistics of the open-loop topology workload (absent for classic
/// single-machine runs). Latency percentiles are over successful requests.
struct TopoRunStats {
  std::string tier;          // the tier the fault targeted
  std::string user_outcome;  // one of kTopoOutcomes
  int requests_total = 0;    // offered requests
  int requests_ok = 0;       // correct replies
  std::int64_t p50_us = 0;
  std::int64_t p95_us = 0;
  std::int64_t p99_us = 0;
  std::int64_t offered_rps_milli = 0;  // the run's offered load

  friend bool operator==(const TopoRunStats&, const TopoRunStats&) = default;
};

/// Result of one fault-injection run.
struct RunResult {
  inject::FaultSpec fault;
  bool activated = false;  // the armed fault actually fired

  Outcome outcome = Outcome::kFailure;
  bool response_received = false;  // failures: wrong response vs none (Fig. 4)
  sim::Duration response_time{};   // workload start -> client completion
  int restarts = 0;                // middleware-initiated restarts observed
  int retries = 0;
  bool client_finished = false;
  std::string detail;  // e.g. the target's crash reason

  /// Total simulated time the run consumed (start to settle). Observability
  /// only — never serialized into campaign files, so outputs stay
  /// byte-identical whether or not anyone reads it.
  sim::Duration sim_elapsed{};

  /// Per-request detail (paper §3: "the specific response to each individual
  /// request") — one entry per workload request, in order.
  std::vector<RequestResult> requests;

  /// Multi-tier workload statistics; engaged only for topology campaigns.
  std::optional<TopoRunStats> topo;

  /// Causal request trace (obs/rtrace/); engaged only for topology campaigns
  /// with a non-off rtrace mode. Never part of run-line serialization — the
  /// journal carries it as the optional v7 "rt" trailer instead.
  std::optional<obs::rtrace::RunTrace> rtrace;

  /// One-line log form.
  std::string summary() const;
};

}  // namespace dts::core
