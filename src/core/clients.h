// The DTS workload clients (paper §4): HttpClient fetches a 115 kB static
// page and a 1 kB CGI page; SqlClient issues one single-table SELECT. Both
// verify reply correctness, time out after 15 s, wait 15 s between retries,
// and give up after the third attempt.
#pragma once

#include <memory>
#include <string>

#include "core/outcome.h"
#include "ntsim/netsim.h"
#include "ntsim/process.h"

namespace dts::core {

struct ClientConfig {
  sim::Duration response_timeout = sim::Duration::seconds(15);
  sim::Duration retry_wait = sim::Duration::seconds(15);
  int max_attempts = 3;

  /// DTS starts the client only after the server comes up (paper Fig. 1:
  /// "Wait for server to be up"), bounded by this timeout.
  sim::Duration server_up_timeout = sim::Duration::seconds(90);
  sim::Duration server_up_poll = sim::Duration::millis(500);
};

struct ClientParams {
  std::string target_machine = "target";
  std::uint16_t port = 80;
  ClientConfig config;
  std::shared_ptr<ClientReport> report;
};

/// HttpClient: two requests — GET /index.html (expects `expected_index`) and
/// GET /cgi-bin/test.cgi?id=42 (expects the CGI body for query "id=42").
sim::Task http_client_program(nt::Ctx c, nt::net::Network* net, ClientParams params,
                              std::string expected_index, std::string expected_cgi);

/// SqlClient: one SELECT over the seeded table, reply must match exactly.
sim::Task sql_client_program(nt::Ctx c, nt::net::Network* net, ClientParams params,
                             std::string query, std::string expected_reply);

/// FtpClient (extension workload): downloads `path` via anonymous FTP and
/// verifies the payload, with the same retry protocol.
sim::Task ftp_client_program(nt::Ctx c, nt::net::Network* net, ClientParams params,
                             std::string path, std::string expected_payload);

}  // namespace dts::core
