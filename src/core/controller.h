// The DTS distributed architecture: "the management and user interface
// software resides on the control machine and the fault injection mechanism,
// workload generator, and data collector are present on a separate target
// machine... necessary if there is a possibility of a machine crash caused
// by an injected fault" (paper §3).
//
// The Controller drives a TargetAgent through a Transport. The in-process
// transport provided here runs both in one address space (the paper notes
// the tool "may be used with all components on a single machine"); the
// protocol is line-oriented text so a socket transport drops in unchanged.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "core/campaign.h"

namespace dts::core {

/// One side of a bidirectional message channel.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void send(const std::string& message) = 0;
  virtual void set_receiver(std::function<void(const std::string&)> on_message) = 0;
};

/// A connected pair of in-process transports.
struct TransportPair {
  std::unique_ptr<Transport> controller_end;
  std::unique_ptr<Transport> agent_end;
};
TransportPair make_in_process_transport();

/// Lives on the target machine: executes profiling and fault-injection runs
/// on request. Stateless between requests (every run builds a fresh world).
class TargetAgent {
 public:
  TargetAgent(RunConfig base_config, Transport& transport);

  const RunConfig& base_config() const { return base_config_; }

 private:
  void on_message(const std::string& msg);

  RunConfig base_config_;
  Transport& transport_;
};

/// Lives on the control machine: sends commands, parses replies.
class Controller {
 public:
  explicit Controller(Transport& transport);

  /// Asks the agent for the workload's activated functions.
  std::set<std::string> profile();

  /// Asks the agent to execute one fault-injection run.
  RunResult run_fault(const inject::FaultSpec& fault);

  /// Number of protocol errors observed (malformed replies).
  int protocol_errors() const { return protocol_errors_; }

 private:
  void on_message(const std::string& msg);

  Transport& transport_;
  std::optional<std::string> last_reply_;
  int protocol_errors_ = 0;
};

/// Wire encoding of a RunResult (exposed for tests).
std::string encode_run_result(const RunResult& r);
std::optional<RunResult> decode_run_result(const std::string& text);

}  // namespace dts::core
