#include "core/workload.h"

#include <algorithm>
#include <stdexcept>

namespace dts::core {

WorkloadSpec apache1_workload() {
  return WorkloadSpec{
      .name = "Apache1",
      .server = ServerKind::kApache,
      .client = ClientKind::kHttp,
      .service_name = "Apache",
      .target_image = "apache.exe",
      .port = 80,
  };
}

WorkloadSpec apache2_workload() {
  WorkloadSpec w = apache1_workload();
  w.name = "Apache2";
  w.target_image = "apache_child.exe";
  return w;
}

WorkloadSpec iis_workload() {
  return WorkloadSpec{
      .name = "IIS",
      .server = ServerKind::kIis,
      .client = ClientKind::kHttp,
      .service_name = "W3SVC",
      .target_image = "inetinfo.exe",
      .port = 80,
  };
}

WorkloadSpec sql_workload() {
  return WorkloadSpec{
      .name = "SQL",
      .server = ServerKind::kSql,
      .client = ClientKind::kSql,
      .service_name = "MSSQLServer",
      .target_image = "sqlservr.exe",
      .port = 1433,
  };
}

WorkloadSpec iis_ftp_workload() {
  WorkloadSpec w = iis_workload();
  w.name = "IIS-FTP";
  w.client = ClientKind::kFtp;
  w.port = 21;
  return w;
}

WorkloadSpec workload_by_name(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "apache1") return apache1_workload();
  if (lower == "apache2") return apache2_workload();
  if (lower == "iis") return iis_workload();
  if (lower == "iis-ftp" || lower == "iisftp") return iis_ftp_workload();
  if (lower == "sql") return sql_workload();
  throw std::invalid_argument("unknown workload: " + name);
}

}  // namespace dts::core
