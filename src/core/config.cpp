#include "core/config.h"

#include <cctype>
#include <charconv>
#include <sstream>

#include "fault/model.h"

namespace dts::core {

namespace {

std::string trim(std::string v) {
  std::size_t b = 0;
  while (b < v.size() && std::isspace(static_cast<unsigned char>(v[b])) != 0) ++b;
  std::size_t e = v.size();
  while (e > b && std::isspace(static_cast<unsigned char>(v[e - 1])) != 0) --e;
  return v.substr(b, e - b);
}

std::string lower(std::string v) {
  for (char& ch : v) ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  return v;
}

bool parse_int(const std::string& v, std::int64_t* out) {
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), *out);
  return ec == std::errc{} && p == v.data() + v.size();
}

bool parse_double(const std::string& v, double* out) {
  try {
    std::size_t pos = 0;
    *out = std::stod(v, &pos);
    return pos == v.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

std::optional<DtsConfig> parse_config(const std::string& text, std::string* error) {
  DtsConfig cfg;
  cfg.run.workload = iis_workload();  // default workload

  std::string section;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = "line " + std::to_string(line_no) + ": " + msg;
    return std::nullopt;
  };

  while (std::getline(in, raw)) {
    ++line_no;
    // strip comments (';' or '#')
    const auto comment = raw.find_first_of(";#");
    std::string line = trim(comment == std::string::npos ? raw : raw.substr(0, comment));
    if (line.empty()) continue;
    if (line.front() == '[' && line.back() == ']') {
      section = lower(trim(line.substr(1, line.size() - 2)));
      if (section != "test" && section != "client" && section != "machine" &&
          section != "middleware") {
        return fail("unknown section [" + section + "]");
      }
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) return fail("expected key = value");
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string value = trim(line.substr(eq + 1));
    std::int64_t iv = 0;
    double dv = 0;

    if (section == "test") {
      if (key == "workload") {
        try {
          cfg.run.workload = workload_by_name(value);
        } catch (const std::exception& e) {
          return fail(e.what());
        }
      } else if (key == "middleware") {
        const std::string m = lower(value);
        if (m == "none") cfg.run.middleware = mw::MiddlewareKind::kNone;
        else if (m == "mscs") cfg.run.middleware = mw::MiddlewareKind::kMscs;
        else if (m == "watchd") cfg.run.middleware = mw::MiddlewareKind::kWatchd;
        else return fail("bad middleware '" + value + "'");
      } else if (key == "watchd_version") {
        if (!parse_int(value, &iv) || iv < 1 || iv > 3) return fail("bad watchd_version");
        cfg.run.watchd_version = static_cast<mw::WatchdVersion>(iv);
      } else if (key == "seed") {
        if (!parse_int(value, &iv) || iv < 0) return fail("bad seed");
        cfg.campaign.seed = static_cast<std::uint64_t>(iv);
      } else if (key == "iterations") {
        if (!parse_int(value, &iv) || iv < 1) return fail("bad iterations");
        cfg.campaign.iterations = static_cast<int>(iv);
      } else if (key == "max_faults") {
        if (!parse_int(value, &iv) || iv < 0) return fail("bad max_faults");
        cfg.campaign.max_faults = static_cast<std::size_t>(iv);
      } else if (key == "jobs") {
        if (!parse_int(value, &iv) || iv < 0 || iv > 1024) return fail("bad jobs");
        cfg.campaign.jobs = static_cast<int>(iv);
      } else if (key == "models") {
        std::string model_error;
        const auto set = fault::ModelSet::parse(lower(value), &model_error);
        if (!set) return fail(model_error);
        // Canonical CSV; the paper default stores as empty so the serialized
        // config (and the journal header embedding it) is byte-identical to
        // a config that never named the key.
        cfg.campaign.models = set->is_paper_default() ? "" : set->to_string();
      } else if (key == "fault_list_file") {
        cfg.fault_list_file = value;
      } else {
        return fail("unknown key '" + key + "' in [test]");
      }
    } else if (section == "client") {
      if (key == "response_timeout_s") {
        if (!parse_int(value, &iv) || iv < 1) return fail("bad response_timeout_s");
        cfg.run.client.response_timeout = sim::Duration::seconds(iv);
      } else if (key == "retry_wait_s") {
        if (!parse_int(value, &iv) || iv < 0) return fail("bad retry_wait_s");
        cfg.run.client.retry_wait = sim::Duration::seconds(iv);
      } else if (key == "max_attempts") {
        if (!parse_int(value, &iv) || iv < 1) return fail("bad max_attempts");
        cfg.run.client.max_attempts = static_cast<int>(iv);
      } else if (key == "server_up_timeout_s") {
        if (!parse_int(value, &iv) || iv < 0) return fail("bad server_up_timeout_s");
        cfg.run.client.server_up_timeout = sim::Duration::seconds(iv);
      } else {
        return fail("unknown key '" + key + "' in [client]");
      }
    } else if (section == "machine") {
      if (key == "target_cpu_scale") {
        if (!parse_double(value, &dv) || dv <= 0) return fail("bad target_cpu_scale");
        cfg.run.target_cpu_scale = dv;
      } else if (key == "run_timeout_s") {
        if (!parse_int(value, &iv) || iv < 1) return fail("bad run_timeout_s");
        cfg.run.run_timeout = sim::Duration::seconds(iv);
      } else if (key == "target_jitter") {
        if (!parse_double(value, &dv) || dv < 0 || dv > 1) return fail("bad target_jitter");
        cfg.run.target_jitter = dv;
      } else if (key == "apache_children") {
        if (!parse_int(value, &iv) || iv < 1 || iv > 32) return fail("bad apache_children");
        cfg.run.apache.max_children = static_cast<int>(iv);
      } else {
        return fail("unknown key '" + key + "' in [machine]");
      }
    } else if (section == "middleware") {
      if (key == "mscs_poll_interval_s") {
        if (!parse_int(value, &iv) || iv < 1) return fail("bad mscs_poll_interval_s");
        cfg.run.mscs.poll_interval = sim::Duration::seconds(iv);
      } else if (key == "mscs_pending_timeout_s") {
        if (!parse_int(value, &iv) || iv < 1) return fail("bad mscs_pending_timeout_s");
        cfg.run.mscs.pending_timeout = sim::Duration::seconds(iv);
      } else if (key == "mscs_restart_threshold") {
        if (!parse_int(value, &iv) || iv < 0) return fail("bad mscs_restart_threshold");
        cfg.run.mscs.restart_threshold = static_cast<int>(iv);
      } else if (key == "watchd_heartbeat") {
        if (!parse_int(value, &iv) || (iv != 0 && iv != 1)) {
          return fail("bad watchd_heartbeat");
        }
        cfg.run.watchd.heartbeat = iv == 1;
      } else {
        return fail("unknown key '" + key + "' in [middleware]");
      }
    } else {
      return fail("key outside of any section");
    }
  }
  cfg.run.seed = cfg.campaign.seed;
  return cfg;
}

std::string serialize_config(const DtsConfig& cfg) {
  std::ostringstream out;
  out << "[test]\n";
  out << "workload = " << cfg.run.workload.name << "\n";
  out << "middleware = " << lower(std::string(to_string(cfg.run.middleware))) << "\n";
  out << "watchd_version = " << static_cast<int>(cfg.run.watchd_version) << "\n";
  out << "seed = " << cfg.campaign.seed << "\n";
  out << "iterations = " << cfg.campaign.iterations << "\n";
  out << "max_faults = " << cfg.campaign.max_faults << "\n";
  out << "jobs = " << cfg.campaign.jobs << "\n";
  if (!cfg.campaign.models.empty()) out << "models = " << cfg.campaign.models << "\n";
  if (!cfg.fault_list_file.empty()) out << "fault_list_file = " << cfg.fault_list_file << "\n";
  out << "\n[client]\n";
  out << "response_timeout_s = " << cfg.run.client.response_timeout.count_micros() / 1000000
      << "\n";
  out << "retry_wait_s = " << cfg.run.client.retry_wait.count_micros() / 1000000 << "\n";
  out << "max_attempts = " << cfg.run.client.max_attempts << "\n";
  out << "server_up_timeout_s = "
      << cfg.run.client.server_up_timeout.count_micros() / 1000000 << "\n";
  out << "\n[machine]\n";
  out << "target_cpu_scale = " << cfg.run.target_cpu_scale << "\n";
  out << "run_timeout_s = " << cfg.run.run_timeout.count_micros() / 1000000 << "\n";
  out << "\n[middleware]\n";
  out << "mscs_poll_interval_s = " << cfg.run.mscs.poll_interval.count_micros() / 1000000
      << "\n";
  out << "mscs_pending_timeout_s = "
      << cfg.run.mscs.pending_timeout.count_micros() / 1000000 << "\n";
  out << "mscs_restart_threshold = " << cfg.run.mscs.restart_threshold << "\n";
  out << "watchd_heartbeat = " << (cfg.run.watchd.heartbeat ? 1 : 0) << "\n";
  return out.str();
}

}  // namespace dts::core
