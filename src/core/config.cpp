#include "core/config.h"

#include <cctype>
#include <charconv>
#include <sstream>
#include <vector>

#include "fault/model.h"
#include "topo/topology.h"

namespace dts::core {

namespace {

std::string trim(std::string v) {
  std::size_t b = 0;
  while (b < v.size() && std::isspace(static_cast<unsigned char>(v[b])) != 0) ++b;
  std::size_t e = v.size();
  while (e > b && std::isspace(static_cast<unsigned char>(v[e - 1])) != 0) --e;
  return v.substr(b, e - b);
}

std::string lower(std::string v) {
  for (char& ch : v) ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  return v;
}

bool parse_int(const std::string& v, std::int64_t* out) {
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), *out);
  return ec == std::errc{} && p == v.data() + v.size();
}

bool parse_double(const std::string& v, double* out) {
  try {
    std::size_t pos = 0;
    *out = std::stod(v, &pos);
    return pos == v.size();
  } catch (...) {
    return false;
  }
}

/// The workload a tier's application corresponds to: the faulted tier
/// determines the target image of the sweep, so topology campaigns reuse the
/// classic workload identity (Apache2 = the worker process faults hit).
std::string workload_for_app(const std::string& app) {
  if (app == "apache") return "Apache2";
  if (app == "iis") return "IIS";
  return "SQL";
}

/// Splits a "link.<a>.<b>.<field>" key; false when it is not one.
bool split_link_key(const std::string& key, std::string* a, std::string* b,
                    std::string* field) {
  if (key.rfind("link.", 0) != 0) return false;
  const std::string rest = key.substr(5);
  const auto d1 = rest.find('.');
  if (d1 == std::string::npos) return false;
  const auto d2 = rest.find('.', d1 + 1);
  if (d2 == std::string::npos) return false;
  *a = rest.substr(0, d1);
  *b = rest.substr(d1 + 1, d2 - d1 - 1);
  *field = rest.substr(d2 + 1);
  return !a->empty() && !b->empty() && !field->empty();
}

}  // namespace

std::optional<DtsConfig> parse_config(const std::string& text, std::string* error) {
  DtsConfig cfg;
  cfg.run.workload = iis_workload();  // default workload

  bool workload_set = false;   // explicit `workload =` (conflicts with topology)
  bool topo_keys_seen = false; // [topology] knobs that require a topology
  std::string explicit_tier;   // `tier =`, validated once the topology is known

  std::string section;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = "line " + std::to_string(line_no) + ": " + msg;
    return std::nullopt;
  };

  while (std::getline(in, raw)) {
    ++line_no;
    // strip comments (';' or '#')
    const auto comment = raw.find_first_of(";#");
    std::string line = trim(comment == std::string::npos ? raw : raw.substr(0, comment));
    if (line.empty()) continue;
    if (line.front() == '[' && line.back() == ']') {
      section = lower(trim(line.substr(1, line.size() - 2)));
      if (section != "test" && section != "client" && section != "machine" &&
          section != "middleware" && section != "topology" && section != "network") {
        return fail("unknown section [" + section + "]");
      }
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) return fail("expected key = value");
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string value = trim(line.substr(eq + 1));
    std::int64_t iv = 0;
    double dv = 0;

    if (section == "test") {
      if (key == "workload") {
        if (!cfg.run.topo.empty()) {
          return fail("workload and topology are mutually exclusive");
        }
        try {
          cfg.run.workload = workload_by_name(value);
        } catch (const std::exception& e) {
          return fail(e.what());
        }
        workload_set = true;
      } else if (key == "middleware") {
        const std::string m = lower(value);
        if (m == "none") cfg.run.middleware = mw::MiddlewareKind::kNone;
        else if (m == "mscs") cfg.run.middleware = mw::MiddlewareKind::kMscs;
        else if (m == "watchd") cfg.run.middleware = mw::MiddlewareKind::kWatchd;
        else return fail("bad middleware '" + value + "'");
      } else if (key == "watchd_version") {
        if (!parse_int(value, &iv) || iv < 1 || iv > 3) return fail("bad watchd_version");
        cfg.run.watchd_version = static_cast<mw::WatchdVersion>(iv);
      } else if (key == "seed") {
        if (!parse_int(value, &iv) || iv < 0) return fail("bad seed");
        cfg.campaign.seed = static_cast<std::uint64_t>(iv);
      } else if (key == "iterations") {
        if (!parse_int(value, &iv) || iv < 1) return fail("bad iterations");
        cfg.campaign.iterations = static_cast<int>(iv);
      } else if (key == "max_faults") {
        if (!parse_int(value, &iv) || iv < 0) return fail("bad max_faults");
        cfg.campaign.max_faults = static_cast<std::size_t>(iv);
      } else if (key == "jobs") {
        if (!parse_int(value, &iv) || iv < 0 || iv > 1024) return fail("bad jobs");
        cfg.campaign.jobs = static_cast<int>(iv);
      } else if (key == "models") {
        std::string model_error;
        const auto set = fault::ModelSet::parse(lower(value), &model_error);
        if (!set) return fail(model_error);
        // Canonical CSV; the paper default stores as empty so the serialized
        // config (and the journal header embedding it) is byte-identical to
        // a config that never named the key.
        cfg.campaign.models = set->is_paper_default() ? "" : set->to_string();
      } else if (key == "fault_list_file") {
        cfg.fault_list_file = value;
      } else {
        return fail("unknown key '" + key + "' in [test]");
      }
    } else if (section == "client") {
      if (key == "response_timeout_s") {
        if (!parse_int(value, &iv) || iv < 1) return fail("bad response_timeout_s");
        cfg.run.client.response_timeout = sim::Duration::seconds(iv);
      } else if (key == "retry_wait_s") {
        if (!parse_int(value, &iv) || iv < 0) return fail("bad retry_wait_s");
        cfg.run.client.retry_wait = sim::Duration::seconds(iv);
      } else if (key == "max_attempts") {
        if (!parse_int(value, &iv) || iv < 1) return fail("bad max_attempts");
        cfg.run.client.max_attempts = static_cast<int>(iv);
      } else if (key == "server_up_timeout_s") {
        if (!parse_int(value, &iv) || iv < 0) return fail("bad server_up_timeout_s");
        cfg.run.client.server_up_timeout = sim::Duration::seconds(iv);
      } else {
        return fail("unknown key '" + key + "' in [client]");
      }
    } else if (section == "machine") {
      if (key == "target_cpu_scale") {
        if (!parse_double(value, &dv) || dv <= 0) return fail("bad target_cpu_scale");
        cfg.run.target_cpu_scale = dv;
      } else if (key == "run_timeout_s") {
        if (!parse_int(value, &iv) || iv < 1) return fail("bad run_timeout_s");
        cfg.run.run_timeout = sim::Duration::seconds(iv);
      } else if (key == "target_jitter") {
        if (!parse_double(value, &dv) || dv < 0 || dv > 1) return fail("bad target_jitter");
        cfg.run.target_jitter = dv;
      } else if (key == "apache_children") {
        if (!parse_int(value, &iv) || iv < 1 || iv > 32) return fail("bad apache_children");
        cfg.run.apache.max_children = static_cast<int>(iv);
      } else {
        return fail("unknown key '" + key + "' in [machine]");
      }
    } else if (section == "middleware") {
      if (key == "mscs_poll_interval_s") {
        if (!parse_int(value, &iv) || iv < 1) return fail("bad mscs_poll_interval_s");
        cfg.run.mscs.poll_interval = sim::Duration::seconds(iv);
      } else if (key == "mscs_pending_timeout_s") {
        if (!parse_int(value, &iv) || iv < 1) return fail("bad mscs_pending_timeout_s");
        cfg.run.mscs.pending_timeout = sim::Duration::seconds(iv);
      } else if (key == "mscs_restart_threshold") {
        if (!parse_int(value, &iv) || iv < 0) return fail("bad mscs_restart_threshold");
        cfg.run.mscs.restart_threshold = static_cast<int>(iv);
      } else if (key == "watchd_heartbeat") {
        if (!parse_int(value, &iv) || (iv != 0 && iv != 1)) {
          return fail("bad watchd_heartbeat");
        }
        cfg.run.watchd.heartbeat = iv == 1;
      } else {
        return fail("unknown key '" + key + "' in [middleware]");
      }
    } else if (section == "topology") {
      if (key == "topology") {
        if (workload_set) return fail("workload and topology are mutually exclusive");
        std::string topo_error;
        const auto spec = topo::parse_topology(value, &topo_error);
        if (!spec) return fail(topo_error);
        // Keep already-parsed knobs; only the structure (and the default
        // fault tier) comes from the topology string.
        cfg.run.topo.tiers = spec->tiers;
        cfg.run.topo.fault_tier = spec->fault_tier;
      } else if (key == "tier") {
        explicit_tier = value;
        topo_keys_seen = true;
      } else if (key == "offered_rps_milli") {
        if (!parse_int(value, &iv) || iv < 1) return fail("bad offered_rps_milli");
        cfg.run.topo.offered_rps_milli = iv;
        topo_keys_seen = true;
      } else if (key == "requests") {
        if (!parse_int(value, &iv) || iv < 1 || iv > 1000) return fail("bad requests");
        cfg.run.topo.requests = static_cast<int>(iv);
        topo_keys_seen = true;
      } else if (key == "degraded_p95_ms") {
        if (!parse_int(value, &iv) || iv < 0) return fail("bad degraded_p95_ms");
        cfg.run.topo.degraded_p95_ms = iv;
        topo_keys_seen = true;
      } else if (key == "rtrace") {
        if (!obs::rtrace::rtrace_mode_from_string(value, &cfg.run.rtrace)) {
          return fail("bad rtrace mode '" + value + "' (off|failures|all)");
        }
        topo_keys_seen = true;
      } else {
        return fail("unknown key '" + key + "' in [topology]");
      }
    } else if (section == "network") {
      std::string la;
      std::string lb;
      std::string field;
      if (key == "latency_us") {
        if (!parse_int(value, &iv) || iv < 0) return fail("bad latency_us");
        cfg.run.net.latency = sim::Duration::micros(iv);
      } else if (key == "bytes_per_second") {
        if (!parse_int(value, &iv) || iv < 1) return fail("bad bytes_per_second");
        cfg.run.net.bytes_per_second = iv;
      } else if (split_link_key(key, &la, &lb, &field)) {
        if (field != "latency_us" && field != "bytes_per_second") {
          return fail("unknown link field '" + field + "' in [network]");
        }
        if (!parse_int(value, &iv) || iv < (field == "latency_us" ? 0 : 1)) {
          return fail("bad " + key);
        }
        topo::LinkOverride* link = nullptr;
        for (auto& l : cfg.run.links) {
          if ((l.a == la && l.b == lb) || (l.a == lb && l.b == la)) link = &l;
        }
        if (link == nullptr) {
          cfg.run.links.push_back(topo::LinkOverride{la, lb, -1, -1});
          link = &cfg.run.links.back();
        }
        if (field == "latency_us") link->latency_us = iv;
        else link->bytes_per_second = iv;
      } else {
        return fail("unknown key '" + key + "' in [network]");
      }
    } else {
      return fail("key outside of any section");
    }
  }

  if (!cfg.run.topo.empty()) {
    if (cfg.run.middleware != mw::MiddlewareKind::kNone) {
      return fail("topology campaigns do not support middleware");
    }
    if (!explicit_tier.empty()) {
      if (cfg.run.topo.find_tier(explicit_tier) == nullptr) {
        return fail("tier '" + explicit_tier + "' is not in the topology");
      }
      cfg.run.topo.fault_tier = explicit_tier;
    }
    for (const auto& l : cfg.run.links) {
      for (const std::string& end : {l.a, l.b}) {
        if (end != "client" && cfg.run.topo.find_tier(end) == nullptr) {
          return fail("link endpoint '" + end + "' is not a tier or 'client'");
        }
      }
    }
    // The faulted tier's application decides the sweep's target image.
    try {
      cfg.run.workload =
          workload_by_name(workload_for_app(cfg.run.topo.find_tier(cfg.run.topo.fault_tier)->app));
    } catch (const std::exception& e) {
      return fail(e.what());
    }
  } else if (topo_keys_seen || !cfg.run.links.empty()) {
    return fail("[topology] knobs and link.* overrides require a topology");
  }

  cfg.run.seed = cfg.campaign.seed;
  return cfg;
}

std::string serialize_config(const DtsConfig& cfg) {
  std::ostringstream out;
  out << "[test]\n";
  // Topology campaigns derive the workload from the faulted tier; emitting it
  // here would trip the mutual-exclusion check on re-parse.
  if (cfg.run.topo.empty()) out << "workload = " << cfg.run.workload.name << "\n";
  out << "middleware = " << lower(std::string(to_string(cfg.run.middleware))) << "\n";
  out << "watchd_version = " << static_cast<int>(cfg.run.watchd_version) << "\n";
  out << "seed = " << cfg.campaign.seed << "\n";
  out << "iterations = " << cfg.campaign.iterations << "\n";
  out << "max_faults = " << cfg.campaign.max_faults << "\n";
  out << "jobs = " << cfg.campaign.jobs << "\n";
  if (!cfg.campaign.models.empty()) out << "models = " << cfg.campaign.models << "\n";
  if (!cfg.fault_list_file.empty()) out << "fault_list_file = " << cfg.fault_list_file << "\n";
  out << "\n[client]\n";
  out << "response_timeout_s = " << cfg.run.client.response_timeout.count_micros() / 1000000
      << "\n";
  out << "retry_wait_s = " << cfg.run.client.retry_wait.count_micros() / 1000000 << "\n";
  out << "max_attempts = " << cfg.run.client.max_attempts << "\n";
  out << "server_up_timeout_s = "
      << cfg.run.client.server_up_timeout.count_micros() / 1000000 << "\n";
  out << "\n[machine]\n";
  out << "target_cpu_scale = " << cfg.run.target_cpu_scale << "\n";
  out << "run_timeout_s = " << cfg.run.run_timeout.count_micros() / 1000000 << "\n";
  out << "\n[middleware]\n";
  out << "mscs_poll_interval_s = " << cfg.run.mscs.poll_interval.count_micros() / 1000000
      << "\n";
  out << "mscs_pending_timeout_s = "
      << cfg.run.mscs.pending_timeout.count_micros() / 1000000 << "\n";
  out << "mscs_restart_threshold = " << cfg.run.mscs.restart_threshold << "\n";
  out << "watchd_heartbeat = " << (cfg.run.watchd.heartbeat ? 1 : 0) << "\n";
  if (!cfg.run.topo.empty()) {
    out << "\n[topology]\n";
    out << "topology = " << cfg.run.topo.to_string() << "\n";
    out << "tier = " << cfg.run.topo.fault_tier << "\n";
    out << "offered_rps_milli = " << cfg.run.topo.offered_rps_milli << "\n";
    out << "requests = " << cfg.run.topo.requests << "\n";
    if (cfg.run.topo.degraded_p95_ms > 0) {
      out << "degraded_p95_ms = " << cfg.run.topo.degraded_p95_ms << "\n";
    }
    // Elided at off, so untraced topology configs serialize byte-identically
    // to the pre-rtrace pipeline.
    if (cfg.run.rtrace != obs::rtrace::RtraceMode::kOff) {
      out << "rtrace = " << obs::rtrace::to_string(cfg.run.rtrace) << "\n";
    }
  }
  // [network] appears only when something differs from the defaults, so every
  // classic config serializes byte-identically to the pre-topology pipeline.
  if (cfg.run.net != nt::net::NetworkConfig{} || !cfg.run.links.empty()) {
    out << "\n[network]\n";
    const nt::net::NetworkConfig defaults{};
    if (cfg.run.net.latency != defaults.latency) {
      out << "latency_us = " << cfg.run.net.latency.count_micros() << "\n";
    }
    if (cfg.run.net.bytes_per_second != defaults.bytes_per_second) {
      out << "bytes_per_second = " << cfg.run.net.bytes_per_second << "\n";
    }
    for (const auto& l : cfg.run.links) {
      if (l.latency_us >= 0) {
        out << "link." << l.a << "." << l.b << ".latency_us = " << l.latency_us << "\n";
      }
      if (l.bytes_per_second >= 0) {
        out << "link." << l.a << "." << l.b << ".bytes_per_second = " << l.bytes_per_second
            << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace dts::core
