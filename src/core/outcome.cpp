#include "core/outcome.h"

namespace dts::core {

std::string_view to_string(Outcome o) {
  switch (o) {
    case Outcome::kNormalSuccess: return "normal success";
    case Outcome::kRestartSuccess: return "server restart with success";
    case Outcome::kRestartRetrySuccess: return "server restart and client request retry with success";
    case Outcome::kRetrySuccess: return "client request retry with success";
    case Outcome::kFailure: return "failure";
  }
  return "?";
}

std::string_view short_label(Outcome o) {
  switch (o) {
    case Outcome::kNormalSuccess: return "Normal";
    case Outcome::kRestartSuccess: return "Restart";
    case Outcome::kRestartRetrySuccess: return "Rst+Retry";
    case Outcome::kRetrySuccess: return "Retry";
    case Outcome::kFailure: return "Failure";
  }
  return "?";
}

bool ClientReport::all_ok() const {
  if (requests.empty()) return false;
  for (const auto& r : requests) {
    if (!r.ok) return false;
  }
  return true;
}

int ClientReport::total_retries() const {
  int n = 0;
  for (const auto& r : requests) n += r.attempts > 1 ? r.attempts - 1 : 0;
  return n;
}

bool ClientReport::any_response() const {
  for (const auto& r : requests) {
    if (r.any_response) return true;
  }
  return false;
}

std::string RunResult::summary() const {
  std::string out = fault.id();
  out += activated ? " [activated] " : " [not activated] ";
  out += to_string(outcome);
  if (outcome == Outcome::kFailure) {
    out += response_received ? " (wrong response)" : " (no response)";
  }
  out += " t=" + sim::to_string(response_time);
  if (restarts > 0) out += " restarts=" + std::to_string(restarts);
  if (retries > 0) out += " retries=" + std::to_string(retries);
  if (!detail.empty()) out += " :: " + detail;
  return out;
}

}  // namespace dts::core
