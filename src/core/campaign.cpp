#include "core/campaign.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/config.h"
#include "exec/executor.h"
#include "fault/model.h"
#include "plan/profiler.h"
#include "plan/pruner.h"

namespace dts::core {

std::size_t WorkloadSetResult::activated_faults() const {
  std::size_t n = 0;
  for (const auto& r : runs) n += r.activated ? 1 : 0;
  return n;
}

std::map<Outcome, std::size_t> WorkloadSetResult::outcome_counts() const {
  std::map<Outcome, std::size_t> counts;
  for (const auto& r : runs) {
    if (r.activated) ++counts[r.outcome];
  }
  return counts;
}

double WorkloadSetResult::percent(Outcome o) const {
  const std::size_t total = activated_faults();
  if (total == 0) return 0.0;
  const auto counts = outcome_counts();
  auto it = counts.find(o);
  const std::size_t n = it == counts.end() ? 0 : it->second;
  return 100.0 * static_cast<double>(n) / static_cast<double>(total);
}

std::size_t WorkloadSetResult::failures_with_response() const {
  std::size_t n = 0;
  for (const auto& r : runs) {
    if (r.activated && r.outcome == Outcome::kFailure && r.response_received) ++n;
  }
  return n;
}

std::size_t WorkloadSetResult::failures_without_response() const {
  std::size_t n = 0;
  for (const auto& r : runs) {
    if (r.activated && r.outcome == Outcome::kFailure && !r.response_received) ++n;
  }
  return n;
}

std::string WorkloadSetResult::label() const {
  std::string out = base_config.workload.name;
  out += "/";
  if (base_config.middleware == mw::MiddlewareKind::kWatchd) {
    out += to_string(base_config.watchd_version);
  } else {
    out += to_string(base_config.middleware);
  }
  return out;
}

std::set<nt::Fn> profile_workload(const RunConfig& base, std::uint64_t seed) {
  RunConfig cfg = base;
  cfg.seed = sim::Rng::mix(seed, sim::Rng::hash("profile"));
  FaultInjectionRun run(cfg);
  (void)run.execute(std::nullopt);
  return run.activated_functions();
}

namespace {

/// Parses the campaign's model selection (empty = paper default); unknown
/// model names are a configuration error.
fault::ModelSet model_set_from(const CampaignOptions& options) {
  std::string error;
  auto set = fault::ModelSet::parse(options.models, &error);
  if (!set) throw std::runtime_error(error);
  return *set;
}

/// Activated-function set recovered from a plan: every function whose faults
/// were not pruned as uncalled (the pruner consulted the golden profile, so
/// this is the same set profile_workload produces for the same seed).
std::set<nt::Fn> activated_from_plan(const plan::Plan& p) {
  std::set<nt::Fn> out;
  for (const auto& e : p.entries) {
    if (e.disposition == plan::Disposition::kPruned &&
        e.reason == plan::PruneReason::kFunctionUncalled) {
      continue;
    }
    out.insert(e.fault.fn);
  }
  return out;
}

exec::ExecOptions exec_options_from(const RunConfig& base,
                                    const CampaignOptions& options,
                                    const plan::GoldenProfile* profile = nullptr) {
  exec::ExecOptions eo;
  // Journal v4 headers embed the serialized campaign configuration, so
  // `ntdts replay <journal> <xi>` reconstructs the exact run without the
  // original config file on hand.
  DtsConfig shipped;
  shipped.run = base;
  shipped.campaign = options;
  eo.config_text = serialize_config(shipped);
  eo.snapshots = options.snapshots && profile != nullptr;
  eo.snapshot_profile = profile;
  eo.jobs = options.jobs;
  eo.journal_path = options.journal_path;
  eo.resume = options.resume;
  eo.metrics = options.metrics;
  eo.trace = options.trace;
  eo.forensics_depth = options.forensics_depth;
  eo.forensics_dir = options.forensics_dir;
  eo.stall = options.stall;
  eo.status = options.status;
  if (options.on_progress || options.on_snapshot) {
    eo.on_progress = [&options](const exec::ProgressSnapshot& s) {
      if (options.on_progress) options.on_progress(s.done, s.total);
      if (options.on_snapshot) options.on_snapshot(s);
    };
  }
  return eo;
}

}  // namespace

plan::Plan build_campaign_plan(const RunConfig& base, const CampaignOptions& options) {
  if (options.plan.mode == plan::PlanOptions::Mode::kFromFile) {
    std::ifstream in(options.plan.plan_file);
    if (!in) {
      throw std::runtime_error("cannot open plan file: " + options.plan.plan_file);
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string error;
    auto loaded = plan::Plan::parse(buf.str(), &error);
    if (!loaded) {
      throw std::runtime_error("bad plan file " + options.plan.plan_file + ": " + error);
    }
    const std::string mismatch =
        plan::validate_plan(*loaded, base, options.seed, options.iterations);
    if (!mismatch.empty()) {
      throw std::runtime_error(options.plan.plan_file + ": " + mismatch);
    }
    return *loaded;
  }
  // The plan covers the *raw* sweep, so functions the golden run never
  // touched are logged as pruned rather than silently absent from the file.
  // The model registry enumerates it (byte-identical to the classic
  // full_sweep for the paper default).
  inject::FaultList sweep =
      fault::build_sweep(base.workload.target_image, model_set_from(options),
                         /*functions=*/nullptr, options.iterations)
          .sampled(options.max_faults);
  if (!base.topo.empty()) {
    for (auto& f : sweep.faults) f.tier = base.topo.fault_tier;
  }
  const plan::GoldenProfile profile =
      plan::golden_profile(base, options.seed, options.iterations);
  return plan::build_plan(base, sweep, profile, options.seed, options.iterations);
}

/// Planned campaign path: build/load the plan, execute it, digest the
/// decisions into the result.
static WorkloadSetResult run_planned_workload_set(const RunConfig& base,
                                                 const CampaignOptions& options) {
  WorkloadSetResult result;
  result.base_config = base;

  const plan::Plan p = build_campaign_plan(base, options);
  result.activated_functions = activated_from_plan(p);
  if (!options.plan.plan_out.empty()) {
    std::ofstream out(options.plan.plan_out);
    if (!out) {
      throw std::runtime_error("cannot write plan file: " + options.plan.plan_out);
    }
    out << p.serialize();
  }

  plan::SamplerOptions so;
  so.ci_half_width = options.plan.ci_half_width;
  so.min_stratum_trials = options.plan.min_stratum_trials;
  so.batch = options.plan.batch;
  so.seed = options.seed;

  // Snapshot execution wants the golden profile (for the tail checkpoint);
  // the plan's entries already carry their own call sites.
  std::optional<plan::GoldenProfile> profile;
  if (options.snapshots) {
    profile = plan::golden_profile(base, options.seed, options.iterations);
  }
  exec::CampaignExecutor executor(
      exec_options_from(base, options, profile ? &*profile : nullptr));
  exec::PlanCampaignResult campaign = executor.run_plan(base, p, options.seed, so);

  PlanDigest digest;
  digest.entries = p.entries.size();
  digest.executable = p.executable_count();
  digest.pruned = campaign.pruned;
  digest.deduped = campaign.deduped;
  digest.executed = campaign.executed;
  digest.reused = campaign.reused;
  digest.unsampled = campaign.unsampled;
  digest.prune_histogram = p.prune_histogram();
  digest.strata = std::move(campaign.strata);
  result.plan_digest = std::move(digest);
  result.executed_runs = campaign.executed;
  result.runs = std::move(campaign.runs);
  return result;
}

WorkloadSetResult run_workload_set(const RunConfig& base, const CampaignOptions& options) {
  if (options.plan.mode != plan::PlanOptions::Mode::kExhaustive) {
    return run_planned_workload_set(base, options);
  }

  WorkloadSetResult result;
  result.base_config = base;

  // Profiling pass: which functions does this workload activate at all?
  // With snapshots on, the full golden profile doubles as the profiling pass
  // (same seed derivation, so `activated` is the same set) and additionally
  // resolves every fault's injection site for checkpoint placement.
  std::optional<plan::GoldenProfile> profile;
  if (options.snapshots) {
    profile = plan::golden_profile(base, options.seed, options.iterations);
    result.activated_functions = profile->activated;
  } else {
    result.activated_functions = profile_workload(base, options.seed);
  }

  // Capped lists sample evenly across the whole sweep rather than truncating:
  // a prefix slice would cover only the catalogue's first functions and badly
  // skew the outcome mix. The fault-model registry enumerates the sweep; the
  // paper default is byte-identical to the classic for_functions/full_sweep.
  inject::FaultList list =
      fault::build_sweep(base.workload.target_image, model_set_from(options),
                         options.profile_first ? &result.activated_functions : nullptr,
                         options.iterations)
          .sampled(options.max_faults);
  // Fault ids in topology campaigns carry the tier prefix ("db/ReadFile...")
  // so journals, plans and dist leases name the faulted tier explicitly.
  if (!base.topo.empty()) {
    for (auto& f : list.faults) f.tier = base.topo.fault_tier;
  }

  // The executor applies the skip-uncalled rule (paper §4): once a function
  // proves uncalled, the rest of its faults are skipped. With profiling this
  // rarely triggers, but nondeterminism can still starve a function of calls.
  exec::CampaignExecutor executor(
      exec_options_from(base, options, profile ? &*profile : nullptr));
  exec::CampaignResult campaign = executor.run(base, list, options.seed);
  result.executed_runs = campaign.executed;
  result.runs = std::move(campaign.runs);
  return result;
}

namespace {

std::string_view mw_code(mw::MiddlewareKind k) {
  switch (k) {
    case mw::MiddlewareKind::kNone: return "none";
    case mw::MiddlewareKind::kMscs: return "mscs";
    case mw::MiddlewareKind::kWatchd: return "watchd";
  }
  return "?";
}

std::optional<mw::MiddlewareKind> mw_from_code(std::string_view s) {
  if (s == "none") return mw::MiddlewareKind::kNone;
  if (s == "mscs") return mw::MiddlewareKind::kMscs;
  if (s == "watchd") return mw::MiddlewareKind::kWatchd;
  return std::nullopt;
}

std::string_view outcome_code(Outcome o) {
  switch (o) {
    case Outcome::kNormalSuccess: return "normal";
    case Outcome::kRestartSuccess: return "restart";
    case Outcome::kRestartRetrySuccess: return "restart_retry";
    case Outcome::kRetrySuccess: return "retry";
    case Outcome::kFailure: return "failure";
  }
  return "?";
}

std::optional<Outcome> outcome_from(std::string_view s) {
  if (s == "normal") return Outcome::kNormalSuccess;
  if (s == "restart") return Outcome::kRestartSuccess;
  if (s == "restart_retry") return Outcome::kRestartRetrySuccess;
  if (s == "retry") return Outcome::kRetrySuccess;
  if (s == "failure") return Outcome::kFailure;
  return std::nullopt;
}

}  // namespace

std::string serialize_run_line(const RunResult& r) {
  std::ostringstream out;
  out << r.fault.id() << ' ' << (r.activated ? 1 : 0) << ' ' << outcome_code(r.outcome)
      << ' ' << (r.response_received ? 1 : 0) << ' ' << r.response_time.count_micros()
      << ' ' << r.restarts << ' ' << r.retries << ' ' << (r.client_finished ? 1 : 0);
  // Topology extras ride after the classic eight fields; pre-topology parsers
  // read exactly eight via >> and ignore trailing tokens, so old readers stay
  // compatible and classic lines stay byte-identical.
  if (r.topo) {
    out << " topo " << r.topo->tier << ' ' << r.topo->user_outcome << ' '
        << r.topo->requests_total << ' ' << r.topo->requests_ok << ' ' << r.topo->p50_us
        << ' ' << r.topo->p95_us << ' ' << r.topo->p99_us << ' '
        << r.topo->offered_rps_milli;
  }
  return out.str();
}

bool parse_run_line(const std::string& target_image, const std::string& line,
                    RunResult* out, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::istringstream ls(line);
  std::string fault_id, outcome_s;
  int activated = 0, resp = 0, restarts = 0, retries = 0, finished = 0;
  std::int64_t time_us = 0;
  ls >> fault_id >> activated >> outcome_s >> resp >> time_us >> restarts >> retries >>
      finished;
  if (!ls) return fail("bad run line: " + line);
  auto spec = inject::parse_fault_id(target_image, fault_id);
  if (!spec) return fail("bad fault id: " + fault_id);
  auto outcome = outcome_from(outcome_s);
  if (!outcome) return fail("bad outcome: " + outcome_s);
  out->fault = *spec;
  out->activated = activated != 0;
  out->outcome = *outcome;
  out->response_received = resp != 0;
  out->response_time = sim::Duration::micros(time_us);
  out->restarts = restarts;
  out->retries = retries;
  out->client_finished = finished != 0;
  out->topo.reset();
  std::string tag;
  if (ls >> tag) {
    if (tag != "topo") return fail("bad run line trailer: " + tag);
    TopoRunStats t;
    ls >> t.tier >> t.user_outcome >> t.requests_total >> t.requests_ok >> t.p50_us >>
        t.p95_us >> t.p99_us >> t.offered_rps_milli;
    if (!ls) return fail("bad topo run line: " + line);
    bool known_outcome = false;
    for (std::string_view o : kTopoOutcomes) known_outcome |= t.user_outcome == o;
    if (!known_outcome) return fail("bad topo outcome: " + t.user_outcome);
    std::string rest;
    if (ls >> rest) return fail("bad run line trailer: " + rest);
    out->topo = std::move(t);
  }
  return true;
}

std::string serialize_workload_set(const WorkloadSetResult& set) {
  std::ostringstream out;
  out << "DTSCAMPAIGN v1\n";
  out << "workload " << set.base_config.workload.name << "\n";
  out << "middleware " << mw_code(set.base_config.middleware) << "\n";
  out << "watchd_version " << static_cast<int>(set.base_config.watchd_version) << "\n";
  out << "seed " << set.base_config.seed << "\n";
  // Topology identity (absent for classic campaigns, keeping their files
  // byte-identical). The canonical topology string never contains newlines.
  if (!set.base_config.topo.empty()) {
    const auto& t = set.base_config.topo;
    out << "topology " << t.to_string() << "\n";
    out << "topology_tier " << t.fault_tier << "\n";
    out << "topology_rps_milli " << t.offered_rps_milli << "\n";
    out << "topology_requests " << t.requests << "\n";
    if (t.degraded_p95_ms > 0) out << "topology_degraded_p95_ms " << t.degraded_p95_ms << "\n";
  }
  out << "functions";
  for (nt::Fn fn : set.activated_functions) out << ' ' << nt::to_string(fn);
  out << "\n";
  for (const auto& r : set.runs) {
    out << "run " << serialize_run_line(r) << "\n";
  }
  return out.str();
}

std::optional<WorkloadSetResult> deserialize_workload_set(const std::string& text,
                                                          std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "DTSCAMPAIGN v1") return fail("bad header");

  WorkloadSetResult set;
  const auto& reg = nt::Kernel32Registry::instance();
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "workload") {
      std::string name;
      ls >> name;
      try {
        set.base_config.workload = workload_by_name(name);
      } catch (const std::exception& e) {
        return fail(e.what());
      }
    } else if (tag == "middleware") {
      std::string code;
      ls >> code;
      auto m = mw_from_code(code);
      if (!m) return fail("bad middleware code");
      set.base_config.middleware = *m;
    } else if (tag == "watchd_version") {
      int v = 0;
      ls >> v;
      if (v < 1 || v > 3) return fail("bad watchd version");
      set.base_config.watchd_version = static_cast<mw::WatchdVersion>(v);
    } else if (tag == "seed") {
      ls >> set.base_config.seed;
    } else if (tag == "topology") {
      std::string rest;
      std::getline(ls, rest);
      std::string topo_error;
      const auto spec = topo::parse_topology(rest, &topo_error);
      if (!spec) return fail(topo_error);
      set.base_config.topo.tiers = spec->tiers;
      set.base_config.topo.fault_tier = spec->fault_tier;
    } else if (tag == "topology_tier") {
      ls >> set.base_config.topo.fault_tier;
    } else if (tag == "topology_rps_milli") {
      ls >> set.base_config.topo.offered_rps_milli;
    } else if (tag == "topology_requests") {
      ls >> set.base_config.topo.requests;
    } else if (tag == "topology_degraded_p95_ms") {
      ls >> set.base_config.topo.degraded_p95_ms;
    } else if (tag == "functions") {
      std::string fn_name;
      while (ls >> fn_name) {
        const nt::FunctionInfo* info = reg.by_name(fn_name);
        if (info == nullptr) return fail("unknown function " + fn_name);
        set.activated_functions.insert(static_cast<nt::Fn>(info->id));
      }
    } else if (tag == "run") {
      std::string rest;
      std::getline(ls, rest);
      RunResult r;
      std::string run_error;
      if (!parse_run_line(set.base_config.workload.target_image, rest, &r, &run_error)) {
        return fail(run_error);
      }
      set.runs.push_back(std::move(r));
    } else {
      return fail("unknown tag: " + tag);
    }
  }
  return set;
}

WorkloadSetResult load_or_run_workload_set(const RunConfig& base,
                                           const CampaignOptions& options,
                                           const std::string& cache_dir) {
  std::string path;
  if (!cache_dir.empty()) {
    // Planned campaigns hash to distinct cache slots: with adaptive sampling
    // on, the run set (hence the cached result) depends on the plan knobs.
    const std::uint64_t plan_key =
        sim::Rng::mix(static_cast<std::uint64_t>(options.plan.mode),
                      static_cast<std::uint64_t>(options.plan.ci_half_width * 1e9));
    const std::uint64_t key = sim::Rng::mix(
        sim::Rng::hash(base.workload.name),
        sim::Rng::mix(static_cast<std::uint64_t>(base.middleware) * 131 +
                          static_cast<std::uint64_t>(base.watchd_version),
                      sim::Rng::mix(options.seed,
                                    sim::Rng::mix(plan_key,
                                                  static_cast<std::uint64_t>(
                                                      options.iterations) * 1000003 +
                                                      options.max_faults))));
    // Non-default model sets are different campaigns; the default leaves the
    // key untouched so pre-existing caches stay valid.
    std::uint64_t model_aware_key = key;
    const fault::ModelSet models = model_set_from(options);
    if (!models.is_paper_default()) {
      model_aware_key = sim::Rng::mix(key, sim::Rng::hash(models.to_string()));
    }
    // Topology campaigns likewise get their own slots; classic campaigns keep
    // the exact pre-topology key (and their existing caches).
    if (!base.topo.empty()) {
      const auto& t = base.topo;
      model_aware_key = sim::Rng::mix(
          model_aware_key,
          sim::Rng::hash(t.to_string() + "|" + t.fault_tier + "|" +
                         std::to_string(t.offered_rps_milli) + "|" +
                         std::to_string(t.requests) + "|" +
                         std::to_string(t.degraded_p95_ms)));
      // Request tracing changes the wire bytes (the rt= token), so traced and
      // untraced campaigns must never share a cache slot. Off-mode keeps the
      // pre-rtrace key exactly.
      if (base.rtrace != obs::rtrace::RtraceMode::kOff) {
        model_aware_key = sim::Rng::mix(
            model_aware_key,
            sim::Rng::hash("rtrace=" +
                           std::string(obs::rtrace::to_string(base.rtrace))));
      }
    }
    char name[64];
    std::snprintf(name, sizeof name, "dts_%016llx.campaign",
                  static_cast<unsigned long long>(model_aware_key));
    std::filesystem::create_directories(cache_dir);
    path = cache_dir + "/" + name;
    std::ifstream in(path);
    if (in) {
      std::stringstream buf;
      buf << in.rdbuf();
      if (auto cached = deserialize_workload_set(buf.str())) return *cached;
    }
  }
  WorkloadSetResult result = run_workload_set(base, options);
  if (!path.empty()) {
    std::ofstream out(path);
    out << serialize_workload_set(result);
  }
  return result;
}

}  // namespace dts::core
