#include "core/controller.h"

#include <sstream>

namespace dts::core {

namespace {

/// In-process transport: delivery is a direct call into the peer's receiver.
class InProcessTransport final : public Transport {
 public:
  void send(const std::string& message) override {
    if (peer_ != nullptr && peer_->receiver_) peer_->receiver_(message);
  }
  void set_receiver(std::function<void(const std::string&)> on_message) override {
    receiver_ = std::move(on_message);
  }

  InProcessTransport* peer_ = nullptr;
  std::function<void(const std::string&)> receiver_;
};

std::string_view outcome_code(Outcome o) {
  switch (o) {
    case Outcome::kNormalSuccess: return "normal";
    case Outcome::kRestartSuccess: return "restart";
    case Outcome::kRestartRetrySuccess: return "restart_retry";
    case Outcome::kRetrySuccess: return "retry";
    case Outcome::kFailure: return "failure";
  }
  return "?";
}

std::optional<Outcome> outcome_from_code(std::string_view s) {
  if (s == "normal") return Outcome::kNormalSuccess;
  if (s == "restart") return Outcome::kRestartSuccess;
  if (s == "restart_retry") return Outcome::kRestartRetrySuccess;
  if (s == "retry") return Outcome::kRetrySuccess;
  if (s == "failure") return Outcome::kFailure;
  return std::nullopt;
}

}  // namespace

TransportPair make_in_process_transport() {
  auto a = std::make_unique<InProcessTransport>();
  auto b = std::make_unique<InProcessTransport>();
  a->peer_ = b.get();
  b->peer_ = a.get();
  TransportPair pair;
  pair.controller_end = std::move(a);
  pair.agent_end = std::move(b);
  return pair;
}

std::string encode_run_result(const RunResult& r) {
  std::ostringstream out;
  out << "RESULT fault=" << r.fault.id() << " activated=" << (r.activated ? 1 : 0)
      << " outcome=" << outcome_code(r.outcome)
      << " response_received=" << (r.response_received ? 1 : 0)
      << " response_time_us=" << r.response_time.count_micros()
      << " restarts=" << r.restarts << " retries=" << r.retries;
  return out.str();
}

std::optional<RunResult> decode_run_result(const std::string& text) {
  std::istringstream in(text);
  std::string tag;
  in >> tag;
  if (tag != "RESULT") return std::nullopt;
  RunResult r;
  std::string field;
  bool saw_outcome = false;
  while (in >> field) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "fault") {
      // The fault id is informational on the controller side; target image
      // is tracked by the controller's own bookkeeping.
      r.detail = value;
    } else if (key == "activated") {
      r.activated = value == "1";
    } else if (key == "outcome") {
      auto o = outcome_from_code(value);
      if (!o) return std::nullopt;
      r.outcome = *o;
      saw_outcome = true;
    } else if (key == "response_received") {
      r.response_received = value == "1";
    } else if (key == "response_time_us") {
      r.response_time = sim::Duration::micros(std::stoll(value));
    } else if (key == "restarts") {
      r.restarts = std::stoi(value);
    } else if (key == "retries") {
      r.retries = std::stoi(value);
    } else {
      return std::nullopt;
    }
  }
  if (!saw_outcome) return std::nullopt;
  r.client_finished = true;
  return r;
}

TargetAgent::TargetAgent(RunConfig base_config, Transport& transport)
    : base_config_(std::move(base_config)), transport_(transport) {
  transport_.set_receiver([this](const std::string& msg) { on_message(msg); });
}

void TargetAgent::on_message(const std::string& msg) {
  if (msg == "PROFILE") {
    const std::set<nt::Fn> fns = profile_workload(base_config_, base_config_.seed);
    std::ostringstream out;
    out << "PROFILE_RESULT " << fns.size();
    for (nt::Fn fn : fns) out << ' ' << nt::to_string(fn);
    transport_.send(out.str());
    return;
  }
  if (msg.rfind("RUN ", 0) == 0) {
    const std::string fault_id = msg.substr(4);
    auto spec = inject::parse_fault_id(base_config_.workload.target_image, fault_id);
    if (!spec) {
      transport_.send("ERROR bad fault id: " + fault_id);
      return;
    }
    RunConfig cfg = base_config_;
    cfg.seed = sim::Rng::mix(base_config_.seed, sim::Rng::hash(fault_id));
    RunResult r = execute_run(cfg, *spec);
    transport_.send(encode_run_result(r));
    return;
  }
  transport_.send("ERROR unknown command");
}

Controller::Controller(Transport& transport) : transport_(transport) {
  transport_.set_receiver([this](const std::string& msg) { on_message(msg); });
}

void Controller::on_message(const std::string& msg) { last_reply_ = msg; }

std::set<std::string> Controller::profile() {
  last_reply_.reset();
  transport_.send("PROFILE");
  std::set<std::string> fns;
  if (!last_reply_ || last_reply_->rfind("PROFILE_RESULT ", 0) != 0) {
    ++protocol_errors_;
    return fns;
  }
  std::istringstream in(last_reply_->substr(15));
  std::size_t n = 0;
  in >> n;
  std::string name;
  while (in >> name) fns.insert(name);
  if (fns.size() != n) ++protocol_errors_;
  return fns;
}

RunResult Controller::run_fault(const inject::FaultSpec& fault) {
  last_reply_.reset();
  transport_.send("RUN " + fault.id());
  if (!last_reply_) {
    ++protocol_errors_;
    return {};
  }
  auto result = decode_run_result(*last_reply_);
  if (!result) {
    ++protocol_errors_;
    return {};
  }
  result->fault = fault;
  return *result;
}

}  // namespace dts::core
