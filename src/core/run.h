// A single fault-injection run: a fresh simulated world (target machine +
// control machine + network), one server under an optional middleware
// package, one armed fault, one client workload — then outcome
// classification. One run = one Simulation instance, the reproducibility
// guarantee DTS gets by restarting the workload programs for every fault.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "apps/apache.h"
#include "apps/iis.h"
#include "apps/sql_server.h"
#include "core/clients.h"
#include "core/outcome.h"
#include "core/workload.h"
#include "inject/interceptor.h"
#include "middleware/middleware.h"
#include "middleware/mscs.h"
#include "middleware/watchd.h"
#include "obs/span.h"
#include "topo/topology.h"

namespace dts::core {

struct RunConfig {
  WorkloadSpec workload;
  mw::MiddlewareKind middleware = mw::MiddlewareKind::kNone;
  mw::WatchdVersion watchd_version = mw::WatchdVersion::kV3;

  std::uint64_t seed = 1;
  /// 1.0 models the paper's 100 MHz Pentium target; the control machine runs
  /// at 0.25 (their 400 MHz Pentium II class box).
  double target_cpu_scale = 1.0;

  /// Execution-time noise on the target machine (see MachineConfig::jitter).
  /// 0 by default: the calibrated experiments are bit-reproducible. The
  /// multi-process ablation turns it on to surface Apache's accept-race
  /// nondeterminism (paper §4.1).
  double target_jitter = 0.0;

  /// Hard cap on simulated time per run (a hung run ends here).
  sim::Duration run_timeout = sim::Duration::seconds(400);

  ClientConfig client;

  /// When nonzero, the interceptor keeps the last N KERNEL32 calls of the
  /// target image (post-corruption) — the paper's §4.3 debugging aid,
  /// readable via FaultInjectionRun::interceptor().trace().
  std::size_t trace_limit = 0;

  /// When nonzero, the interceptor records the argument words of the first N
  /// invocations of every injectable function the target image makes —
  /// the campaign planner's golden-run capture (src/plan/), readable via
  /// interceptor().captured_calls(). Off for injection runs.
  int golden_capture = 0;

  /// Snapshot-execution checkpoints (src/snap/): when non-null, the plan is
  /// installed on the interceptor at the start of execute(), firing the
  /// callback at each golden-run call site. The pointee must outlive the run.
  const inject::Interceptor::CheckpointPlan* checkpoints = nullptr;

  // Application tuning knobs (defaults reproduce the paper's setup).
  apps::ApacheConfig apache;
  apps::IisConfig iis;
  apps::SqlServerConfig sql;
  mw::MscsConfig mscs;      // service_name filled from the workload
  mw::WatchdConfig watchd;  // service_name/version filled from the config

  /// Multi-tier topology (src/topo/). Empty (the default) = the classic
  /// single-machine run above, byte-identical to the pre-topology pipeline.
  /// Non-empty replaces the target machine with the topology's machines and
  /// the paper client with the open-loop workload generator; `workload` is
  /// then derived from the faulted tier's application (so fault sweeps and
  /// activation accounting target the right image) and middleware must be
  /// none.
  topo::TopologySpec topo;

  /// Request tracing for topology runs (obs/rtrace/): off keeps the wire
  /// bytes — and therefore every campaign output — byte-identical to the
  /// untraced pipeline; failures/all collect per-hop causal spans. Ignored
  /// for classic runs (there is no request topology to trace).
  obs::rtrace::RtraceMode rtrace = obs::rtrace::RtraceMode::kOff;

  /// Global network parameters ([network] section); default matches the
  /// pre-configurable hard-coded values. `links` carries per-tier-pair
  /// overrides, expanded to machine pairs when the topology is built.
  nt::net::NetworkConfig net;
  std::vector<topo::LinkOverride> links;
};

/// Executes one run. Exposes the interceptor for activation accounting.
class FaultInjectionRun {
 public:
  explicit FaultInjectionRun(RunConfig config);
  ~FaultInjectionRun();

  FaultInjectionRun(const FaultInjectionRun&) = delete;
  FaultInjectionRun& operator=(const FaultInjectionRun&) = delete;

  /// Runs the workload with `fault` armed (or no fault for a profiling run).
  RunResult execute(const std::optional<inject::FaultSpec>& fault);

  /// Injectable functions the target image called during the run — the
  /// paper's "activated functions" (Table 1).
  const std::set<nt::Fn>& activated_functions() const;

  /// The world, accessible after execute() for inspection in tests — and
  /// *during* execute() from checkpoint callbacks (snapshot capture needs the
  /// live simulation, both machines and the network mid-run).
  nt::Machine& target();
  nt::Machine& control();
  sim::Simulation& simulation();
  nt::net::Network& network();
  const inject::Interceptor& interceptor() const { return interceptor_; }
  inject::Interceptor& interceptor() { return interceptor_; }

  /// Middleware latency spans recorded during the last execute() (detection
  /// windows, recovery times, heartbeat hang detection). Empty for
  /// stand-alone runs. Valid until the next execute().
  const obs::SpanLog& spans() const;

 private:
  struct World;

  /// Multi-tier path of execute(): builds the topology machines instead of
  /// the single target, drives them with the open-loop generator, classifies
  /// into RunResult::topo on top of the classic outcome axis.
  RunResult execute_topology(const std::optional<inject::FaultSpec>& fault);

  RunConfig cfg_;
  inject::Interceptor interceptor_;
  std::unique_ptr<World> world_;
};

/// Convenience: build + execute in one call.
RunResult execute_run(const RunConfig& config, const std::optional<inject::FaultSpec>& fault);

}  // namespace dts::core
