#include "core/clients.h"

#include "apps/ftp.h"

#include <functional>

#include "ntsim/kernel.h"

namespace dts::core {

namespace {

using nt::Ctx;

/// Waits (bounded) for the server port to accept connections. The DTS agent
/// performed this "wait for server to be up" step before launching the
/// client programs (paper Fig. 1).
sim::CoTask<bool> wait_for_server(Ctx c, nt::net::Network* net, const ClientParams& p) {
  const sim::TimePoint deadline = c.m().sim().now() + p.config.server_up_timeout;
  while (c.m().sim().now() < deadline) {
    if (net->port_open(p.target_machine, p.port)) co_return true;
    co_await nt::sleep_in_sim(c, p.config.server_up_poll);
  }
  co_return false;
}

/// One request with the DTS retry protocol: up to max_attempts attempts,
/// `check` validates the raw reply, 15 s between attempts.
sim::CoTask<RequestResult> attempt_request(
    Ctx c, nt::net::Network* net, const ClientParams& p, const std::string& wire_request,
    const std::function<bool(const std::string&)>& check) {
  RequestResult result;
  const sim::TimePoint t0 = c.m().sim().now();
  for (int attempt = 1; attempt <= p.config.max_attempts; ++attempt) {
    result.attempts = attempt;
    if (attempt > 1) co_await nt::sleep_in_sim(c, p.config.retry_wait);

    auto sock = co_await net->connect(c, p.target_machine, p.port);
    if (sock == nullptr) {
      result.detail = "connection refused";
      continue;
    }
    sock->send(wire_request);

    // Collect the reply until EOF, bounded by the response timeout.
    const sim::TimePoint deadline = c.m().sim().now() + p.config.response_timeout;
    std::string reply;
    bool timed_out = false;
    for (;;) {
      const sim::Duration remaining = deadline - c.m().sim().now();
      if (remaining <= sim::Duration{}) {
        timed_out = true;
        break;
      }
      auto chunk = co_await sock->recv(c, 65536, remaining);
      if (!chunk) {
        timed_out = true;
        break;
      }
      if (chunk->empty()) break;  // EOF: reply complete (or connection reset)
      reply += *chunk;
    }

    if (!reply.empty()) result.any_response = true;
    if (timed_out) {
      result.detail = "timeout";
      continue;
    }
    if (reply.empty()) {
      result.detail = "connection reset";
      continue;
    }
    if (check(reply)) {
      result.ok = true;
      result.detail.clear();
      break;
    }
    result.detail = "incorrect reply (" + std::to_string(reply.size()) + " bytes)";
  }
  result.elapsed = c.m().sim().now() - t0;
  co_return result;
}

bool http_ok(const std::string& reply, const std::string& expected_body) {
  if (reply.rfind("HTTP/1.0 200", 0) != 0) return false;
  const auto sep = reply.find("\r\n\r\n");
  if (sep == std::string::npos) return false;
  return reply.substr(sep + 4) == expected_body;
}

void finish(Ctx c, const ClientParams& p) {
  p.report->finished = true;
  p.report->finished_at = c.m().sim().now();
}

}  // namespace

sim::Task http_client_program(Ctx c, nt::net::Network* net, ClientParams params,
                              std::string expected_index, std::string expected_cgi) {
  params.report->started_at = c.m().sim().now();
  co_await wait_for_server(c, net, params);
  // Whether or not the server came up, run the requests: a down server shows
  // up as refused connections and the retry protocol takes over.

  auto r1 = co_await attempt_request(
      c, net, params, "GET /index.html HTTP/1.0\r\nHost: target\r\n\r\n",
      [&](const std::string& reply) { return http_ok(reply, expected_index); });
  params.report->requests.push_back(std::move(r1));

  auto r2 = co_await attempt_request(
      c, net, params, "GET /cgi-bin/test.cgi?id=42 HTTP/1.0\r\nHost: target\r\n\r\n",
      [&](const std::string& reply) { return http_ok(reply, expected_cgi); });
  params.report->requests.push_back(std::move(r2));

  finish(c, params);
}

sim::Task ftp_client_program(Ctx c, nt::net::Network* net, ClientParams params,
                             std::string path, std::string expected_payload) {
  params.report->started_at = c.m().sim().now();
  co_await wait_for_server(c, net, params);

  RequestResult result;
  const sim::TimePoint t0 = c.m().sim().now();
  for (int attempt = 1; attempt <= params.config.max_attempts; ++attempt) {
    result.attempts = attempt;
    if (attempt > 1) co_await nt::sleep_in_sim(c, params.config.retry_wait);
    auto payload = co_await apps::ftp::ftp_fetch(c, net, params.target_machine,
                                                 params.port, path,
                                                 params.config.response_timeout * 2);
    if (payload) {
      result.any_response = true;
      if (*payload == expected_payload) {
        result.ok = true;
        result.detail.clear();
        break;
      }
      result.detail = "incorrect payload (" + std::to_string(payload->size()) + " bytes)";
    } else {
      result.detail = "transfer failed";
    }
  }
  result.elapsed = c.m().sim().now() - t0;
  params.report->requests.push_back(std::move(result));
  finish(c, params);
}

sim::Task sql_client_program(Ctx c, nt::net::Network* net, ClientParams params,
                             std::string query, std::string expected_reply) {
  params.report->started_at = c.m().sim().now();
  co_await wait_for_server(c, net, params);

  auto r = co_await attempt_request(
      c, net, params, query + "\n",
      [&](const std::string& reply) { return reply == expected_reply; });
  params.report->requests.push_back(std::move(r));

  finish(c, params);
}

}  // namespace dts::core
