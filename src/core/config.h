// DTS configuration files (paper §3: "One main configuration file is used to
// specify test parameters such as timeout periods, a fault list file name,
// and workload parameters").
//
// Format: INI.
//
//   [test]
//   workload        = IIS          ; Apache1 | Apache2 | IIS | SQL
//   middleware      = watchd       ; none | mscs | watchd
//   watchd_version  = 3            ; 1 | 2 | 3
//   seed            = 1
//   iterations      = 1            ; invocations injected per function
//   max_faults      = 0            ; 0 = unlimited
//   jobs            = 1            ; parallel workers (0 = hardware threads)
//   models          = paper        ; fault models (CSV): paper | mutation |
//                                  ; oserror | temporal (src/fault/)
//   fault_list_file =              ; optional explicit fault list
//
//   [client]
//   response_timeout_s  = 15
//   retry_wait_s        = 15
//   max_attempts        = 3
//   server_up_timeout_s = 90
//
//   [machine]
//   target_cpu_scale = 1.0         ; 1.0 = 100 MHz Pentium
//   run_timeout_s    = 400
//   target_jitter    = 0.0         ; execution-time noise (0..1)
//   apache_children  = 1           ; Apache worker pool size
//
//   [middleware]
//   mscs_poll_interval_s   = 5
//   mscs_pending_timeout_s = 20
//   mscs_restart_threshold = 2
//   watchd_heartbeat       = 0     ; 1 enables the port heartbeat extension
#pragma once

#include <optional>
#include <string>

#include "core/campaign.h"

namespace dts::core {

struct DtsConfig {
  RunConfig run;
  CampaignOptions campaign;
  std::string fault_list_file;  // empty: generate from profiling
};

/// Parses a configuration file's text. Returns nullopt and sets *error on
/// any malformed or unknown entry (configs are validated strictly: a typo'd
/// key must not silently disappear).
std::optional<DtsConfig> parse_config(const std::string& text, std::string* error);

/// Renders a config back to text (round-trips through parse_config).
std::string serialize_config(const DtsConfig& cfg);

}  // namespace dts::core
