// Campaign orchestration — the paper's experiment flow chart (Fig. 1):
// for each workload, for each function, for each parameter, for each
// iteration, for each fault type: one fault-injection run.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include <optional>

#include "core/run.h"
#include "exec/progress.h"
#include "inject/fault_list.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "plan/sampler.h"

namespace dts::obs::fleet {
class StallDetector;
class StatusBoard;
}  // namespace dts::obs::fleet

namespace dts::core {

/// Summary of the campaign plan a workload set ran under (absent for
/// exhaustive campaigns) — what `ntdts plan` and the run report print.
struct PlanDigest {
  std::size_t entries = 0;     // raw sweep size
  std::size_t executable = 0;  // faults the plan schedules for execution
  std::size_t pruned = 0;
  std::size_t deduped = 0;
  std::size_t executed = 0;   // fresh simulations actually run
  std::size_t reused = 0;     // reloaded from the journal
  std::size_t unsampled = 0;  // skipped by adaptive early stopping
  std::map<plan::PruneReason, std::size_t> prune_histogram;
  std::vector<plan::StratumProgress> strata;
};

/// All runs of one workload set (one workload × one middleware config).
struct WorkloadSetResult {
  RunConfig base_config;
  std::set<nt::Fn> activated_functions;  // paper Table 1
  std::vector<RunResult> runs;           // in fault-list order

  /// Faults that actually fired (the denominator for outcome percentages —
  /// the paper reports "percentage of the total number of activated faults").
  std::size_t activated_faults() const;
  std::map<Outcome, std::size_t> outcome_counts() const;
  double percent(Outcome o) const;
  /// Failure split for Fig. 4.
  std::size_t failures_with_response() const;
  std::size_t failures_without_response() const;

  std::string label() const;  // e.g. "Apache1/MSCS"

  /// Fresh simulations this campaign ran (not serialized; 0 after a cache
  /// load). The planner's whole point is making this smaller than runs.size().
  std::size_t executed_runs = 0;

  /// Present when the campaign ran under a plan (not serialized).
  std::optional<PlanDigest> plan_digest;
};

struct CampaignOptions {
  /// How many invocations of each function to inject (the I axis). The paper
  /// uses 1: "only the first invocation of each function was injected".
  int iterations = 1;

  /// Run one fault-free profiling pass first and restrict the fault list to
  /// functions the target actually calls. Equivalent to the paper's dynamic
  /// skip-uncalled-functions rule, minus the probe runs.
  bool profile_first = true;

  /// Root seed; each run derives its own from this and the fault id.
  std::uint64_t seed = 1;

  /// Optional progress callback (runs completed, total runs). Invoked for
  /// every completed fault, including skip-uncalled ones.
  std::function<void(std::size_t, std::size_t)> on_progress;

  /// Optional richer progress callback with throughput (runs/sec) and ETA.
  std::function<void(const exec::ProgressSnapshot&)> on_snapshot;

  /// Optional cap on the number of faults (for quick smoke experiments);
  /// 0 = no cap. Capped lists sample evenly across the sweep.
  std::size_t max_faults = 0;

  /// Parallel workers executing the sweep (each run is a fresh, seed-isolated
  /// simulation). 1 = serial on the calling thread; 0 = one worker per
  /// hardware thread. Results are byte-identical at any job count: per-run
  /// seeds derive from the fault id, never from worker id or schedule.
  int jobs = 1;

  /// Resumable run journal (JSONL, one record per completed run); empty =
  /// none. With `resume`, completed runs found in the journal are reused and
  /// only the missing faults execute.
  std::string journal_path;
  bool resume = false;

  /// Observability passthrough to the executor (see exec::ExecOptions):
  /// campaign metrics sink, per-run syscall trace mode, forensics ring depth
  /// and the optional per-run forensics dump directory.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceMode trace = obs::TraceMode::kOff;
  std::size_t forensics_depth = 32;
  std::string forensics_dir;

  /// Fleet observability passthrough (src/obs/fleet/): stall/anomaly
  /// detector and live status board, both fed per executed run. Null = off.
  obs::fleet::StallDetector* stall = nullptr;
  obs::fleet::StatusBoard* status = nullptr;

  /// Campaign planning (src/plan/): golden-run profiling, equivalence
  /// pruning, optional adaptive sampling. The default mode (kExhaustive)
  /// bypasses the planner entirely and reproduces the plain sweep.
  plan::PlanOptions plan;

  /// Snapshot/fork execution (src/snap/): execute the fault-free golden
  /// prefix once, capture COW snapshots at checkpoints, and fork each run
  /// from the checkpoint nearest below its injection site instead of
  /// replaying the prefix. Output is byte-identical to the default path at
  /// any jobs count (anything not provably resumable falls back to a full
  /// run), so the result cache key deliberately ignores this flag.
  bool snapshots = false;

  /// Fault-model selection (src/fault/): CSV of model names expanded by the
  /// registry's sweep enumerators ("paper,oserror"). Empty = the paper
  /// default, whose sweep is byte-identical to the pre-registry code. Parsed
  /// with fault::ModelSet::parse; run_workload_set throws std::runtime_error
  /// on unknown names. Part of the result cache key — different model sets
  /// are different campaigns.
  std::string models;
};

/// Runs a complete workload set and returns its results.
WorkloadSetResult run_workload_set(const RunConfig& base, const CampaignOptions& options = {});

/// Profiling only: the set of activated functions (no faults injected).
std::set<nt::Fn> profile_workload(const RunConfig& base, std::uint64_t seed = 1);

/// Builds the campaign plan for `base` — golden profile plus equivalence
/// pruning over the raw sweep (honouring iterations and max_faults) — or,
/// in kFromFile mode, loads options.plan.plan_file and validates it against
/// the campaign. Throws std::runtime_error on load/validation failure.
/// `ntdts plan` calls this directly; run_workload_set calls it for the
/// non-exhaustive modes.
plan::Plan build_campaign_plan(const RunConfig& base, const CampaignOptions& options);

/// Text serialization of a workload-set result (configuration identity,
/// activated functions, one line per run). Round-trips through
/// deserialize_workload_set; used by the benchmark harness cache so each
/// table/figure binary can reuse campaign data instead of re-running it.
std::string serialize_workload_set(const WorkloadSetResult& set);
std::optional<WorkloadSetResult> deserialize_workload_set(const std::string& text,
                                                          std::string* error = nullptr);

/// One-run payload of the campaign file format (the fields after "run ") —
/// also the record payload of the exec run journal. parse_run_line accepts
/// exactly what serialize_run_line emits; `detail` and per-request results
/// are not round-tripped (as for the whole-set serialization).
std::string serialize_run_line(const RunResult& r);
bool parse_run_line(const std::string& target_image, const std::string& line,
                    RunResult* out, std::string* error);

/// Runs the workload set, or loads it from `cache_dir` if an identical
/// configuration was run before (empty cache_dir = always run). The cache
/// key covers workload, middleware, watchd version, seed, iterations and
/// fault cap.
WorkloadSetResult load_or_run_workload_set(const RunConfig& base,
                                           const CampaignOptions& options,
                                           const std::string& cache_dir);

}  // namespace dts::core
