// Report generation: renders the paper's tables and figures (as text tables
// and CSV) from campaign results.
//
//   Table 1 — activated KERNEL32 functions per workload × middleware
//   Fig. 2  — outcome distribution per workload × middleware
//   Fig. 3  — Apache (Apache1+Apache2, weighted by activated faults) vs IIS
//   Fig. 4  — mean response time by outcome, 95 % CI, failures split into
//             wrong-response / no-response
//   Table 2 — Apache vs IIS restricted to faults activated by both
//   Fig. 5  — Watchd1 vs Watchd2 vs Watchd3
#pragma once

#include <span>
#include <string>

#include "core/campaign.h"
#include "stats/stats.h"

namespace dts::core {

/// Fault identity independent of the target image — used for the
/// common-fault comparison of Table 2 (same function/parameter/type).
std::string fault_key(const inject::FaultSpec& f);

/// Outcome percentages of a merged set of runs.
struct OutcomeDistribution {
  std::size_t activated = 0;
  std::map<Outcome, std::size_t> counts;

  double percent(Outcome o) const;
  /// Restart column of Table 2: restart-involving successes.
  double restart_percent() const;
  /// Retry column of Table 2: retry-only successes.
  double retry_percent() const;
};

OutcomeDistribution distribution_of(const WorkloadSetResult& set);

/// Merges several workload sets into one distribution — summing counts is
/// exactly the paper's "weighted based on the relative number of activated
/// faults" combination of Apache1+Apache2.
OutcomeDistribution merge_distributions(std::span<const WorkloadSetResult* const> sets);

// --- renderers ---------------------------------------------------------------

std::string table1_activated_functions(std::span<const WorkloadSetResult> sets);
std::string fig2_outcome_table(std::span<const WorkloadSetResult> sets);
std::string fig3_apache_vs_iis(std::span<const WorkloadSetResult> sets);
std::string fig4_response_times(std::span<const WorkloadSetResult> sets);
std::string table2_common_faults(std::span<const WorkloadSetResult> sets);
std::string fig5_watchd_versions(std::span<const WorkloadSetResult> sets);

/// Raw per-run CSV (one line per fault) for external analysis.
std::string runs_csv(const WorkloadSetResult& set);

/// Per-outcome response-time summary used by Fig. 4 (exposed for tests).
struct TimingRow {
  std::string outcome_label;
  stats::Summary seconds;
};
std::vector<TimingRow> response_time_rows(const WorkloadSetResult& set);

}  // namespace dts::core
