#include "core/report.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace dts::core {

namespace {

/// Middleware column label for a configuration.
std::string config_label(const RunConfig& cfg) {
  if (cfg.middleware == mw::MiddlewareKind::kWatchd) {
    return std::string(to_string(cfg.watchd_version));
  }
  return std::string(to_string(cfg.middleware));
}

/// Distinct values in first-appearance order.
template <typename Fn>
std::vector<std::string> distinct(std::span<const WorkloadSetResult> sets, Fn&& get) {
  std::vector<std::string> out;
  for (const auto& s : sets) {
    const std::string v = get(s);
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  return out;
}

const WorkloadSetResult* find_set(std::span<const WorkloadSetResult> sets,
                                  std::string_view workload, std::string_view label) {
  for (const auto& s : sets) {
    if (s.base_config.workload.name == workload && config_label(s.base_config) == label) {
      return &s;
    }
  }
  return nullptr;
}

std::string pad(std::string v, std::size_t width) {
  if (v.size() < width) v.append(width - v.size(), ' ');
  return v;
}

std::string fmt_pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%6.2f%%", v);
  return buf;
}

std::string fmt_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

/// Fault keys activated in a set of runs.
std::set<std::string> activated_keys(const WorkloadSetResult& s) {
  std::set<std::string> keys;
  for (const auto& r : s.runs) {
    if (r.activated) keys.insert(fault_key(r.fault));
  }
  return keys;
}

OutcomeDistribution distribution_filtered(const WorkloadSetResult& s,
                                          const std::set<std::string>& keys) {
  OutcomeDistribution d;
  for (const auto& r : s.runs) {
    if (!r.activated || !keys.contains(fault_key(r.fault))) continue;
    ++d.activated;
    ++d.counts[r.outcome];
  }
  return d;
}

}  // namespace

std::string fault_key(const inject::FaultSpec& f) {
  return std::string(nt::to_string(f.fn)) + "." + std::to_string(f.param_index) + "#" +
         std::to_string(f.invocation) + ":" + std::string(to_string(f.type));
}

double OutcomeDistribution::percent(Outcome o) const {
  if (activated == 0) return 0.0;
  auto it = counts.find(o);
  const std::size_t n = it == counts.end() ? 0 : it->second;
  return 100.0 * static_cast<double>(n) / static_cast<double>(activated);
}

double OutcomeDistribution::restart_percent() const {
  return percent(Outcome::kRestartSuccess) + percent(Outcome::kRestartRetrySuccess);
}

double OutcomeDistribution::retry_percent() const {
  return percent(Outcome::kRetrySuccess);
}

OutcomeDistribution distribution_of(const WorkloadSetResult& set) {
  OutcomeDistribution d;
  d.activated = set.activated_faults();
  d.counts = set.outcome_counts();
  return d;
}

OutcomeDistribution merge_distributions(std::span<const WorkloadSetResult* const> sets) {
  OutcomeDistribution d;
  for (const auto* s : sets) {
    if (s == nullptr) continue;
    d.activated += s->activated_faults();
    for (const auto& [o, n] : s->outcome_counts()) d.counts[o] += n;
  }
  return d;
}

std::string table1_activated_functions(std::span<const WorkloadSetResult> sets) {
  const auto workloads =
      distinct(sets, [](const auto& s) { return s.base_config.workload.name; });
  const auto labels = distinct(sets, [](const auto& s) { return config_label(s.base_config); });

  std::ostringstream out;
  out << "Table 1. Number of called KERNEL32 functions per workload\n";
  out << pad("Server Program", 16);
  for (const auto& l : labels) out << pad(l, 10);
  out << "\n";
  for (const auto& w : workloads) {
    out << pad(w, 16);
    for (const auto& l : labels) {
      const WorkloadSetResult* s = find_set(sets, w, l);
      out << pad(s != nullptr ? std::to_string(s->activated_functions.size()) : "-", 10);
    }
    out << "\n";
  }
  return out.str();
}

std::string fig2_outcome_table(std::span<const WorkloadSetResult> sets) {
  std::ostringstream out;
  out << "Figure 2. Outcome distribution (percent of activated faults)\n";
  out << pad("Workload set", 20) << pad("Activated", 10);
  for (Outcome o : kAllOutcomes) out << pad(std::string(short_label(o)), 11);
  out << pad("Fail(resp)", 11) << pad("Fail(none)", 11) << "\n";
  for (const auto& s : sets) {
    const OutcomeDistribution d = distribution_of(s);
    out << pad(s.label(), 20) << pad(std::to_string(d.activated), 10);
    for (Outcome o : kAllOutcomes) out << pad(fmt_pct(d.percent(o)), 11);
    out << pad(std::to_string(s.failures_with_response()), 11)
        << pad(std::to_string(s.failures_without_response()), 11) << "\n";
  }
  return out.str();
}

std::string fig3_apache_vs_iis(std::span<const WorkloadSetResult> sets) {
  const auto labels = distinct(sets, [](const auto& s) { return config_label(s.base_config); });
  std::ostringstream out;
  out << "Figure 3. Apache (Apache1+Apache2 weighted) vs IIS\n";
  out << pad("Config", 10) << pad("Server", 8) << pad("Activated", 10);
  for (Outcome o : kAllOutcomes) out << pad(std::string(short_label(o)), 11);
  out << "\n";
  for (const auto& l : labels) {
    const WorkloadSetResult* a1 = find_set(sets, "Apache1", l);
    const WorkloadSetResult* a2 = find_set(sets, "Apache2", l);
    const WorkloadSetResult* iis = find_set(sets, "IIS", l);
    if (a1 == nullptr || a2 == nullptr || iis == nullptr) continue;
    const WorkloadSetResult* apache_sets[] = {a1, a2};
    const OutcomeDistribution apache = merge_distributions(apache_sets);
    const OutcomeDistribution iis_d = distribution_of(*iis);

    out << pad(l, 10) << pad("Apache", 8) << pad(std::to_string(apache.activated), 10);
    for (Outcome o : kAllOutcomes) out << pad(fmt_pct(apache.percent(o)), 11);
    out << "\n";
    out << pad(l, 10) << pad("IIS", 8) << pad(std::to_string(iis_d.activated), 10);
    for (Outcome o : kAllOutcomes) out << pad(fmt_pct(iis_d.percent(o)), 11);
    out << "\n";
  }
  return out.str();
}

std::vector<TimingRow> response_time_rows(const WorkloadSetResult& set) {
  // Six classes: the four success outcomes plus failure-with-wrong-response.
  // Failures without a response have no finite response time (paper Fig. 4
  // omits them).
  std::map<std::string, stats::Accumulator> acc;
  std::vector<std::string> order;
  auto add = [&](const std::string& label, double seconds) {
    if (!acc.contains(label)) order.push_back(label);
    acc[label].add(seconds);
  };
  for (const auto& r : set.runs) {
    if (!r.activated) continue;
    if (r.outcome == Outcome::kFailure) {
      if (r.response_received && r.client_finished) {
        add("Failure (wrong response)", r.response_time.to_seconds());
      }
      continue;
    }
    add(std::string(short_label(r.outcome)), r.response_time.to_seconds());
  }
  // Stable, canonical ordering.
  std::vector<TimingRow> rows;
  for (Outcome o : kAllOutcomes) {
    const std::string label = o == Outcome::kFailure ? "Failure (wrong response)"
                                                     : std::string(short_label(o));
    auto it = acc.find(label);
    if (it == acc.end()) continue;
    rows.push_back(TimingRow{label, it->second.summary()});
  }
  return rows;
}

std::string fig4_response_times(std::span<const WorkloadSetResult> sets) {
  std::ostringstream out;
  out << "Figure 4. Average response times (seconds, with 95% CI)\n";
  out << pad("Workload set", 20) << pad("Outcome", 26) << pad("n", 6) << pad("mean", 10)
      << pad("+/-95%", 10) << "\n";
  for (const auto& s : sets) {
    for (const auto& row : response_time_rows(s)) {
      out << pad(s.label(), 20) << pad(row.outcome_label, 26)
          << pad(std::to_string(row.seconds.n), 6) << pad(fmt_num(row.seconds.mean), 10)
          << pad(fmt_num(row.seconds.ci95_half), 10) << "\n";
    }
  }
  out << "(failures with no response have unbounded response time and are omitted)\n";
  return out.str();
}

std::string table2_common_faults(std::span<const WorkloadSetResult> sets) {
  const auto labels = distinct(sets, [](const auto& s) { return config_label(s.base_config); });
  std::ostringstream out;
  out << "Table 2. Apache vs IIS counting only common faults\n";
  out << pad("Config", 10) << pad("Server Program", 18) << pad("Activated", 10)
      << pad("Failure", 9) << pad("Restart", 9) << pad("Retry", 9) << "\n";
  for (const auto& l : labels) {
    const WorkloadSetResult* a1 = find_set(sets, "Apache1", l);
    const WorkloadSetResult* a2 = find_set(sets, "Apache2", l);
    const WorkloadSetResult* iis = find_set(sets, "IIS", l);
    if (a1 == nullptr || a2 == nullptr || iis == nullptr) continue;

    // Faults activated by both programs: IIS ∩ (Apache1 ∪ Apache2).
    std::set<std::string> apache_keys = activated_keys(*a1);
    for (const auto& k : activated_keys(*a2)) apache_keys.insert(k);
    const std::set<std::string> iis_keys = activated_keys(*iis);
    std::set<std::string> common;
    for (const auto& k : apache_keys) {
      if (iis_keys.contains(k)) common.insert(k);
    }

    auto row = [&](const std::string& name, const OutcomeDistribution& d) {
      out << pad(l, 10) << pad(name, 18) << pad(std::to_string(d.activated), 10)
          << pad(fmt_pct(d.percent(Outcome::kFailure)), 9)
          << pad(fmt_pct(d.restart_percent()), 9) << pad(fmt_pct(d.retry_percent()), 9)
          << "\n";
    };
    const OutcomeDistribution d1 = distribution_filtered(*a1, common);
    const OutcomeDistribution d2 = distribution_filtered(*a2, common);
    OutcomeDistribution d12;
    d12.activated = d1.activated + d2.activated;
    for (const auto& [o, n] : d1.counts) d12.counts[o] += n;
    for (const auto& [o, n] : d2.counts) d12.counts[o] += n;
    row("Apache1", d1);
    row("Apache2", d2);
    row("Apache1+Apache2", d12);
    row("IIS", distribution_filtered(*iis, common));
  }
  return out.str();
}

std::string fig5_watchd_versions(std::span<const WorkloadSetResult> sets) {
  std::ostringstream out;
  out << "Figure 5. Original vs improved watchd (percent of activated faults)\n";
  out << pad("Workload set", 20) << pad("Activated", 10);
  for (Outcome o : kAllOutcomes) out << pad(std::string(short_label(o)), 11);
  out << "\n";
  for (const auto& s : sets) {
    if (s.base_config.middleware != mw::MiddlewareKind::kWatchd) continue;
    const OutcomeDistribution d = distribution_of(s);
    out << pad(s.base_config.workload.name + "/" + config_label(s.base_config), 20)
        << pad(std::to_string(d.activated), 10);
    for (Outcome o : kAllOutcomes) out << pad(fmt_pct(d.percent(o)), 11);
    out << "\n";
  }
  return out.str();
}

std::string runs_csv(const WorkloadSetResult& set) {
  std::ostringstream out;
  out << "workload,middleware,fault,activated,outcome,response_received,"
         "response_time_s,restarts,retries,requests_ok,request_attempts,detail\n";
  for (const auto& r : set.runs) {
    out << set.base_config.workload.name << ',' << config_label(set.base_config) << ','
        << r.fault.id() << ',' << (r.activated ? 1 : 0) << ',' << short_label(r.outcome)
        << ',' << (r.response_received ? 1 : 0) << ',' << r.response_time.to_seconds()
        << ',' << r.restarts << ',' << r.retries << ',';
    // Per-request columns: "ok|ok" and "1|3"-style attempt lists.
    for (std::size_t i = 0; i < r.requests.size(); ++i) {
      if (i > 0) out << '|';
      out << (r.requests[i].ok ? "ok" : "fail");
    }
    out << ',';
    for (std::size_t i = 0; i < r.requests.size(); ++i) {
      if (i > 0) out << '|';
      out << r.requests[i].attempts;
    }
    out << ',';
    // Escape commas in the detail field.
    std::string detail = r.detail;
    for (char& ch : detail) {
      if (ch == ',') ch = ';';
    }
    out << detail << "\n";
  }
  return out.str();
}

}  // namespace dts::core
