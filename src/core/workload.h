// Workload descriptions — the paper's four workload sets: Apache1 (master
// process), Apache2 (worker process), IIS, SQL. The workload names the server
// to install, the client to drive it, and the process image faults target.
#pragma once

#include <cstdint>
#include <string>

namespace dts::core {

enum class ServerKind { kApache, kIis, kSql };
enum class ClientKind { kHttp, kSql, kFtp };

struct WorkloadSpec {
  std::string name;          // "Apache1", "Apache2", "IIS", "SQL"
  ServerKind server = ServerKind::kApache;
  ClientKind client = ClientKind::kHttp;
  std::string service_name;  // SCM service to start/monitor
  std::string target_image;  // process image whose KERNEL32 calls are injected
  std::uint16_t port = 80;
};

/// The four workload sets of the paper's evaluation. Apache1 and Apache2
/// differ only in which of the two Apache processes is targeted (§4.1).
WorkloadSpec apache1_workload();
WorkloadSpec apache2_workload();
WorkloadSpec iis_workload();
WorkloadSpec sql_workload();

/// Extension workload (not in the paper's evaluation): IIS's FTP service,
/// driven by an FtpClient that downloads and verifies one file.
WorkloadSpec iis_ftp_workload();

/// Lookup by name ("Apache1"/"Apache2"/"IIS"/"SQL", case-insensitive).
/// Throws std::invalid_argument on unknown names.
WorkloadSpec workload_by_name(const std::string& name);

}  // namespace dts::core
