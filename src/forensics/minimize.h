// Repro minimisation: shrink the workload configuration around one journaled
// failure while its five-outcome classification is preserved (ddmin-style
// greedy reduction to a fixpoint). The output is a runnable repro — a config
// file plus a one-fault explicit fault list — that `ntdts run` re-executes
// with the exact same seed derivation the original campaign used, so the
// minimal repro still lands the same corruption on the same invocation.
//
// Reduction axes are the knobs that dominate a run's simulated time and
// complexity, each with a floor that keeps the config valid and
// serializable in whole seconds (core::serialize_config's unit):
//   client.max_attempts        3 -> 2 -> 1      (drops whole retry cycles)
//   client.retry_wait          halved, >= 1 s
//   client.response_timeout    halved, >= 1 s
//   client.server_up_timeout   halved, >= 1 s
//   run_timeout                halved, >= 1 s   (bounds a hung run sooner)
// Every accepted reduction was verified by actually re-executing the run and
// observing the same outcome, so the emitted repro is correct by
// construction, not by assumption.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/run.h"
#include "inject/fault.h"

namespace dts::forensics {

struct MinimizeOptions {
  /// Hard cap on verification runs (baseline included).
  std::size_t max_runs = 48;
};

struct MinimizeStep {
  std::string description;  // "max_attempts 3 -> 2"
  bool kept = false;        // outcome preserved -> reduction accepted
};

struct MinimizeResult {
  core::DtsConfig minimal;   // the reduced, runnable configuration
  core::Outcome outcome{};   // preserved classification
  std::size_t runs_tried = 0;
  std::vector<MinimizeStep> steps;
  std::uint64_t sim_us_before = 0;  // baseline run's simulated time
  std::uint64_t sim_us_after = 0;   // minimal config's simulated time
  bool reduced = false;             // at least one reduction was kept
};

/// Minimises `base` around `fault`. The run seed is derived exactly as the
/// campaign did: mix(campaign_seed, hash(fault.id())). `target` is the
/// outcome to preserve (the journaled classification).
MinimizeResult minimize_repro(const core::RunConfig& base,
                              std::uint64_t campaign_seed,
                              const inject::FaultSpec& fault,
                              core::Outcome target,
                              const MinimizeOptions& opts = {});

}  // namespace dts::forensics
