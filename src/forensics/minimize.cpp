#include "forensics/minimize.h"

#include <algorithm>
#include <functional>

#include "sim/rng.h"

namespace dts::forensics {

namespace {

struct Axis {
  // Applies one reduction step; returns a description, or "" when the knob
  // is already at its floor.
  std::function<std::string(core::RunConfig&)> reduce;
};

std::string halve_seconds(sim::Duration& d, const char* name,
                          std::int64_t floor_s) {
  const std::int64_t s = d.count_micros() / 1000000;
  if (s <= floor_s) return "";
  const std::int64_t next = std::max(floor_s, s / 2);
  d = sim::Duration::seconds(next);
  return std::string(name) + " " + std::to_string(s) + "s -> " +
         std::to_string(next) + "s";
}

std::vector<Axis> reduction_axes() {
  return {
      {[](core::RunConfig& cfg) -> std::string {
        if (cfg.client.max_attempts <= 1) return "";
        const int from = cfg.client.max_attempts;
        cfg.client.max_attempts = from - 1;
        return "max_attempts " + std::to_string(from) + " -> " +
               std::to_string(from - 1);
      }},
      {[](core::RunConfig& cfg) {
        return halve_seconds(cfg.client.retry_wait, "retry_wait", 1);
      }},
      {[](core::RunConfig& cfg) {
        return halve_seconds(cfg.client.response_timeout, "response_timeout", 1);
      }},
      {[](core::RunConfig& cfg) {
        return halve_seconds(cfg.client.server_up_timeout, "server_up_timeout", 1);
      }},
      {[](core::RunConfig& cfg) {
        return halve_seconds(cfg.run_timeout, "run_timeout", 1);
      }},
  };
}

}  // namespace

MinimizeResult minimize_repro(const core::RunConfig& base,
                              std::uint64_t campaign_seed,
                              const inject::FaultSpec& fault,
                              core::Outcome target,
                              const MinimizeOptions& opts) {
  MinimizeResult out;
  const std::uint64_t run_seed =
      sim::Rng::mix(campaign_seed, sim::Rng::hash(fault.id()));

  auto execute = [&](const core::RunConfig& cfg) {
    core::RunConfig c = cfg;
    c.seed = run_seed;
    c.trace_limit = 0;  // minimisation runs need speed, not traces
    c.golden_capture = 0;
    c.checkpoints = nullptr;
    ++out.runs_tried;
    return core::execute_run(c, fault);
  };

  core::RunConfig current = base;

  // Baseline: the unreduced config must reproduce the target outcome at all,
  // or there is nothing sound to minimise.
  const core::RunResult baseline = execute(current);
  out.outcome = baseline.outcome;
  out.sim_us_before = static_cast<std::uint64_t>(baseline.sim_elapsed.count_micros());
  out.sim_us_after = out.sim_us_before;
  if (baseline.outcome != target) {
    out.minimal = core::DtsConfig{};
    out.minimal.run = current;
    out.minimal.campaign.seed = campaign_seed;
    return out;  // reduced=false, steps empty: caller reports the mismatch
  }

  // Greedy ddmin to a fixpoint: keep sweeping the axes while any reduction
  // sticks. Each candidate is verified by re-execution; a step is reverted
  // (recorded as kept=false) when it flips the outcome OR changes whether
  // the fault fires — a config whose run times out before the injection
  // point can carry the right outcome label for the wrong reason, and such
  // a "repro" would reproduce nothing.
  const std::vector<Axis> axes = reduction_axes();
  bool changed = true;
  while (changed && out.runs_tried < opts.max_runs) {
    changed = false;
    for (const Axis& axis : axes) {
      if (out.runs_tried >= opts.max_runs) break;
      core::RunConfig candidate = current;
      std::string desc = axis.reduce(candidate);
      if (desc.empty()) continue;  // already at the floor
      const core::RunResult r = execute(candidate);
      MinimizeStep step;
      step.description = std::move(desc);
      step.kept = r.outcome == target && r.activated == baseline.activated;
      if (step.kept) {
        current = candidate;
        out.sim_us_after = static_cast<std::uint64_t>(r.sim_elapsed.count_micros());
        out.reduced = true;
        changed = true;
      }
      out.steps.push_back(std::move(step));
    }
  }

  out.minimal = core::DtsConfig{};
  out.minimal.run = current;
  out.minimal.campaign.seed = campaign_seed;
  out.minimal.campaign.iterations = fault.invocation;  // cover the injection
  out.minimal.campaign.jobs = 1;
  return out;
}

}  // namespace dts::forensics
