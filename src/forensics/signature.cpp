#include "forensics/signature.h"

#include <algorithm>
#include <cstdio>

#include "exec/executor.h"
#include "inject/fault_class.h"

namespace dts::forensics {

namespace {

std::uint64_t fold(std::uint64_t digest, const std::string& s) {
  for (unsigned char c : s) {
    digest = (digest ^ c) * 1099511628211ull;
  }
  // Fold the terminator too, so ("ab","c") and ("a","bc") differ.
  return (digest ^ 0xffu) * 1099511628211ull;
}

}  // namespace

std::uint64_t signature_digest(const SignatureKey& key) {
  std::uint64_t d = 14695981039346656037ull;
  d = fold(d, key.fault_class);
  d = fold(d, key.call_context);
  d = fold(d, key.outcome);
  d = fold(d, key.span);
  // The tier axis appeared with multi-tier topologies, the path axis with
  // request tracing; folding each only when set keeps every digest minted
  // before its axis existed byte-identical to before.
  if (!key.tier.empty()) d = fold(d, key.tier);
  if (!key.path.empty()) d = fold(d, key.path);
  return d;
}

std::string signature_id(const SignatureKey& key) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(signature_digest(key)));
  return buf;
}

std::string detection_span(const core::RunResult& run) {
  if (run.restarts > 0 && run.retries > 0) return "restart+retry";
  if (run.restarts > 0) return "restart";
  if (run.retries > 0) return "retry";
  return "none";
}

SignatureKey signature_of(const core::RunResult& run,
                          const std::string& call_context) {
  SignatureKey key;
  // The operator+temporal axis rides in the id tail ("zero@every2", "drop"),
  // so intermittent and single-shot corruptions of the same site cluster
  // separately. Result-side faults (param_index -1) have no parameter class;
  // "result" names the axis they corrupt instead of "unclassified".
  const auto cls = inject::classify(run.fault.fn, run.fault.param_index);
  const std::string id = run.fault.id();
  const std::size_t colon = id.rfind(':');
  const std::string op_tail = colon == std::string::npos
                                  ? std::string(inject::to_string(run.fault.type))
                                  : id.substr(colon + 1);
  key.fault_class =
      std::string(cls ? inject::to_string(*cls)
                      : (run.fault.param_index < 0 ? "result" : "unclassified")) +
      ":" + op_tail;
  if (!call_context.empty()) {
    key.call_context = call_context;
  } else if (run.activated) {
    // Pre-v4 record of a fired fault: the static injection point is the best
    // context available — "ReadFile.hFile#1" (the fault id minus its type).
    key.call_context = colon == std::string::npos ? id : id.substr(0, colon);
  } else {
    key.call_context = "-";  // never fired: there is no corrupted call
  }
  key.outcome = std::string(exec::outcome_label(run.outcome));
  key.span = detection_span(run);
  key.tier = run.fault.tier;
  // Live runs carry their trace in the result; journal-sourced callers set
  // the axis themselves from the record's "rt" payload (the run line never
  // carries the trace).
  if (run.rtrace && run.rtrace->digest != 0) {
    key.path = obs::rtrace::digest_hex(run.rtrace->digest);
  }
  return key;
}

SignatureKey unparsed_signature() {
  SignatureKey key;
  key.fault_class = "unparsed";
  key.call_context = "-";
  key.outcome = "unparsed";
  key.span = "-";
  return key;
}

void SignatureIndex::add(const SignatureKey& key, const std::string& fault_id,
                         const std::string& exec_index,
                         const std::string& campaign) {
  const std::string id = signature_id(key);
  Entry& e = clusters_[id];
  if (e.cluster.count == 0) {
    e.cluster.key = key;
    e.cluster.id = id;
    e.cluster.example_fault = fault_id;
    e.cluster.example_xi = exec_index;
  }
  ++e.cluster.count;
  ++total_;
  if (!campaign.empty()) e.campaigns.insert(campaign);
}

std::vector<SignatureCluster> SignatureIndex::ranked() const {
  std::vector<SignatureCluster> out;
  out.reserve(clusters_.size());
  for (const auto& [id, e] : clusters_) {
    SignatureCluster c = e.cluster;
    c.campaigns = e.campaigns.size();
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(),
            [](const SignatureCluster& a, const SignatureCluster& b) {
              const bool af = a.key.outcome == "failure";
              const bool bf = b.key.outcome == "failure";
              if (af != bf) return af;  // failures first: they get debugged
              if (a.count != b.count) return a.count > b.count;
              return a.id < b.id;
            });
  return out;
}

}  // namespace dts::forensics
