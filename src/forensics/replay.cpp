#include "forensics/replay.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "core/campaign.h"
#include "core/config.h"
#include "exec/executor.h"
#include "fault/model.h"
#include "obs/trace.h"
#include "sim/rng.h"

namespace dts::forensics {

const exec::JournalRecord* find_record(const exec::JournalFile& file,
                                       const std::string& selector,
                                       std::string* error) {
  auto fail = [&](const std::string& msg) -> const exec::JournalRecord* {
    if (error != nullptr) *error = msg;
    return nullptr;
  };
  if (selector.empty()) return fail("empty record selector");

  // Full execution index first: it is the most precise name a record has.
  for (const auto& rec : file.records) {
    if (!rec.exec_index.empty() && rec.exec_index == selector) return &rec;
  }
  // Bare fault index ("17"): all digits.
  if (selector.find_first_not_of("0123456789") == std::string::npos) {
    const std::size_t index =
        static_cast<std::size_t>(std::strtoull(selector.c_str(), nullptr, 10));
    for (const auto& rec : file.records) {
      if (rec.index == index) return &rec;  // first record wins (dedup rule)
    }
    return fail("no journal record with fault index " + selector);
  }
  // Fault id ("ReadFile.hFile#1:zero").
  for (const auto& rec : file.records) {
    if (rec.fault_id == selector) return &rec;
  }
  return fail("no journal record matches \"" + selector +
              "\" (expected an execution index, fault index, or fault id)");
}

std::optional<core::RunConfig> config_from_journal(const exec::JournalFile& file,
                                                   std::string* source,
                                                   std::string* error) {
  if (!file.config_text.empty()) {
    std::string parse_error;
    const auto cfg = core::parse_config(file.config_text, &parse_error);
    if (!cfg) {
      if (error != nullptr) {
        *error = "journal header config does not parse: " + parse_error;
      }
      return std::nullopt;
    }
    if (source != nullptr) *source = "journal header (v4)";
    return cfg->run;
  }
  // Pre-v4 journal: the identity fields are all we have; everything else is
  // the documented default (which is what campaigns run with unless a config
  // file overrode it — exactly the case v4 exists to close).
  core::RunConfig run;
  try {
    run.workload = core::workload_by_name(file.key.workload);
  } catch (const std::exception& e) {
    if (error != nullptr) {
      *error = std::string("unknown journal workload: ") + e.what();
    }
    return std::nullopt;
  }
  run.middleware = static_cast<mw::MiddlewareKind>(file.key.middleware);
  run.watchd_version = static_cast<mw::WatchdVersion>(file.key.watchd_version);
  if (source != nullptr) *source = "journal key defaults";
  return run;
}

std::optional<ReplayResult> replay_record(const exec::JournalFile& file,
                                          const exec::JournalRecord& rec,
                                          const ReplayOptions& opts,
                                          std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  ReplayResult out;
  std::optional<core::RunConfig> cfg =
      config_from_journal(file, &out.config_source, error);
  if (!cfg) return std::nullopt;

  const auto fault =
      inject::parse_fault_id(cfg->workload.target_image, rec.fault_id);
  if (!fault) return fail("unparsable fault id \"" + rec.fault_id + "\"");

  // Fault-model consistency (journal v5). The temporal mode and operator are
  // rebuilt from the fault id alone; the record's "fm" annotation must agree.
  // A non-default fault in a record without "fm" means the journal predates
  // the model field — refuse rather than silently replay a different model.
  const std::string expected_model = fault::model_annotation(*fault);
  if (!expected_model.empty() && rec.model.empty()) {
    return fail("record's fault \"" + rec.fault_id +
                "\" names a non-default fault model (" + expected_model +
                ") but the record carries no model field; the journal predates "
                "schema v5 — re-run the campaign to replay this fault");
  }
  if (!rec.model.empty() && rec.model != expected_model) {
    return fail("record model annotation \"" + rec.model +
                "\" does not match the fault id's model (" +
                (expected_model.empty() ? std::string(fault::kDefaultAnnotation)
                                        : expected_model) +
                ") — corrupt or hand-edited journal");
  }

  core::RunResult journaled;
  std::string parse_error;
  if (!core::parse_run_line(cfg->workload.target_image, rec.run_line, &journaled,
                            &parse_error)) {
    return fail("unparsable run line: " + parse_error);
  }

  // Pin the tracer on at forensic depth. Tracing is passive — it never feeds
  // back into the simulation — so this cannot perturb the replay; the
  // executor's byte-identity tests across trace modes are the proof.
  cfg->seed = sim::Rng::mix(file.key.seed, sim::Rng::hash(rec.fault_id));
  cfg->trace_limit = std::max(cfg->trace_limit, opts.trace_depth);
  cfg->golden_capture = 0;
  cfg->checkpoints = nullptr;  // snapshot-mode journals replay as full runs

  core::FaultInjectionRun run(*cfg);
  out.run = run.execute(*fault);
  out.run_line = core::serialize_run_line(out.run);
  out.trace_digest = run.interceptor().trace_digest();
  const auto& ctx = run.interceptor().injection_context();
  out.call_context = ctx ? ctx->to_string() : "";

  std::vector<std::string> context;
  context.push_back("replay of journal record #" + std::to_string(rec.index) +
                    (rec.exec_index.empty() ? "" : " (xi " + rec.exec_index + ")"));
  context.push_back("outcome: " + std::string(exec::outcome_label(out.run.outcome)));
  context.push_back(std::string("activated: ") + (out.run.activated ? "yes" : "no"));
  if (!out.call_context.empty()) {
    context.push_back("call context: " + out.call_context);
  }
  out.forensics = obs::forensics_dump(rec.fault_id, context, &run.spans(),
                                      run.interceptor().syscall_trace());

  out.journal_outcome = std::string(exec::outcome_label(journaled.outcome));
  out.outcome_match = out.run.outcome == journaled.outcome;
  out.run_line_match = out.run_line == rec.run_line;
  out.trace_digest_match =
      rec.trace_digest == 0 || rec.trace_digest == out.trace_digest;
  out.call_context_match =
      rec.call_context.empty() || rec.call_context == out.call_context;
  // Propagation-path verification (v7): the header config carries the rtrace
  // mode, so a traced campaign replays traced and the span shape must
  // reproduce exactly. Records without "rt" (untraced, or a masked run under
  // --rtrace=failures) have nothing to compare — vacuously true.
  if (out.run.rtrace) out.rtrace_digest = out.run.rtrace->digest;
  out.rtrace_digest_match =
      rec.rtrace.empty() ||
      obs::rtrace::digest_of_serialized(rec.rtrace) == out.rtrace_digest;
  return out;
}

}  // namespace dts::forensics
