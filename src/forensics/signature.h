// Failure signatures: the stable identity of a failure MODE, as opposed to
// the identity of a single run. Two runs — possibly from different campaigns,
// fault models, or fleet topologies — share a signature when the same KIND of
// corruption (fault class, not function name), injected at the same dynamic
// call context, produced the same outcome through the same detection span.
// Clustering a million-run journal by signature collapses it into the handful
// of distinct failure modes a human actually debugs ("Can My Microservice
// Tolerate an Unreliable Database?" makes the case that resilience results
// only become actionable in this collapsed form).
//
// The signature digest is FNV-1a over the four key strings, so it is stable
// across processes, campaigns and journal versions — the property `ntdts
// report` needs to merge clusters across files. Every merged journal record
// maps to exactly one signature (records whose run line cannot be parsed get
// the reserved "unparsed" signature), so cluster counts reconcile exactly
// against journal record totals.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/outcome.h"

namespace dts::forensics {

/// The four axes of a failure signature. All strings — the digest and the
/// report tables render them verbatim.
struct SignatureKey {
  std::string fault_class;   // "file-handle:zero" — WHAT was corrupted, how
  std::string call_context;  // "ReadFile@417#1/89ab..." — WHERE it landed
                             // ("-" when the fault never fired)
  std::string outcome;       // five-outcome label ("normal".."failure")
  std::string span;          // detection span: which recovery layers engaged
                             // ("none", "restart", "retry", "restart+retry")
  std::string tier;          // topology tier the fault targeted; "" for
                             // classic runs (folded into the digest only when
                             // non-empty, so classic digests never change)
  std::string path;          // propagation-path digest (16-hex) of the run's
                             // request trace; "" for untraced runs (folded
                             // only when non-empty, same guarantee as tier) —
                             // splits "db fault masked by app failover" from
                             // "db fault surfaced as outage" clusters

  friend bool operator==(const SignatureKey&, const SignatureKey&) = default;
};

/// FNV-1a over the key strings; `signature_id` is its 16-hex rendering (the
/// form journals, status boards and report tables share).
std::uint64_t signature_digest(const SignatureKey& key);
std::string signature_id(const SignatureKey& key);

/// Which recovery layers engaged before the outcome settled.
std::string detection_span(const core::RunResult& run);

/// Builds the signature key of one completed run. `call_context` is the
/// interceptor's corrupted-call context when known (journal "cc" / a live
/// interceptor); when empty but the fault activated, a coarser context is
/// synthesized from the fault spec so pre-v4 journals still cluster.
SignatureKey signature_of(const core::RunResult& run,
                          const std::string& call_context);

/// The reserved signature for journal records whose run line cannot be
/// parsed — kept so cluster totals still reconcile with record counts.
SignatureKey unparsed_signature();

/// One cluster: a signature plus everything needed to rank and exemplify it.
struct SignatureCluster {
  SignatureKey key;
  std::string id;            // signature_id(key)
  std::uint64_t count = 0;   // runs carrying this signature
  std::uint64_t campaigns = 0;  // distinct campaigns it appeared in
  std::string example_fault;    // first fault id seen with this signature
  std::string example_xi;       // its execution index (may be empty)
};

/// Accumulates runs into clusters. Deterministic: ranking is failures first,
/// then count descending, then id — independent of insertion order.
class SignatureIndex {
 public:
  void add(const SignatureKey& key, const std::string& fault_id,
           const std::string& exec_index, const std::string& campaign);

  /// Ranked clusters (see above). Σ count == total().
  std::vector<SignatureCluster> ranked() const;

  /// Total runs accumulated — the reconciliation figure.
  std::uint64_t total() const { return total_; }

  std::size_t distinct() const { return clusters_.size(); }

 private:
  struct Entry {
    SignatureCluster cluster;
    std::set<std::string> campaigns;
  };
  std::map<std::string, Entry> clusters_;  // id -> entry
  std::uint64_t total_ = 0;
};

}  // namespace dts::forensics
