// One-command failure replay from a journal record. Every campaign run is
// deterministic given (campaign seed, fault id) — the property the whole
// executor stack is built on — so a journal record plus the campaign
// configuration is a complete recipe for re-executing the run. Replay
// rebuilds the RunConfig (from the v4 header's embedded config when present,
// else from the JournalKey identity fields and defaults), pins the tracer on
// at maximum depth, re-executes, and compares outcome, run line, trace
// digest and corrupted-call context against the journaled values.
//
// A mismatch is the interesting result: the journaled run and the replayed
// run were fed identical inputs, so divergence means ntsim itself was
// nondeterministic (or the journal was produced by a different build) —
// replay doubles as the simulator's nondeterminism detector. This holds
// regardless of how the journal was produced: --jobs=N, --snapshots=on and
// distributed runs all journal results proven byte-identical to in-process
// serial execution, so replay always re-executes as a plain full run (in
// particular, snapshot-mode journals fall back to full-run replay — no
// checkpoint plan is installed).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/run.h"
#include "exec/journal.h"

namespace dts::forensics {

struct ReplayOptions {
  /// Trace-ring depth for the replayed run (the forensics dump tail).
  std::size_t trace_depth = 512;
};

struct ReplayResult {
  core::RunResult run;          // the replayed run's result
  std::string run_line;         // serialize_run_line(run)
  std::uint64_t trace_digest = 0;
  std::string call_context;     // corrupted-call context (empty: never fired)
  std::string forensics;        // full forensics dump of the replayed run
  std::string config_source;    // "journal header (v4)" / "journal key defaults"
  std::uint64_t rtrace_digest = 0;  // replayed propagation-path digest (v7)

  // Comparisons against the journal record. Digest/context comparisons are
  // vacuously true when the record predates v4 (no "td"/"cc" fields); the
  // rtrace comparison is vacuously true when the record carries no "rt" (v7).
  bool outcome_match = false;
  bool run_line_match = false;
  bool trace_digest_match = false;
  bool call_context_match = false;
  bool rtrace_digest_match = false;
  std::string journal_outcome;  // the record's outcome label, for display

  bool matches() const {
    return outcome_match && run_line_match && trace_digest_match &&
           call_context_match && rtrace_digest_match;
  }
};

/// Finds the record `selector` names: a full execution index ("digest/lease/
/// index"), a bare fault index ("17"), or a fault id. First match wins (the
/// executor's first-record-wins dedup rule). Nullptr with *error when absent.
const exec::JournalRecord* find_record(const exec::JournalFile& file,
                                       const std::string& selector,
                                       std::string* error);

/// Rebuilds the run configuration a journal's campaign used. Prefers the v4
/// embedded config; falls back to the JournalKey identity fields over
/// defaults. *source names which path was taken. Nullopt with *error when
/// the workload is unknown or the embedded config fails to parse.
std::optional<core::RunConfig> config_from_journal(const exec::JournalFile& file,
                                                   std::string* source,
                                                   std::string* error);

/// Re-executes `rec` and compares. Nullopt with *error when the record's
/// fault id or run line cannot be parsed (nothing to compare against).
std::optional<ReplayResult> replay_record(const exec::JournalFile& file,
                                          const exec::JournalRecord& rec,
                                          const ReplayOptions& opts,
                                          std::string* error);

}  // namespace dts::forensics
