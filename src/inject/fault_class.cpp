#include "inject/fault_class.h"

#include <map>

namespace dts::inject {

namespace {

/// Name-pattern classification of a parameter, following the Win32 SDK
/// naming conventions the registry preserves. Order matters: the first
/// matching rule wins.
std::optional<FaultClass> classify_param(std::string_view fn_name,
                                         std::string_view param_name) {
  auto contains = [&](std::string_view needle) {
    return param_name.find(needle) != std::string_view::npos;
  };
  auto fn_contains = [&](std::string_view needle) {
    return fn_name.find(needle) != std::string_view::npos;
  };

  // Paths & object names.
  if (contains("FileName") || contains("PathName") || contains("lpPath") ||
      contains("LibFileName") || (contains("Directory") && param_name[0] == 'l') ||
      contains("lpName") || contains("NamedPipeName") || contains("RootPathName")) {
    return FaultClass::kPathArgument;
  }
  // Configuration strings (profile family, environment).
  if (contains("AppName") || contains("KeyName") || contains("lpDefault") ||
      contains("ReturnedString") || fn_contains("EnvironmentVariable") ||
      fn_contains("ExpandEnvironment")) {
    return FaultClass::kConfigString;
  }
  // Timeouts.
  if (contains("Milliseconds") || contains("TimeOut") || contains("nTimeOut")) {
    return FaultClass::kTimeout;
  }
  // Sizes and counts.
  if (contains("Size") || contains("nNumberOfBytes") || contains("Length") ||
      contains("cch") || contains("cb") || contains("dwBytes") || contains("uBytes") ||
      contains("nCount") || (contains("Count") && param_name[0] != 'l')) {
    return FaultClass::kBufferSize;
  }
  // Synchronization handles.
  if (param_name == "hEvent" || param_name == "hMutex" || param_name == "hSemaphore" ||
      param_name == "hHandle" || contains("CriticalSection") ||
      (param_name == "hObject" )) {
    return FaultClass::kSyncHandle;
  }
  // File-ish handles.
  if (param_name == "hFile" || param_name == "hFindFile" || param_name == "hNamedPipe" ||
      param_name == "hReadPipe" || param_name == "hWritePipe" ||
      param_name == "hFileMappingObject" || param_name == "hTemplateFile") {
    return FaultClass::kFileHandle;
  }
  // Process / thread control.
  if (param_name == "hProcess" || param_name == "hThread" ||
      contains("StartAddress") || contains("ExitCode") || contains("uExitCode") ||
      contains("CommandLine") || contains("ApplicationName") ||
      contains("ProcessInformation") || contains("StartupInfo") ||
      contains("ThreadAttributes") || contains("ProcessAttributes") ||
      contains("Priority") || param_name == "dwProcessId") {
    return FaultClass::kProcessControl;
  }
  // Memory management.
  if (param_name == "hHeap" || param_name == "hMem" || param_name == "lpMem" ||
      param_name == "lpAddress" || param_name == "lpBaseAddress" ||
      fn_contains("Heap") || fn_contains("Virtual") || fn_contains("Global") ||
      fn_contains("Local") || fn_contains("Tls")) {
    return FaultClass::kMemoryManagement;
  }
  // Buffers & output structures.
  if (contains("Buffer") || contains("lpString") || contains("lpsz") ||
      param_name.rfind("lp", 0) == 0) {
    return FaultClass::kBufferPointer;
  }
  // Flag / mode words.
  if (contains("Flags") || contains("Mode") || contains("dwDesiredAccess") ||
      contains("Disposition") || contains("Attributes") || contains("fl") ||
      contains("bInherit") || contains("bManualReset") || contains("bInitial") ||
      contains("bWaitAll") || contains("bFailIfExists") || contains("bAlertable")) {
    return FaultClass::kFlags;
  }
  return std::nullopt;
}

}  // namespace

std::string_view to_string(FaultClass c) {
  switch (c) {
    case FaultClass::kPathArgument: return "path-argument";
    case FaultClass::kBufferPointer: return "buffer-pointer";
    case FaultClass::kBufferSize: return "buffer-size";
    case FaultClass::kSyncHandle: return "sync-handle";
    case FaultClass::kFileHandle: return "file-handle";
    case FaultClass::kProcessControl: return "process-control";
    case FaultClass::kMemoryManagement: return "memory-management";
    case FaultClass::kConfigString: return "config-string";
    case FaultClass::kTimeout: return "timeout";
    case FaultClass::kFlags: return "flags";
  }
  return "?";
}

std::optional<FaultClass> fault_class_from_string(std::string_view s) {
  for (FaultClass c : kAllFaultClasses) {
    if (to_string(c) == s) return c;
  }
  return std::nullopt;
}

std::optional<FaultClass> classify(nt::Fn fn, int param_index) {
  const auto& info = nt::Kernel32Registry::instance().info(fn);
  if (param_index < 0 || param_index >= info.param_count()) return std::nullopt;
  return classify_param(info.name, info.params[static_cast<std::size_t>(param_index)]);
}

FaultList faults_for_class(const std::string& target_image, FaultClass c,
                           const std::set<nt::Fn>& within, int iterations) {
  FaultList out;
  for (std::uint16_t id = 0; id < nt::kImplementedFunctionCount; ++id) {
    const nt::Fn fn = static_cast<nt::Fn>(id);
    if (!within.empty() && !within.contains(fn)) continue;
    const auto& info = nt::Kernel32Registry::instance().info(fn);
    for (int p = 0; p < info.param_count(); ++p) {
      if (classify(fn, p) != c) continue;
      for (int inv = 1; inv <= iterations; ++inv) {
        for (FaultType type : kAllFaultTypes) {
          FaultSpec f;
          f.target_image = target_image;
          f.fn = fn;
          f.param_index = p;
          f.invocation = inv;
          f.type = type;
          out.faults.push_back(std::move(f));
        }
      }
    }
  }
  return out;
}

std::vector<std::pair<FaultClass, std::size_t>> class_histogram(
    const std::set<nt::Fn>& functions) {
  std::map<FaultClass, std::size_t> counts;
  for (nt::Fn fn : functions) {
    const auto& info = nt::Kernel32Registry::instance().info(fn);
    for (int p = 0; p < info.param_count(); ++p) {
      if (auto c = classify(fn, p)) ++counts[*c];
    }
  }
  return {counts.begin(), counts.end()};
}

}  // namespace dts::inject
