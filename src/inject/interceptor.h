// The library-call interceptor: DTS's injection mechanism.
//
// Installed as the Kernel32 dispatcher hook on the target machine, it counts
// invocations per (image, function), records which injectable functions each
// image activates (paper Table 1), and — when armed — corrupts exactly one
// parameter word of one invocation. When tracing is enabled it also feeds
// every target-image call (with sim-time and, once dispatch returns, the
// result word) into an obs::SyscallTrace ring for failure forensics.
//
// Independently of the trace ring (which is bounded and optional), the
// interceptor folds every call into two rolling FNV-1a digests that are
// always on — a few integer multiplies per call:
//   trace_digest  — seq, function, argc, post-corruption argument words, and
//                   each dispatch result. A fingerprint of the whole machine
//                   trajectory: two runs with equal digests made the same
//                   calls with the same arguments and got the same answers.
//                   Journaled per run ("td") and re-checked by ntdts replay —
//                   a mismatch means ntsim itself was nondeterministic.
//   path_digest   — function × per-(image,function) invocation count, i.e.
//                   the dynamic invocation path. Its value just before the
//                   armed fault fires names the call context of the
//                   corruption (src/forensics/ execution indexing).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "inject/fault.h"
#include "ntsim/process.h"
#include "ntsim/syscall.h"
#include "obs/trace.h"

namespace dts::inject {

class Interceptor final : public nt::SyscallHook {
 public:
  /// Arms a fault. At most one fault SPEC is injected per run (paper §4:
  /// "Only one fault is injected for each execution of the server program");
  /// an intermittent/persistent spec fires that one fault at multiple
  /// invocations, which is still one fault.
  void arm(FaultSpec fault) {
    armed_ = std::move(fault);
    injected_ = false;
    effective_ = false;
    context_.reset();
    injection_time_ = sim::TimePoint{};
    injection_machine_.clear();
  }
  void disarm() { armed_.reset(); }
  const std::optional<FaultSpec>& armed() const { return armed_; }

  /// True once the armed fault has fired at least once.
  bool injected() const { return injected_; }
  /// Parameter words of the most recent firing (parameter operators only).
  nt::Word original_word() const { return original_word_; }
  nt::Word corrupted_word() const { return corrupted_word_; }

  /// True once the armed fault has fired AND could alter behaviour. For
  /// parameter corruptions that means some firing actually changed the word:
  /// a corruption whose result equals the original value (zeroing an
  /// already-zero argument, setting all bits of 0xFFFFFFFF) cannot alter
  /// behaviour and must not count as an activated fault — it would inflate
  /// the paper-table denominators with provably inert runs. Result-side and
  /// completion operators count as effective on any firing: they always
  /// perturb the completion (result word, error state, or timing).
  bool effective() const { return effective_; }

  /// Invocation counting is per image across process instances within one
  /// run: a respawned Apache worker continues the count, but the fault is
  /// one-shot so a clean respawn never re-injects.
  int invocations(const std::string& image, nt::Fn fn) const;

  /// Injectable functions (param count >= 1) called at least once by
  /// processes of `image` — the paper's "activated functions".
  const std::set<nt::Fn>& called(const std::string& image) const;

  /// Whether the armed fault's function was called at all by the target
  /// image (used for the skip-uncalled-functions rule).
  bool target_function_called() const;

  std::uint64_t calls_observed() const { return calls_observed_; }

  /// Dynamic call context of the corrupted call: which function, at which
  /// machine-wide call site (CallRecord::seq), on which invocation, reached
  /// over which invocation path (path_digest just before the fault fired).
  /// Set exactly when the armed fault fires; journaled per run ("cc").
  struct CallContext {
    nt::Fn fn{};
    std::uint64_t call_site = 0;
    int invocation = 0;
    std::uint64_t path_digest = 0;
    /// "ReadFile@417#1/89abcdef01234567" — stable, parse-free display form.
    std::string to_string() const;
  };
  const std::optional<CallContext>& injection_context() const { return context_; }

  /// Sim time and machine of the first firing (valid when injected()):
  /// request tracing uses them to stamp the span the corruption landed in.
  sim::TimePoint injection_time() const { return injection_time_; }
  const std::string& injection_machine() const { return injection_machine_; }

  /// Rolling trajectory digests (see file comment). Both start at the FNV
  /// offset basis, so a freshly constructed interceptor on any host agrees.
  std::uint64_t trace_digest() const { return trace_digest_; }
  std::uint64_t path_digest() const { return path_digest_; }

  /// One traced call (kept as an alias so existing call sites read the same).
  using TraceEntry = obs::TraceEvent;

  /// Enables tracing of the target image's calls (bounded ring buffer; 0
  /// disables). The trace is the paper's §4.3 debugging aid: it shows what
  /// the server did right up to the failure.
  void set_trace_limit(std::size_t limit) { trace_.set_capacity(limit); }

  /// Last-N traced calls, oldest first.
  std::vector<obs::TraceEvent> trace() const { return trace_.entries(); }

  /// The full trace sink (ring tail + pinned injection context), for
  /// forensics dumps.
  const obs::SyscallTrace& syscall_trace() const { return trace_; }

  /// One golden-run observation: the raw argument words of one invocation,
  /// plus the machine-wide syscall sequence number at interception — a
  /// stable call-site index for naming the injection point (the golden run
  /// is deterministic, so the same invocation lands on the same seq).
  struct CapturedCall {
    std::uint64_t seq = 0;
    int argc = 0;
    std::array<nt::Word, nt::kMaxSyscallArgs> args{};
  };

  /// Enables golden-run capture: records the first `max_invocations` calls
  /// of every injectable function made by `image` (0 disables). Used by the
  /// campaign planner's fault-space profiler; off for injection runs.
  void set_golden_capture(std::string image, int max_invocations) {
    capture_image_ = std::move(image);
    capture_max_invocations_ = max_invocations;
  }

  /// Captured calls per function, in invocation order (at most the capture
  /// bound per function). Empty unless golden capture was enabled.
  const std::map<nt::Fn, std::vector<CapturedCall>>& captured_calls() const {
    return captured_;
  }

  /// Checkpoint plan for snapshot execution (src/snap/): `sites` are
  /// ascending machine-wide syscall sequence numbers (CallRecord::seq, as
  /// captured by the golden-run profiler); when the run reaches each site the
  /// callback fires at the very top of on_call — before the call is counted,
  /// corrupted, or dispatched — so a world capture taken inside it precedes
  /// any effect of the call itself. The callback returns true to keep firing
  /// at later sites, false to cancel all remaining checkpoints (what a forked
  /// child does after arming its fault).
  struct CheckpointPlan {
    std::vector<std::uint64_t> sites;
    std::function<bool(std::uint64_t site)> on_checkpoint;
  };

  void set_checkpoints(CheckpointPlan plan) {
    checkpoints_ = std::move(plan);
    next_checkpoint_ = 0;
  }
  void clear_checkpoints() {
    checkpoints_.reset();
    next_checkpoint_ = 0;
  }

  // nt::SyscallHook
  void on_call(const nt::Process& proc, nt::CallRecord& rec) override;
  void on_result(const nt::Process& proc, const nt::CallRecord& rec,
                 nt::Word result) override;

 private:
  std::optional<FaultSpec> armed_;
  bool injected_ = false;
  bool effective_ = false;
  nt::Word original_word_ = 0;
  nt::Word corrupted_word_ = 0;
  std::uint64_t calls_observed_ = 0;
  std::uint64_t trace_digest_ = 14695981039346656037ull;  // FNV-1a offset
  std::uint64_t path_digest_ = 14695981039346656037ull;
  std::optional<CallContext> context_;
  sim::TimePoint injection_time_{};
  std::string injection_machine_;

  std::map<std::pair<std::string, nt::Fn>, int> counts_;
  std::map<std::string, std::set<nt::Fn>> called_;

  std::string capture_image_;
  int capture_max_invocations_ = 0;
  std::map<nt::Fn, std::vector<CapturedCall>> captured_;

  std::optional<CheckpointPlan> checkpoints_;
  std::size_t next_checkpoint_ = 0;

  obs::SyscallTrace trace_;
};

}  // namespace dts::inject
