// The library-call interceptor: DTS's injection mechanism.
//
// Installed as the Kernel32 dispatcher hook on the target machine, it counts
// invocations per (image, function), records which injectable functions each
// image activates (paper Table 1), and — when armed — corrupts exactly one
// parameter word of one invocation.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "inject/fault.h"
#include "ntsim/process.h"
#include "ntsim/syscall.h"

namespace dts::inject {

class Interceptor final : public nt::SyscallHook {
 public:
  /// Arms a fault. At most one fault is injected per run (paper §4: "Only
  /// one fault is injected for each execution of the server program").
  void arm(FaultSpec fault) {
    armed_ = std::move(fault);
    injected_ = false;
  }
  void disarm() { armed_.reset(); }
  const std::optional<FaultSpec>& armed() const { return armed_; }

  /// True once the armed fault has fired.
  bool injected() const { return injected_; }
  nt::Word original_word() const { return original_word_; }
  nt::Word corrupted_word() const { return corrupted_word_; }

  /// Invocation counting is per image across process instances within one
  /// run: a respawned Apache worker continues the count, but the fault is
  /// one-shot so a clean respawn never re-injects.
  int invocations(const std::string& image, nt::Fn fn) const;

  /// Injectable functions (param count >= 1) called at least once by
  /// processes of `image` — the paper's "activated functions".
  const std::set<nt::Fn>& called(const std::string& image) const;

  /// Whether the armed fault's function was called at all by the target
  /// image (used for the skip-uncalled-functions rule).
  bool target_function_called() const;

  std::uint64_t calls_observed() const { return calls_observed_; }

  /// One traced call from a target-image process.
  struct TraceEntry {
    nt::Pid pid = 0;
    nt::Fn fn{};
    std::array<nt::Word, nt::kMaxSyscallArgs> args{};
    int argc = 0;
    bool injected_here = false;

    /// "pid 104: ReadFile(0x14, 0x00401000, 16384, ...)" form; marks the
    /// injected call with " <== FAULT INJECTED".
    std::string to_string() const;
  };

  /// Enables tracing of the target image's calls (bounded ring buffer; 0
  /// disables). The trace is the paper's §4.3 debugging aid: it shows what
  /// the server did right up to the failure.
  void set_trace_limit(std::size_t limit) { trace_limit_ = limit; }
  const std::deque<TraceEntry>& trace() const { return trace_; }

  // nt::SyscallHook
  void on_call(const nt::Process& proc, nt::CallRecord& rec) override;

 private:
  std::optional<FaultSpec> armed_;
  bool injected_ = false;
  nt::Word original_word_ = 0;
  nt::Word corrupted_word_ = 0;
  std::uint64_t calls_observed_ = 0;

  std::map<std::pair<std::string, nt::Fn>, int> counts_;
  std::map<std::string, std::set<nt::Fn>> called_;

  std::size_t trace_limit_ = 0;
  std::deque<TraceEntry> trace_;
};

}  // namespace dts::inject
