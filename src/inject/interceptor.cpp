#include "inject/interceptor.h"

#include <cstdio>

#include "ntsim/kernel.h"
#include "ntsim/kernel32_registry.h"

namespace dts::inject {

namespace {
const std::set<nt::Fn> kEmpty;

inline std::uint64_t fold(std::uint64_t digest, std::uint64_t value) {
  return (digest ^ value) * 1099511628211ull;  // FNV-1a prime
}

// Whether the armed fault fires at this per-(image,fn) invocation count.
// Transient specs additionally require not having fired before (`fired`):
// the count check alone would suffice for one process image, but a respawned
// worker restarts nothing — counts are per image across instances — so the
// guard is kept explicit.
bool fires_at(const FaultSpec& f, int count, bool fired) {
  switch (f.temporal) {
    case Temporal::kTransient:
      return !fired && count == f.invocation;
    case Temporal::kIntermittent:
      return count >= f.invocation && (count - f.invocation) % f.period == 0;
    case Temporal::kPersistent:
      return count >= f.invocation;
  }
  return false;
}

// Result-side operators ride the CallRecord completion-action mechanism
// (ntsim/syscall.h); the dispatcher consumes the action after on_call.
void set_completion_action(nt::CallRecord& rec, FaultType type) {
  using Action = nt::CallRecord::Action;
  switch (type) {
    case FaultType::kNoStore:
      rec.action = Action::kZeroResult;
      break;
    case FaultType::kFlipBranch:
      rec.action = Action::kFlipResult;
      break;
    case FaultType::kErrNoMemory:
      rec.action = Action::kForceResult;
      rec.forced_result = 0;
      rec.forced_error = nt::to_dword(nt::Win32Error::kNotEnoughMemory);
      break;
    case FaultType::kErrNoHandles:
      rec.action = Action::kForceResult;
      rec.forced_result = 0;
      rec.forced_error = nt::to_dword(nt::Win32Error::kTooManyOpenFiles);
      break;
    case FaultType::kErrDiskFull:
      rec.action = Action::kForceResult;
      rec.forced_result = 0;
      rec.forced_error = nt::to_dword(nt::Win32Error::kDiskFull);
      break;
    case FaultType::kDelay:
      rec.action = Action::kDelay;
      rec.delay_us = 50000;  // 50 ms of sim time, ~1250x the base call cost
      break;
    case FaultType::kDrop:
      rec.action = Action::kDrop;
      break;
    default:
      break;  // parameter operators never reach here
  }
}
}

std::string Interceptor::CallContext::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s@%llu#%d/%016llx",
                std::string(nt::to_string(fn)).c_str(),
                static_cast<unsigned long long>(call_site), invocation,
                static_cast<unsigned long long>(path_digest));
  return buf;
}

int Interceptor::invocations(const std::string& image, nt::Fn fn) const {
  auto it = counts_.find({image, fn});
  return it == counts_.end() ? 0 : it->second;
}

const std::set<nt::Fn>& Interceptor::called(const std::string& image) const {
  auto it = called_.find(image);
  return it == called_.end() ? kEmpty : it->second;
}

bool Interceptor::target_function_called() const {
  if (!armed_) return false;
  return invocations(armed_->target_image, armed_->fn) > 0;
}

void Interceptor::on_call(const nt::Process& proc, nt::CallRecord& rec) {
  // Checkpoints fire before ANY other effect of this call (counting,
  // corruption, tracing, dispatch): a forked child resuming from inside the
  // callback sees the call exactly as the golden run did at this seq. The
  // callback returning false cancels the remaining sites without destroying
  // the std::function we are executing inside.
  while (checkpoints_ && next_checkpoint_ < checkpoints_->sites.size() &&
         checkpoints_->sites[next_checkpoint_] <= rec.seq) {
    const std::uint64_t site = checkpoints_->sites[next_checkpoint_++];
    if (!checkpoints_->on_checkpoint(site)) {
      next_checkpoint_ = checkpoints_->sites.size();
      break;
    }
  }

  ++calls_observed_;
  const std::string& image = proc.image();

  const int count = ++counts_[{image, rec.fn}];
  if (rec.argc > 0) called_[image].insert(rec.fn);

  // Golden-run capture (pre-corruption by construction: capture runs arm no
  // fault): the planner's record of what each injectable invocation received.
  if (count <= capture_max_invocations_ && rec.argc > 0 && image == capture_image_) {
    CapturedCall cap;
    cap.seq = rec.seq;
    cap.argc = rec.argc;
    cap.args = rec.args;
    captured_[rec.fn].push_back(cap);
  }

  bool injected_here = false;
  if (armed_) {
    const FaultSpec& f = *armed_;
    const bool param_ok = targets_param(f.type)
                              ? f.param_index >= 0 && f.param_index < rec.argc
                              : f.param_index < 0;
    if (image == f.target_image && rec.fn == f.fn && param_ok &&
        fires_at(f, count, injected_)) {
      if (targets_param(f.type)) {
        auto& word = rec.args[static_cast<std::size_t>(f.param_index)];
        original_word_ = word;
        corrupted_word_ = corrupt(word, f.type);
        word = corrupted_word_;
        // Effective iff SOME firing changed a word: a persistent zero over
        // an initially-zero argument still activates the moment the golden
        // value turns nonzero.
        effective_ = effective_ || corrupted_word_ != original_word_;
      } else {
        set_completion_action(rec, f.type);
        effective_ = true;
      }
      injected_here = true;
      if (!injected_) {
        // The call context names the FIRST firing — the point where the run
        // diverges from golden; later intermittent/persistent firings happen
        // on an already-perturbed path.
        CallContext ctx;
        ctx.fn = rec.fn;
        ctx.call_site = rec.seq;
        ctx.invocation = count;
        ctx.path_digest = path_digest_;  // the path that LED here, pre-fold
        context_ = ctx;
        // Where and when in the simulated world the corruption landed — what
        // request tracing (obs/rtrace/) needs to stamp the enclosing span.
        injection_time_ = proc.machine().sim().now();
        injection_machine_ = proc.machine().name();
      }
      injected_ = true;
    }
  }

  // Fold this call into the rolling digests. Post-corruption by placement:
  // the trajectory digest fingerprints what the kernel actually received.
  path_digest_ = fold(fold(path_digest_, static_cast<std::uint64_t>(rec.fn)),
                      static_cast<std::uint64_t>(count));
  trace_digest_ = fold(trace_digest_, rec.seq);
  trace_digest_ = fold(trace_digest_, static_cast<std::uint64_t>(rec.fn));
  trace_digest_ = fold(trace_digest_, static_cast<std::uint64_t>(rec.argc));
  for (int i = 0; i < rec.argc; ++i) {
    trace_digest_ = fold(trace_digest_, rec.args[static_cast<std::size_t>(i)]);
  }

  // Trace target-image calls (post-corruption: the trace shows what the
  // kernel actually received, which is what the debugger needs).
  if (trace_.enabled() && (!armed_ || image == armed_->target_image)) {
    obs::TraceEvent entry;
    entry.seq = rec.seq;
    entry.time = proc.machine().sim().now();
    entry.pid = proc.pid();
    entry.fn = rec.fn;
    entry.args = rec.args;
    entry.argc = rec.argc;
    entry.injected_here = injected_here;
    trace_.record_call(entry);
  }
}

void Interceptor::on_result(const nt::Process& proc, const nt::CallRecord& rec,
                            nt::Word result) {
  (void)proc;
  trace_digest_ = fold(fold(trace_digest_, rec.seq), result);
  if (!trace_.enabled()) return;
  trace_.record_result(rec.seq, result);
}

}  // namespace dts::inject
