#include "inject/fault.h"

#include <charconv>

namespace dts::inject {

std::string_view to_string(FaultType t) {
  switch (t) {
    case FaultType::kZero: return "zero";
    case FaultType::kOnes: return "ones";
    case FaultType::kFlip: return "flip";
    case FaultType::kNoLoad: return "noload";
    case FaultType::kCorruptPointer: return "corruptptr";
    case FaultType::kNoStore: return "nostore";
    case FaultType::kFlipBranch: return "flipbranch";
    case FaultType::kErrNoMemory: return "errnomem";
    case FaultType::kErrNoHandles: return "errnohandles";
    case FaultType::kErrDiskFull: return "errdiskfull";
    case FaultType::kDelay: return "delay";
    case FaultType::kDrop: return "drop";
  }
  return "?";
}

std::optional<FaultType> fault_type_from_string(std::string_view s) {
  if (s == "zero") return FaultType::kZero;
  if (s == "ones") return FaultType::kOnes;
  if (s == "flip") return FaultType::kFlip;
  if (s == "noload") return FaultType::kNoLoad;
  if (s == "corruptptr") return FaultType::kCorruptPointer;
  if (s == "nostore") return FaultType::kNoStore;
  if (s == "flipbranch") return FaultType::kFlipBranch;
  if (s == "errnomem") return FaultType::kErrNoMemory;
  if (s == "errnohandles") return FaultType::kErrNoHandles;
  if (s == "errdiskfull") return FaultType::kErrDiskFull;
  if (s == "delay") return FaultType::kDelay;
  if (s == "drop") return FaultType::kDrop;
  return std::nullopt;
}

std::string_view operator_family(FaultType t) {
  switch (t) {
    case FaultType::kZero:
    case FaultType::kOnes:
    case FaultType::kFlip:
      return "paper";
    case FaultType::kNoLoad:
    case FaultType::kCorruptPointer:
    case FaultType::kNoStore:
    case FaultType::kFlipBranch:
      return "mutation";
    case FaultType::kErrNoMemory:
    case FaultType::kErrNoHandles:
    case FaultType::kErrDiskFull:
    case FaultType::kDelay:
    case FaultType::kDrop:
      return "oserror";
  }
  return "?";
}

std::string_view to_string(Temporal t) {
  switch (t) {
    case Temporal::kTransient: return "transient";
    case Temporal::kIntermittent: return "intermittent";
    case Temporal::kPersistent: return "persistent";
  }
  return "?";
}

std::string FaultSpec::id() const {
  const auto& info = nt::Kernel32Registry::instance().info(fn);
  std::string param = param_index < 0
                          ? "ret"
                          : param_index < info.param_count()
                                ? std::string(info.params[static_cast<std::size_t>(param_index)])
                                : "param" + std::to_string(param_index);
  std::string out = (tier.empty() ? std::string() : tier + "/") + std::string(info.name) + "." +
                    param + "#" + std::to_string(invocation) + ":" + std::string(to_string(type));
  // Temporal suffix only when non-default: paper-model ids stay byte-for-byte
  // what they were before the temporal axis existed.
  if (temporal == Temporal::kIntermittent) {
    out += "@every" + std::to_string(period);
  } else if (temporal == Temporal::kPersistent) {
    out += "@sticky";
  }
  return out;
}

namespace {

std::optional<FaultSpec> parse_impl(std::string_view target_image, std::string_view id,
                                    bool require_implemented) {
  // Optional topology-tier prefix: "db/ReadFile.hFile#1:zero". The tier name
  // never contains '/', '.', '#', or ':', so a '/' before the first '.'
  // unambiguously separates it from the function name.
  std::string tier;
  if (const auto slash = id.find('/'); slash != std::string_view::npos) {
    const auto first_dot = id.find('.');
    if (slash == 0 || first_dot == std::string_view::npos || slash > first_dot) {
      return std::nullopt;
    }
    tier = std::string(id.substr(0, slash));
    id = id.substr(slash + 1);
  }
  const auto dot = id.find('.');
  const auto hash = id.rfind('#');
  const auto colon = id.rfind(':');
  if (dot == std::string_view::npos || hash == std::string_view::npos ||
      colon == std::string_view::npos || !(dot < hash && hash < colon)) {
    return std::nullopt;
  }
  const auto& reg = nt::Kernel32Registry::instance();
  const nt::FunctionInfo* info = reg.by_name(id.substr(0, dot));
  if (info == nullptr || (require_implemented && !info->implemented)) return std::nullopt;

  // "ret" names the call's result — no KERNEL32 parameter uses that name, so
  // the special case cannot shadow a real parameter.
  const std::string_view param_name = id.substr(dot + 1, hash - dot - 1);
  int param_index = -1;
  bool param_found = param_name == "ret";
  if (!param_found) {
    for (int i = 0; i < info->param_count(); ++i) {
      if (info->params[static_cast<std::size_t>(i)] == param_name) {
        param_index = i;
        param_found = true;
        break;
      }
    }
  }
  if (!param_found) return std::nullopt;

  int invocation = 0;
  const std::string_view inv = id.substr(hash + 1, colon - hash - 1);
  auto [p, ec] = std::from_chars(inv.data(), inv.data() + inv.size(), invocation);
  if (ec != std::errc{} || p != inv.data() + inv.size() || invocation < 1) return std::nullopt;

  // Split the optional temporal suffix off the type token.
  std::string_view type_token = id.substr(colon + 1);
  Temporal temporal = Temporal::kTransient;
  int period = 0;
  if (const auto at = type_token.find('@'); at != std::string_view::npos) {
    const std::string_view suffix = type_token.substr(at + 1);
    type_token = type_token.substr(0, at);
    if (suffix == "sticky") {
      temporal = Temporal::kPersistent;
    } else if (suffix.rfind("every", 0) == 0) {
      const std::string_view n = suffix.substr(5);
      auto [np, nec] = std::from_chars(n.data(), n.data() + n.size(), period);
      if (nec != std::errc{} || np != n.data() + n.size() || period < 2) return std::nullopt;
      temporal = Temporal::kIntermittent;
    } else {
      return std::nullopt;
    }
  }

  auto type = fault_type_from_string(type_token);
  if (!type) return std::nullopt;
  // The operator decides which side of the call the id must name: parameter
  // operators need a real parameter, result/completion operators need "ret".
  if (targets_param(*type) != (param_index >= 0)) return std::nullopt;

  FaultSpec spec;
  spec.target_image = std::string(target_image);
  spec.fn = static_cast<nt::Fn>(info->id);
  spec.param_index = param_index;
  spec.invocation = invocation;
  spec.type = *type;
  spec.temporal = temporal;
  spec.period = period;
  spec.tier = tier;
  return spec;
}

}  // namespace

std::optional<FaultSpec> parse_fault_id(std::string_view target_image, std::string_view id) {
  return parse_impl(target_image, id, /*require_implemented=*/true);
}

std::optional<FaultSpec> parse_fault_id_any(std::string_view target_image, std::string_view id) {
  return parse_impl(target_image, id, /*require_implemented=*/false);
}

}  // namespace dts::inject
