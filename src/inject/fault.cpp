#include "inject/fault.h"

#include <charconv>

namespace dts::inject {

std::string_view to_string(FaultType t) {
  switch (t) {
    case FaultType::kZero: return "zero";
    case FaultType::kOnes: return "ones";
    case FaultType::kFlip: return "flip";
  }
  return "?";
}

std::optional<FaultType> fault_type_from_string(std::string_view s) {
  if (s == "zero") return FaultType::kZero;
  if (s == "ones") return FaultType::kOnes;
  if (s == "flip") return FaultType::kFlip;
  return std::nullopt;
}

std::string FaultSpec::id() const {
  const auto& info = nt::Kernel32Registry::instance().info(fn);
  std::string param = param_index >= 0 && param_index < info.param_count()
                          ? std::string(info.params[static_cast<std::size_t>(param_index)])
                          : "param" + std::to_string(param_index);
  return std::string(info.name) + "." + param + "#" + std::to_string(invocation) + ":" +
         std::string(to_string(type));
}

std::optional<FaultSpec> parse_fault_id(std::string_view target_image, std::string_view id) {
  const auto dot = id.find('.');
  const auto hash = id.rfind('#');
  const auto colon = id.rfind(':');
  if (dot == std::string_view::npos || hash == std::string_view::npos ||
      colon == std::string_view::npos || !(dot < hash && hash < colon)) {
    return std::nullopt;
  }
  const auto& reg = nt::Kernel32Registry::instance();
  const nt::FunctionInfo* info = reg.by_name(id.substr(0, dot));
  if (info == nullptr || !info->implemented) return std::nullopt;

  const std::string_view param_name = id.substr(dot + 1, hash - dot - 1);
  int param_index = -1;
  for (int i = 0; i < info->param_count(); ++i) {
    if (info->params[static_cast<std::size_t>(i)] == param_name) {
      param_index = i;
      break;
    }
  }
  if (param_index < 0) return std::nullopt;

  int invocation = 0;
  const std::string_view inv = id.substr(hash + 1, colon - hash - 1);
  auto [p, ec] = std::from_chars(inv.data(), inv.data() + inv.size(), invocation);
  if (ec != std::errc{} || p != inv.data() + inv.size() || invocation < 1) return std::nullopt;

  auto type = fault_type_from_string(id.substr(colon + 1));
  if (!type) return std::nullopt;

  FaultSpec spec;
  spec.target_image = std::string(target_image);
  spec.fn = static_cast<nt::Fn>(info->id);
  spec.param_index = param_index;
  spec.invocation = invocation;
  spec.type = *type;
  return spec;
}

}  // namespace dts::inject
