// System-independent fault classes — the paper's §5 future-work direction:
// "The fault and workload sets must be described in a system-independent way
// that can be applied to both types of systems" (their Linux port).
//
// A FaultClass names WHAT is corrupted semantically (a file-path argument, a
// synchronization handle, a buffer size, ...) instead of naming a KERNEL32
// function. The taxonomy maps each class onto the concrete functions and
// parameters of this platform's API surface; a POSIX port would provide its
// own mapping and the same class-level fault list would apply to both.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "inject/fault_list.h"

namespace dts::inject {

enum class FaultClass {
  kPathArgument,      // file/pipe name strings
  kBufferPointer,     // data buffers for I/O and struct outputs
  kBufferSize,        // lengths / byte counts
  kSyncHandle,        // handles to waitable synchronization objects
  kFileHandle,        // handles to files / pipes / search state
  kProcessControl,    // process & thread creation/control arguments
  kMemoryManagement,  // heap/virtual allocation arguments
  kConfigString,      // configuration/profile string arguments
  kTimeout,           // millisecond timeouts and wait limits
  kFlags,             // mode/flag words
};

constexpr FaultClass kAllFaultClasses[] = {
    FaultClass::kPathArgument,  FaultClass::kBufferPointer, FaultClass::kBufferSize,
    FaultClass::kSyncHandle,    FaultClass::kFileHandle,    FaultClass::kProcessControl,
    FaultClass::kMemoryManagement, FaultClass::kConfigString, FaultClass::kTimeout,
    FaultClass::kFlags,
};

std::string_view to_string(FaultClass c);
std::optional<FaultClass> fault_class_from_string(std::string_view s);

/// Classifies one (function, parameter) injection point, or nullopt for
/// parameters outside the taxonomy (reserved/unused arguments).
std::optional<FaultClass> classify(nt::Fn fn, int param_index);

/// All concrete injection points of a class on this platform (every matching
/// function × parameter), restricted to `within` when non-empty — the bridge
/// from a system-independent fault list to a platform campaign.
FaultList faults_for_class(const std::string& target_image, FaultClass c,
                           const std::set<nt::Fn>& within = {}, int iterations = 1);

/// Per-class fault counts over a set of activated functions (reporting aid).
std::vector<std::pair<FaultClass, std::size_t>> class_histogram(
    const std::set<nt::Fn>& functions);

}  // namespace dts::inject
