// The DTS fault model: corrupt one input parameter of one invocation of one
// KERNEL32 function, with one of three corruption types (paper §4: reset all
// bits to zero, set all bits to one, flip all bits).
//
// PR 8 widens the operator axis beyond the paper's three parameter
// corruptions (the fault-model registry in src/fault/ groups operators into
// selectable models):
//   - mutation operators (MINIX faultlib style): no-load / corrupt-pointer
//     corrupt a parameter word like the paper operators; no-store /
//     flip-branch target the RESULT of the call (param "ret", index -1).
//   - OS-level failure semantics: error-return injection (the call fails
//     with a specific Win32 error without executing) and completion faults
//     (delayed / dropped completions routed through the sim event queue).
// and adds a temporal axis orthogonal to all operators: transient (fire once
// at the target invocation — the paper default), intermittent (fire at every
// `period`-th invocation from the target on), persistent (fire at every
// invocation from the target on). Fault ids carry the new axes as
// "fn.param#inv:type[@everyN|@sticky]"; ids for paper faults are byte-for-
// byte unchanged.
#pragma once

#include <optional>
#include <string>

#include "ntsim/kernel32_registry.h"
#include "ntsim/types.h"

namespace dts::inject {

enum class FaultType {
  // Paper §4 parameter corruptions (the default model).
  kZero,
  kOnes,
  kFlip,
  // Mutation operators, parameter-targeting.
  kNoLoad,          // parameter reads as uninitialised memory (0xCCCCCCCC)
  kCorruptPointer,  // pointer-valued word nudged onto a misaligned address
  // Mutation operators, result-targeting (param "ret").
  kNoStore,     // the result word is never stored: forced to 0
  kFlipBranch,  // the boolean result is inverted: success/failure branch swap
  // OS-level failure semantics: error returns + completion faults ("ret").
  kErrNoMemory,   // fail with ERROR_NOT_ENOUGH_MEMORY, result 0
  kErrNoHandles,  // fail with ERROR_TOO_MANY_OPEN_FILES (handle exhaustion)
  kErrDiskFull,   // fail with ERROR_DISK_FULL
  kDelay,         // completion delayed by a fixed sim-time lag
  kDrop,          // completion never arrives: the call blocks forever
};

/// The paper's sweep stays exactly these three — wider operator sets are
/// enumerated by the fault-model registry (src/fault/), never implicitly.
constexpr FaultType kAllFaultTypes[] = {FaultType::kZero, FaultType::kOnes, FaultType::kFlip};

std::string_view to_string(FaultType t);
std::optional<FaultType> fault_type_from_string(std::string_view s);

/// True for operators that corrupt an input parameter word at call entry
/// (they need a valid param_index); false for result/completion-side
/// operators, which use param_index -1, rendered "ret" in fault ids.
constexpr bool targets_param(FaultType t) {
  switch (t) {
    case FaultType::kZero:
    case FaultType::kOnes:
    case FaultType::kFlip:
    case FaultType::kNoLoad:
    case FaultType::kCorruptPointer:
      return true;
    default:
      return false;
  }
}

/// Model family the operator belongs to — the journal/report model axis.
std::string_view operator_family(FaultType t);  // "paper"|"mutation"|"oserror"

/// Applies the corruption to a 32-bit parameter word. Identity for
/// result-side operators, which never touch parameters.
constexpr nt::Word corrupt(nt::Word value, FaultType t) {
  switch (t) {
    case FaultType::kZero: return 0;
    case FaultType::kOnes: return 0xFFFFFFFFu;
    case FaultType::kFlip: return ~value;
    case FaultType::kNoLoad: return 0xCCCCCCCCu;  // MSVC uninitialised fill
    case FaultType::kCorruptPointer: return value ^ 0x4u;  // misalign pointee
    default: return value;
  }
}

/// When the fault fires relative to its target invocation.
enum class Temporal {
  kTransient,     // once, at exactly invocation N (paper default)
  kIntermittent,  // at invocation N and every `period`-th invocation after
  kPersistent,    // at every invocation >= N (sticky corruption)
};

std::string_view to_string(Temporal t);

/// One fault to inject: which process image, which function, which parameter
/// (or the result, index -1), which invocation (1-based; the paper injects
/// only the first), which operator, on which temporal schedule.
struct FaultSpec {
  std::string target_image;
  nt::Fn fn{};
  int param_index = 0;  // 0-based; -1 = the call's result ("ret")
  int invocation = 1;   // 1-based
  FaultType type = FaultType::kZero;
  Temporal temporal = Temporal::kTransient;
  int period = 0;  // kIntermittent only: fire every `period`-th invocation (>= 2)
  // Topology tier the fault targets ("db" in "db/ReadFile.hFile#1:zero").
  // Empty for classic single-machine campaigns, whose ids stay byte-for-byte
  // unchanged — the prefix exists only when a multi-tier topology is active.
  std::string tier;

  /// Human-readable id, e.g. "ReadFileEx.nNumberOfBytesToRead#1:zero",
  /// "CreateFileA.ret#1:errnomem", "ReadFile.hFile#2:flip@sticky",
  /// "db/ReadFile.hFile#1:zero" (tier-prefixed, multi-tier campaigns only).
  std::string id() const;

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// True when every behaviour of the fault is decided by the golden value of
/// one parameter word at one invocation — the precondition for the planner's
/// `inert_corruption` prune and same-corrupted-word dedup. False for
/// result/completion operators (no profiled golden result exists) and for
/// intermittent/persistent faults (later firings see post-divergence words).
constexpr bool single_shot_param_corruption(const FaultSpec& f) {
  return targets_param(f.type) && f.temporal == Temporal::kTransient;
}

/// Parses an id produced by FaultSpec::id() (target image supplied
/// separately). Nullopt on malformed input or an unimplemented function.
std::optional<FaultSpec> parse_fault_id(std::string_view target_image, std::string_view id);

/// Like parse_fault_id but accepts catalogue-only (unimplemented) functions —
/// the plan cache round-trips pruned entries for functions the simulator does
/// not implement.
std::optional<FaultSpec> parse_fault_id_any(std::string_view target_image, std::string_view id);

}  // namespace dts::inject
