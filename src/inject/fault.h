// The DTS fault model: corrupt one input parameter of one invocation of one
// KERNEL32 function, with one of three corruption types (paper §4: reset all
// bits to zero, set all bits to one, flip all bits).
#pragma once

#include <optional>
#include <string>

#include "ntsim/kernel32_registry.h"
#include "ntsim/types.h"

namespace dts::inject {

enum class FaultType { kZero, kOnes, kFlip };

constexpr FaultType kAllFaultTypes[] = {FaultType::kZero, FaultType::kOnes, FaultType::kFlip};

std::string_view to_string(FaultType t);
std::optional<FaultType> fault_type_from_string(std::string_view s);

/// Applies the corruption to a 32-bit parameter word.
constexpr nt::Word corrupt(nt::Word value, FaultType t) {
  switch (t) {
    case FaultType::kZero: return 0;
    case FaultType::kOnes: return 0xFFFFFFFFu;
    case FaultType::kFlip: return ~value;
  }
  return value;
}

/// One fault to inject: which process image, which function, which parameter,
/// which invocation (1-based; the paper injects only the first), which
/// corruption.
struct FaultSpec {
  std::string target_image;
  nt::Fn fn{};
  int param_index = 0;  // 0-based
  int invocation = 1;   // 1-based
  FaultType type = FaultType::kZero;

  /// Human-readable id, e.g. "ReadFileEx.nNumberOfBytesToRead#1:zero".
  std::string id() const;

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// Parses an id produced by FaultSpec::id() (target image supplied
/// separately). Nullopt on malformed input.
std::optional<FaultSpec> parse_fault_id(std::string_view target_image, std::string_view id);

}  // namespace dts::inject
