#include "inject/fault_list.h"

#include <sstream>

namespace dts::inject {

namespace {

void append_for_function(FaultList& list, const std::string& target_image,
                         const nt::FunctionInfo& info, int iterations) {
  for (int param = 0; param < info.param_count(); ++param) {
    for (int inv = 1; inv <= iterations; ++inv) {
      for (FaultType type : kAllFaultTypes) {
        FaultSpec f;
        f.target_image = target_image;
        f.fn = static_cast<nt::Fn>(info.id);
        f.param_index = param;
        f.invocation = inv;
        f.type = type;
        list.faults.push_back(std::move(f));
      }
    }
  }
}

}  // namespace

FaultList FaultList::full_sweep(const std::string& target_image, int iterations) {
  FaultList list;
  for (const auto& info : nt::Kernel32Registry::instance().all()) {
    if (info.param_count() == 0) continue;  // not an injection candidate
    append_for_function(list, target_image, info, iterations);
  }
  return list;
}

FaultList FaultList::for_functions(const std::string& target_image,
                                   const std::set<nt::Fn>& functions, int iterations) {
  FaultList list;
  const auto& reg = nt::Kernel32Registry::instance();
  for (nt::Fn fn : functions) {
    const auto& info = reg.info(fn);
    if (info.param_count() == 0) continue;
    append_for_function(list, target_image, info, iterations);
  }
  return list;
}

FaultList FaultList::sampled(std::size_t max_faults) const {
  if (max_faults == 0 || faults.size() <= max_faults) return *this;
  FaultList out;
  out.faults.reserve(max_faults);
  const std::size_t n = faults.size();
  std::size_t prev = 0;
  for (std::size_t i = 0; i < max_faults; ++i) {
    std::size_t idx = i * n / max_faults;
    // The even-spacing formula is strictly increasing whenever n > max, but
    // guard anyway so boundary caps can never emit a duplicate entry.
    if (i > 0 && idx <= prev) idx = prev + 1;
    if (idx >= n) break;
    out.faults.push_back(faults[idx]);
    prev = idx;
  }
  return out;
}

std::string FaultList::serialize() const {
  std::ostringstream out;
  out << "# DTS fault list";
  if (!faults.empty()) out << " (target: " << faults.front().target_image << ")";
  out << "\n";
  for (const auto& f : faults) out << f.id() << "\n";
  return out.str();
}

std::optional<FaultList> FaultList::parse(const std::string& target_image,
                                          const std::string& text, std::string* error) {
  FaultList list;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    auto spec = parse_fault_id(target_image, line);
    if (!spec) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": bad fault id '" + line + "'";
      }
      return std::nullopt;
    }
    list.faults.push_back(std::move(*spec));
  }
  return list;
}

}  // namespace dts::inject
