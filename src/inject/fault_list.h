// Fault-list generation and the fault-list file format.
//
// The paper's fault space per workload: every parameter of every injectable
// KERNEL32 function × three corruption types, first invocation only by
// default (deeper iterations supported via the I axis of the experiment
// flow chart, paper Fig. 1).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "inject/fault.h"

namespace dts::inject {

struct FaultList {
  std::vector<FaultSpec> faults;

  /// Full sweep over every injectable function in the KERNEL32 catalogue.
  /// `iterations` extends the invocation axis (1 = paper default).
  static FaultList full_sweep(const std::string& target_image, int iterations = 1);

  /// Sweep restricted to functions a profiling run showed the target
  /// actually calls — equivalent results to full_sweep thanks to the
  /// skip-uncalled rule, without the probe runs.
  static FaultList for_functions(const std::string& target_image,
                                 const std::set<nt::Fn>& functions, int iterations = 1);

  /// Evenly-spaced sample of at most `max_faults` faults (0 or >= size =
  /// the whole list, unchanged). Selection is deterministic and indices are
  /// strictly increasing — near-boundary caps (max_faults close to size)
  /// can never repeat an entry.
  FaultList sampled(std::size_t max_faults) const;

  /// Serializes to the fault-list file format: one fault id per line,
  /// '#'-comments allowed.
  std::string serialize() const;

  /// Parses a fault-list file. Returns nullopt (with *error set) on any
  /// malformed line.
  static std::optional<FaultList> parse(const std::string& target_image,
                                        const std::string& text, std::string* error);
};

}  // namespace dts::inject
