#include "topo/topology.h"

#include <cctype>
#include <charconv>

namespace dts::topo {

namespace {

bool valid_tier_name(const std::string& name) {
  if (name.empty()) return false;
  for (char ch : name) {
    const auto c = static_cast<unsigned char>(ch);
    if (std::islower(c) == 0 && std::isdigit(c) == 0 && ch != '-') return false;
  }
  return name != "client";  // reserved: the control machine in link config
}

bool valid_app(const std::string& app) {
  return app == "apache" || app == "iis" || app == "sql_server";
}

std::string strip(const std::string& v) {
  std::size_t b = 0;
  while (b < v.size() && std::isspace(static_cast<unsigned char>(v[b])) != 0) ++b;
  std::size_t e = v.size();
  while (e > b && std::isspace(static_cast<unsigned char>(v[e - 1])) != 0) --e;
  return v.substr(b, e - b);
}

}  // namespace

const TierSpec* TopologySpec::find_tier(const std::string& name) const {
  for (const auto& t : tiers) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

int TopologySpec::tier_index(const std::string& name) const {
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    if (tiers[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string TopologySpec::to_string() const {
  std::string out;
  for (const auto& t : tiers) {
    if (!out.empty()) out += " -> ";
    out += t.name + ":" + std::to_string(t.replicas) + "*" + t.app;
  }
  return out;
}

std::string lb_machine(const TierSpec& tier) { return tier.name + "-lb"; }

std::string instance_machine(const TierSpec& tier, int replica) {
  return tier.name + "-" + std::to_string(replica + 1);
}

std::optional<TopologySpec> parse_topology(const std::string& text, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  TopologySpec spec;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t arrow = text.find("->", pos);
    const std::string token =
        strip(arrow == std::string::npos ? text.substr(pos) : text.substr(pos, arrow - pos));
    if (token.empty()) return fail("empty tier in topology");

    const auto colon = token.find(':');
    const auto star = token.find('*');
    if (colon == std::string::npos || star == std::string::npos || star < colon) {
      return fail("bad tier '" + token + "' (want name:replicas*app)");
    }
    TierSpec tier;
    tier.name = strip(token.substr(0, colon));
    if (!valid_tier_name(tier.name)) {
      return fail("bad tier name '" + tier.name + "' (lowercase [a-z0-9-], 'client' reserved)");
    }
    if (spec.find_tier(tier.name) != nullptr) {
      return fail("duplicate tier name '" + tier.name + "'");
    }
    const std::string rep = strip(token.substr(colon + 1, star - colon - 1));
    auto [p, ec] = std::from_chars(rep.data(), rep.data() + rep.size(), tier.replicas);
    if (ec != std::errc{} || p != rep.data() + rep.size() || tier.replicas < 1 ||
        tier.replicas > 8) {
      return fail("bad replica count '" + rep + "' in tier '" + tier.name + "' (1..8)");
    }
    tier.app = strip(token.substr(star + 1));
    if (!valid_app(tier.app)) {
      return fail("bad app '" + tier.app + "' in tier '" + tier.name +
                  "' (apache|iis|sql_server)");
    }
    spec.tiers.push_back(std::move(tier));

    if (arrow == std::string::npos) break;
    pos = arrow + 2;
    if (pos >= text.size()) return fail("trailing '->' in topology");
  }
  if (spec.tiers.empty()) return fail("empty topology");
  spec.fault_tier = spec.tiers.back().name;
  return spec;
}

}  // namespace dts::topo
