#include "topo/loadgen.h"

#include "ntsim/kernel.h"

namespace dts::topo {

namespace {

using nt::Ctx;

/// One open-loop request: single attempt, single connection, hard deadline.
/// With tracing on, the request id doubles as the trace id and this thread
/// owns the root span; the reply check uses the bare id, so traced and
/// untraced replies verify identically.
sim::Task request_thread(Ctx c, nt::net::Network* net, LoadgenParams p, int id) {
  core::RequestResult result;
  result.attempts = 1;
  const sim::TimePoint t0 = c.m().sim().now();
  const auto us = [&c] { return (c.m().sim().now() - sim::TimePoint{}).count_micros(); };
  obs::rtrace::TraceLog* tl = p.trace != nullptr && p.trace->enabled() ? p.trace : nullptr;
  const int root =
      tl != nullptr ? tl->begin_span(id, 0, "request", "client", "control", us()) : 0;
  std::string outcome = "refused";

  auto sock = co_await net->connect(c, p.front_machine, p.front_port);
  if (sock == nullptr) {
    result.detail = "connection refused";
  } else {
    std::string line = "REQ " + std::to_string(id);
    if (tl != nullptr) line += " " + obs::rtrace::wire_token(id, root);
    sock->send(line + "\n");
    auto reply = co_await sock->recv_until(c, "\n", 4096, p.response_timeout);
    if (!reply) {
      result.detail = "no reply";  // timeout or connection reset
      outcome = "timeout";
    } else {
      result.any_response = true;
      if (*reply == "OK " + std::to_string(id) + "\n") {
        result.ok = true;
        outcome = "ok";
      } else {
        result.detail = "error reply";
        outcome = "err";
      }
    }
  }
  if (tl != nullptr) tl->end_span(root, us(), outcome);
  result.elapsed = c.m().sim().now() - t0;
  p.report->requests.push_back(std::move(result));
}

}  // namespace

sim::Task loadgen_program(Ctx c, nt::net::Network* net, LoadgenParams params) {
  params.report->started_at = c.m().sim().now();

  const sim::TimePoint up_deadline = c.m().sim().now() + params.server_up_timeout;
  while (c.m().sim().now() < up_deadline &&
         !net->port_open(params.front_machine, params.front_port)) {
    co_await nt::sleep_in_sim(c, params.server_up_poll);
  }
  // Up or not, issue the workload: a down front tier shows up as refused
  // connections, i.e. a full outage, not a hang.

  const std::int64_t rate = params.offered_rps_milli > 0 ? params.offered_rps_milli : 1;
  const sim::Duration inter_arrival = sim::Duration::micros(1'000'000'000 / rate);
  for (int i = 1; i <= params.requests; ++i) {
    nt::net::Network* np = net;
    LoadgenParams p = params;
    c.proc().spawn_thread([np, p, i](Ctx tc) { return request_thread(tc, np, p, i); });
    if (i < params.requests) co_await nt::sleep_in_sim(c, inter_arrival);
  }

  // Every request has a bounded lifetime (refusal, reply or timeout), so this
  // poll always terminates well inside the run timeout.
  while (params.report->requests.size() < static_cast<std::size_t>(params.requests)) {
    co_await nt::sleep_in_sim(c, sim::Duration::millis(100));
  }
  params.report->finished = true;
  params.report->finished_at = c.m().sim().now();
}

}  // namespace dts::topo
