// Open-loop workload generator for multi-tier campaigns: requests are issued
// at the configured offered rate regardless of how fast earlier requests
// complete (each in its own simulated thread), which is what makes queueing
// delay visible as end-to-end latency — the degradation-curve measurement.
// Contrast with the closed-loop paper clients (core/clients.h), which issue
// one request at a time and retry; the generator never retries, so every
// fault surfaces as a per-request outcome instead of being absorbed by the
// retry protocol.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/outcome.h"
#include "ntsim/netsim.h"
#include "ntsim/process.h"
#include "obs/rtrace/rtrace.h"
#include "topo/topology.h"

namespace dts::topo {

struct LoadgenParams {
  std::string front_machine;            // the front tier's balancer
  std::uint16_t front_port = kLbPort;
  int requests = 12;                    // total requests to issue
  std::int64_t offered_rps_milli = 1000;  // open-loop rate, milli-requests/s

  /// Per-request end-to-end budget (one attempt, no retries).
  sim::Duration response_timeout = sim::Duration::seconds(15);

  /// Bounded wait for the front balancer port before the first request.
  sim::Duration server_up_timeout = sim::Duration::seconds(90);
  sim::Duration server_up_poll = sim::Duration::millis(500);

  std::shared_ptr<core::ClientReport> report;

  /// Request tracing (null or disabled = off): each request's id doubles as
  /// its trace id, the request gets a root span, and the wire line carries
  /// the "rt=" context for the tiers to propagate (obs/rtrace/rtrace.h).
  obs::rtrace::TraceLog* trace = nullptr;
};

/// The loadgen.exe program: waits for the front balancer, then issues
/// `requests` requests at fixed inter-arrival spacing, each recorded as one
/// RequestResult (ok / any_response / elapsed / detail) in the report. The
/// report is finished once every issued request has completed or timed out.
sim::Task loadgen_program(nt::Ctx c, nt::net::Network* net, LoadgenParams params);

}  // namespace dts::topo
