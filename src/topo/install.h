// Instantiates a TopologySpec as simulated machines, applications and wiring
// processes. Per tier:
//
//   <tier>-lb    runs lbd.exe — a round-robin balancer on port 7000 that
//                fails over across the tier's instances on refusal, error
//                reply or per-hop timeout (redundancy is what masks faults).
//   <tier>-<i>   runs the tier's real application (apache/iis/sql_server,
//                installed and started through the SCM exactly as in the
//                single-machine runs) plus relayd.exe on port 7100, which
//                serves "REQ <id>\n" by exercising the local application
//                (static page fetch / SQL query, reply verified) and then
//                forwarding the request to the next tier's balancer.
//
// A request is answered "OK <id>\n" only when the local check and the whole
// downstream chain succeed, so a fault anywhere surfaces at the front unless
// a balancer routes around it. Readiness is by induction: a relay listens
// after its local app and the next tier's balancer port are up (bounded), a
// balancer after its backends are up — so the front balancer port opening
// means the whole topology is serving, which is what the workload generator
// waits for.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/apache.h"
#include "apps/iis.h"
#include "apps/sql_server.h"
#include "ntsim/kernel.h"
#include "ntsim/netsim.h"
#include "obs/rtrace/rtrace.h"
#include "topo/topology.h"

namespace dts::topo {

struct TierHostParams {
  apps::ApacheConfig apache;
  apps::IisConfig iis;
  apps::SqlServerConfig sql;

  /// All topology machines run at control-box speed: a request traverses
  /// every tier's application serially, and the chained costs must fit the
  /// per-request timeout that the paper calibrated for one hop.
  double cpu_scale = 0.25;
  double jitter = 0.0;

  /// Relay/balancer startup: how long to wait for the local application and
  /// the downstream tier before listening anyway (a dead dependency then
  /// degrades to error replies instead of refused connections).
  sim::Duration ready_timeout = sim::Duration::seconds(90);
  sim::Duration ready_poll = sim::Duration::millis(500);

  /// Per-hop budget for one local check or one downstream exchange.
  sim::Duration hop_timeout = sim::Duration::seconds(15);

  /// Request-trace collector (null or disabled = off). When enabled, relays
  /// and balancers parse/rewrite the "rt=" token of every request line and
  /// record one span per hop/attempt (see obs/rtrace/rtrace.h).
  obs::rtrace::TraceLog* trace = nullptr;
};

struct TierRuntime {
  TierSpec spec;
  std::string lb;                      // balancer machine name
  std::vector<std::string> instances;  // instance machine names, in order
};

struct TopologyRuntime {
  std::vector<TierRuntime> tiers;  // front first
  std::string front_machine;       // tiers.front().lb
  std::uint16_t front_port = kLbPort;

  /// Machines of the named tier's instances (owned by the caller's vector) —
  /// the set the fault injector hooks.
  std::vector<nt::Machine*> tier_instances(const std::string& tier) const;

 private:
  friend TopologyRuntime install_topology(sim::Simulation&, nt::net::Network&,
                                          std::vector<std::unique_ptr<nt::Machine>>&,
                                          const TopologySpec&, const TierHostParams&);
  std::vector<std::pair<std::string, nt::Machine*>> instance_machines_;
};

/// Builds every machine and program of `topo`, appending the machines to
/// `machines` (the network must outlive them). Applications are installed
/// and their services started; relays and balancers are started as plain
/// processes. Nothing executes until the simulation steps.
TopologyRuntime install_topology(sim::Simulation& sim, nt::net::Network& net,
                                 std::vector<std::unique_ptr<nt::Machine>>& machines,
                                 const TopologySpec& topo, const TierHostParams& params);

}  // namespace dts::topo
