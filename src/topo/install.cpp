#include "topo/install.h"

#include <utility>

namespace dts::topo {

namespace {

using nt::Ctx;

/// Wire protocol between loadgen, balancers and relays: "REQ <id>\n" in,
/// "OK <id>\n" / "ERR <id>\n" out. With request tracing on the line carries
/// a trailing " rt=<trace>:<span>" token (ids are bare integers, so the
/// space truncation never changes an untraced id).
std::string request_id(const std::string& line) {
  if (line.rfind("REQ ", 0) != 0) return "?";
  std::string id = line.substr(4);
  while (!id.empty() && (id.back() == '\n' || id.back() == '\r')) id.pop_back();
  const std::size_t space = id.find(' ');
  if (space != std::string::npos) id.resize(space);
  return id.empty() ? "?" : id;
}

/// Current sim time in µs — the span timestamp base.
std::int64_t now_us(Ctx c) {
  return (c.m().sim().now() - sim::TimePoint{}).count_micros();
}

bool http_ok(const std::string& reply, const std::string& expected_body) {
  if (reply.rfind("HTTP/1.0 200", 0) != 0) return false;
  const auto sep = reply.find("\r\n\r\n");
  if (sep == std::string::npos) return false;
  return reply.substr(sep + 4) == expected_body;
}

struct RelayParams {
  std::string self;            // this instance's machine name
  std::string tier;            // owning tier's name (span label)
  std::uint16_t app_port = 0;  // local application port
  std::string check_request;   // wire bytes exercising the local app
  bool http = false;           // verify as HTTP 200 + body vs exact reply
  std::string expected;        // body (http) or whole reply (exact)
  std::string next_lb;         // next tier's balancer machine; empty = last tier
  sim::Duration ready_timeout;
  sim::Duration ready_poll;
  sim::Duration hop_timeout;
  obs::rtrace::TraceLog* trace = nullptr;  // null/disabled = tracing off
};

struct LbParams {
  std::string self;
  std::string tier;                   // owning tier's name (span label)
  std::vector<std::string> backends;  // instance machines of this tier
  sim::Duration ready_timeout;
  sim::Duration ready_poll;
  sim::Duration hop_timeout;
  obs::rtrace::TraceLog* trace = nullptr;  // null/disabled = tracing off
};

/// One request/reply exchange over a fresh connection; nullopt on refusal,
/// reset or timeout.
sim::CoTask<std::optional<std::string>> exchange(Ctx c, nt::net::Network* net,
                                                 const std::string& machine,
                                                 std::uint16_t port, const std::string& request,
                                                 sim::Duration timeout, bool until_eof) {
  const sim::TimePoint deadline = c.m().sim().now() + timeout;
  auto sock = co_await net->connect(c, machine, port);
  if (sock == nullptr) co_return std::nullopt;  // refused
  sock->send(request);
  if (!until_eof) {
    const sim::Duration remaining = deadline - c.m().sim().now();
    if (remaining <= sim::Duration{}) co_return std::nullopt;
    co_return co_await sock->recv_until(c, "\n", 4096, remaining);
  }
  std::string reply;
  for (;;) {
    const sim::Duration remaining = deadline - c.m().sim().now();
    if (remaining <= sim::Duration{}) co_return std::nullopt;
    auto chunk = co_await sock->recv(c, 65536, remaining);
    if (!chunk) co_return std::nullopt;  // timeout
    if (chunk->empty()) break;           // EOF: reply complete
    reply += *chunk;
  }
  if (reply.empty()) co_return std::nullopt;  // reset before any data
  co_return reply;
}

/// Serves one accepted relay connection: local application check first, then
/// the downstream chain; "OK" only when both succeed. With tracing on, the
/// connection, the local check and the downstream forward each become a span,
/// and the forwarded line carries the forward span as the new parent.
sim::Task relay_conn(Ctx c, nt::net::Network* net, RelayParams p,
                     std::shared_ptr<nt::net::Socket> sock) {
  auto line = co_await sock->recv_until(c, "\n", 4096, p.hop_timeout);
  if (!line) co_return;
  const std::string id = request_id(*line);
  const auto wire = obs::rtrace::parse_wire(*line);
  obs::rtrace::TraceLog* tl =
      p.trace != nullptr && p.trace->enabled() && wire ? p.trace : nullptr;
  const int span = tl != nullptr ? tl->begin_span(wire->trace, wire->span, "relay",
                                                  p.tier, p.self, now_us(c))
                                 : 0;

  bool ok = false;
  const int check = tl != nullptr ? tl->begin_span(wire->trace, span, "app.check",
                                                   p.tier, p.self, now_us(c))
                                  : 0;
  auto reply = co_await exchange(c, net, p.self, p.app_port, p.check_request, p.hop_timeout,
                                 /*until_eof=*/true);
  if (reply) ok = p.http ? http_ok(*reply, p.expected) : *reply == p.expected;
  if (tl != nullptr) {
    tl->end_span(check, now_us(c), ok ? "ok" : (reply ? "err" : "timeout"));
  }

  if (ok && !p.next_lb.empty()) {
    const int fwd = tl != nullptr ? tl->begin_span(wire->trace, span, "forward",
                                                   p.tier, p.self, now_us(c))
                                  : 0;
    const std::string downstream =
        tl != nullptr ? obs::rtrace::rewrite_wire(id, wire->trace, fwd) : *line;
    auto down = co_await exchange(c, net, p.next_lb, kLbPort, downstream, p.hop_timeout,
                                  /*until_eof=*/false);
    ok = down && down->rfind("OK ", 0) == 0;
    if (tl != nullptr) {
      tl->end_span(fwd, now_us(c), ok ? "ok" : (down ? "err" : "timeout"));
    }
  }
  if (tl != nullptr) tl->end_span(span, now_us(c), ok ? "ok" : "err");
  sock->send((ok ? "OK " : "ERR ") + id + "\n");
}

sim::Task relay_program(Ctx c, nt::net::Network* net, RelayParams p) {
  // Wait (bounded) for the local application and the downstream balancer;
  // listen regardless once the deadline passes so a dead dependency shows up
  // as error replies, not refused connections the balancer cannot tell apart
  // from a crashed relay.
  const sim::TimePoint deadline = c.m().sim().now() + p.ready_timeout;
  for (;;) {
    const bool app_up = net->port_open(p.self, p.app_port);
    const bool next_up = p.next_lb.empty() || net->port_open(p.next_lb, kLbPort);
    if ((app_up && next_up) || c.m().sim().now() >= deadline) break;
    co_await nt::sleep_in_sim(c, p.ready_poll);
  }
  auto listener = net->listen(p.self, kRelayPort);
  if (listener == nullptr) co_return;
  for (;;) {
    auto sock = co_await listener->accept(c);
    if (sock == nullptr) continue;
    c.proc().spawn_thread([net, p, sock](Ctx tc) { return relay_conn(tc, net, p, sock); });
  }
}

/// Serves one accepted balancer connection: round-robin over the backends,
/// failing over on refusal, timeout or an error reply. Redundancy masking
/// happens exactly here.
sim::Task lb_conn(Ctx c, nt::net::Network* net, LbParams p, std::shared_ptr<std::size_t> rr,
                  std::shared_ptr<nt::net::Socket> sock) {
  auto line = co_await sock->recv_until(c, "\n", 4096, p.hop_timeout);
  if (!line) co_return;
  const std::string id = request_id(*line);
  const auto wire = obs::rtrace::parse_wire(*line);
  obs::rtrace::TraceLog* tl =
      p.trace != nullptr && p.trace->enabled() && wire ? p.trace : nullptr;
  const int span = tl != nullptr ? tl->begin_span(wire->trace, wire->span, "lb",
                                                  p.tier, p.self, now_us(c))
                                 : 0;

  for (std::size_t attempt = 0; attempt < p.backends.size(); ++attempt) {
    const std::string& backend = p.backends[(*rr)++ % p.backends.size()];
    // One span per failover attempt, labelled with the backend tried — the
    // failed ones are the trace's record of redundancy masking at work.
    const int att = tl != nullptr ? tl->begin_span(wire->trace, span, "attempt",
                                                   p.tier, backend, now_us(c))
                                  : 0;
    const std::string request =
        tl != nullptr ? obs::rtrace::rewrite_wire(id, wire->trace, att) : *line;
    auto reply = co_await exchange(c, net, backend, kRelayPort, request, p.hop_timeout,
                                   /*until_eof=*/false);
    const bool ok = reply && reply->rfind("OK ", 0) == 0;
    if (tl != nullptr) {
      tl->end_span(att, now_us(c), ok ? "ok" : (reply ? "err" : "timeout"));
    }
    if (ok) {
      if (tl != nullptr) tl->end_span(span, now_us(c), "ok");
      sock->send(*reply);
      co_return;
    }
  }
  if (tl != nullptr) tl->end_span(span, now_us(c), "err");
  sock->send("ERR " + id + "\n");
}

sim::Task lb_program(Ctx c, nt::net::Network* net, LbParams p) {
  const sim::TimePoint deadline = c.m().sim().now() + p.ready_timeout;
  for (;;) {
    bool all_up = true;
    for (const auto& backend : p.backends) {
      all_up = all_up && net->port_open(backend, kRelayPort);
    }
    if (all_up || c.m().sim().now() >= deadline) break;
    co_await nt::sleep_in_sim(c, p.ready_poll);
  }
  auto listener = net->listen(p.self, kLbPort);
  if (listener == nullptr) co_return;
  auto rr = std::make_shared<std::size_t>(0);
  for (;;) {
    auto sock = co_await listener->accept(c);
    if (sock == nullptr) continue;
    c.proc().spawn_thread(
        [net, p, rr, sock](Ctx tc) { return lb_conn(tc, net, p, rr, sock); });
  }
}

}  // namespace

std::vector<nt::Machine*> TopologyRuntime::tier_instances(const std::string& tier) const {
  std::vector<nt::Machine*> out;
  for (const auto& [name, machine] : instance_machines_) {
    if (name == tier) out.push_back(machine);
  }
  return out;
}

TopologyRuntime install_topology(sim::Simulation& sim, nt::net::Network& net,
                                 std::vector<std::unique_ptr<nt::Machine>>& machines,
                                 const TopologySpec& topo, const TierHostParams& params) {
  TopologyRuntime rt;
  nt::net::Network* np = &net;
  for (std::size_t ti = 0; ti < topo.tiers.size(); ++ti) {
    const TierSpec& tier = topo.tiers[ti];
    TierRuntime tr;
    tr.spec = tier;
    tr.lb = lb_machine(tier);
    const std::string next_lb =
        ti + 1 < topo.tiers.size() ? lb_machine(topo.tiers[ti + 1]) : std::string();

    for (int r = 0; r < tier.replicas; ++r) {
      const std::string name = instance_machine(tier, r);
      machines.push_back(std::make_unique<nt::Machine>(
          sim, nt::MachineConfig{.name = name,
                                 .cpu_scale = params.cpu_scale,
                                 .jitter = params.jitter}));
      nt::Machine& m = *machines.back();

      RelayParams rp;
      rp.self = name;
      rp.tier = tier.name;
      rp.next_lb = next_lb;
      rp.ready_timeout = params.ready_timeout;
      rp.ready_poll = params.ready_poll;
      rp.hop_timeout = params.hop_timeout;
      rp.trace = params.trace;
      if (tier.app == "apache") {
        rp.expected = apps::install_apache(m, net, params.apache);
        m.scm().start_service(params.apache.service_name);
        rp.app_port = params.apache.port;
        rp.http = true;
        rp.check_request = "GET /index.html HTTP/1.0\r\nHost: target\r\n\r\n";
      } else if (tier.app == "iis") {
        rp.expected = apps::install_iis(m, net, params.iis);
        m.scm().start_service(params.iis.service_name);
        rp.app_port = params.iis.port;
        rp.http = true;
        rp.check_request = "GET /index.html HTTP/1.0\r\nHost: target\r\n\r\n";
      } else {  // sql_server (parse_topology admits nothing else)
        rp.expected = apps::install_sql_server(m, net, params.sql);
        m.scm().start_service(params.sql.service_name);
        rp.app_port = params.sql.port;
        rp.http = false;
        rp.check_request = apps::sql_client_query() + "\n";
      }
      m.register_program("relayd.exe",
                         [np, rp](Ctx c) { return relay_program(c, np, rp); });
      m.start_process("relayd.exe", "relayd.exe");

      tr.instances.push_back(name);
      rt.instance_machines_.emplace_back(tier.name, &m);
    }

    machines.push_back(std::make_unique<nt::Machine>(
        sim, nt::MachineConfig{.name = tr.lb,
                               .cpu_scale = params.cpu_scale,
                               .jitter = params.jitter}));
    nt::Machine& lb = *machines.back();
    LbParams lp;
    lp.self = tr.lb;
    lp.tier = tier.name;
    lp.backends = tr.instances;
    lp.ready_timeout = params.ready_timeout;
    lp.ready_poll = params.ready_poll;
    lp.hop_timeout = params.hop_timeout;
    lp.trace = params.trace;
    lb.register_program("lbd.exe", [np, lp](Ctx c) { return lb_program(c, np, lp); });
    lb.start_process("lbd.exe", "lbd.exe");

    rt.tiers.push_back(std::move(tr));
  }
  rt.front_machine = rt.tiers.front().lb;
  rt.front_port = kLbPort;
  return rt;
}

}  // namespace dts::topo
