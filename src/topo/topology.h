// Multi-tier service topologies (ROADMAP item 3): a declarative description
// of a load-balanced deployment — "lb:2*apache -> app:2*iis -> db:1*sql_server"
// — instantiated across multiple ntsim machines wired through netsim. Faults
// target one named tier; the user-visible outcome is measured by an open-loop
// workload generator (loadgen.h) driving the front tier, and classified into
// the propagation outcomes masked / degraded / partial / outage.
//
// Grammar (whitespace-insensitive around tokens):
//   topology  := tier ( "->" tier )*
//   tier      := name ":" replicas "*" app
//   name      := [a-z0-9-]+        (unique; "client" is reserved for the
//                                   control machine in link configuration)
//   replicas  := integer 1..8
//   app       := "apache" | "iis" | "sql_server"
//
// Requests flow front tier -> back tier: each tier runs one round-robin
// balancer machine "<name>-lb" plus `replicas` instance machines
// "<name>-1".."<name>-N", each hosting the real application and a relay that
// checks it locally before forwarding to the next tier's balancer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dts::topo {

/// Balancer listening port (every tier's "<name>-lb" machine).
inline constexpr std::uint16_t kLbPort = 7000;
/// Relay listening port (every instance machine).
inline constexpr std::uint16_t kRelayPort = 7100;

struct TierSpec {
  std::string name;      // "lb", "app", "db"
  int replicas = 1;      // instance machines in the tier
  std::string app;       // "apache" | "iis" | "sql_server"

  friend bool operator==(const TierSpec&, const TierSpec&) = default;
};

/// A parsed topology plus the workload-generator knobs that ride with it in
/// the campaign config ([topology] section). Default-constructed (no tiers)
/// means a classic single-machine campaign — every topology-aware code path
/// checks empty() first and stays byte-identical to the pre-topology code.
struct TopologySpec {
  std::vector<TierSpec> tiers;  // front (client-facing) tier first

  /// Tier whose machines faults are injected into. Defaults to the last
  /// (deepest) tier at parse time; overridden by `tier =` or `--tier=`.
  std::string fault_tier;

  /// Open-loop offered load, milli-requests per second (integer so config
  /// and run-line serializations never format floats). 1000 = 1 req/s, which
  /// keeps a single-replica back tier below saturation at the default costs.
  std::int64_t offered_rps_milli = 1000;

  /// Requests the generator issues per run.
  int requests = 12;

  /// p95 end-to-end latency above which an all-correct run classifies as
  /// degraded-latency instead of masked, in ms. 0 = auto (half the client
  /// response timeout).
  std::int64_t degraded_p95_ms = 0;

  bool empty() const { return tiers.empty(); }

  const TierSpec* find_tier(const std::string& name) const;
  int tier_index(const std::string& name) const;  // -1 when absent

  /// Canonical topology string ("lb:2*apache -> app:2*iis -> db:1*sql_server");
  /// round-trips through parse_topology. Empty for the empty topology.
  std::string to_string() const;

  friend bool operator==(const TopologySpec&, const TopologySpec&) = default;
};

/// Machine naming scheme; install/report/link-expansion all agree on it.
std::string lb_machine(const TierSpec& tier);
std::string instance_machine(const TierSpec& tier, int replica);  // 0-based

/// Parses a topology string. Validates tier-name syntax and uniqueness,
/// replica bounds and app names; sets fault_tier to the last tier. Returns
/// nullopt with *error set on malformed input. The workload knobs keep their
/// defaults (they are configured separately).
std::optional<TopologySpec> parse_topology(const std::string& text, std::string* error);

/// Per-link network override from the [network] section: endpoints name
/// tiers (or "client" for the control machine); values < 0 keep the global
/// default for that axis.
struct LinkOverride {
  std::string a;
  std::string b;
  std::int64_t latency_us = -1;
  std::int64_t bytes_per_second = -1;

  friend bool operator==(const LinkOverride&, const LinkOverride&) = default;
};

}  // namespace dts::topo
