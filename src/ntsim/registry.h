// Simulated NT registry (the HKLM hive the servers and the SCM live in).
//
// Host-side API (the real access path is ADVAPI32, which DTS did not
// intercept, so registry access is not on the injectable surface) — but the
// hive is genuine machine state: the SCM keeps its service database under
// HKLM\SYSTEM\CurrentControlSet\Services, and installers park their
// parameters here exactly as the 1999 software did.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "ntsim/types.h"

namespace dts::nt {

class Registry {
 public:
  using Value = std::variant<Dword, std::string>;

  /// Canonicalizes a key path: separators collapsed, case preserved for
  /// display but compared case-insensitively. Returns nullopt for empty or
  /// malformed paths.
  static std::optional<std::string> normalize_key(std::string_view path);

  // --- writes ---------------------------------------------------------------
  /// Creates the key (and any missing parents). Returns false on a malformed
  /// path.
  bool create_key(std::string_view key);
  bool set_string(std::string_view key, std::string_view name, std::string value);
  bool set_dword(std::string_view key, std::string_view name, Dword value);

  // --- reads ----------------------------------------------------------------
  bool key_exists(std::string_view key) const;
  std::optional<Value> get(std::string_view key, std::string_view name) const;
  std::optional<std::string> get_string(std::string_view key, std::string_view name) const;
  std::optional<Dword> get_dword(std::string_view key, std::string_view name) const;

  /// Direct children of `key` (display names), sorted.
  std::vector<std::string> subkeys(std::string_view key) const;
  /// Value names under `key`, sorted.
  std::vector<std::string> value_names(std::string_view key) const;

  // --- deletes ----------------------------------------------------------------
  bool delete_value(std::string_view key, std::string_view name);
  /// Deletes a key, its values and all subkeys. False if missing.
  bool delete_key(std::string_view key);

  std::size_t key_count() const { return keys_.size(); }

  // --- snapshots (src/snap/) ------------------------------------------------
  // The hive is plain value data (strings, DWORDs); a capture is a genuine
  // deep copy — registries are small enough that COW would buy nothing.

  struct Key {
    std::string display;                    // case-preserving path
    std::map<std::string, Value> values;    // folded name -> value
    std::map<std::string, std::string> value_display;  // folded -> display

    friend bool operator==(const Key&, const Key&) = default;
  };

  struct Snapshot {
    std::map<std::string, Key> keys;

    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };

  Snapshot capture() const { return Snapshot{keys_}; }
  void restore(const Snapshot& s) { keys_ = s.keys; }

 private:
  static std::string fold(std::string_view s);

  std::map<std::string, Key> keys_;  // folded path -> key
};

}  // namespace dts::nt
