#include "ntsim/object.h"

namespace dts::nt {

std::string_view to_string(ObjectType t) {
  switch (t) {
    case ObjectType::kEvent: return "Event";
    case ObjectType::kMutex: return "Mutex";
    case ObjectType::kSemaphore: return "Semaphore";
    case ObjectType::kFile: return "File";
    case ObjectType::kPipeRead: return "PipeRead";
    case ObjectType::kPipeWrite: return "PipeWrite";
    case ObjectType::kProcess: return "Process";
    case ObjectType::kThread: return "Thread";
    case ObjectType::kFileMapping: return "FileMapping";
    case ObjectType::kFindSearch: return "FindSearch";
    case ObjectType::kHeap: return "Heap";
    case ObjectType::kNamedPipe: return "NamedPipe";
  }
  return "?";
}

void KernelObject::wake_one() {
  while (!waiters_.empty()) {
    sim::WakePtr tok = std::move(waiters_.front());
    waiters_.erase(waiters_.begin());
    if (tok->fired || tok->dead) continue;  // stale; try the next waiter
    sim::wake(*sim_, tok, sim::WakeReason::kSignaled);
    return;
  }
}

void KernelObject::wake_all() {
  auto pending = std::move(waiters_);
  waiters_.clear();
  for (auto& tok : pending) {
    sim::wake(*sim_, tok, sim::WakeReason::kSignaled);
  }
}

PipeReadObject::~PipeReadObject() {
  buf_->read_closed = true;
  buf_->read_end = nullptr;
  // A blocked writer must observe the broken pipe.
  if (buf_->write_end != nullptr) buf_->write_end->wake_all();
}

PipeWriteObject::~PipeWriteObject() {
  buf_->write_closed = true;
  buf_->write_end = nullptr;
  // A blocked reader must observe end-of-stream.
  if (buf_->read_end != nullptr) buf_->read_end->wake_all();
}

}  // namespace dts::nt
