#include "ntsim/process.h"

#include <stdexcept>

#include "ntsim/kernel.h"

namespace dts::nt {

Thread& Ctx::thread() const {
  Thread* t = process->find_thread(tid);
  if (t == nullptr) throw std::logic_error("Ctx::thread: thread not found");
  return *t;
}

Process::Process(Machine& machine, Pid pid, std::string image, std::string command_line,
                 Pid parent_pid)
    : machine_(&machine),
      pid_(pid),
      parent_pid_(parent_pid),
      image_(std::move(image)),
      command_line_(std::move(command_line)),
      object_(std::make_shared<ProcessObject>(machine.sim(), pid)),
      next_tid_(pid + 1) {}

Process::~Process() = default;

Word Process::register_routine(ThreadRoutine fn) {
  const Word addr = next_code_addr_;
  next_code_addr_ += 16;
  routines_.emplace(addr, std::move(fn));
  return addr;
}

const ThreadRoutine* Process::find_routine(Word address) const {
  auto it = routines_.find(address);
  return it == routines_.end() ? nullptr : &it->second;
}

Thread& Process::spawn_thread(std::function<sim::Task(Ctx)> make_task) {
  const Tid tid = next_tid_;
  next_tid_ += 4;
  auto thread = std::make_unique<Thread>(pid_, tid, machine_->sim());
  Thread& ref = *thread;
  threads_.emplace(tid, std::move(thread));
  if (main_tid_ == 0) main_tid_ = tid;

  // The Thread owns the callable: a coroutine lambda's frame references its
  // closure, which must therefore outlive the frame.
  ref.body_factory = std::move(make_task);
  Ctx ctx{machine_, this, tid};
  sim::Task task = ref.body_factory(ctx);
  Machine* machine = machine_;
  const Pid pid = pid_;
  task.on_complete([machine, pid, tid](std::exception_ptr e) {
    machine->on_thread_complete(pid, tid, e);
  });
  task.start(machine_->sim());
  ref.set_task(std::move(task));
  return ref;
}

Thread* Process::find_thread(Tid tid) {
  auto it = threads_.find(tid);
  return it == threads_.end() ? nullptr : it->second.get();
}

Word Process::tls_alloc() {
  const Word slot = next_tls_slot_++;
  tls_slots_[slot] = true;
  return slot;
}

bool Process::tls_free(Word slot) {
  auto it = tls_slots_.find(slot);
  if (it == tls_slots_.end() || !it->second) return false;
  it->second = false;
  return true;
}

bool Process::tls_slot_valid(Word slot) const {
  auto it = tls_slots_.find(slot);
  return it != tls_slots_.end() && it->second;
}

void Process::kill_all_threads() {
  for (auto& [tid, thread] : threads_) {
    if (thread->current_wait) thread->current_wait->dead = true;
    if (!thread->object()->exited()) thread->object()->mark_exited(exit_code);
    thread->task().destroy();
  }
  threads_.clear();
}

void Process::reap_thread(Tid tid, Dword code) {
  auto it = threads_.find(tid);
  if (it == threads_.end()) return;
  Thread& t = *it->second;
  if (t.current_wait) t.current_wait->dead = true;
  t.object()->mark_exited(code);
  // Abandon any mutexes this thread owns (scan this process's handles).
  for (const auto& [value, obj] : handles_) {
    (void)value;
    if (auto* m = dynamic_cast<MutexObject*>(obj.get())) m->abandon(tid);
  }
  t.task().destroy();
  threads_.erase(it);
}

// ---------------------------------------------------------------------------
// Blocking primitives
// ---------------------------------------------------------------------------

sim::WakePtr make_wait(const Ctx& c) {
  auto tok = std::make_shared<sim::WakeToken>();
  c.thread().current_wait = tok;
  return tok;
}

sim::CoTask<sim::WakeReason> await_token(Ctx c, sim::WakePtr tok,
                                         std::optional<sim::Duration> timeout) {
  sim::Simulation& s = c.m().sim();
  if (timeout) {
    sim::wake_later(s, tok, *timeout, sim::WakeReason::kTimeout);
  }
  const sim::WakeReason reason = co_await sim::WaitOn{tok};
  // The thread may already be mid-teardown; clear only if still registered.
  Thread* t = c.process->find_thread(c.tid);
  if (t != nullptr && t->current_wait == tok) t->current_wait.reset();
  co_return reason;
}

sim::CoTask<void> sleep_in_sim(Ctx c, sim::Duration d) {
  auto tok = make_wait(c);
  co_await await_token(c, tok, d.is_negative() ? sim::Duration{} : d);
}

sim::CoTask<Dword> wait_on_object(Ctx c, std::shared_ptr<KernelObject> obj,
                                  Dword timeout_ms) {
  sim::Simulation& s = c.m().sim();
  const bool finite = timeout_ms != kInfinite;
  const sim::TimePoint deadline = s.now() + sim::Duration::millis(finite ? timeout_ms : 0);

  auto* mutex = dynamic_cast<MutexObject*>(obj.get());
  for (;;) {
    if (obj->try_acquire(c.tid)) {
      // NT reports WAIT_ABANDONED when acquiring a mutex whose previous
      // owner died while holding it.
      co_return (mutex != nullptr && mutex->consume_abandoned()) ? kWaitAbandoned
                                                                 : kWaitObject0;
    }
    if (finite && s.now() >= deadline) co_return kWaitTimeout;

    auto tok = make_wait(c);
    obj->add_waiter(tok);
    std::optional<sim::Duration> remaining;
    if (finite) remaining = deadline - s.now();
    const sim::WakeReason reason = co_await await_token(c, tok, remaining);
    if (reason == sim::WakeReason::kTimeout) co_return kWaitTimeout;
    // Signaled: loop back and try to acquire (another thread may have raced
    // us to the signal — NT wait semantics).
  }
}

}  // namespace dts::nt
