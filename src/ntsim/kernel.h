// The simulated NT machine: processes, filesystem, SCM, event log, and the
// KERNEL32 API surface. One Machine per simulated box; a fault-injection run
// typically simulates a target machine and a client machine on one network.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ntsim/event_log.h"
#include "ntsim/filesystem.h"
#include "ntsim/process.h"
#include "ntsim/registry.h"
#include "ntsim/scm.h"
#include "ntsim/types.h"
#include "sim/simulation.h"

namespace dts::nt {

class Kernel32;

struct MachineConfig {
  std::string name = "target";
  /// Relative CPU cost multiplier. 1.0 models the paper's 100 MHz Pentium;
  /// 0.25 approximates their 400 MHz Pentium II.
  double cpu_scale = 1.0;
  /// Multiplicative execution-time noise (0 = none): each cost is scaled by
  /// a uniform factor in [1-jitter, 1+jitter] drawn from the simulation RNG.
  /// Models OS scheduling/cache noise; still fully reproducible per seed.
  /// The paper's multi-child Apache nondeterminism only appears with noise.
  double jitter = 0.0;
};

/// Record of a finished process, kept for diagnostics and restart counting.
struct ProcessExitRecord {
  Pid pid = 0;
  std::string image;
  Dword exit_code = 0;
  std::string reason;
  sim::TimePoint at;

  friend bool operator==(const ProcessExitRecord&, const ProcessExitRecord&) = default;
};

struct ProcessStartRecord {
  Pid pid = 0;
  std::string image;
  sim::TimePoint at;

  friend bool operator==(const ProcessStartRecord&, const ProcessStartRecord&) = default;
};

class Machine {
 public:
  Machine(sim::Simulation& sim, MachineConfig cfg);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  sim::Simulation& sim() const { return *sim_; }
  const std::string& name() const { return cfg_.name; }
  double cpu_scale() const { return cfg_.cpu_scale; }

  /// Scales a base syscall/work cost by the machine's CPU speed, plus the
  /// configured execution-time jitter.
  sim::Duration cost(sim::Duration base) const {
    double scaled = static_cast<double>(base.count_micros()) * cfg_.cpu_scale;
    if (cfg_.jitter > 0.0) {
      scaled *= 1.0 + cfg_.jitter * (2.0 * sim_->rng().uniform01() - 1.0);
    }
    return sim::Duration::micros(static_cast<std::int64_t>(scaled));
  }

  Filesystem& fs() { return fs_; }
  Registry& registry() { return registry_; }
  EventLog& event_log() { return event_log_; }
  Scm& scm() { return *scm_; }
  Kernel32& k32() { return *k32_; }

  // --- program images --------------------------------------------------------
  using ProgramMain = std::function<sim::Task(Ctx)>;
  void register_program(std::string image, ProgramMain main_fn);
  bool has_program(std::string_view image) const;

  // --- process lifecycle -----------------------------------------------------

  /// Starts a process from a registered program image. Returns 0 if the image
  /// is unknown.
  Pid start_process(const std::string& image, const std::string& command_line,
                    Pid parent_pid = 0);

  Process* find_process(Pid pid);
  const Process* find_process(Pid pid) const;

  /// First live process whose image matches (used by tests and middleware).
  Process* find_process_by_image(std::string_view image);

  bool alive(Pid pid) const { return find_process(pid) != nullptr; }
  std::size_t live_processes() const { return processes_.size(); }

  /// Requests asynchronous termination of a process (NT TerminateProcess /
  /// ExitProcess / unhandled exception all funnel here). Safe to call from
  /// within one of the process's own threads: actual teardown runs as a
  /// zero-delay simulation event.
  void request_process_exit(Pid pid, Dword code, std::string reason);

  /// Invoked by the Task completion hook of every simulated thread.
  void on_thread_complete(Pid pid, Tid tid, std::exception_ptr error);

  // --- history & stats -------------------------------------------------------
  const std::vector<ProcessExitRecord>& exit_history() const { return exit_history_; }
  const std::vector<ProcessStartRecord>& start_history() const { return start_history_; }

  /// Number of process starts of `image` strictly after `since`.
  std::size_t starts_of(std::string_view image, sim::TimePoint since = {}) const;
  /// Number of crashes (abnormal exits) of `image`.
  std::size_t crashes_of(std::string_view image) const;

  std::uint64_t syscalls_made = 0;

  // --- snapshots (src/snap/) ------------------------------------------------
  // Captures every stateful component of the machine. Process address spaces
  // and file contents are copy-on-write (see VirtualMemory / Filesystem);
  // everything else is small value data. Coroutine frames (the live threads)
  // are NOT captured — in-memory restore is only valid within the world that
  // captured the snapshot and with the same live process set; cross-world
  // resume goes through the fork-based execution path in src/snap/.

  struct ProcessSnapshot {
    std::string image;
    VirtualMemory::Snapshot mem;
    HandleTable::Snapshot handles;

    friend bool operator==(const ProcessSnapshot&, const ProcessSnapshot&) = default;
  };

  struct Snapshot {
    Filesystem::Snapshot fs;
    Registry::Snapshot registry;
    EventLog::Snapshot event_log;
    Scm::Snapshot scm;
    std::map<Pid, ProcessSnapshot> processes;
    Pid next_pid = 100;
    std::uint64_t syscalls = 0;
    std::vector<ProcessExitRecord> exits;
    std::vector<ProcessStartRecord> starts;

    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };

  /// Captures the whole machine. `stats`, when given, accumulates COW
  /// shared-vs-copied block counts across memory and filesystem captures.
  Snapshot capture(CowStats* stats = nullptr) const;

  /// Restores machine state. Returns false (touching nothing) if the live
  /// process set does not match the snapshot's pid/image set — the world has
  /// structurally diverged and an in-memory restore would dangle.
  bool restore(const Snapshot& s);

 private:
  void teardown(Pid pid, Dword code, std::string reason);

  sim::Simulation* sim_;
  MachineConfig cfg_;
  Filesystem fs_;
  Registry registry_;
  EventLog event_log_;
  std::unique_ptr<Scm> scm_;
  std::unique_ptr<Kernel32> k32_;

  std::map<std::string, ProgramMain> programs_;
  std::map<Pid, std::unique_ptr<Process>> processes_;
  Pid next_pid_ = 100;

  std::vector<ProcessExitRecord> exit_history_;
  std::vector<ProcessStartRecord> start_history_;
};

}  // namespace dts::nt
