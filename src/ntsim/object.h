// The simulated NT executive object model.
//
// Kernel objects are reference-counted (shared_ptr — the analogue of the NT
// object manager's refcount); handles in per-process handle tables hold
// references. Waitable objects keep a list of WakeTokens; signaling wakes
// blocked simulated threads through the event queue.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "ntsim/types.h"
#include "sim/task.h"

namespace dts::nt {

enum class ObjectType {
  kEvent,
  kMutex,
  kSemaphore,
  kFile,
  kPipeRead,
  kPipeWrite,
  kProcess,
  kThread,
  kFileMapping,
  kFindSearch,
  kHeap,
  kNamedPipe,
};

std::string_view to_string(ObjectType t);

class KernelObject {
 public:
  explicit KernelObject(sim::Simulation& sim) : sim_(&sim) {}
  virtual ~KernelObject() = default;

  KernelObject(const KernelObject&) = delete;
  KernelObject& operator=(const KernelObject&) = delete;

  virtual ObjectType type() const = 0;

  /// True if a wait on this object would be satisfied right now.
  virtual bool is_signaled() const { return true; }

  /// Attempts to satisfy a wait by `waiter_tid` with side effects (auto-reset
  /// event consumption, mutex ownership, semaphore decrement). Returns true
  /// if the wait is satisfied.
  virtual bool try_acquire(Tid waiter_tid) {
    (void)waiter_tid;
    return is_signaled();
  }

  /// Registers a blocked waiter.
  void add_waiter(sim::WakePtr tok) { waiters_.push_back(std::move(tok)); }

  /// Wakes one blocked waiter (skipping fired/dead tokens).
  void wake_one();

  /// Wakes every blocked waiter.
  void wake_all();

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

 protected:
  sim::Simulation& sim() const { return *sim_; }

 private:
  sim::Simulation* sim_;
  std::string name_;
  std::vector<sim::WakePtr> waiters_;
};

/// NT event object (manual- or auto-reset).
class EventObject final : public KernelObject {
 public:
  EventObject(sim::Simulation& sim, bool manual_reset, bool initial_state)
      : KernelObject(sim), manual_reset_(manual_reset), signaled_(initial_state) {}

  ObjectType type() const override { return ObjectType::kEvent; }
  bool is_signaled() const override { return signaled_; }

  bool try_acquire(Tid) override {
    if (!signaled_) return false;
    if (!manual_reset_) signaled_ = false;  // auto-reset consumes the signal
    return true;
  }

  void set() {
    signaled_ = true;
    if (manual_reset_) {
      wake_all();
    } else {
      wake_one();
    }
  }
  void reset() { signaled_ = false; }
  void pulse() {
    // PulseEvent: wake current waiters, leave the event unsignaled.
    signaled_ = true;
    if (manual_reset_) {
      wake_all();
    } else {
      wake_one();
    }
    // The woken waiters will re-run try_acquire; give them the signal exactly
    // once by letting auto-reset consumption / explicit reset handle it.
    if (manual_reset_) signaled_ = false;
  }
  bool manual_reset() const { return manual_reset_; }

 private:
  bool manual_reset_;
  bool signaled_;
};

/// NT mutex object with ownership and recursion.
class MutexObject final : public KernelObject {
 public:
  MutexObject(sim::Simulation& sim, Tid initial_owner)
      : KernelObject(sim), owner_(initial_owner), recursion_(initial_owner != 0 ? 1 : 0) {}

  ObjectType type() const override { return ObjectType::kMutex; }
  bool is_signaled() const override { return owner_ == 0; }

  bool try_acquire(Tid waiter_tid) override {
    if (owner_ == 0 || owner_ == waiter_tid) {
      owner_ = waiter_tid;
      ++recursion_;
      return true;
    }
    return false;
  }

  /// Returns false if `tid` does not own the mutex.
  bool release(Tid tid) {
    if (owner_ != tid || recursion_ == 0) return false;
    if (--recursion_ == 0) {
      owner_ = 0;
      wake_one();
    }
    return true;
  }

  /// Called when the owning thread dies while holding the mutex.
  void abandon(Tid tid) {
    if (owner_ == tid) {
      owner_ = 0;
      recursion_ = 0;
      abandoned_ = true;
      wake_one();
    }
  }

  bool consume_abandoned() {
    bool a = abandoned_;
    abandoned_ = false;
    return a;
  }
  Tid owner() const { return owner_; }

 private:
  Tid owner_;
  int recursion_;
  bool abandoned_ = false;
};

/// NT semaphore object.
class SemaphoreObject final : public KernelObject {
 public:
  SemaphoreObject(sim::Simulation& sim, std::int32_t initial, std::int32_t maximum)
      : KernelObject(sim), count_(initial), max_(maximum) {}

  ObjectType type() const override { return ObjectType::kSemaphore; }
  bool is_signaled() const override { return count_ > 0; }

  bool try_acquire(Tid) override {
    if (count_ <= 0) return false;
    --count_;
    return true;
  }

  /// Returns false (without changing state) if the release would exceed max.
  bool release(std::int32_t n, std::int32_t* previous) {
    if (n <= 0 || count_ > max_ - n) return false;
    if (previous != nullptr) *previous = count_;
    count_ += n;
    for (std::int32_t i = 0; i < n; ++i) wake_one();
    return true;
  }

  std::int32_t count() const { return count_; }
  std::int32_t maximum() const { return max_; }

 private:
  std::int32_t count_;
  std::int32_t max_;
};

/// Represents a process for handle purposes; outlives the Process itself so
/// that waits and GetExitCodeProcess work after the process dies.
class ProcessObject final : public KernelObject {
 public:
  ProcessObject(sim::Simulation& sim, Pid pid) : KernelObject(sim), pid_(pid) {}

  ObjectType type() const override { return ObjectType::kProcess; }
  bool is_signaled() const override { return exited_; }

  void mark_exited(Dword code) {
    exited_ = true;
    exit_code_ = code;
    wake_all();
  }

  Pid pid() const { return pid_; }
  bool exited() const { return exited_; }
  Dword exit_code() const { return exited_ ? exit_code_ : kStillActive; }

 private:
  Pid pid_;
  bool exited_ = false;
  Dword exit_code_ = 0;
};

/// Represents a thread for handle purposes.
class ThreadObject final : public KernelObject {
 public:
  ThreadObject(sim::Simulation& sim, Pid pid, Tid tid)
      : KernelObject(sim), pid_(pid), tid_(tid) {}

  ObjectType type() const override { return ObjectType::kThread; }
  bool is_signaled() const override { return exited_; }

  void mark_exited(Dword code) {
    exited_ = true;
    exit_code_ = code;
    wake_all();
  }

  Pid pid() const { return pid_; }
  Tid tid() const { return tid_; }
  bool exited() const { return exited_; }
  Dword exit_code() const { return exited_ ? exit_code_ : kStillActive; }

 private:
  Pid pid_;
  Tid tid_;
  bool exited_ = false;
  Dword exit_code_ = 0;
};

/// Shared buffer behind an anonymous pipe: one read end, one write end.
struct PipeBuffer {
  std::deque<std::byte> data;
  std::size_t capacity = 4096;
  bool read_closed = false;
  bool write_closed = false;
  // Waiters live on the end objects; the buffer links back so either end can
  // wake the other side's blocked threads.
  KernelObject* read_end = nullptr;
  KernelObject* write_end = nullptr;
};

/// Read end of an anonymous pipe.
class PipeReadObject final : public KernelObject {
 public:
  PipeReadObject(sim::Simulation& sim, std::shared_ptr<PipeBuffer> buf)
      : KernelObject(sim), buf_(std::move(buf)) {
    buf_->read_end = this;
  }
  ~PipeReadObject() override;

  ObjectType type() const override { return ObjectType::kPipeRead; }
  bool is_signaled() const override { return !buf_->data.empty() || buf_->write_closed; }

  PipeBuffer& buffer() { return *buf_; }
  std::shared_ptr<PipeBuffer> shared_buffer() const { return buf_; }

 private:
  std::shared_ptr<PipeBuffer> buf_;
};

/// Write end of an anonymous pipe.
class PipeWriteObject final : public KernelObject {
 public:
  PipeWriteObject(sim::Simulation& sim, std::shared_ptr<PipeBuffer> buf)
      : KernelObject(sim), buf_(std::move(buf)) {
    buf_->write_end = this;
  }
  ~PipeWriteObject() override;

  ObjectType type() const override { return ObjectType::kPipeWrite; }
  bool is_signaled() const override {
    return buf_->data.size() < buf_->capacity || buf_->read_closed;
  }

  PipeBuffer& buffer() { return *buf_; }
  std::shared_ptr<PipeBuffer> shared_buffer() const { return buf_; }

 private:
  std::shared_ptr<PipeBuffer> buf_;
};

/// One end of a duplex named pipe. The server end is created by
/// CreateNamedPipeA and listens via ConnectNamedPipe; the client end comes
/// from CreateFileA("\\.\pipe\..."). Both ends share a pair of directional
/// buffers; ReadFile/WriteFile dispatch on which end the handle denotes.
class NamedPipeEndObject final : public KernelObject {
 public:
  enum class Role { kServer, kClient };
  enum class State { kListening, kConnected, kDisconnected };

  NamedPipeEndObject(sim::Simulation& sim, Role role,
                     std::shared_ptr<PipeBuffer> inbound,
                     std::shared_ptr<PipeBuffer> outbound)
      : KernelObject(sim), role_(role), inbound_(std::move(inbound)),
        outbound_(std::move(outbound)) {}
  ~NamedPipeEndObject() override {
    // Dropping either end breaks both directions and wakes the peer.
    inbound_->write_closed = true;
    outbound_->read_closed = true;
    if (peer_ != nullptr) {
      peer_->peer_ = nullptr;
      peer_->wake_all();
    }
  }

  ObjectType type() const override { return ObjectType::kNamedPipe; }

  Role role() const { return role_; }
  State state() const { return state_; }
  void set_state(State s) { state_ = s; }

  PipeBuffer& inbound() { return *inbound_; }
  PipeBuffer& outbound() { return *outbound_; }
  std::shared_ptr<PipeBuffer> shared_inbound() const { return inbound_; }
  std::shared_ptr<PipeBuffer> shared_outbound() const { return outbound_; }

  NamedPipeEndObject* peer() const { return peer_; }
  static void link(NamedPipeEndObject& a, NamedPipeEndObject& b) {
    a.peer_ = &b;
    b.peer_ = &a;
  }
  static void unlink(NamedPipeEndObject& a) {
    if (a.peer_ != nullptr) {
      a.peer_->peer_ = nullptr;
      a.peer_ = nullptr;
    }
  }

 private:
  Role role_;
  State state_ = State::kListening;
  std::shared_ptr<PipeBuffer> inbound_;   // peer writes, we read
  std::shared_ptr<PipeBuffer> outbound_;  // we write, peer reads
  NamedPipeEndObject* peer_ = nullptr;
};

/// A section / file-mapping object backed by a shared byte array.
class FileMappingObject final : public KernelObject {
 public:
  FileMappingObject(sim::Simulation& sim, Word size)
      : KernelObject(sim), bytes_(std::make_shared<std::vector<std::byte>>(size)) {}

  ObjectType type() const override { return ObjectType::kFileMapping; }
  std::shared_ptr<std::vector<std::byte>> bytes() const { return bytes_; }
  Word size() const { return static_cast<Word>(bytes_->size()); }

 private:
  std::shared_ptr<std::vector<std::byte>> bytes_;
};

/// A private heap created by HeapCreate. Allocation bookkeeping lives in the
/// process VirtualMemory; the heap object tracks its blocks so HeapDestroy
/// can release them and HeapValidate-style checks are possible.
class HeapObject final : public KernelObject {
 public:
  HeapObject(sim::Simulation& sim, Word max_size) : KernelObject(sim), max_size_(max_size) {}

  ObjectType type() const override { return ObjectType::kHeap; }

  Word max_size() const { return max_size_; }
  std::vector<Word>& blocks() { return blocks_; }
  Word bytes_allocated = 0;

 private:
  Word max_size_;
  std::vector<Word> blocks_;  // base addresses of live allocations
};

/// Search state behind FindFirstFileA/FindNextFileA.
class FindSearchObject final : public KernelObject {
 public:
  FindSearchObject(sim::Simulation& sim, std::vector<std::string> entries)
      : KernelObject(sim), entries_(std::move(entries)) {}

  ObjectType type() const override { return ObjectType::kFindSearch; }

  /// Returns the next entry or nullptr when exhausted.
  const std::string* next() {
    if (index_ >= entries_.size()) return nullptr;
    return &entries_[index_++];
  }

 private:
  std::vector<std::string> entries_;
  std::size_t index_ = 0;
};

}  // namespace dts::nt
