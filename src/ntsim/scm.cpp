#include "ntsim/scm.h"

#include "ntsim/kernel.h"

namespace dts::nt {

namespace {
constexpr std::uint32_t kEventServiceRunning = 7001;
constexpr std::uint32_t kEventServiceStopped = 7002;
constexpr std::uint32_t kEventServiceCrashed = 7031;
constexpr std::uint32_t kEventServiceStartFailed = 7000;
}  // namespace

std::string_view to_string(ServiceState s) {
  switch (s) {
    case ServiceState::kStopped: return "Stopped";
    case ServiceState::kStartPending: return "StartPending";
    case ServiceState::kRunning: return "Running";
    case ServiceState::kStopPending: return "StopPending";
  }
  return "?";
}

Scm::Scm(Machine& machine) : machine_(&machine) {}

void Scm::register_service(ServiceConfig cfg) {
  // Re-registration replaces the configuration (middleware installers adjust
  // the service command line, e.g. adding "/cluster"). The configuration is
  // mirrored into the registry under the real NT services key.
  const std::string key =
      "HKLM\\SYSTEM\\CurrentControlSet\\Services\\" + cfg.name;
  machine_->registry().set_string(key, "ImagePath", cfg.image);
  machine_->registry().set_string(key, "CommandLine", cfg.command_line);
  machine_->registry().set_dword(key, "Start", 2);  // SERVICE_AUTO_START
  machine_->registry().set_dword(
      key, "WaitHint", static_cast<Dword>(cfg.start_wait_hint.count_millis()));
  std::string name = cfg.name;
  services_[std::move(name)] = Record{std::move(cfg)};
}

bool Scm::has_service(std::string_view name) const {
  return services_.contains(std::string(name));
}

bool Scm::append_service_switch(const std::string& name, const std::string& sw) {
  auto it = services_.find(name);
  if (it == services_.end()) return false;
  std::string& cmdline = it->second.cfg.command_line;
  if (cmdline.find(sw) != std::string::npos) return false;
  cmdline += " " + sw;
  machine_->registry().set_string(
      "HKLM\\SYSTEM\\CurrentControlSet\\Services\\" + name, "CommandLine", cmdline);
  return true;
}

bool Scm::database_locked() const {
  for (const auto& [_, rec] : services_) {
    if (rec.state == ServiceState::kStartPending || rec.state == ServiceState::kStopPending) {
      return true;
    }
  }
  return false;
}

void Scm::log(EventSeverity sev, std::uint32_t id, std::string msg) {
  machine_->event_log().write(machine_->sim().now(), sev, "Service Control Manager", id,
                              std::move(msg));
}

Win32Error Scm::start_service(const std::string& name,
                              std::shared_ptr<ProcessObject>* info) {
  auto it = services_.find(name);
  if (it == services_.end()) return Win32Error::kServiceDoesNotExist;
  Record& rec = it->second;
  if (database_locked()) return Win32Error::kServiceDatabaseLocked;
  if (rec.state == ServiceState::kRunning) return Win32Error::kServiceAlreadyRunning;

  const Pid pid = machine_->start_process(rec.cfg.image, rec.cfg.command_line);
  if (pid == 0) {
    log(EventSeverity::kError, kEventServiceStartFailed,
        "The " + name + " service failed to start: image not found");
    return Win32Error::kFileNotFound;
  }
  rec.pid = pid;
  rec.state = ServiceState::kStartPending;
  ++rec.pending_epoch;
  arm_start_deadline(name);
  if (info != nullptr) {
    Process* p = machine_->find_process(pid);
    *info = p != nullptr ? p->object() : nullptr;
  }
  return Win32Error::kSuccess;
}

void Scm::arm_start_deadline(const std::string& name) {
  Record& rec = services_.at(name);
  const std::uint64_t epoch = rec.pending_epoch;
  machine_->sim().schedule(rec.cfg.start_wait_hint, [this, name, epoch] {
    auto it = services_.find(name);
    if (it == services_.end()) return;
    Record& rec = it->second;
    if (rec.pending_epoch != epoch || rec.state != ServiceState::kStartPending) return;
    // The wait hint expired without the service reporting Running. If the
    // process is still around it is considered hung at startup and killed;
    // either way the service drops to Stopped (releasing the database lock).
    if (machine_->alive(rec.pid)) {
      machine_->request_process_exit(rec.pid, to_dword(Win32Error::kServiceRequestTimeout),
                                     "SCM start-pending timeout");
    }
    rec.state = ServiceState::kStopped;
    ++rec.pending_epoch;
    log(EventSeverity::kError, kEventServiceStartFailed,
        "The " + name + " service hung on starting; start request timed out");
  });
}

Win32Error Scm::control_stop(const std::string& name) {
  auto it = services_.find(name);
  if (it == services_.end()) return Win32Error::kServiceDoesNotExist;
  Record& rec = it->second;
  if (database_locked()) return Win32Error::kServiceDatabaseLocked;
  if (rec.state != ServiceState::kRunning) return Win32Error::kServiceNotActive;
  rec.state = ServiceState::kStopPending;
  ++rec.pending_epoch;
  machine_->request_process_exit(rec.pid, 0, "SCM stop control");
  return Win32Error::kSuccess;
}

std::optional<ServiceStatus> Scm::query(const std::string& name) const {
  auto it = services_.find(name);
  if (it == services_.end()) return std::nullopt;
  const Record& rec = it->second;
  ServiceStatus st;
  st.state = rec.state;
  st.pid = rec.pid;
  if (Process* p = machine_->find_process(rec.pid); p != nullptr) {
    st.process = p->object();
  }
  return st;
}

Win32Error Scm::set_service_status(Pid pid, ServiceState state) {
  for (auto& [name, rec] : services_) {
    if (rec.pid != pid) continue;
    if (state == ServiceState::kRunning && rec.state == ServiceState::kStartPending) {
      rec.state = ServiceState::kRunning;
      ++rec.pending_epoch;  // disarm the start deadline
      ++starts_;
      log(EventSeverity::kInformation, kEventServiceRunning,
          "The " + name + " service entered the running state");
      return Win32Error::kSuccess;
    }
    if (state == ServiceState::kStopped) {
      rec.state = ServiceState::kStopped;
      rec.pid = 0;
      ++rec.pending_epoch;
      log(EventSeverity::kInformation, kEventServiceStopped,
          "The " + name + " service entered the stopped state");
      return Win32Error::kSuccess;
    }
    return Win32Error::kInvalidParameter;
  }
  return Win32Error::kServiceDoesNotExist;
}

void Scm::on_process_exit(Pid pid) {
  for (auto& [name, rec] : services_) {
    if (rec.pid != pid || rec.state == ServiceState::kStopped) continue;
    switch (rec.state) {
      case ServiceState::kRunning:
        rec.state = ServiceState::kStopped;
        rec.pid = 0;
        ++rec.pending_epoch;
        log(EventSeverity::kError, kEventServiceCrashed,
            "The " + name + " service terminated unexpectedly");
        break;
      case ServiceState::kStartPending:
        // Deliberately nothing: the SCM believes the service is still
        // starting, keeps the database locked, and only drops to Stopped
        // when the wait hint expires (the paper's restart-delay mechanism).
        break;
      case ServiceState::kStopPending:
        rec.state = ServiceState::kStopped;
        rec.pid = 0;
        ++rec.pending_epoch;
        log(EventSeverity::kInformation, kEventServiceStopped,
            "The " + name + " service entered the stopped state");
        break;
      case ServiceState::kStopped:
        break;
    }
  }
}

}  // namespace dts::nt
