// KERNEL32 module / environment / time / string / locale / profile functions.
//
// The lstr* family is SEH-guarded on NT (returns NULL/0 on faults) while the
// wide-char conversions and profile functions touch memory unguarded — both
// behaviours are reproduced, because DTS results depend on which functions
// crash and which fail soft.
#include <algorithm>
#include <cctype>

#include "ntsim/kernel.h"
#include "ntsim/kernel32.h"

namespace dts::nt::k32 {

namespace {

/// Writes `value` into (buf, size) with truncation, returning the number of
/// characters copied (excluding NUL). User-mode writes: bad pointers crash.
Word write_string_out(Sys& s, Word buf, Word size, const std::string& value) {
  if (size == 0) return 0;
  const std::string out = value.substr(0, size - 1);
  s.mem().write_cstr(Ptr{buf}, out);
  return static_cast<Word>(out.size());
}

std::string upper(std::string v) {
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return v;
}

/// Minimal INI lookup for the GetPrivateProfile* family.
std::optional<std::string> ini_lookup(const std::string& content, std::string_view section,
                                      std::string_view key) {
  std::string current;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    std::string_view line{content.data() + pos, eol - pos};
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.remove_suffix(1);
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (!line.empty() && line.front() == '[' && line.back() == ']') {
      current = upper(std::string(line.substr(1, line.size() - 2)));
    } else if (!line.empty() && line.front() != ';' && upper(current) == upper(std::string(section))) {
      const auto eq = line.find('=');
      if (eq != std::string_view::npos) {
        std::string k = upper(std::string(line.substr(0, eq)));
        while (!k.empty() && k.back() == ' ') k.pop_back();
        if (k == upper(std::string(key))) {
          std::string_view v = line.substr(eq + 1);
          while (!v.empty() && v.front() == ' ') v.remove_prefix(1);
          return std::string(v);
        }
      }
    }
    if (eol == content.size()) break;
    pos = eol + 1;
  }
  return std::nullopt;
}

Word format_message(Sys& s, const CallRecord& r) {
  constexpr Word kAllocateBuffer = 0x100;
  char text[64];
  std::snprintf(text, sizeof text, "Error 0x%08X.", r.args[2]);
  const std::string msg = text;
  if ((r.args[0] & kAllocateBuffer) != 0) {
    // lpBuffer is an LPSTR*: allocate and store the pointer, in user mode.
    const Word addr = s.mem().alloc_cstr(msg).addr;
    s.mem().write_u32(Ptr{r.args[4]}, addr);
    return static_cast<Word>(msg.size());
  }
  return write_string_out(s, r.args[4], r.args[5], msg);
}

Word multi_byte_to_wide_char(Sys& s, const CallRecord& r) {
  const Word src = r.args[2];
  const auto cb = static_cast<std::int32_t>(r.args[3]);
  std::string input;
  if (cb < 0) {
    input = s.mem().read_cstr(Ptr{src});  // user-mode scan; crashes on bad ptr
    input.push_back('\0');
  } else {
    input = s.mem().read_bytes(Ptr{src}, static_cast<Word>(cb));
  }
  if (r.args[5] == 0) return static_cast<Word>(input.size());  // size query
  const Word out_chars = std::min<Word>(r.args[5], static_cast<Word>(input.size()));
  std::string wide(out_chars * 2, '\0');
  for (Word i = 0; i < out_chars; ++i) wide[i * 2] = input[i];
  s.mem().write_bytes(Ptr{r.args[4]}, wide);  // unguarded user-mode write
  return out_chars;
}

Word wide_char_to_multi_byte(Sys& s, const CallRecord& r) {
  const Word src = r.args[2];
  auto cch = static_cast<std::int32_t>(r.args[3]);
  std::string narrow;
  if (cch < 0) {
    for (Word i = 0;; i += 2) {
      const std::string two = s.mem().read_bytes(Ptr{src + i}, 2);
      if (two[0] == '\0' && two[1] == '\0') break;
      narrow.push_back(two[0]);
    }
    narrow.push_back('\0');
  } else {
    for (std::int32_t i = 0; i < cch; ++i) {
      narrow.push_back(s.mem().read_bytes(Ptr{src + static_cast<Word>(i) * 2}, 1)[0]);
    }
  }
  if (r.args[5] == 0) return static_cast<Word>(narrow.size());
  const Word n = std::min<Word>(r.args[5], static_cast<Word>(narrow.size()));
  s.mem().write_bytes(Ptr{r.args[4]}, narrow.substr(0, n));
  return n;
}

/// Reads a 64-bit value (e.g. FILETIME) from user memory, crashing on bad
/// pointers like the user-mode callers did.
std::uint64_t mem64(Sys& s, Ptr p) {
  const std::uint64_t lo = s.mem().read_u32(p);
  const std::uint64_t hi = s.mem().read_u32(p.offset(4));
  return (hi << 32) | lo;
}

/// SYSTEMTIME writer: simulation epoch is 1999-05-01 00:00 (the paper's
/// experiments ran at Bell Labs in spring 1999).
void write_systemtime(Sys& s, Ptr out) {
  const std::int64_t total_ms = s.m.sim().now().count_micros() / 1000;
  const auto ms = static_cast<Word>(total_ms % 1000);
  const std::int64_t total_s = total_ms / 1000;
  const auto sec = static_cast<Word>(total_s % 60);
  const auto min = static_cast<Word>((total_s / 60) % 60);
  const auto hour = static_cast<Word>((total_s / 3600) % 24);
  const auto day = static_cast<Word>(1 + (total_s / 86400));
  auto w16 = [&](Word off, Word v) {
    std::byte raw[2] = {static_cast<std::byte>(v & 0xFF), static_cast<std::byte>(v >> 8)};
    s.mem().write(out.offset(off), raw);
  };
  w16(0, 1999);        // wYear
  w16(2, 5);           // wMonth
  w16(4, 6);           // wDayOfWeek
  w16(6, day);         // wDay
  w16(8, hour);
  w16(10, min);
  w16(12, sec);
  w16(14, ms);
}

}  // namespace

Word sync_misc(Sys& s, const CallRecord& r) {
  const auto& a = r.args;
  switch (r.fn) {
    case Fn::GetModuleHandleA: {
      if (a[0] == 0) return 0x00400000;  // the process image base
      const std::string name = upper(s.mem().read_cstr(Ptr{a[0]}));
      if (name == "KERNEL32.DLL" || name == "KERNEL32") return 0x77F00000;
      if (name == "NTDLL.DLL" || name == "NTDLL") return 0x77F70000;
      auto it = s.p.user.modules.find(name);
      if (it != s.p.user.modules.end()) return it->second;
      return s.fail(Win32Error::kFileNotFound);
    }
    case Fn::GetModuleFileNameA: {
      // Only the process image itself is queried by the simulated servers.
      const std::string path = "C:\\Program Files\\" + s.p.image();
      return write_string_out(s, a[1], a[2], path);
    }
    case Fn::LoadLibraryA: {
      const std::string name = upper(s.mem().read_cstr(Ptr{a[0]}));
      auto it = s.p.user.modules.find(name);
      if (it != s.p.user.modules.end()) return it->second;
      // Well-known system DLLs always load; anything else must exist on disk.
      static constexpr std::string_view kSystemDlls[] = {
          "WSOCK32.DLL", "WS2_32.DLL", "ADVAPI32.DLL", "USER32.DLL",
          "MSVCRT.DLL",  "ODBC32.DLL", "RPCRT4.DLL",
      };
      const bool known =
          std::find(std::begin(kSystemDlls), std::end(kSystemDlls), name) !=
          std::end(kSystemDlls);
      if (!known && !s.m.fs().is_file("C:\\WINNT\\system32\\" + name)) {
        return s.fail(Win32Error::kFileNotFound);
      }
      const Word base = s.p.user.next_module_base;
      s.p.user.next_module_base += 0x00100000;
      s.p.user.modules[name] = base;
      return base;
    }
    case Fn::FreeLibrary: {
      for (auto it = s.p.user.modules.begin(); it != s.p.user.modules.end(); ++it) {
        if (it->second == a[0]) {
          s.p.user.modules.erase(it);
          return 1;
        }
      }
      return s.fail(Win32Error::kInvalidHandle);
    }
    case Fn::GetProcAddress: {
      // HIWORD(lpProcName) == 0 means lookup by ordinal — so a zeroed pointer
      // fails cleanly instead of crashing (a real NT asymmetry).
      if ((a[1] >> 16) == 0) {
        return a[1] == 0 ? s.fail(Win32Error::kInvalidParameter)
                         : 0x20000000 + (a[1] & 0xFFFF);
      }
      const std::string name = s.mem().read_cstr(Ptr{a[1]});  // user-mode read
      if (name.empty()) return s.fail(Win32Error::kInvalidParameter);
      return 0x20000000 + (static_cast<Word>(sim::Rng::hash(name)) & 0xFFFF) + 0x10000;
    }
    case Fn::GetEnvironmentVariableA: {
      const std::string name = upper(s.mem().read_cstr(Ptr{a[0]}));
      auto it = s.p.env().find(name);
      if (it == s.p.env().end()) return s.fail(Win32Error::kEnvVarNotFound);
      const std::string& v = it->second;
      if (a[2] < v.size() + 1) return static_cast<Word>(v.size()) + 1;
      return write_string_out(s, a[1], a[2], v);
    }
    case Fn::SetEnvironmentVariableA: {
      const std::string name = upper(s.mem().read_cstr(Ptr{a[0]}));
      if (name.empty()) return s.fail(Win32Error::kInvalidParameter);
      if (a[1] == 0) {
        s.p.env().erase(name);
      } else {
        s.p.env()[name] = s.mem().read_cstr(Ptr{a[1]});
      }
      return 1;
    }
    case Fn::GetEnvironmentStrings: {
      std::string block;
      for (const auto& [k, v] : s.p.env()) block += k + "=" + v + '\0';
      block += '\0';
      const Ptr addr = s.mem().alloc(static_cast<Word>(block.size()));
      s.mem().write_bytes(addr, block);
      s.p.user.environment_block = addr.addr;
      return addr.addr;
    }
    case Fn::FreeEnvironmentStringsA: {
      if (!s.mem().free(Ptr{a[0]})) return s.fail(Win32Error::kInvalidParameter);
      return 1;
    }
    case Fn::GetSystemDirectoryA:
      return write_string_out(s, a[0], a[1], "C:\\WINNT\\system32");
    case Fn::GetWindowsDirectoryA:
      return write_string_out(s, a[0], a[1], "C:\\WINNT");
    case Fn::GetComputerNameA: {
      const Word size = s.mem().read_u32(Ptr{a[1]});  // in/out size, user mode
      const std::string& name = s.m.name();
      if (size < name.size() + 1) return s.fail(Win32Error::kInsufficientBuffer);
      s.mem().write_cstr(Ptr{a[0]}, name);
      s.mem().write_u32(Ptr{a[1]}, static_cast<Word>(name.size()));
      return 1;
    }
    case Fn::GetVersion:
      return 0x05650004;  // NT 4.0 build 1381
    case Fn::GetVersionExA: {
      const Word cb = s.mem().read_u32(Ptr{a[0]});
      if (cb < 148) return s.fail(Win32Error::kInsufficientBuffer);
      s.mem().write_u32(Ptr{a[0]}.offset(4), 4);      // major
      s.mem().write_u32(Ptr{a[0]}.offset(8), 0);      // minor
      s.mem().write_u32(Ptr{a[0]}.offset(12), 1381);  // build
      s.mem().write_u32(Ptr{a[0]}.offset(16), 2);     // VER_PLATFORM_WIN32_NT
      s.mem().write_cstr(Ptr{a[0]}.offset(20), "Service Pack 4");
      return 1;
    }
    case Fn::GetSystemInfo: {
      // SYSTEM_INFO, 36 bytes, written in user mode.
      const Ptr out{a[0]};
      s.mem().write_u32(out, 0);                   // PROCESSOR_ARCHITECTURE_INTEL
      s.mem().write_u32(out.offset(4), 4096);      // dwPageSize
      s.mem().write_u32(out.offset(8), 0x00010000);
      s.mem().write_u32(out.offset(12), 0x7FFEFFFF);
      s.mem().write_u32(out.offset(16), 1);        // active processor mask
      s.mem().write_u32(out.offset(20), 1);        // dwNumberOfProcessors
      s.mem().write_u32(out.offset(24), 586);      // dwProcessorType: Pentium
      s.mem().write_u32(out.offset(28), 65536);    // allocation granularity
      s.mem().write_u32(out.offset(32), 0x0205);   // level/revision
      return 0;  // void
    }
    case Fn::GetTickCount:
      return static_cast<Word>(s.m.sim().now().count_micros() / 1000);
    case Fn::GetSystemTime:
    case Fn::GetLocalTime:
      write_systemtime(s, Ptr{a[0]});
      return 0;  // void
    case Fn::GetSystemTimeAsFileTime: {
      const auto t = static_cast<std::uint64_t>(s.m.sim().now().count_micros()) * 10;
      s.mem().write_u32(Ptr{a[0]}, static_cast<Word>(t & 0xFFFFFFFF));
      s.mem().write_u32(Ptr{a[0]}.offset(4), static_cast<Word>(t >> 32));
      return 0;
    }
    case Fn::QueryPerformanceCounter: {
      const auto t = static_cast<std::uint64_t>(s.m.sim().now().count_micros());
      s.mem().write_u32(Ptr{a[0]}, static_cast<Word>(t & 0xFFFFFFFF));
      s.mem().write_u32(Ptr{a[0]}.offset(4), static_cast<Word>(t >> 32));
      return 1;
    }
    case Fn::QueryPerformanceFrequency: {
      s.mem().write_u32(Ptr{a[0]}, 1000000);
      s.mem().write_u32(Ptr{a[0]}.offset(4), 0);
      return 1;
    }
    case Fn::GetLastError:
      return s.thread().last_error;
    case Fn::SetLastError:
      s.thread().last_error = a[0];
      return 0;
    case Fn::SetErrorMode: {
      const Word prev = s.p.user.error_mode;
      s.p.user.error_mode = a[0];
      return prev;
    }
    case Fn::FormatMessageA:
      return format_message(s, r);
    case Fn::OutputDebugStringA:
      (void)s.mem().read_cstr(Ptr{a[0]});  // user-mode scan; crashes on bad ptr
      return 0;
    case Fn::lstrlenA: {
      // SEH-guarded on NT: returns 0 instead of crashing.
      try {
        return static_cast<Word>(s.mem().read_cstr(Ptr{a[0]}).size());
      } catch (const AccessViolation&) {
        return 0;
      }
    }
    case Fn::lstrcpyA: {
      try {
        const std::string src = s.mem().read_cstr(Ptr{a[1]});
        s.mem().write_cstr(Ptr{a[0]}, src);
        return a[0];
      } catch (const AccessViolation&) {
        return s.fail(Win32Error::kInvalidParameter);
      }
    }
    case Fn::lstrcpynA: {
      try {
        std::string src = s.mem().read_cstr(Ptr{a[1]});
        if (a[2] == 0) return s.fail(Win32Error::kInvalidParameter);
        src = src.substr(0, a[2] - 1);
        s.mem().write_cstr(Ptr{a[0]}, src);
        return a[0];
      } catch (const AccessViolation&) {
        return s.fail(Win32Error::kInvalidParameter);
      }
    }
    case Fn::lstrcatA: {
      try {
        const std::string dst = s.mem().read_cstr(Ptr{a[0]});
        const std::string src = s.mem().read_cstr(Ptr{a[1]});
        s.mem().write_cstr(Ptr{a[0]}, dst + src);
        return a[0];
      } catch (const AccessViolation&) {
        return s.fail(Win32Error::kInvalidParameter);
      }
    }
    case Fn::lstrcmpA:
    case Fn::lstrcmpiA: {
      try {
        std::string x = s.mem().read_cstr(Ptr{a[0]});
        std::string y = s.mem().read_cstr(Ptr{a[1]});
        if (r.fn == Fn::lstrcmpiA) {
          x = upper(x);
          y = upper(y);
        }
        return static_cast<Word>(x.compare(y) < 0 ? -1 : (x == y ? 0 : 1));
      } catch (const AccessViolation&) {
        return s.fail(Win32Error::kInvalidParameter);
      }
    }
    case Fn::MultiByteToWideChar:
      return multi_byte_to_wide_char(s, r);
    case Fn::WideCharToMultiByte:
      return wide_char_to_multi_byte(s, r);
    case Fn::GetACP:
      return 1252;
    case Fn::GetCPInfo: {
      // CPINFO, 20 bytes, user-mode write.
      const Ptr out{a[1]};
      s.mem().write_u32(out, 1);  // MaxCharSize
      std::vector<std::byte> rest(16, std::byte{0});
      s.mem().write(out.offset(4), rest);
      return 1;
    }
    case Fn::GetLocaleInfoA: {
      const std::string value = "1033";  // en-US for every LCType we model
      if (a[3] == 0) return static_cast<Word>(value.size()) + 1;
      return write_string_out(s, a[2], a[3], value) + 1;
    }
    case Fn::CompareStringA: {
      auto read_counted = [&](Word ptr, Word count) {
        if (static_cast<std::int32_t>(count) < 0) return s.mem().read_cstr(Ptr{ptr});
        return s.mem().read_bytes(Ptr{ptr}, count);
      };
      std::string x = read_counted(a[2], a[3]);
      std::string y = read_counted(a[4], a[5]);
      if ((a[1] & 0x1) != 0) {  // NORM_IGNORECASE
        x = upper(x);
        y = upper(y);
      }
      const int c = x.compare(y);
      return c < 0 ? 1 : (c == 0 ? 2 : 3);  // CSTR_LESS_THAN/EQUAL/GREATER_THAN
    }
    case Fn::GetPrivateProfileStringA: {
      const std::string section = a[0] != 0 ? s.mem().read_cstr(Ptr{a[0]}) : "";
      const std::string key = a[1] != 0 ? s.mem().read_cstr(Ptr{a[1]}) : "";
      const std::string fallback = a[2] != 0 ? s.mem().read_cstr(Ptr{a[2]}) : "";
      const std::string file = s.mem().read_cstr(Ptr{a[5]});
      std::string value = fallback;
      if (auto content = s.m.fs().get_file(file)) {
        if (auto found = ini_lookup(*content, section, key)) value = *found;
      }
      return write_string_out(s, a[3], a[4], value);
    }
    case Fn::GetPrivateProfileIntA: {
      const std::string section = s.mem().read_cstr(Ptr{a[0]});
      const std::string key = s.mem().read_cstr(Ptr{a[1]});
      const std::string file = s.mem().read_cstr(Ptr{a[3]});
      if (auto content = s.m.fs().get_file(file)) {
        if (auto found = ini_lookup(*content, section, key)) {
          return static_cast<Word>(std::strtoul(found->c_str(), nullptr, 10));
        }
      }
      return a[2];
    }
    case Fn::WritePrivateProfileStringA: {
      const std::string section = s.mem().read_cstr(Ptr{a[0]});
      const std::string key = s.mem().read_cstr(Ptr{a[1]});
      const std::string value = a[2] != 0 ? s.mem().read_cstr(Ptr{a[2]}) : "";
      const std::string file = s.mem().read_cstr(Ptr{a[3]});
      std::string content = s.m.fs().get_file(file).value_or("");
      // Append-only update: adequate for the config writes the servers do.
      content += "[" + section + "]\n" + key + "=" + value + "\n";
      s.m.fs().put_file(file, content);
      return 1;
    }
    case Fn::IsBadReadPtr:
    case Fn::IsBadWritePtr:
      // SEH-probed on NT: never crashes; TRUE means the pointer is bad.
      return s.mem().valid(Ptr{a[0]}, std::max<Word>(a[1], 1)) ? 0 : 1;
    case Fn::SetUnhandledExceptionFilter: {
      const Word prev = s.p.user.unhandled_filter;
      s.p.user.unhandled_filter = a[0];
      return prev;
    }
    case Fn::RaiseException:
      throw RaisedException{a[0]};
    case Fn::DebugBreak:
      // No debugger is attached: a breakpoint is an unhandled exception.
      throw RaisedException{0x80000003};  // STATUS_BREAKPOINT
    case Fn::Beep:
      return 1;
    case Fn::DeviceIoControl: {
      if (s.resolve(a[0]) == nullptr) return s.fail(Win32Error::kInvalidHandle);
      return s.fail(Win32Error::kInvalidParameter);  // no devices are modelled
    }
    case Fn::GetSystemDefaultLangID:
      return 0x0409;
    case Fn::CompareFileTime: {
      // Both FILETIMEs are read in user mode: corrupted pointers crash.
      const std::uint64_t t1 = mem64(s, Ptr{a[0]});
      const std::uint64_t t2 = mem64(s, Ptr{a[1]});
      return t1 < t2 ? static_cast<Word>(-1) : (t1 == t2 ? 0 : 1);
    }
    case Fn::FileTimeToSystemTime: {
      (void)mem64(s, Ptr{a[0]});  // user-mode read of the FILETIME
      write_systemtime(s, Ptr{a[1]});
      return 1;
    }
    case Fn::SystemTimeToFileTime: {
      (void)s.mem().read(Ptr{a[0]}, 16);  // SYSTEMTIME, user-mode read
      const auto t = static_cast<std::uint64_t>(s.m.sim().now().count_micros()) * 10;
      s.mem().write_u32(Ptr{a[1]}, static_cast<Word>(t & 0xFFFFFFFF));
      s.mem().write_u32(Ptr{a[1]}.offset(4), static_cast<Word>(t >> 32));
      return 1;
    }
    case Fn::ExpandEnvironmentStringsA: {
      // %VAR% expansion happens entirely in user mode.
      const std::string src_text = s.mem().read_cstr(Ptr{a[0]});
      std::string out;
      std::size_t i = 0;
      while (i < src_text.size()) {
        if (src_text[i] == '%') {
          const auto end = src_text.find('%', i + 1);
          if (end != std::string::npos) {
            std::string name = src_text.substr(i + 1, end - i - 1);
            for (char& ch : name) {
              ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
            }
            auto it = s.p.env().find(name);
            out += it != s.p.env().end() ? it->second : src_text.substr(i, end - i + 1);
            i = end + 1;
            continue;
          }
        }
        out.push_back(src_text[i++]);
      }
      if (a[2] < out.size() + 1) return static_cast<Word>(out.size()) + 1;
      s.mem().write_cstr(Ptr{a[1]}, out);
      return static_cast<Word>(out.size()) + 1;
    }
    case Fn::GetLogicalDrives:
      return 0x4;  // bit 2: C:
    case Fn::GetOEMCP:
      return 437;
    case Fn::MulDiv: {
      const auto n = static_cast<std::int64_t>(static_cast<std::int32_t>(a[0]));
      const auto num = static_cast<std::int64_t>(static_cast<std::int32_t>(a[1]));
      const auto den = static_cast<std::int64_t>(static_cast<std::int32_t>(a[2]));
      if (den == 0) return static_cast<Word>(-1);
      return static_cast<Word>(static_cast<std::int32_t>(n * num / den));
    }
    case Fn::IsBadStringPtrA: {
      // SEH-probed: TRUE (1) means the string is bad; never crashes.
      if (a[1] == 0) return 0;
      try {
        (void)s.mem().read_cstr(Ptr{a[0]}, a[1]);
        return 0;
      } catch (const AccessViolation&) {
        return 1;
      }
    }
    case Fn::GlobalSize: {
      const Word size = s.mem().block_size(Ptr{a[0]});
      return size == 0 ? s.fail(Win32Error::kInvalidHandle) : size;
    }
    case Fn::GetProfileStringA: {
      // Reads WIN.INI (the pre-registry system profile).
      const std::string section = a[0] != 0 ? s.mem().read_cstr(Ptr{a[0]}) : "";
      const std::string key = a[1] != 0 ? s.mem().read_cstr(Ptr{a[1]}) : "";
      const std::string fallback = a[2] != 0 ? s.mem().read_cstr(Ptr{a[2]}) : "";
      std::string value = fallback;
      if (auto content = s.m.fs().get_file("C:\\WINNT\\win.ini")) {
        if (auto found = ini_lookup(*content, section, key)) value = *found;
      }
      return write_string_out(s, a[3], a[4], value);
    }
    default:
      throw std::logic_error("sync_misc: unrouted function");
  }
}

}  // namespace dts::nt::k32
