// KERNEL32 synchronization functions (synchronous subset; the blocking waits
// and EnterCriticalSection live in kernel32.cpp).
//
// Named-object name strings are converted ANSI→Unicode in user mode on NT,
// so corrupted lpName pointers crash the caller. Corrupted flag words
// (bManualReset, bInitialState, counts) silently change object semantics —
// the mechanism behind many of the hang outcomes DTS observed.
#include "ntsim/kernel.h"
#include "ntsim/kernel32.h"

namespace dts::nt::k32 {

namespace {

/// Reads an optional object name (crashing on corrupted pointers, as the
/// user-mode ANSI conversion did). Empty string means unnamed.
std::string read_name(Sys& s, Word name_ptr) {
  if (name_ptr == 0) return {};
  return s.mem().read_cstr(Ptr{name_ptr});
}

/// Returns an existing named object of type T, a freshly published one, or
/// reports ERROR_INVALID_HANDLE on a name/type clash (NT semantics).
template <typename T, typename Make>
Word create_named(Sys& s, const std::string& name, Make make) {
  if (!name.empty()) {
    if (auto existing = s.k.find_named(name)) {
      if (dynamic_cast<T*>(existing.get()) == nullptr) {
        return s.fail(Win32Error::kInvalidHandle);
      }
      s.thread().last_error = to_dword(Win32Error::kAlreadyExists);
      return s.p.handles().insert(std::move(existing)).value;
    }
  }
  std::shared_ptr<T> obj = make();
  if (!name.empty()) {
    obj->set_name(name);
    s.k.publish_named(name, obj);
  }
  s.thread().last_error = to_dword(Win32Error::kSuccess);
  return s.p.handles().insert(std::move(obj)).value;
}

template <typename T>
Word open_named(Sys& s, Word name_ptr) {
  const std::string name = read_name(s, name_ptr);
  if (name.empty()) return s.fail(Win32Error::kInvalidName);
  auto obj = s.k.find_named(name);
  if (obj == nullptr || dynamic_cast<T*>(obj.get()) == nullptr) {
    return s.fail(Win32Error::kFileNotFound);
  }
  return s.p.handles().insert(std::move(obj)).value;
}

}  // namespace

Word sync_sync(Sys& s, const CallRecord& r) {
  const auto& a = r.args;
  sim::Simulation& simu = s.m.sim();
  switch (r.fn) {
    case Fn::CreateEventA: {
      const std::string name = read_name(s, a[3]);
      const bool manual = a[1] != 0;
      const bool initial = a[2] != 0;
      return create_named<EventObject>(
          s, name, [&] { return std::make_shared<EventObject>(simu, manual, initial); });
    }
    case Fn::OpenEventA:
      return open_named<EventObject>(s, a[2]);
    case Fn::SetEvent:
    case Fn::ResetEvent:
    case Fn::PulseEvent: {
      auto* ev = dynamic_cast<EventObject*>(s.resolve(a[0]).get());
      if (ev == nullptr) return s.fail(Win32Error::kInvalidHandle);
      if (r.fn == Fn::SetEvent) {
        ev->set();
      } else if (r.fn == Fn::ResetEvent) {
        ev->reset();
      } else {
        ev->pulse();
      }
      return 1;
    }
    case Fn::CreateMutexA: {
      const std::string name = read_name(s, a[2]);
      const Tid owner = a[1] != 0 ? s.c.tid : 0;
      return create_named<MutexObject>(
          s, name, [&] { return std::make_shared<MutexObject>(simu, owner); });
    }
    case Fn::OpenMutexA:
      return open_named<MutexObject>(s, a[2]);
    case Fn::ReleaseMutex: {
      auto* m = dynamic_cast<MutexObject*>(s.resolve(a[0]).get());
      if (m == nullptr) return s.fail(Win32Error::kInvalidHandle);
      if (!m->release(s.c.tid)) return s.fail(Win32Error::kNotOwner);
      return 1;
    }
    case Fn::CreateSemaphoreA: {
      const std::string name = read_name(s, a[3]);
      const auto initial = static_cast<std::int32_t>(a[1]);
      const auto maximum = static_cast<std::int32_t>(a[2]);
      if (maximum <= 0 || initial < 0 || initial > maximum) {
        return s.fail(Win32Error::kInvalidParameter);
      }
      return create_named<SemaphoreObject>(
          s, name, [&] { return std::make_shared<SemaphoreObject>(simu, initial, maximum); });
    }
    case Fn::OpenSemaphoreA:
      return open_named<SemaphoreObject>(s, a[2]);
    case Fn::ReleaseSemaphore: {
      auto* sem = dynamic_cast<SemaphoreObject*>(s.resolve(a[0]).get());
      if (sem == nullptr) return s.fail(Win32Error::kInvalidHandle);
      std::int32_t previous = 0;
      if (!sem->release(static_cast<std::int32_t>(a[1]), &previous)) {
        return s.fail(Win32Error::kInvalidParameter);  // ERROR_TOO_MANY_POSTS family
      }
      if (a[2] != 0) {
        // The previous-count output is probed by the kernel.
        try {
          s.mem().write_u32(Ptr{a[2]}, static_cast<Word>(previous));
        } catch (const AccessViolation&) {
          return s.fail(Win32Error::kNoAccess);
        }
      }
      return 1;
    }
    case Fn::InitializeCriticalSection: {
      // Initializes the CRITICAL_SECTION structure (24 bytes) in user memory:
      // a corrupted pointer crashes here.
      std::vector<std::byte> zeros(24, std::byte{0});
      s.mem().write(Ptr{a[0]}, zeros);
      s.k.critsecs()[{s.p.pid(), a[0]}] = CritSec{};
      return 0;  // void
    }
    case Fn::DeleteCriticalSection: {
      s.mem().read_u32(Ptr{a[0]});  // user-mode touch
      auto it = s.k.critsecs().find({s.p.pid(), a[0]});
      if (it != s.k.critsecs().end()) {
        for (auto& tok : it->second.waiters) {
          sim::wake(simu, tok, sim::WakeReason::kAbandoned);
        }
        s.k.critsecs().erase(it);
      }
      return 0;
    }
    case Fn::LeaveCriticalSection: {
      s.mem().read_u32(Ptr{a[0]});  // user-mode touch
      auto it = s.k.critsecs().find({s.p.pid(), a[0]});
      if (it == s.k.critsecs().end()) return 0;  // undefined on NT; benign here
      CritSec& cs = it->second;
      if (cs.owner != s.c.tid || cs.recursion == 0) return 0;  // unbalanced leave
      if (--cs.recursion == 0) {
        cs.owner = 0;
        while (!cs.waiters.empty()) {
          sim::WakePtr tok = std::move(cs.waiters.front());
          cs.waiters.erase(cs.waiters.begin());
          if (tok->fired || tok->dead) continue;
          sim::wake(simu, tok, sim::WakeReason::kSignaled);
          break;
        }
      }
      return 0;
    }
    case Fn::InterlockedIncrement: {
      // Atomic read-modify-write through the pointer, in user mode: corrupted
      // pointers crash.
      const Word v = s.mem().read_u32(Ptr{a[0]}) + 1;
      s.mem().write_u32(Ptr{a[0]}, v);
      return v;
    }
    case Fn::InterlockedDecrement: {
      const Word v = s.mem().read_u32(Ptr{a[0]}) - 1;
      s.mem().write_u32(Ptr{a[0]}, v);
      return v;
    }
    case Fn::InterlockedExchange: {
      const Word old = s.mem().read_u32(Ptr{a[0]});
      s.mem().write_u32(Ptr{a[0]}, a[1]);
      return old;
    }
    default:
      throw std::logic_error("sync_sync: unrouted function");
  }
}

}  // namespace dts::nt::k32
