// Simulated NT processes and threads.
//
// Every simulated thread is a C++20 coroutine (sim::Task). Blocking syscalls
// suspend it; the Machine's teardown path can kill a whole process — marking
// outstanding waits dead and destroying the coroutine frames, which runs the
// destructors of all locals (RAII handles sockets, etc.).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ntsim/handle_table.h"
#include "ntsim/memory.h"
#include "ntsim/object.h"
#include "ntsim/types.h"
#include "sim/task.h"

namespace dts::nt {

class Machine;
class Process;
class Thread;

/// Execution context threaded through all simulated user code and syscalls:
/// which machine, which process, which thread.
struct Ctx {
  Machine* machine = nullptr;
  Process* process = nullptr;
  Tid tid = 0;

  Machine& m() const { return *machine; }
  Process& proc() const { return *process; }
  Thread& thread() const;
};

/// A simulated thread routine: receives the execution context and the
/// CreateThread lpParameter word.
using ThreadRoutine = std::function<sim::Task(Ctx, Word)>;

class Thread {
 public:
  Thread(Pid pid, Tid tid, sim::Simulation& sim)
      : tid_(tid), object_(std::make_shared<ThreadObject>(sim, pid, tid)) {}

  Tid tid() const { return tid_; }
  const std::shared_ptr<ThreadObject>& object() const { return object_; }

  sim::Task& task() { return task_; }
  void set_task(sim::Task t) { task_ = std::move(t); }

  Dword last_error = 0;
  std::map<Word, Word> tls;  // TLS slot -> value

  /// The token of the blocking wait this thread is currently suspended on,
  /// if any. Process teardown marks it dead so queued wakes become no-ops.
  sim::WakePtr current_wait;

  /// Keeps the callable whose coroutine this thread runs alive: a coroutine
  /// lambda references its closure object, so the closure must outlive the
  /// frame. Declared before task_ so the frame is destroyed first.
  std::function<sim::Task(Ctx)> body_factory;

 private:
  Tid tid_;
  std::shared_ptr<ThreadObject> object_;
  sim::Task task_;
};

class Process {
 public:
  enum class State { kRunning, kExiting, kExited };

  Process(Machine& machine, Pid pid, std::string image, std::string command_line,
          Pid parent_pid);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  Pid pid() const { return pid_; }
  Pid parent_pid() const { return parent_pid_; }
  const std::string& image() const { return image_; }
  const std::string& command_line() const { return command_line_; }
  Machine& machine() const { return *machine_; }

  State state() const { return state_; }
  void set_state(State s) { state_ = s; }

  VirtualMemory& mem() { return mem_; }
  const VirtualMemory& mem() const { return mem_; }
  HandleTable& handles() { return handles_; }
  const HandleTable& handles() const { return handles_; }
  const std::shared_ptr<ProcessObject>& object() const { return object_; }

  // --- environment ----------------------------------------------------------
  std::map<std::string, std::string>& env() { return env_; }

  // --- code addresses --------------------------------------------------------
  /// Registers a thread routine and returns its simulated code address; this
  /// is what app code passes as CreateThread's lpStartAddress. A corrupted
  /// address fails to resolve and the new thread faults immediately — NT's
  /// actual behaviour.
  Word register_routine(ThreadRoutine fn);
  const ThreadRoutine* find_routine(Word address) const;

  // --- threads ---------------------------------------------------------------
  /// Spawns a thread running `make_task(ctx)`. The callable is stored in the
  /// Thread so its closure outlives the coroutine frame (temporary coroutine
  /// lambdas are safe). Returns the new thread.
  Thread& spawn_thread(std::function<sim::Task(Ctx)> make_task);

  Thread* find_thread(Tid tid);
  std::size_t live_threads() const { return threads_.size(); }
  Tid main_tid() const { return main_tid_; }

  /// TLS slot allocation (process-wide; values are per-thread in Thread::tls).
  Word tls_alloc();
  bool tls_free(Word slot);
  bool tls_slot_valid(Word slot) const;

  // Exit bookkeeping (written by Machine teardown).
  Dword exit_code = 0;
  std::string exit_reason;

  /// Miscellaneous per-process user-mode state the KERNEL32 surface needs.
  struct UserState {
    std::string current_dir = "C:\\";
    Dword error_mode = 0;
    Word unhandled_filter = 0;
    Word default_heap = 0;                       // handle word, created lazily
    Word command_line_ptr = 0;                   // GetCommandLineA cache
    Word environment_block = 0;                  // GetEnvironmentStrings cache
    std::map<Dword, Word> std_handles;           // STD_*_HANDLE id -> handle word
    std::map<std::string, Word> modules;         // loaded module name -> base
    Word next_module_base = 0x10000000;
    /// Copy-in/copy-out views created by MapViewOfFile: view address ->
    /// backing mapping bytes.
    std::map<Word, std::shared_ptr<std::vector<std::byte>>> views;
  };
  UserState user;

  // Called by Machine teardown; destroys thread coroutines.
  void kill_all_threads();
  void reap_thread(Tid tid, Dword code);

 private:
  Machine* machine_;
  Pid pid_;
  Pid parent_pid_;
  std::string image_;
  std::string command_line_;
  State state_ = State::kRunning;

  VirtualMemory mem_;
  HandleTable handles_;
  std::shared_ptr<ProcessObject> object_;
  std::map<std::string, std::string> env_;

  std::map<Word, ThreadRoutine> routines_;
  Word next_code_addr_ = 0x01000000;

  std::map<Tid, std::unique_ptr<Thread>> threads_;
  Tid next_tid_;
  Tid main_tid_ = 0;

  std::map<Word, bool> tls_slots_;  // slot -> allocated
  Word next_tls_slot_ = 0;
};

// ---------------------------------------------------------------------------
// Blocking primitives. All blocking in the simulator funnels through these so
// that process teardown can cancel outstanding waits safely.
// ---------------------------------------------------------------------------

/// Creates a wake token registered as the current wait of `c`'s thread.
sim::WakePtr make_wait(const Ctx& c);

/// Suspends until the token fires or `timeout` elapses (if given).
sim::CoTask<sim::WakeReason> await_token(Ctx c, sim::WakePtr tok,
                                         std::optional<sim::Duration> timeout);

/// Suspends the calling thread for `d` of simulated time.
sim::CoTask<void> sleep_in_sim(Ctx c, sim::Duration d);

/// Waits on a kernel waitable object with NT semantics (acquisition side
/// effects, kWaitTimeout, kWaitAbandoned for abandoned mutexes).
sim::CoTask<Dword> wait_on_object(Ctx c, std::shared_ptr<KernelObject> obj,
                                  Dword timeout_ms);

}  // namespace dts::nt
