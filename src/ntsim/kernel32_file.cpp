// KERNEL32 file, directory and pipe functions (synchronous subset; ReadFile /
// WriteFile live in kernel32.cpp because they can block on pipes).
//
// Path strings are converted ANSI→Unicode in user mode on NT, so corrupted
// lpFileName pointers crash. Output-structure writes (WIN32_FIND_DATA,
// CreatePipe's handle pair, path buffers) also happen in user mode: more
// crash surface, exactly as DTS exploited.
#include "ntsim/filesystem.h"
#include "ntsim/kernel.h"
#include "ntsim/kernel32.h"

namespace dts::nt::k32 {

namespace {

constexpr Word kFindDataNameOffset = 44;   // WIN32_FIND_DATAA.cFileName
constexpr Word kFindDataSize = 44 + 260;   // struct prefix + MAX_PATH name

/// Resolves an open FileObject or fails with ERROR_INVALID_HANDLE.
FileObject* file_of(Sys& s, Word handle) {
  return dynamic_cast<FileObject*>(s.resolve(handle).get());
}

/// Canonical folded path of an open file (used as the filesystem key).
std::string key_of(const FileObject& f) {
  return Filesystem::fold(*Filesystem::normalize(f.path()));
}

/// Resolves a possibly-relative path against the process current directory.
std::string resolve_path(Sys& s, const std::string& raw) {
  if (raw.size() >= 2 && raw[1] == ':') return raw;
  std::string base = s.p.user.current_dir;
  if (!base.empty() && base.back() != '\\') base.push_back('\\');
  return base + raw;
}

/// Opens the client end of a named pipe ("\\\\.\\pipe\\..." namespace).
Word open_pipe_client(Sys& s, const std::string& raw) {
  const std::string folded = Filesystem::fold(raw);
  if (!s.k.pipe_name_exists(folded)) {
    return s.fail(Win32Error::kFileNotFound, kInvalidHandleValue);
  }
  auto server = s.k.find_listening_pipe(folded);
  if (server == nullptr) {
    // Instances exist but none is listening: ERROR_PIPE_BUSY, the classic
    // wait-with-WaitNamedPipe situation.
    return s.fail(Win32Error::kPipeBusy, kInvalidHandleValue);
  }
  auto client = std::make_shared<NamedPipeEndObject>(
      s.m.sim(), NamedPipeEndObject::Role::kClient, server->shared_outbound(),
      server->shared_inbound());
  NamedPipeEndObject::link(*server, *client);
  server->set_state(NamedPipeEndObject::State::kConnected);
  client->set_state(NamedPipeEndObject::State::kConnected);
  server->wake_all();  // a blocked ConnectNamedPipe completes
  return s.p.handles().insert(std::move(client)).value;
}

Word create_named_pipe(Sys& s, const CallRecord& r) {
  const std::string raw = s.mem().read_cstr(Ptr{r.args[0]});  // user-mode read
  const std::string folded = Filesystem::fold(raw);
  if (folded.rfind("\\\\.\\pipe\\", 0) != 0 || folded.size() <= 9) {
    return s.fail(Win32Error::kInvalidName, kInvalidHandleValue);
  }
  auto clamp = [](Word v) { return v == 0 ? 4096u : std::min(v, 1u << 20); };
  auto outbound = std::make_shared<PipeBuffer>();
  outbound->capacity = clamp(r.args[4]);  // nOutBufferSize
  auto inbound = std::make_shared<PipeBuffer>();
  inbound->capacity = clamp(r.args[5]);  // nInBufferSize
  auto server = std::make_shared<NamedPipeEndObject>(
      s.m.sim(), NamedPipeEndObject::Role::kServer, inbound, outbound);
  server->set_name(raw);
  s.k.register_pipe_instance(folded, server);
  return s.p.handles().insert(std::move(server)).value;
}

Word create_file_a(Sys& s, const CallRecord& r) {
  const std::string raw = s.mem().read_cstr(Ptr{r.args[0]});  // user-mode read
  if (Filesystem::fold(raw).rfind("\\\\.\\pipe\\", 0) == 0) {
    return open_pipe_client(s, raw);
  }
  const Word access = r.args[1];
  const Word disposition = r.args[4];
  std::string canonical;
  bool created = false;
  const Win32Error e =
      s.m.fs().open(resolve_path(s, raw), access, disposition, &canonical, &created);
  if (e != Win32Error::kSuccess) return s.fail(e, kInvalidHandleValue);
  if ((disposition == kOpenAlways || disposition == kCreateAlways) && !created) {
    s.thread().last_error = to_dword(Win32Error::kAlreadyExists);
  } else {
    s.thread().last_error = to_dword(Win32Error::kSuccess);
  }
  auto obj = std::make_shared<FileObject>(s.m.sim(), s.m.fs(), canonical, access);
  return s.p.handles().insert(std::move(obj)).value;
}

Word write_find_data(Sys& s, Ptr out, const Filesystem& fs, const std::string& dir,
                     const std::string& name) {
  // WIN32_FIND_DATAA is written in user mode: bad pointers crash.
  std::vector<std::byte> zeros(kFindDataSize, std::byte{0});
  s.mem().write(out, zeros);
  const std::string full = dir + "\\" + name;
  s.mem().write_u32(out, fs.attributes(full));
  if (auto size = fs.size(full)) {
    s.mem().write_u32(out.offset(32), *size);  // nFileSizeLow
  }
  s.mem().write_cstr(out.offset(kFindDataNameOffset), name.substr(0, 259));
  return 1;
}

Word find_first_file(Sys& s, const CallRecord& r) {
  const std::string raw = s.mem().read_cstr(Ptr{r.args[0]});
  const std::string full = resolve_path(s, raw);
  // Split into directory and pattern.
  const auto pos = full.find_last_of("\\/");
  if (pos == std::string::npos) return s.fail(Win32Error::kInvalidName, kInvalidHandleValue);
  const std::string dir = full.substr(0, pos);
  const std::string pattern = full.substr(pos + 1);
  auto entries = s.m.fs().list(dir, pattern);
  if (entries.empty()) return s.fail(Win32Error::kFileNotFound, kInvalidHandleValue);

  auto search = std::make_shared<FindSearchObject>(s.m.sim(), std::move(entries));
  search->set_name(dir);
  const std::string* first = search->next();
  write_find_data(s, Ptr{r.args[1]}, s.m.fs(), dir, *first);
  return s.p.handles().insert(std::move(search)).value;
}

Word get_full_path_name(Sys& s, const CallRecord& r) {
  const std::string raw = s.mem().read_cstr(Ptr{r.args[0]});
  auto norm = Filesystem::normalize(resolve_path(s, raw));
  if (!norm) return s.fail(Win32Error::kInvalidName);
  const Word needed = static_cast<Word>(norm->size()) + 1;
  if (r.args[1] < needed) return needed;  // required size, including NUL
  s.mem().write_cstr(Ptr{r.args[2]}, *norm);  // user-mode write
  if (r.args[3] != 0) {
    const auto pos = norm->find_last_of('\\');
    const Word part = pos == std::string::npos ? 0 : r.args[2] + static_cast<Word>(pos) + 1;
    s.mem().write_u32(Ptr{r.args[3]}, part);
  }
  return needed - 1;
}

Word create_pipe(Sys& s, const CallRecord& r) {
  auto buf = std::make_shared<PipeBuffer>();
  if (r.args[3] != 0) buf->capacity = r.args[3];
  auto read_end = std::make_shared<PipeReadObject>(s.m.sim(), buf);
  auto write_end = std::make_shared<PipeWriteObject>(s.m.sim(), buf);
  const Handle hr = s.p.handles().insert(std::move(read_end));
  const Handle hw = s.p.handles().insert(std::move(write_end));
  // Both output handles are written in user mode: bad pointers crash after
  // the pipe exists — NT leaked the handles the same way.
  s.mem().write_u32(Ptr{r.args[0]}, hr.value);
  s.mem().write_u32(Ptr{r.args[1]}, hw.value);
  return 1;
}

Word peek_named_pipe(Sys& s, const CallRecord& r) {
  auto* pr = dynamic_cast<PipeReadObject*>(s.resolve(r.args[0]).get());
  if (pr == nullptr) return s.fail(Win32Error::kInvalidHandle);
  PipeBuffer& buf = pr->buffer();
  const Word avail = static_cast<Word>(buf.data.size());
  try {
    if (r.args[1] != 0 && r.args[2] != 0) {
      const Word n = std::min<Word>(r.args[2], avail);
      std::string peeked;
      peeked.reserve(n);
      for (Word i = 0; i < n; ++i) peeked.push_back(static_cast<char>(buf.data[i]));
      if (n > 0) s.mem().write_bytes(Ptr{r.args[1]}, peeked);
      if (r.args[3] != 0) s.mem().write_u32(Ptr{r.args[3]}, n);
    }
    if (r.args[4] != 0) s.mem().write_u32(Ptr{r.args[4]}, avail);
    if (r.args[5] != 0) s.mem().write_u32(Ptr{r.args[5]}, 0);
  } catch (const AccessViolation&) {
    return s.fail(Win32Error::kNoAccess);  // pipe peeks are kernel-probed
  }
  return 1;
}

}  // namespace

Word sync_file(Sys& s, const CallRecord& r) {
  const auto& a = r.args;
  switch (r.fn) {
    case Fn::CreateFileA:
      return create_file_a(s, r);
    case Fn::SetFilePointer: {
      FileObject* f = file_of(s, a[0]);
      if (f == nullptr) return s.fail(Win32Error::kInvalidHandle, kInvalidSetFilePointer);
      if (a[2] != 0) (void)s.mem().read_u32(Ptr{a[2]});  // user-mode high-part read
      const auto distance = static_cast<std::int32_t>(a[1]);
      std::int64_t base = 0;
      const auto size = s.m.fs().size(f->path()).value_or(0);
      switch (a[3]) {
        case kFileBegin: base = 0; break;
        case kFileCurrent: base = f->offset(); break;
        case kFileEnd: base = size; break;
        default: return s.fail(Win32Error::kInvalidParameter, kInvalidSetFilePointer);
      }
      const std::int64_t target = base + distance;
      if (target < 0) return s.fail(Win32Error::kNegativeSeek, kInvalidSetFilePointer);
      f->set_offset(static_cast<Word>(target));
      return f->offset();
    }
    case Fn::GetFileSize: {
      FileObject* f = file_of(s, a[0]);
      if (f == nullptr) return s.fail(Win32Error::kInvalidHandle, kInvalidHandleValue);
      if (a[1] != 0) s.mem().write_u32(Ptr{a[1]}, 0);  // user-mode write of high part
      return s.m.fs().size(f->path()).value_or(0);
    }
    case Fn::GetFileType: {
      auto obj = s.resolve(a[0]);
      if (obj == nullptr) return s.fail(Win32Error::kInvalidHandle);
      switch (obj->type()) {
        case ObjectType::kFile: return 1;       // FILE_TYPE_DISK
        case ObjectType::kPipeRead:
        case ObjectType::kPipeWrite: return 3;  // FILE_TYPE_PIPE
        default: return s.fail(Win32Error::kInvalidHandle);
      }
    }
    case Fn::SetEndOfFile: {
      FileObject* f = file_of(s, a[0]);
      if (f == nullptr) return s.fail(Win32Error::kInvalidHandle);
      const Win32Error e = s.m.fs().truncate(key_of(*f), f->offset());
      return e == Win32Error::kSuccess ? 1 : s.fail(e);
    }
    case Fn::FlushFileBuffers: {
      if (s.resolve(a[0]) == nullptr) return s.fail(Win32Error::kInvalidHandle);
      return 1;
    }
    case Fn::DeleteFileA: {
      const std::string raw = s.mem().read_cstr(Ptr{a[0]});
      const Win32Error e = s.m.fs().remove(resolve_path(s, raw));
      return e == Win32Error::kSuccess ? 1 : s.fail(e);
    }
    case Fn::MoveFileA: {
      const std::string from = s.mem().read_cstr(Ptr{a[0]});
      const std::string to = s.mem().read_cstr(Ptr{a[1]});
      const Win32Error e = s.m.fs().move(resolve_path(s, from), resolve_path(s, to));
      return e == Win32Error::kSuccess ? 1 : s.fail(e);
    }
    case Fn::CopyFileA: {
      const std::string from = s.mem().read_cstr(Ptr{a[0]});
      const std::string to = s.mem().read_cstr(Ptr{a[1]});
      const Win32Error e =
          s.m.fs().copy(resolve_path(s, from), resolve_path(s, to), a[2] != 0);
      return e == Win32Error::kSuccess ? 1 : s.fail(e);
    }
    case Fn::CreateDirectoryA: {
      const std::string raw = s.mem().read_cstr(Ptr{a[0]});
      const Win32Error e = s.m.fs().mkdir(resolve_path(s, raw));
      return e == Win32Error::kSuccess ? 1 : s.fail(e);
    }
    case Fn::RemoveDirectoryA: {
      const std::string raw = s.mem().read_cstr(Ptr{a[0]});
      const Win32Error e = s.m.fs().rmdir(resolve_path(s, raw));
      return e == Win32Error::kSuccess ? 1 : s.fail(e);
    }
    case Fn::GetFileAttributesA: {
      const std::string raw = s.mem().read_cstr(Ptr{a[0]});
      const Dword attrs = s.m.fs().attributes(resolve_path(s, raw));
      if (attrs == kInvalidFileAttributes) {
        return s.fail(Win32Error::kFileNotFound, kInvalidFileAttributes);
      }
      return attrs;
    }
    case Fn::SetFileAttributesA: {
      const std::string raw = s.mem().read_cstr(Ptr{a[0]});
      if (!s.m.fs().exists(resolve_path(s, raw))) return s.fail(Win32Error::kFileNotFound);
      return 1;  // attribute bits beyond existence are not modelled
    }
    case Fn::FindFirstFileA:
      return find_first_file(s, r);
    case Fn::FindNextFileA: {
      auto* search = dynamic_cast<FindSearchObject*>(s.resolve(a[0]).get());
      if (search == nullptr) return s.fail(Win32Error::kInvalidHandle);
      const std::string* name = search->next();
      if (name == nullptr) return s.fail(Win32Error::kNoMoreFiles);
      return write_find_data(s, Ptr{a[1]}, s.m.fs(), search->name(), *name);
    }
    case Fn::FindClose: {
      if (dynamic_cast<FindSearchObject*>(s.resolve(a[0]).get()) == nullptr) {
        return s.fail(Win32Error::kInvalidHandle);
      }
      s.p.handles().close(Handle{a[0]});
      return 1;
    }
    case Fn::GetFullPathNameA:
      return get_full_path_name(s, r);
    case Fn::GetTempPathA: {
      const std::string tmp = "C:\\TEMP\\";
      if (a[0] < tmp.size() + 1) return static_cast<Word>(tmp.size()) + 1;
      s.mem().write_cstr(Ptr{a[1]}, tmp);  // user-mode write
      return static_cast<Word>(tmp.size());
    }
    case Fn::GetTempFileNameA: {
      const std::string dir = s.mem().read_cstr(Ptr{a[0]});
      const std::string prefix = s.mem().read_cstr(Ptr{a[1]});
      Word unique = a[2];
      if (unique == 0) {
        // This draw's value escapes into machine state (the generated file
        // name), so a run that skips the prefix cannot reproduce it from the
        // RNG cursor alone — flag it so snapshot execution falls back.
        s.m.sim().note_semantic_rng_draw();
        unique = static_cast<Word>(s.m.sim().rng().uniform(1, 0xFFFF));
      }
      char name[64];
      std::snprintf(name, sizeof name, "%s%04X.TMP", prefix.substr(0, 3).c_str(),
                    unique & 0xFFFF);
      std::string path = dir;
      if (!path.empty() && path.back() != '\\') path.push_back('\\');
      path += name;
      std::string canonical;
      const Win32Error e = s.m.fs().open(resolve_path(s, path), kGenericWrite, kOpenAlways,
                                         &canonical, nullptr);
      if (e != Win32Error::kSuccess) return s.fail(e);
      s.mem().write_cstr(Ptr{a[3]}, path);  // user-mode write
      return unique & 0xFFFF;
    }
    case Fn::GetCurrentDirectoryA: {
      const std::string& dir = s.p.user.current_dir;
      if (a[0] < dir.size() + 1) return static_cast<Word>(dir.size()) + 1;
      s.mem().write_cstr(Ptr{a[1]}, dir);
      return static_cast<Word>(dir.size());
    }
    case Fn::SetCurrentDirectoryA: {
      const std::string raw = s.mem().read_cstr(Ptr{a[0]});
      const std::string full = resolve_path(s, raw);
      if (!s.m.fs().is_directory(full)) return s.fail(Win32Error::kPathNotFound);
      s.p.user.current_dir = *Filesystem::normalize(full);
      return 1;
    }
    case Fn::GetDiskFreeSpaceA: {
      if (a[0] != 0) (void)s.mem().read_cstr(Ptr{a[0]});
      // All four outputs are written in user mode.
      if (a[1] != 0) s.mem().write_u32(Ptr{a[1]}, 8);       // sectors/cluster
      if (a[2] != 0) s.mem().write_u32(Ptr{a[2]}, 512);     // bytes/sector
      if (a[3] != 0) s.mem().write_u32(Ptr{a[3]}, 500000);  // free clusters
      if (a[4] != 0) s.mem().write_u32(Ptr{a[4]}, 1000000); // total clusters
      return 1;
    }
    case Fn::LockFile:
    case Fn::UnlockFile: {
      if (file_of(s, a[0]) == nullptr) return s.fail(Win32Error::kInvalidHandle);
      return 1;  // byte-range lock conflicts are not modelled
    }
    case Fn::CreatePipe:
      return create_pipe(s, r);
    case Fn::CreateNamedPipeA:
      return create_named_pipe(s, r);
    case Fn::DisconnectNamedPipe: {
      auto end = std::dynamic_pointer_cast<NamedPipeEndObject>(s.resolve(a[0]));
      if (end == nullptr || end->role() != NamedPipeEndObject::Role::kServer) {
        return s.fail(Win32Error::kInvalidHandle);
      }
      if (NamedPipeEndObject* peer = end->peer()) {
        // The client end observes a broken pipe.
        peer->inbound().write_closed = true;
        peer->outbound().read_closed = true;
        NamedPipeEndObject::unlink(*end);
        peer->wake_all();
      }
      end->set_state(NamedPipeEndObject::State::kDisconnected);
      return 1;
    }
    case Fn::PeekNamedPipe:
      return peek_named_pipe(s, r);
    case Fn::MoveFileExA: {
      const std::string from = s.mem().read_cstr(Ptr{a[0]});
      const std::string to = s.mem().read_cstr(Ptr{a[1]});
      constexpr Word kMovefileReplaceExisting = 1;
      if ((a[2] & kMovefileReplaceExisting) != 0) {
        (void)s.m.fs().remove(resolve_path(s, to));
      }
      const Win32Error e = s.m.fs().move(resolve_path(s, from), resolve_path(s, to));
      return e == Win32Error::kSuccess ? 1 : s.fail(e);
    }
    case Fn::GetDriveTypeA: {
      const std::string raw = s.mem().read_cstr(Ptr{a[0]});
      auto norm = Filesystem::normalize(raw);
      if (norm && Filesystem::fold(*norm) == "c:") return 3;  // DRIVE_FIXED
      return 1;  // DRIVE_NO_ROOT_DIR
    }
    case Fn::GetVolumeInformationA: {
      const std::string raw = s.mem().read_cstr(Ptr{a[0]});
      auto norm = Filesystem::normalize(raw);
      if (!norm || Filesystem::fold(*norm) != "c:") return s.fail(Win32Error::kPathNotFound);
      // All outputs written in user mode: corrupted pointers crash.
      if (a[1] != 0 && a[2] > 0) {
        const std::string label = "SYSTEM";
        s.mem().write_cstr(Ptr{a[1]}, label.substr(0, a[2] - 1));
      }
      if (a[3] != 0) s.mem().write_u32(Ptr{a[3]}, 0x19990501);  // serial number
      if (a[4] != 0) s.mem().write_u32(Ptr{a[4]}, 255);         // max component length
      if (a[5] != 0) s.mem().write_u32(Ptr{a[5]}, 0x6);         // FS flags
      if (a[6] != 0 && a[7] > 0) {
        const std::string fs_name = "NTFS";
        s.mem().write_cstr(Ptr{a[6]}, fs_name.substr(0, a[7] - 1));
      }
      return 1;
    }
    case Fn::GetFileTime: {
      if (file_of(s, a[0]) == nullptr) return s.fail(Win32Error::kInvalidHandle);
      // FILETIME outputs are kernel-probed: error returns, not crashes.
      const auto t = static_cast<std::uint64_t>(s.m.sim().now().count_micros()) * 10;
      try {
        for (int i = 1; i <= 3; ++i) {
          if (a[static_cast<std::size_t>(i)] == 0) continue;
          s.mem().write_u32(Ptr{a[static_cast<std::size_t>(i)]},
                            static_cast<Word>(t & 0xFFFFFFFF));
          s.mem().write_u32(Ptr{a[static_cast<std::size_t>(i)]}.offset(4),
                            static_cast<Word>(t >> 32));
        }
      } catch (const AccessViolation&) {
        return s.fail(Win32Error::kNoAccess);
      }
      return 1;
    }
    case Fn::SetFileTime: {
      if (file_of(s, a[0]) == nullptr) return s.fail(Win32Error::kInvalidHandle);
      try {
        for (int i = 1; i <= 3; ++i) {
          if (a[static_cast<std::size_t>(i)] != 0) {
            (void)s.mem().read_u32(Ptr{a[static_cast<std::size_t>(i)]});
          }
        }
      } catch (const AccessViolation&) {
        return s.fail(Win32Error::kNoAccess);
      }
      return 1;  // timestamps beyond existence are not modelled
    }
    case Fn::GetShortPathNameA: {
      const std::string raw = s.mem().read_cstr(Ptr{a[0]});
      if (a[2] < raw.size() + 1) return static_cast<Word>(raw.size()) + 1;
      s.mem().write_cstr(Ptr{a[1]}, raw);  // names are already "short" here
      return static_cast<Word>(raw.size());
    }
    case Fn::SearchPathA: {
      if (a[0] != 0) (void)s.mem().read_cstr(Ptr{a[0]});
      const std::string name = s.mem().read_cstr(Ptr{a[1]});
      std::string ext;
      if (a[2] != 0) ext = s.mem().read_cstr(Ptr{a[2]});
      const std::string candidates[] = {
          resolve_path(s, name + ext),
          "C:\\WINNT\\system32\\" + name + ext,
      };
      for (const auto& cand : candidates) {
        if (s.m.fs().is_file(cand)) {
          const std::string norm = *Filesystem::normalize(cand);
          if (a[3] < norm.size() + 1) return static_cast<Word>(norm.size()) + 1;
          s.mem().write_cstr(Ptr{a[4]}, norm);
          if (a[5] != 0) {
            const auto pos = norm.find_last_of('\\');
            s.mem().write_u32(Ptr{a[5]}, a[4] + static_cast<Word>(pos) + 1);
          }
          return static_cast<Word>(norm.size());
        }
      }
      return s.fail(Win32Error::kFileNotFound);
    }
    default:
      throw std::logic_error("sync_file: unrouted function");
  }
}

}  // namespace dts::nt::k32
