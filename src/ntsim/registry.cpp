#include "ntsim/registry.h"

#include <algorithm>
#include <cctype>

namespace dts::nt {

std::string Registry::fold(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::optional<std::string> Registry::normalize_key(std::string_view path) {
  std::string out;
  out.reserve(path.size());
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '\\') ++i;
    if (i >= path.size()) break;
    std::size_t j = i;
    while (j < path.size() && path[j] != '\\') ++j;
    if (!out.empty()) out.push_back('\\');
    out.append(path.substr(i, j - i));
    i = j;
  }
  if (out.empty()) return std::nullopt;
  return out;
}

bool Registry::create_key(std::string_view key) {
  auto norm = normalize_key(key);
  if (!norm) return false;
  // Create every key along the path.
  std::size_t start = 0;
  while (start <= norm->size()) {
    auto pos = norm->find('\\', start);
    if (pos == std::string::npos) pos = norm->size();
    const std::string prefix = norm->substr(0, pos);
    const std::string folded = fold(prefix);
    if (!keys_.contains(folded)) keys_.emplace(folded, Key{prefix, {}, {}});
    if (pos == norm->size()) break;
    start = pos + 1;
  }
  return true;
}

bool Registry::set_string(std::string_view key, std::string_view name, std::string value) {
  if (!create_key(key)) return false;
  Key& k = keys_.at(fold(*normalize_key(key)));
  k.values[fold(name)] = Value{std::move(value)};
  k.value_display[fold(name)] = std::string(name);
  return true;
}

bool Registry::set_dword(std::string_view key, std::string_view name, Dword value) {
  if (!create_key(key)) return false;
  Key& k = keys_.at(fold(*normalize_key(key)));
  k.values[fold(name)] = Value{value};
  k.value_display[fold(name)] = std::string(name);
  return true;
}

bool Registry::key_exists(std::string_view key) const {
  auto norm = normalize_key(key);
  return norm && keys_.contains(fold(*norm));
}

std::optional<Registry::Value> Registry::get(std::string_view key,
                                             std::string_view name) const {
  auto norm = normalize_key(key);
  if (!norm) return std::nullopt;
  auto it = keys_.find(fold(*norm));
  if (it == keys_.end()) return std::nullopt;
  auto vit = it->second.values.find(fold(name));
  if (vit == it->second.values.end()) return std::nullopt;
  return vit->second;
}

std::optional<std::string> Registry::get_string(std::string_view key,
                                                std::string_view name) const {
  auto v = get(key, name);
  if (!v) return std::nullopt;
  if (const auto* s = std::get_if<std::string>(&*v)) return *s;
  return std::nullopt;
}

std::optional<Dword> Registry::get_dword(std::string_view key, std::string_view name) const {
  auto v = get(key, name);
  if (!v) return std::nullopt;
  if (const auto* d = std::get_if<Dword>(&*v)) return *d;
  return std::nullopt;
}

std::vector<std::string> Registry::subkeys(std::string_view key) const {
  std::vector<std::string> out;
  auto norm = normalize_key(key);
  if (!norm) return out;
  const std::string prefix = fold(*norm) + "\\";
  for (const auto& [folded, k] : keys_) {
    if (folded.size() <= prefix.size() || folded.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::string_view rest{folded.data() + prefix.size(), folded.size() - prefix.size()};
    if (rest.find('\\') != std::string_view::npos) continue;  // not a direct child
    out.emplace_back(k.display.substr(k.display.find_last_of('\\') + 1));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> Registry::value_names(std::string_view key) const {
  std::vector<std::string> out;
  auto norm = normalize_key(key);
  if (!norm) return out;
  auto it = keys_.find(fold(*norm));
  if (it == keys_.end()) return out;
  for (const auto& [folded, display] : it->second.value_display) out.push_back(display);
  std::sort(out.begin(), out.end());
  return out;
}

bool Registry::delete_value(std::string_view key, std::string_view name) {
  auto norm = normalize_key(key);
  if (!norm) return false;
  auto it = keys_.find(fold(*norm));
  if (it == keys_.end()) return false;
  it->second.value_display.erase(fold(name));
  return it->second.values.erase(fold(name)) > 0;
}

bool Registry::delete_key(std::string_view key) {
  auto norm = normalize_key(key);
  if (!norm) return false;
  const std::string folded = fold(*norm);
  if (!keys_.contains(folded)) return false;
  const std::string prefix = folded + "\\";
  std::erase_if(keys_, [&](const auto& entry) {
    return entry.first == folded || entry.first.rfind(prefix, 0) == 0;
  });
  return true;
}

}  // namespace dts::nt
