// KERNEL32 memory management functions.
//
// Heap handles on NT are raw pointers dereferenced in user mode, so a
// corrupted hHeap crashes (HeapAlloc/HeapFree were among DTS's most lethal
// injection points). Allocation sizes corrupted to 0xFFFFFFFF fail cleanly
// with NULL — which unprepared callers then dereference.
#include <algorithm>
#include <span>

#include "ntsim/kernel.h"
#include "ntsim/kernel32.h"

namespace dts::nt::k32 {

namespace {

/// Resolves a heap handle. NT dereferences heap handles in user mode, so an
/// unresolvable handle is an access violation (crash), not an error return.
HeapObject* heap_of(Sys& s, Word handle) {
  auto* h = dynamic_cast<HeapObject*>(s.resolve(handle).get());
  if (h == nullptr) throw AccessViolation{handle, /*is_write=*/false};
  return h;
}

/// Allocates from the process address space, returning 0 on exhaustion
/// (covers sizes corrupted to 0xFFFFFFFF).
Word try_alloc(Sys& s, Word bytes) {
  try {
    return s.mem().alloc(bytes).addr;
  } catch (const std::bad_alloc&) {
    return 0;
  }
}

Word default_heap(Sys& s) {
  if (s.p.user.default_heap == 0) {
    auto heap = std::make_shared<HeapObject>(s.m.sim(), 0);
    s.p.user.default_heap = s.p.handles().insert(std::move(heap)).value;
  }
  return s.p.user.default_heap;
}

}  // namespace

Word sync_mem(Sys& s, const CallRecord& r) {
  const auto& a = r.args;
  switch (r.fn) {
    case Fn::HeapCreate: {
      auto heap = std::make_shared<HeapObject>(s.m.sim(), a[2]);
      return s.p.handles().insert(std::move(heap)).value;
    }
    case Fn::HeapDestroy: {
      HeapObject* h = heap_of(s, a[0]);
      for (const Word base : h->blocks()) s.mem().free(Ptr{base});
      h->blocks().clear();
      s.p.handles().close(Handle{a[0]});
      return 1;
    }
    case Fn::HeapAlloc: {
      HeapObject* h = heap_of(s, a[0]);
      const Word addr = try_alloc(s, a[2]);
      if (addr == 0) return 0;  // HeapAlloc reports failure via NULL, no last-error
      h->blocks().push_back(addr);
      h->bytes_allocated += a[2];
      return addr;
    }
    case Fn::HeapFree: {
      HeapObject* h = heap_of(s, a[0]);
      auto& blocks = h->blocks();
      auto it = std::find(blocks.begin(), blocks.end(), a[2]);
      if (it == blocks.end() || !s.mem().free(Ptr{a[2]})) {
        return s.fail(Win32Error::kInvalidParameter);
      }
      blocks.erase(it);
      return 1;
    }
    case Fn::HeapReAlloc: {
      HeapObject* h = heap_of(s, a[0]);
      const Word old_addr = a[2];
      const Word old_size = s.mem().block_size(Ptr{old_addr});
      if (old_size == 0) return s.fail(Win32Error::kInvalidParameter);
      const Word new_addr = try_alloc(s, a[3]);
      if (new_addr == 0) return 0;
      const Word copy = std::min(old_size, a[3]);
      if (copy > 0) {
        auto data = s.mem().read(Ptr{old_addr}, copy);
        s.mem().write(Ptr{new_addr}, data);
      }
      s.mem().free(Ptr{old_addr});
      auto& blocks = h->blocks();
      auto it = std::find(blocks.begin(), blocks.end(), old_addr);
      if (it != blocks.end()) *it = new_addr;
      else blocks.push_back(new_addr);
      return new_addr;
    }
    case Fn::HeapSize: {
      heap_of(s, a[0]);
      const Word size = s.mem().block_size(Ptr{a[2]});
      return size == 0 ? kInvalidHandleValue : size;  // (SIZE_T)-1 on failure
    }
    case Fn::GetProcessHeap:
      return default_heap(s);
    case Fn::VirtualAlloc: {
      // lpAddress-directed placement is not modelled; reservations commit.
      const Word addr = try_alloc(s, a[1]);
      if (addr == 0) return s.fail(Win32Error::kNotEnoughMemory);
      return addr;
    }
    case Fn::VirtualFree: {
      if (!s.mem().free(Ptr{a[0]})) return s.fail(Win32Error::kInvalidAddress);
      return 1;
    }
    case Fn::GlobalAlloc:
    case Fn::LocalAlloc: {
      // GMEM_FIXED semantics: the handle is the pointer.
      const Word addr = try_alloc(s, a[1]);
      if (addr == 0) return s.fail(Win32Error::kNotEnoughMemory);
      return addr;
    }
    case Fn::GlobalFree:
    case Fn::LocalFree: {
      if (a[0] == 0) return 0;
      if (!s.mem().free(Ptr{a[0]})) return s.fail(Win32Error::kInvalidHandle, a[0]);
      return 0;  // NULL on success
    }
    case Fn::GlobalLock: {
      if (s.mem().block_size(Ptr{a[0]}) == 0) return s.fail(Win32Error::kInvalidHandle);
      return a[0];
    }
    case Fn::GlobalUnlock:
      return 1;
    case Fn::CreateFileMappingA: {
      const Word size = a[4];  // dwMaximumSizeLow
      if (size == 0 && a[3] == 0) return s.fail(Win32Error::kInvalidParameter);
      // The paper's testbed had 48 MB of RAM: outsized sections (e.g. a size
      // corrupted to 0xFFFFFFFF) fail cleanly.
      if (a[3] != 0 || size > (64u << 20)) return s.fail(Win32Error::kNotEnoughMemory);
      std::string name;
      if (a[5] != 0) name = s.mem().read_cstr(Ptr{a[5]});  // user-mode read
      if (!name.empty()) {
        if (auto existing = s.k.find_named(name)) {
          if (dynamic_cast<FileMappingObject*>(existing.get()) == nullptr) {
            return s.fail(Win32Error::kInvalidHandle);
          }
          s.thread().last_error = to_dword(Win32Error::kAlreadyExists);
          return s.p.handles().insert(std::move(existing)).value;
        }
      }
      auto mapping = std::make_shared<FileMappingObject>(s.m.sim(), size);
      if (!name.empty()) {
        mapping->set_name(name);
        s.k.publish_named(name, mapping);
      }
      return s.p.handles().insert(std::move(mapping)).value;
    }
    case Fn::MapViewOfFile: {
      auto* mapping = dynamic_cast<FileMappingObject*>(s.resolve(a[0]).get());
      if (mapping == nullptr) return s.fail(Win32Error::kInvalidHandle);
      Word bytes = a[4];
      if (bytes == 0) bytes = mapping->size();
      bytes = std::min(bytes, mapping->size());
      const Word addr = try_alloc(s, bytes);
      if (addr == 0) return s.fail(Win32Error::kNotEnoughMemory);
      // Copy-in snapshot; UnmapViewOfFile copies back (see DESIGN.md: views
      // are process-local in the simulator).
      auto backing = mapping->bytes();
      s.mem().write(Ptr{addr}, std::span{backing->data(), bytes});
      s.p.user.views[addr] = backing;
      return addr;
    }
    case Fn::UnmapViewOfFile: {
      auto it = s.p.user.views.find(a[0]);
      if (it == s.p.user.views.end()) return s.fail(Win32Error::kInvalidAddress);
      auto backing = it->second;
      const Word bytes = std::min(s.mem().block_size(Ptr{a[0]}),
                                  static_cast<Word>(backing->size()));
      if (bytes > 0) {
        auto data = s.mem().read(Ptr{a[0]}, bytes);
        std::copy(data.begin(), data.end(), backing->begin());
      }
      s.mem().free(Ptr{a[0]});
      s.p.user.views.erase(it);
      return 1;
    }
    case Fn::GlobalMemoryStatus: {
      // Writes a MEMORYSTATUS (32 bytes) in user mode: bad pointers crash.
      const Ptr out{a[0]};
      s.mem().write_u32(out, 32);                         // dwLength
      s.mem().write_u32(out.offset(4), 30);               // dwMemoryLoad (%)
      s.mem().write_u32(out.offset(8), 48u << 20);        // dwTotalPhys: 48 MB
      s.mem().write_u32(out.offset(12), 32u << 20);       // dwAvailPhys
      s.mem().write_u32(out.offset(16), 128u << 20);      // dwTotalPageFile
      s.mem().write_u32(out.offset(20), 100u << 20);      // dwAvailPageFile
      s.mem().write_u32(out.offset(24), 0x7FFE0000);      // dwTotalVirtual
      s.mem().write_u32(out.offset(28), 0x70000000);      // dwAvailVirtual
      return 0;  // void
    }
    case Fn::TlsAlloc:
      return s.p.tls_alloc();
    case Fn::TlsFree: {
      if (!s.p.tls_free(a[0])) return s.fail(Win32Error::kInvalidParameter);
      return 1;
    }
    case Fn::TlsGetValue: {
      if (!s.p.tls_slot_valid(a[0])) return s.fail(Win32Error::kInvalidParameter);
      s.thread().last_error = to_dword(Win32Error::kSuccess);
      auto& tls = s.thread().tls;
      auto it = tls.find(a[0]);
      return it == tls.end() ? 0 : it->second;
    }
    case Fn::TlsSetValue: {
      if (!s.p.tls_slot_valid(a[0])) return s.fail(Win32Error::kInvalidParameter);
      s.thread().tls[a[0]] = a[1];
      return 1;
    }
    default:
      throw std::logic_error("sync_mem: unrouted function");
  }
}

}  // namespace dts::nt::k32
