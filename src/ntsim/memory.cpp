#include "ntsim/memory.h"

#include <cstring>
#include <new>

namespace dts::nt {

namespace {
constexpr Word kGuardGap = 4096;  // unmapped bytes between blocks
}  // namespace

Ptr VirtualMemory::alloc(Word size) {
  if (size == 0) size = 1;
  // 64-bit arithmetic: a size corrupted to 0xFFFFFFFF must fail cleanly, not
  // wrap around.
  const std::uint64_t usable = (static_cast<std::uint64_t>(size) + 15) & ~std::uint64_t{15};
  if (next_addr_ >= kUserSpaceLimit ||
      static_cast<std::uint64_t>(kUserSpaceLimit - next_addr_) < usable + kGuardGap) {
    throw std::bad_alloc{};
  }
  const Word base = next_addr_;
  next_addr_ = base + static_cast<Word>(usable) + kGuardGap;
  Block b;
  b.size = size;
  b.bytes.assign(size, std::byte{0});
  blocks_.emplace(base, std::move(b));
  bytes_in_use_ += size;
  return Ptr{base};
}

bool VirtualMemory::free(Ptr p) {
  auto it = blocks_.find(p.addr);
  if (it == blocks_.end()) return false;
  bytes_in_use_ -= it->second.size;
  blocks_.erase(it);
  return true;
}

const VirtualMemory::Block* VirtualMemory::find(Word addr, Word size, Word* offset) const {
  if (addr == 0 || blocks_.empty()) return nullptr;
  auto it = blocks_.upper_bound(addr);
  if (it == blocks_.begin()) return nullptr;
  --it;
  const Word base = it->first;
  const Block& b = it->second;
  if (addr < base || addr - base > b.size) return nullptr;
  const Word off = addr - base;
  if (size > b.size - off) return nullptr;
  if (offset != nullptr) *offset = off;
  return &b;
}

bool VirtualMemory::valid(Ptr p, Word size) const {
  return find(p.addr, size, nullptr) != nullptr;
}

Word VirtualMemory::block_size(Ptr p) const {
  auto it = blocks_.find(p.addr);
  return it == blocks_.end() ? 0 : it->second.size;
}

void VirtualMemory::write(Ptr p, std::span<const std::byte> data) {
  Word off = 0;
  const Block* b = find(p.addr, static_cast<Word>(data.size()), &off);
  if (b == nullptr) throw AccessViolation{p.addr, /*is_write=*/true};
  std::memcpy(const_cast<std::byte*>(b->bytes.data()) + off, data.data(), data.size());
}

void VirtualMemory::read(Ptr p, std::span<std::byte> out) const {
  Word off = 0;
  const Block* b = find(p.addr, static_cast<Word>(out.size()), &off);
  if (b == nullptr) throw AccessViolation{p.addr, /*is_write=*/false};
  std::memcpy(out.data(), b->bytes.data() + off, out.size());
}

std::vector<std::byte> VirtualMemory::read(Ptr p, Word size) const {
  // Validate before allocating: a size corrupted to 0xFFFFFFFF must fault,
  // not allocate 4 GB of host memory first.
  if (!valid(p, size)) throw AccessViolation{p.addr, /*is_write=*/false};
  std::vector<std::byte> out(size);
  read(p, out);
  return out;
}

void VirtualMemory::write_u32(Ptr p, Word v) {
  std::byte raw[4];
  std::memcpy(raw, &v, 4);
  write(p, raw);
}

Word VirtualMemory::read_u32(Ptr p) const {
  std::byte raw[4];
  read(p, raw);
  Word v = 0;
  std::memcpy(&v, raw, 4);
  return v;
}

void VirtualMemory::write_bytes(Ptr p, std::string_view s) {
  write(p, std::as_bytes(std::span{s.data(), s.size()}));
}

std::string VirtualMemory::read_bytes(Ptr p, Word size) const {
  if (!valid(p, size)) throw AccessViolation{p.addr, /*is_write=*/false};
  std::string out(size, '\0');
  read(p, std::as_writable_bytes(std::span{out.data(), out.size()}));
  return out;
}

void VirtualMemory::write_cstr(Ptr p, std::string_view s) {
  write_bytes(p, s);
  std::byte nul{0};
  write(p.offset(static_cast<Word>(s.size())), std::span{&nul, 1});
}

std::string VirtualMemory::read_cstr(Ptr p, Word max_len) const {
  // Walk byte-by-byte within the containing block; running off the end of
  // the block before a NUL is an access violation, as on real hardware.
  std::string out;
  for (Word i = 0; i < max_len; ++i) {
    std::byte b;
    read(p.offset(i), std::span{&b, 1});
    if (b == std::byte{0}) return out;
    out.push_back(static_cast<char>(b));
  }
  return out;  // truncated at max_len
}

Ptr VirtualMemory::alloc_cstr(std::string_view s) {
  Ptr p = alloc(static_cast<Word>(s.size()) + 1);
  write_cstr(p, s);
  return p;
}

}  // namespace dts::nt
