#include "ntsim/memory.h"

#include <cstring>
#include <new>

namespace dts::nt {

namespace {
constexpr Word kGuardGap = 4096;  // unmapped bytes between blocks
}  // namespace

Ptr VirtualMemory::alloc(Word size) {
  if (size == 0) size = 1;
  // 64-bit arithmetic: a size corrupted to 0xFFFFFFFF must fail cleanly, not
  // wrap around.
  const std::uint64_t usable = (static_cast<std::uint64_t>(size) + 15) & ~std::uint64_t{15};
  if (next_addr_ >= kUserSpaceLimit ||
      static_cast<std::uint64_t>(kUserSpaceLimit - next_addr_) < usable + kGuardGap) {
    throw std::bad_alloc{};
  }
  const Word base = next_addr_;
  next_addr_ = base + static_cast<Word>(usable) + kGuardGap;
  Block b;
  b.size = size;
  b.bytes = std::make_shared<std::vector<std::byte>>(size, std::byte{0});
  blocks_.emplace(base, std::move(b));
  bytes_in_use_ += size;
  return Ptr{base};
}

std::vector<std::byte>& VirtualMemory::writable(const Block& b) {
  // `b` lives in blocks_ (find() returns owned elements); the map is not
  // resized here, so mutating the payload pointer through the const ref is
  // safe — the same const_cast the pre-COW code did on the byte vector.
  Block& block = const_cast<Block&>(b);
  if (block.bytes.use_count() > 1) {
    block.bytes = std::make_shared<std::vector<std::byte>>(*block.bytes);
    ++cow_copies_;
  }
  return *block.bytes;
}

bool VirtualMemory::free(Ptr p) {
  auto it = blocks_.find(p.addr);
  if (it == blocks_.end()) return false;
  bytes_in_use_ -= it->second.size;
  blocks_.erase(it);
  return true;
}

const VirtualMemory::Block* VirtualMemory::find(Word addr, Word size, Word* offset) const {
  if (addr == 0 || blocks_.empty()) return nullptr;
  auto it = blocks_.upper_bound(addr);
  if (it == blocks_.begin()) return nullptr;
  --it;
  const Word base = it->first;
  const Block& b = it->second;
  if (addr < base || addr - base > b.size) return nullptr;
  const Word off = addr - base;
  if (size > b.size - off) return nullptr;
  if (offset != nullptr) *offset = off;
  return &b;
}

bool VirtualMemory::valid(Ptr p, Word size) const {
  return find(p.addr, size, nullptr) != nullptr;
}

Word VirtualMemory::block_size(Ptr p) const {
  auto it = blocks_.find(p.addr);
  return it == blocks_.end() ? 0 : it->second.size;
}

void VirtualMemory::write(Ptr p, std::span<const std::byte> data) {
  Word off = 0;
  const Block* b = find(p.addr, static_cast<Word>(data.size()), &off);
  if (b == nullptr) throw AccessViolation{p.addr, /*is_write=*/true};
  std::memcpy(writable(*b).data() + off, data.data(), data.size());
}

void VirtualMemory::read(Ptr p, std::span<std::byte> out) const {
  Word off = 0;
  const Block* b = find(p.addr, static_cast<Word>(out.size()), &off);
  if (b == nullptr) throw AccessViolation{p.addr, /*is_write=*/false};
  std::memcpy(out.data(), b->bytes->data() + off, out.size());
}

std::vector<std::byte> VirtualMemory::read(Ptr p, Word size) const {
  // Validate before allocating: a size corrupted to 0xFFFFFFFF must fault,
  // not allocate 4 GB of host memory first.
  if (!valid(p, size)) throw AccessViolation{p.addr, /*is_write=*/false};
  std::vector<std::byte> out(size);
  read(p, out);
  return out;
}

void VirtualMemory::write_u32(Ptr p, Word v) {
  std::byte raw[4];
  std::memcpy(raw, &v, 4);
  write(p, raw);
}

Word VirtualMemory::read_u32(Ptr p) const {
  std::byte raw[4];
  read(p, raw);
  Word v = 0;
  std::memcpy(&v, raw, 4);
  return v;
}

void VirtualMemory::write_bytes(Ptr p, std::string_view s) {
  write(p, std::as_bytes(std::span{s.data(), s.size()}));
}

std::string VirtualMemory::read_bytes(Ptr p, Word size) const {
  if (!valid(p, size)) throw AccessViolation{p.addr, /*is_write=*/false};
  std::string out(size, '\0');
  read(p, std::as_writable_bytes(std::span{out.data(), out.size()}));
  return out;
}

void VirtualMemory::write_cstr(Ptr p, std::string_view s) {
  write_bytes(p, s);
  std::byte nul{0};
  write(p.offset(static_cast<Word>(s.size())), std::span{&nul, 1});
}

std::string VirtualMemory::read_cstr(Ptr p, Word max_len) const {
  // Walk byte-by-byte within the containing block; running off the end of
  // the block before a NUL is an access violation, as on real hardware.
  std::string out;
  for (Word i = 0; i < max_len; ++i) {
    std::byte b;
    read(p.offset(i), std::span{&b, 1});
    if (b == std::byte{0}) return out;
    out.push_back(static_cast<char>(b));
  }
  return out;  // truncated at max_len
}

Ptr VirtualMemory::alloc_cstr(std::string_view s) {
  Ptr p = alloc(static_cast<Word>(s.size()) + 1);
  write_cstr(p, s);
  return p;
}

bool operator==(const VirtualMemory::Snapshot& a, const VirtualMemory::Snapshot& b) {
  if (a.next_addr != b.next_addr || a.bytes_in_use != b.bytes_in_use ||
      a.blocks.size() != b.blocks.size()) {
    return false;
  }
  auto ia = a.blocks.begin();
  auto ib = b.blocks.begin();
  for (; ia != a.blocks.end(); ++ia, ++ib) {
    if (ia->first != ib->first || ia->second.size != ib->second.size) return false;
    if (ia->second.bytes != ib->second.bytes && *ia->second.bytes != *ib->second.bytes) {
      return false;
    }
  }
  return true;
}

VirtualMemory::Snapshot VirtualMemory::capture(CowStats* stats) const {
  if (stats != nullptr) {
    for (const auto& [base, b] : blocks_) {
      // use_count > 1 before this capture copies the map means an earlier
      // snapshot still shares the payload — the block stayed clean.
      if (b.bytes.use_count() > 1) {
        ++stats->shared_blocks;
        stats->shared_bytes += b.bytes->size();
      } else {
        ++stats->copied_blocks;
        stats->copied_bytes += b.bytes->size();
      }
    }
  }
  return Snapshot{blocks_, next_addr_, bytes_in_use_};
}

void VirtualMemory::restore(const Snapshot& s) {
  // Share the snapshot's payloads; the next write to any of them clones.
  blocks_ = s.blocks;
  next_addr_ = s.next_addr;
  bytes_in_use_ = s.bytes_in_use;
}

}  // namespace dts::nt
