// Simulated per-process virtual address space.
//
// Fault injection corrupts pointer arguments; whether that produces an error
// return or a crash must emerge mechanically. We therefore model a real
// (sparse) address space: allocations live at NT-like user-space addresses,
// and any access outside a live allocation throws AccessViolation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ntsim/types.h"

namespace dts::nt {

class VirtualMemory {
 public:
  /// NT 4.0 user space: allocations start above the 64 KB no-access region;
  /// everything at or above 0x80000000 is kernel space.
  static constexpr Word kBaseAddress = 0x00400000;
  static constexpr Word kUserSpaceLimit = 0x80000000;

  VirtualMemory() = default;
  VirtualMemory(const VirtualMemory&) = delete;
  VirtualMemory& operator=(const VirtualMemory&) = delete;

  /// Allocates `size` bytes (zero-initialized). Guard gaps separate blocks so
  /// single-block overruns and near-miss corrupted pointers fault rather than
  /// silently landing in a neighbour. Throws std::bad_alloc if the simulated
  /// address space is exhausted.
  Ptr alloc(Word size);

  /// Frees a block previously returned by alloc(). Freeing an invalid or
  /// already-freed pointer returns false (the caller decides whether that is
  /// an error return or heap corruption).
  bool free(Ptr p);

  /// True if [p, p+size) lies entirely within one live allocation.
  bool valid(Ptr p, Word size) const;

  /// Size of the live allocation starting exactly at `p`, or 0.
  Word block_size(Ptr p) const;

  // Raw access. All throw AccessViolation on invalid ranges.
  void write(Ptr p, std::span<const std::byte> data);
  void read(Ptr p, std::span<std::byte> out) const;
  std::vector<std::byte> read(Ptr p, Word size) const;

  // Typed helpers.
  void write_u32(Ptr p, Word v);
  Word read_u32(Ptr p) const;
  void write_bytes(Ptr p, std::string_view s);
  std::string read_bytes(Ptr p, Word size) const;

  /// Writes `s` plus a NUL terminator.
  void write_cstr(Ptr p, std::string_view s);

  /// Reads a NUL-terminated string of at most `max_len` bytes. Throws
  /// AccessViolation if the string runs off the end of a live block before a
  /// NUL is found (exactly how lstrlenA faults on a corrupted pointer).
  std::string read_cstr(Ptr p, Word max_len = 65536) const;

  /// Convenience: alloc + write_cstr.
  Ptr alloc_cstr(std::string_view s);

  std::size_t live_blocks() const { return blocks_.size(); }
  std::uint64_t bytes_in_use() const { return bytes_in_use_; }

  // --- snapshots (src/snap/) ------------------------------------------------
  // Block payloads are copy-on-write: a capture copies the block map but
  // structure-shares every payload vector with the live space; the first
  // write to a shared block clones it. Hundreds of snapshots of an idle
  // address space therefore cost one map copy each, not a deep copy.

  struct Block {
    Word size = 0;
    std::shared_ptr<std::vector<std::byte>> bytes;
  };

  struct Snapshot {
    std::map<Word, Block> blocks;  // payloads shared with the live space
    Word next_addr = kBaseAddress;
    std::uint64_t bytes_in_use = 0;

    /// Deep equality (payload contents, not pointer identity).
    friend bool operator==(const Snapshot& a, const Snapshot& b);
  };

  /// Captures the full address space. `stats`, when given, accumulates how
  /// many payloads were already structure-shared (a prior capture's pointer
  /// still intact) vs privately owned at capture time.
  Snapshot capture(CowStats* stats = nullptr) const;
  void restore(const Snapshot& s);

  /// Payload clones forced by writes to shared blocks since construction —
  /// the copy half of the pages-shared/pages-copied snapshot metrics.
  std::uint64_t cow_copies() const { return cow_copies_; }

 private:
  /// Returns the block containing [addr, addr+size), or nullptr.
  const Block* find(Word addr, Word size, Word* offset) const;

  /// The block's payload, cloned first if a snapshot still shares it.
  std::vector<std::byte>& writable(const Block& b);

  std::map<Word, Block> blocks_;  // keyed by base address
  Word next_addr_ = kBaseAddress;
  std::uint64_t bytes_in_use_ = 0;
  std::uint64_t cow_copies_ = 0;
};

}  // namespace dts::nt
