#include "ntsim/kernel.h"

#include "ntsim/kernel32.h"
#include "ntsim/scm.h"

namespace dts::nt {

Machine::Machine(sim::Simulation& sim, MachineConfig cfg) : sim_(&sim), cfg_(std::move(cfg)) {
  scm_ = std::make_unique<Scm>(*this);
  k32_ = std::make_unique<Kernel32>(*this);
  // Standard NT directory layout the servers expect.
  fs_.mkdirs("C:\\WINNT\\system32");
  fs_.mkdirs("C:\\TEMP");
}

Machine::~Machine() = default;

void Machine::register_program(std::string image, ProgramMain main_fn) {
  programs_[std::move(image)] = std::move(main_fn);
}

bool Machine::has_program(std::string_view image) const {
  return programs_.contains(std::string(image));
}

Pid Machine::start_process(const std::string& image, const std::string& command_line,
                           Pid parent_pid) {
  auto it = programs_.find(image);
  if (it == programs_.end()) return 0;

  const Pid pid = next_pid_;
  next_pid_ += 4;
  auto proc = std::make_unique<Process>(*this, pid, image, command_line, parent_pid);
  proc->env()["SYSTEMROOT"] = "C:\\WINNT";
  proc->env()["TEMP"] = "C:\\TEMP";
  proc->env()["COMPUTERNAME"] = cfg_.name;
  Process& ref = *proc;
  processes_.emplace(pid, std::move(proc));
  start_history_.push_back(ProcessStartRecord{pid, image, sim_->now()});

  // Standard handles: a closed stdin and console-sink stdout/stderr.
  auto stdin_buf = std::make_shared<PipeBuffer>();
  stdin_buf->write_closed = true;
  ref.user.std_handles[kStdInputHandle] =
      ref.handles().insert(std::make_shared<PipeReadObject>(*sim_, stdin_buf)).value;
  for (const Dword id : {kStdOutputHandle, kStdErrorHandle}) {
    auto buf = std::make_shared<PipeBuffer>();
    buf->capacity = 1u << 30;  // console sink: writes never block
    ref.user.std_handles[id] =
        ref.handles().insert(std::make_shared<PipeWriteObject>(*sim_, buf)).value;
  }

  ref.spawn_thread(it->second);
  return pid;
}

Process* Machine::find_process(Pid pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

const Process* Machine::find_process(Pid pid) const {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

Process* Machine::find_process_by_image(std::string_view image) {
  for (auto& [pid, proc] : processes_) {
    if (proc->image() == image) return proc.get();
  }
  return nullptr;
}

void Machine::request_process_exit(Pid pid, Dword code, std::string reason) {
  sim_->schedule(sim::Duration{}, [this, pid, code, reason = std::move(reason)] {
    teardown(pid, code, reason);
  });
}

void Machine::on_thread_complete(Pid pid, Tid tid, std::exception_ptr error) {
  // This runs at the completing coroutine's final suspend point; defer all
  // real work so no coroutine frame is destroyed while still on the stack.
  sim_->schedule(sim::Duration{}, [this, pid, tid, error] {
    Process* p = find_process(pid);
    if (p == nullptr || p->state() != Process::State::kRunning) return;
    if (error) {
      Dword code = 0xE0000001;  // generic unhandled exception
      std::string reason = "unhandled exception";
      try {
        std::rethrow_exception(error);
      } catch (const AccessViolation& av) {
        code = kExitCodeAccessViolation;
        reason = av.what();
      } catch (const RaisedException& re) {
        code = re.code();
        reason = re.what();
      } catch (const std::exception& e) {
        reason = std::string("unhandled exception: ") + e.what();
      } catch (...) {
      }
      teardown(pid, code, reason);
      return;
    }
    p->reap_thread(tid, 0);
    if (p->live_threads() == 0) {
      teardown(pid, p->exit_code, "all threads exited");
    }
  });
}

void Machine::teardown(Pid pid, Dword code, std::string reason) {
  Process* p = find_process(pid);
  if (p == nullptr || p->state() != Process::State::kRunning) return;
  p->set_state(Process::State::kExiting);
  p->exit_code = code;
  p->exit_reason = reason;

  // Abandon mutexes owned by any of this process's threads, so waiters in
  // other processes observe WAIT_ABANDONED rather than hanging forever.
  for (const auto& [value, obj] : p->handles()) {
    (void)value;
    if (auto* m = dynamic_cast<MutexObject*>(obj.get())) {
      if (p->find_thread(m->owner()) != nullptr) m->abandon(m->owner());
    }
  }

  p->kill_all_threads();   // destroys coroutine frames; RAII closes sockets
  p->handles().clear();    // releases kernel objects (pipe ends wake peers)
  p->object()->mark_exited(code);
  p->set_state(Process::State::kExited);

  exit_history_.push_back(ProcessExitRecord{pid, p->image(), code, std::move(reason), sim_->now()});
  scm_->on_process_exit(pid);
  processes_.erase(pid);
}

std::size_t Machine::starts_of(std::string_view image, sim::TimePoint since) const {
  std::size_t n = 0;
  for (const auto& r : start_history_) {
    if (r.at > since && r.image == image) ++n;
  }
  return n;
}

std::size_t Machine::crashes_of(std::string_view image) const {
  std::size_t n = 0;
  for (const auto& r : exit_history_) {
    if (r.image == image && r.exit_code >= 0xC0000000u) ++n;
  }
  return n;
}

Machine::Snapshot Machine::capture(CowStats* stats) const {
  Snapshot s;
  s.fs = fs_.capture(stats);
  s.registry = registry_.capture();
  s.event_log = event_log_.capture();
  s.scm = scm_->capture();
  for (const auto& [pid, proc] : processes_) {
    ProcessSnapshot ps;
    ps.image = proc->image();
    ps.mem = proc->mem().capture(stats);
    ps.handles = proc->handles().capture();
    s.processes.emplace(pid, std::move(ps));
  }
  s.next_pid = next_pid_;
  s.syscalls = syscalls_made;
  s.exits = exit_history_;
  s.starts = start_history_;
  return s;
}

bool Machine::restore(const Snapshot& s) {
  // Validate before touching anything: every snapshot pid must still be live
  // with the same image, and no extra process may have appeared.
  if (s.processes.size() != processes_.size()) return false;
  for (const auto& [pid, ps] : s.processes) {
    auto it = processes_.find(pid);
    if (it == processes_.end() || it->second->image() != ps.image) return false;
  }
  fs_.restore(s.fs);
  registry_.restore(s.registry);
  event_log_.restore(s.event_log);
  scm_->restore(s.scm);
  for (const auto& [pid, ps] : s.processes) {
    Process& p = *processes_.at(pid);
    p.mem().restore(ps.mem);
    p.handles().restore(ps.handles);
  }
  next_pid_ = s.next_pid;
  syscalls_made = s.syscalls;
  exit_history_ = s.exits;
  start_history_ = s.starts;
  return true;
}

}  // namespace dts::nt
