// Metadata catalogue of the simulated KERNEL32.dll export surface.
//
// Implemented functions (the Fn enum) carry full parameter metadata used by
// the fault-list generator: the fault space is every parameter of every
// function × three corruption types, exactly the paper's construction. The
// catalogue also lists additional genuine KERNEL32 4.0 export names that our
// simulated servers never call, so that activation statistics ("the majority
// of functions in KERNEL32.dll are not called", paper §4) are meaningful.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace dts::nt {

/// Identifiers of the implemented KERNEL32 functions, in catalogue order.
enum class Fn : std::uint16_t {
#define X(name, ...) name,
#include "ntsim/kernel32_functions.inc"
#undef X
  kImplementedCount,
};

constexpr std::uint16_t kImplementedFunctionCount =
    static_cast<std::uint16_t>(Fn::kImplementedCount);

struct FunctionInfo {
  std::uint16_t id = 0;  // catalogue index; < kImplementedFunctionCount if implemented
  std::string_view name;
  std::vector<std::string_view> params;
  bool implemented = false;

  int param_count() const { return static_cast<int>(params.size()); }
};

class Kernel32Registry {
 public:
  static const Kernel32Registry& instance();

  const FunctionInfo& info(Fn f) const { return functions_[static_cast<std::uint16_t>(f)]; }
  const FunctionInfo& info(std::uint16_t id) const { return functions_[id]; }

  /// Lookup by export name; nullptr if unknown.
  const FunctionInfo* by_name(std::string_view name) const;

  /// The whole catalogue: implemented functions first, then uncalled exports.
  std::span<const FunctionInfo> all() const { return functions_; }

  std::size_t total_functions() const { return functions_.size(); }
  std::size_t zero_param_functions() const { return zero_param_; }
  /// Functions with >= 1 parameter — the fault-injection candidates
  /// (paper §4: 551 of 681 functions were injectable on their machine).
  std::size_t injectable_functions() const { return functions_.size() - zero_param_; }

 private:
  Kernel32Registry();
  std::vector<FunctionInfo> functions_;
  std::size_t zero_param_ = 0;
};

std::string_view to_string(Fn f);

}  // namespace dts::nt
