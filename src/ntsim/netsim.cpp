#include "ntsim/netsim.h"

#include <algorithm>

#include "ntsim/kernel.h"  // Machine::name(), for per-link config resolution

namespace dts::nt::net {

// ---------------------------------------------------------------- Socket

void Socket::send(std::string_view data) {
  if (closed_ || data.empty()) return;
  sim::Simulation& sim = net_->sim();
  const NetworkConfig& cfg = cfg_;  // the link this connection was made over
  const auto transfer = sim::Duration::micros(
      static_cast<std::int64_t>(data.size()) * 1'000'000 /
      static_cast<std::int64_t>(cfg.bytes_per_second));
  sim::TimePoint deliver_at = sim.now() + cfg.latency + transfer;
  // Preserve FIFO ordering with earlier in-flight sends on this stream.
  if (deliver_at < tx_->earliest_delivery) deliver_at = tx_->earliest_delivery;
  tx_->earliest_delivery = deliver_at;

  std::shared_ptr<Stream> tx = tx_;
  std::string payload{data};
  sim.schedule_at(deliver_at, [&sim, tx, payload = std::move(payload)] {
    if (tx->eof) return;  // connection already reset
    tx->buffer += payload;
    tx->wake_readers(sim);
  });
}

sim::CoTask<std::optional<std::string>> Socket::recv(Ctx c, std::size_t max,
                                                     std::optional<sim::Duration> timeout) {
  sim::Simulation& sim = net_->sim();
  const sim::TimePoint deadline = sim.now() + timeout.value_or(sim::Duration{});
  for (;;) {
    if (!rx_->buffer.empty()) {
      const std::size_t n = std::min(max, rx_->buffer.size());
      std::string out = rx_->buffer.substr(0, n);
      rx_->buffer.erase(0, n);
      co_return out;
    }
    if (rx_->eof) co_return std::string{};  // orderly EOF / reset
    if (timeout && sim.now() >= deadline) co_return std::nullopt;

    auto tok = make_wait(c);
    rx_->read_waiters.push_back(tok);
    std::optional<sim::Duration> remaining;
    if (timeout) remaining = deadline - sim.now();
    const sim::WakeReason reason = co_await await_token(c, tok, remaining);
    if (reason == sim::WakeReason::kTimeout) co_return std::nullopt;
  }
}

sim::CoTask<std::optional<std::string>> Socket::recv_until(
    Ctx c, std::string delim, std::size_t max, std::optional<sim::Duration> timeout) {
  sim::Simulation& sim = net_->sim();
  const sim::TimePoint deadline = sim.now() + timeout.value_or(sim::Duration{});
  for (;;) {
    const auto pos = rx_->buffer.find(delim);
    if (pos != std::string::npos) {
      std::string out = rx_->buffer.substr(0, pos + delim.size());
      rx_->buffer.erase(0, pos + delim.size());
      co_return out;
    }
    if (rx_->buffer.size() > max) co_return std::nullopt;  // oversized
    if (rx_->eof) co_return std::nullopt;
    if (timeout && sim.now() >= deadline) co_return std::nullopt;

    auto tok = make_wait(c);
    rx_->read_waiters.push_back(tok);
    std::optional<sim::Duration> remaining;
    if (timeout) remaining = deadline - sim.now();
    const sim::WakeReason reason = co_await await_token(c, tok, remaining);
    if (reason == sim::WakeReason::kTimeout) co_return std::nullopt;
  }
}

sim::CoTask<std::optional<std::string>> Socket::recv_exactly(
    Ctx c, std::size_t n, std::optional<sim::Duration> timeout) {
  sim::Simulation& sim = net_->sim();
  const sim::TimePoint deadline = sim.now() + timeout.value_or(sim::Duration{});
  std::string out;
  while (out.size() < n) {
    std::optional<sim::Duration> remaining;
    if (timeout) {
      if (sim.now() >= deadline) co_return std::nullopt;
      remaining = deadline - sim.now();
    }
    auto chunk = co_await recv(c, n - out.size(), remaining);
    if (!chunk || chunk->empty()) co_return std::nullopt;  // timeout or EOF
    out += *chunk;
  }
  co_return out;
}

void Socket::close() {
  if (closed_) return;
  closed_ = true;
  sim::Simulation& sim = net_->sim();
  std::shared_ptr<Stream> tx = tx_;
  // The FIN travels with the usual latency but must not overtake in-flight
  // data on this stream (TCP ordering).
  sim::TimePoint at = sim.now() + cfg_.latency;
  if (at < tx->earliest_delivery) at = tx->earliest_delivery;
  tx->earliest_delivery = at;
  sim.schedule_at(at, [&sim, tx] {
    tx->eof = true;
    tx->wake_readers(sim);
  });
  // Our own receive side stops waiting immediately.
  rx_->eof = true;
  rx_->wake_readers(sim);
}

// ---------------------------------------------------------------- Listener

Listener::~Listener() {
  net_->unbind(machine_, port_, this);
  for (auto& sock : pending_) sock->close();  // reset un-accepted connections
  auto pending = std::move(accept_waiters_);
  for (auto& tok : pending) sim::wake(net_->sim(), tok, sim::WakeReason::kAbandoned);
}

sim::CoTask<std::shared_ptr<Socket>> Listener::accept(Ctx c,
                                                      std::optional<sim::Duration> timeout) {
  sim::Simulation& sim = net_->sim();
  const sim::TimePoint deadline = sim.now() + timeout.value_or(sim::Duration{});
  for (;;) {
    if (!pending_.empty()) {
      auto sock = std::move(pending_.front());
      pending_.pop_front();
      co_return sock;
    }
    if (timeout && sim.now() >= deadline) co_return nullptr;

    auto tok = make_wait(c);
    accept_waiters_.push_back(tok);
    std::optional<sim::Duration> remaining;
    if (timeout) remaining = deadline - sim.now();
    const sim::WakeReason reason = co_await await_token(c, tok, remaining);
    if (reason == sim::WakeReason::kTimeout) co_return nullptr;
  }
}

// ---------------------------------------------------------------- Network

std::shared_ptr<Listener> Network::listen(const std::string& machine, std::uint16_t port) {
  const auto key = std::make_pair(machine, port);
  if (listeners_.contains(key)) return nullptr;  // address in use
  auto listener = std::make_shared<Listener>(*this, machine, port);
  listeners_[key] = listener.get();
  return listener;
}

void Network::unbind(const std::string& machine, std::uint16_t port, const Listener* who) {
  const auto key = std::make_pair(machine, port);
  auto it = listeners_.find(key);
  if (it != listeners_.end() && it->second == who) listeners_.erase(it);
}

bool Network::port_open(const std::string& machine, std::uint16_t port) const {
  return listeners_.contains(std::make_pair(machine, port));
}

void Network::set_link(const std::string& a, const std::string& b, NetworkConfig cfg) {
  links_[a <= b ? std::make_pair(a, b) : std::make_pair(b, a)] = cfg;
}

const NetworkConfig& Network::link_config(const std::string& a, const std::string& b) const {
  const auto it = links_.find(a <= b ? std::make_pair(a, b) : std::make_pair(b, a));
  return it == links_.end() ? cfg_ : it->second;
}

sim::CoTask<std::shared_ptr<Socket>> Network::connect(Ctx c, const std::string& machine,
                                                      std::uint16_t port,
                                                      std::optional<sim::Duration> timeout) {
  (void)timeout;  // refusal is immediate in this model; see below
  const NetworkConfig link = link_config(c.m().name(), machine);
  // SYN round trip.
  co_await sleep_in_sim(c, link.latency * 2);

  auto it = listeners_.find(std::make_pair(machine, port));
  if (it == listeners_.end()) {
    // No listener: RST — immediate connection refused.
    co_return nullptr;
  }
  Listener* listener = it->second;

  auto client_to_server = std::make_shared<Stream>();
  auto server_to_client = std::make_shared<Stream>();
  auto client_sock = std::make_shared<Socket>(*this, server_to_client, client_to_server, link);
  auto server_sock = std::make_shared<Socket>(*this, client_to_server, server_to_client, link);
  ++connections_;

  listener->pending_.push_back(std::move(server_sock));
  auto waiters = std::move(listener->accept_waiters_);
  listener->accept_waiters_.clear();
  for (auto& tok : waiters) sim::wake(*sim_, tok, sim::WakeReason::kSignaled);
  co_return client_sock;
}

Network::Snapshot Network::capture() const {
  Snapshot s;
  s.connections = connections_;
  for (const auto& [key, listener] : listeners_) s.bound_ports.push_back(key);
  return s;  // listeners_ is an ordered map, so bound_ports comes out sorted
}

bool Network::restore(const Snapshot& s) {
  connections_ = s.connections;
  std::vector<std::pair<std::string, std::uint16_t>> now;
  now.reserve(listeners_.size());
  for (const auto& [key, listener] : listeners_) now.push_back(key);
  return now == s.bound_ports;
}

}  // namespace dts::nt::net
