// The syscall record and interception hook — the simulator's analogue of
// DTS's library-call-interception (LCI) layer.
//
// Every KERNEL32 call made by simulated user code is marshalled into a
// CallRecord of raw 32-bit words and passed through the installed hook
// *before* dispatch. The fault injector corrupts exactly one word of one
// invocation, then the (possibly corrupted) record is decoded and executed.
#pragma once

#include <array>
#include <cstdint>

#include "ntsim/kernel32_registry.h"
#include "ntsim/types.h"

namespace dts::nt {

class Process;

/// Maximum parameter count across the KERNEL32 surface (CreateProcessA has
/// 10; RegisterConsoleVDM would have 11).
constexpr int kMaxSyscallArgs = 12;

struct CallRecord {
  Fn fn{};
  std::array<Word, kMaxSyscallArgs> args{};
  int argc = 0;
  /// Machine-wide syscall sequence number, assigned by the dispatcher before
  /// on_call. Lets a tracing hook match on_result back to the entry it wrote
  /// in on_call even when coroutine calls interleave.
  std::uint64_t seq = 0;

  /// Completion action requested by the hook. The dispatcher owns the
  /// mechanism; which call gets which action is injector policy. kForceResult
  /// skips dispatch entirely (the OS refuses the request: `forced_result` is
  /// returned and `forced_error` becomes the thread's last error); the two
  /// result transforms run dispatch normally and rewrite the result word
  /// before on_result; kDelay stalls the completion by `delay_us` of sim
  /// time; kDrop blocks the calling thread forever — the completion never
  /// arrives and on_result never fires (same contract as calls that never
  /// return).
  enum class Action : std::uint8_t {
    kNone = 0,
    kForceResult,
    kZeroResult,
    kFlipResult,
    kDelay,
    kDrop,
  };
  Action action = Action::kNone;
  Word forced_result = 0;
  Dword forced_error = 0;
  std::uint32_t delay_us = 0;
};

/// Interception interface installed on the Kernel32 dispatcher.
class SyscallHook {
 public:
  virtual ~SyscallHook() = default;

  /// Called before dispatch of every KERNEL32 call. `proc` identifies the
  /// calling process (DTS targets one server process image per run). The
  /// hook may corrupt `rec.args` in place.
  virtual void on_call(const Process& proc, CallRecord& rec) = 0;

  /// Called after dispatch returns, with the call's result word. NOT called
  /// for calls that never return (a corrupted pointer raising an access
  /// violation unwinds past the dispatcher) — a trace entry without a result
  /// is itself a forensic signal. Default: ignore.
  virtual void on_result(const Process& proc, const CallRecord& rec, Word result) {
    (void)proc;
    (void)rec;
    (void)result;
  }
};

}  // namespace dts::nt
