// In-memory NTFS-flavoured filesystem for the simulated machine.
//
// Paths are Windows-style ("C:\inetpub\wwwroot\index.html"), case-insensitive
// but case-preserving, with both '\' and '/' accepted as separators. One
// Filesystem instance per simulated machine.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ntsim/object.h"
#include "ntsim/types.h"

namespace dts::nt {

class Filesystem;

/// An open-file object (what a file handle refers to).
class FileObject final : public KernelObject {
 public:
  FileObject(sim::Simulation& sim, Filesystem& fs, std::string path, Dword access)
      : KernelObject(sim), fs_(&fs), path_(std::move(path)), access_(access) {}

  ObjectType type() const override { return ObjectType::kFile; }

  const std::string& path() const { return path_; }
  Dword access() const { return access_; }
  Word offset() const { return offset_; }
  void set_offset(Word o) { offset_ = o; }
  Filesystem& fs() const { return *fs_; }

 private:
  Filesystem* fs_;
  std::string path_;
  Dword access_;
  Word offset_ = 0;
};

class Filesystem {
 public:
  Filesystem();

  /// Canonicalizes a path: '/'→'\', collapses separators, strips trailing
  /// separators (except drive roots). Returns nullopt for syntactically
  /// invalid paths (empty, embedded NUL, missing drive).
  static std::optional<std::string> normalize(std::string_view path);

  /// Lower-cases a normalized path for use as a lookup key.
  static std::string fold(std::string_view normalized);

  // --- structure -----------------------------------------------------------

  /// Creates a directory. Fails if the parent does not exist or the name is
  /// taken.
  Win32Error mkdir(std::string_view path);

  /// Creates every missing directory along the path (host-side setup helper).
  void mkdirs(std::string_view path);

  /// Removes an empty directory.
  Win32Error rmdir(std::string_view path);

  bool exists(std::string_view path) const;
  bool is_directory(std::string_view path) const;
  bool is_file(std::string_view path) const;

  /// Win32-style attribute word, or kInvalidFileAttributes.
  Dword attributes(std::string_view path) const;

  // --- whole-file convenience (host-side setup + simple app use) -----------

  /// Creates or replaces a file with the given contents. Creates parents.
  void put_file(std::string_view path, std::string_view contents);

  /// Reads a whole file; nullopt if missing.
  std::optional<std::string> get_file(std::string_view path) const;

  // --- handle-based I/O (used by the KERNEL32 layer) ------------------------

  /// CreateFile core. On success returns the canonical path of the (possibly
  /// created) file. `created` reports whether a new file came into being.
  Win32Error open(std::string_view path, Dword access, Dword disposition,
                  std::string* canonical, bool* created);

  /// Reads up to `size` bytes at `offset`. Returns bytes actually read
  /// (0 at/after EOF).
  Win32Error read(const std::string& canonical, Word offset, Word size,
                  std::string* out) const;

  /// Writes at `offset`, extending the file as needed.
  Win32Error write(const std::string& canonical, Word offset, std::string_view data);

  Win32Error truncate(const std::string& canonical, Word new_size);

  /// File size in bytes, or nullopt if missing.
  std::optional<Word> size(std::string_view path) const;

  Win32Error remove(std::string_view path);
  Win32Error move(std::string_view from, std::string_view to);
  Win32Error copy(std::string_view from, std::string_view to, bool fail_if_exists);

  /// Names (not paths) of entries directly inside `dir` matching `pattern`
  /// (supports '*' and '?'). Empty vector if the directory doesn't exist.
  std::vector<std::string> list(std::string_view dir, std::string_view pattern = "*") const;

  /// Simple glob match, case-insensitive, '*' and '?' wildcards.
  static bool match(std::string_view pattern, std::string_view name);

  std::uint64_t total_bytes() const;
  std::size_t file_count() const { return files_.size(); }

  // --- snapshots (src/snap/) ------------------------------------------------
  // File contents are copy-on-write, exactly like VirtualMemory blocks: a
  // capture shares every content string with the live tree; the first write
  // to a shared file clones it. CopyFile also structure-shares (a copied
  // file costs nothing until one side is written).

  struct FileNode {
    std::string display_path;  // case-preserving canonical path
    std::shared_ptr<std::string> content;

    const std::string& data() const {
      static const std::string empty;
      return content ? *content : empty;
    }
  };

  struct Snapshot {
    std::map<std::string, FileNode> files;
    std::map<std::string, std::string> dirs;

    /// Deep equality (content bytes, not pointer identity).
    friend bool operator==(const Snapshot& a, const Snapshot& b);
  };

  Snapshot capture(CowStats* stats = nullptr) const;
  void restore(const Snapshot& s);

  /// Content clones forced by writes to shared files since construction.
  std::uint64_t cow_copies() const { return cow_copies_; }

 private:
  static std::optional<std::string> parent_of(std::string_view normalized);

  /// The node's content string, cloned first if a snapshot still shares it.
  std::string& writable(FileNode& node);

  std::map<std::string, FileNode> files_;     // keyed by folded path
  std::map<std::string, std::string> dirs_;   // folded path -> display path
  std::uint64_t cow_copies_ = 0;
};

}  // namespace dts::nt
