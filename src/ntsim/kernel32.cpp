#include "ntsim/kernel32.h"

#include <stdexcept>

#include "ntsim/filesystem.h"
#include "ntsim/kernel.h"

namespace dts::nt {

namespace {

/// Per-byte cost of simulated file/pipe I/O (scaled by machine speed).
/// ~6 MB/s on the paper's 100 MHz Pentium class disk.
constexpr sim::Duration io_cost(Word bytes) {
  return sim::Duration::micros(static_cast<std::int64_t>(bytes) / 6);
}

}  // namespace

namespace k32 {

std::shared_ptr<KernelObject> Sys::resolve(Word handle) const {
  if (handle == kCurrentProcessPseudoHandle.value) return p.object();
  if (handle == kCurrentThreadPseudoHandle.value) return thread().object();
  return p.handles().get(Handle{handle});
}

Area area_of(Fn fn) {
  switch (fn) {
    case Fn::WaitForSingleObject:
    case Fn::WaitForSingleObjectEx:
    case Fn::WaitForMultipleObjects:
    case Fn::Sleep:
    case Fn::SleepEx:
    case Fn::ReadFile:
    case Fn::ReadFileEx:
    case Fn::WriteFile:
    case Fn::WriteFileEx:
    case Fn::EnterCriticalSection:
    case Fn::ExitProcess:
    case Fn::ExitThread:
    case Fn::ConnectNamedPipe:
    case Fn::WaitNamedPipeA:
    case Fn::CallNamedPipeA:
      return Area::kBlocking;
    default:
      break;
  }
  // The .inc table is grouped by area, in this order.
  const auto v = static_cast<std::uint16_t>(fn);
  if (v <= static_cast<std::uint16_t>(Fn::SetStdHandle)) return Area::kProc;
  if (v <= static_cast<std::uint16_t>(Fn::InterlockedExchange)) return Area::kSync;
  if (v <= static_cast<std::uint16_t>(Fn::SearchPathA)) return Area::kFile;
  if (v <= static_cast<std::uint16_t>(Fn::TlsSetValue)) return Area::kMem;
  return Area::kMisc;
}

}  // namespace k32

Kernel32::Kernel32(Machine& machine) : machine_(&machine) {}

std::shared_ptr<KernelObject> Kernel32::find_named(const std::string& name) const {
  auto it = named_.find(name);
  if (it == named_.end()) return nullptr;
  return it->second.lock();
}

void Kernel32::publish_named(const std::string& name, const std::shared_ptr<KernelObject>& obj) {
  named_[name] = obj;
}

sim::CoTask<Word> Kernel32::call(Ctx c, Fn fn, std::vector<Word> args) {
  const FunctionInfo& info = Kernel32Registry::instance().info(fn);
  if (static_cast<int>(args.size()) != info.param_count()) {
    throw std::logic_error(std::string("Kernel32::call: wrong arity for ") +
                           std::string(info.name));
  }
  CallRecord r;
  r.fn = fn;
  r.argc = static_cast<int>(args.size());
  for (int i = 0; i < r.argc; ++i) r.args[static_cast<std::size_t>(i)] = args[i];

  r.seq = ++machine_->syscalls_made;
  if (hook_ != nullptr) hook_->on_call(*c.process, r);

  co_await sleep_in_sim(c, machine_->cost(kBaseCost));

  // Completion actions set by the hook (see CallRecord::Action). A delayed
  // completion is a fixed sim-time lag, deliberately NOT scaled by machine
  // speed: the fault magnitude is part of the fault spec, not the hardware.
  if (r.action == CallRecord::Action::kDelay && r.delay_us != 0) {
    co_await sleep_in_sim(c, sim::Duration::micros(r.delay_us));
  }
  if (r.action == CallRecord::Action::kDrop) {
    // The completion never arrives: block until teardown destroys us, like
    // ExitProcess below. on_result deliberately never fires — a trace entry
    // without a result is the forensic signal for a dropped completion.
    auto tok = make_wait(c);
    co_await await_token(c, tok, std::nullopt);
    co_return 0;
  }

  Word result;
  if (r.action == CallRecord::Action::kForceResult) {
    c.thread().last_error = r.forced_error;
    result = r.forced_result;
  } else {
    result = co_await dispatch(c, r);
    if (r.action == CallRecord::Action::kZeroResult) result = 0;
    if (r.action == CallRecord::Action::kFlipResult) result = result != 0 ? 0 : 1;
  }
  if (hook_ != nullptr) hook_->on_result(*c.process, r, result);
  co_return result;
}

sim::CoTask<Word> Kernel32::dispatch(Ctx c, const CallRecord& r) {
  using k32::Area;
  const Area area = k32::area_of(r.fn);
  if (area == Area::kBlocking) {
    switch (r.fn) {
      case Fn::WaitForSingleObject:
      case Fn::WaitForSingleObjectEx:
        co_return co_await do_wait_single(c, r.args[0], r.args[1]);
      case Fn::WaitForMultipleObjects:
        co_return co_await do_wait_multiple(c, r.args[0], r.args[1], r.args[2], r.args[3]);
      case Fn::Sleep:
      case Fn::SleepEx:
        co_return co_await do_sleep(c, r.args[0]);
      case Fn::ReadFile:
        co_return co_await do_read_file(c, r, /*ex=*/false);
      case Fn::ReadFileEx:
        co_return co_await do_read_file(c, r, /*ex=*/true);
      case Fn::WriteFile:
        co_return co_await do_write_file(c, r, /*ex=*/false);
      case Fn::WriteFileEx:
        co_return co_await do_write_file(c, r, /*ex=*/true);
      case Fn::EnterCriticalSection:
        co_return co_await do_enter_critical_section(c, r.args[0]);
      case Fn::ConnectNamedPipe:
        co_return co_await do_connect_named_pipe(c, r.args[0]);
      case Fn::WaitNamedPipeA:
        co_return co_await do_wait_named_pipe(c, r.args[0], r.args[1]);
      case Fn::CallNamedPipeA:
        co_return co_await do_call_named_pipe(c, r);
      case Fn::ExitProcess: {
        machine_->request_process_exit(c.process->pid(), r.args[0], "ExitProcess");
        // ExitProcess never returns: block until teardown destroys us.
        auto tok = make_wait(c);
        co_await await_token(c, tok, std::nullopt);
        co_return 0;
      }
      case Fn::ExitThread: {
        const Pid pid = c.process->pid();
        const Tid tid = c.tid;
        Machine* m = machine_;
        const Word code = r.args[0];
        machine_->sim().schedule(sim::Duration{}, [m, pid, tid, code] {
          Process* p = m->find_process(pid);
          if (p == nullptr || p->state() != Process::State::kRunning) return;
          p->reap_thread(tid, code);
          if (p->live_threads() == 0) m->request_process_exit(pid, code, "last thread exited");
        });
        auto tok = make_wait(c);
        co_await await_token(c, tok, std::nullopt);
        co_return 0;
      }
      default:
        throw std::logic_error("unrouted blocking syscall");
    }
  }

  k32::Sys s{c, *machine_, *c.process, *this};
  switch (area) {
    case Area::kProc: co_return k32::sync_proc(s, r);
    case Area::kSync: co_return k32::sync_sync(s, r);
    case Area::kFile: co_return k32::sync_file(s, r);
    case Area::kMem: co_return k32::sync_mem(s, r);
    case Area::kMisc: co_return k32::sync_misc(s, r);
    case Area::kBlocking: break;  // unreachable
  }
  throw std::logic_error("unrouted syscall");
}

sim::CoTask<Word> Kernel32::do_wait_single(Ctx c, Word handle, Word ms) {
  k32::Sys s{c, *machine_, *c.process, *this};
  auto obj = s.resolve(handle);
  if (obj == nullptr) co_return s.fail(Win32Error::kInvalidHandle, kWaitFailed);
  co_return co_await wait_on_object(c, std::move(obj), ms);
}

sim::CoTask<Word> Kernel32::do_wait_multiple(Ctx c, Word count, Word handles_ptr, Word wait_all,
                                             Word ms) {
  k32::Sys s{c, *machine_, *c.process, *this};
  // NT rejects counts above MAXIMUM_WAIT_OBJECTS (64); a corrupted count
  // argument therefore fails fast instead of reading a huge array.
  if (count == 0 || count > 64) co_return s.fail(Win32Error::kInvalidParameter, kWaitFailed);

  // The handle array is probed by the kernel: a bad pointer is an error
  // return, not a crash.
  std::vector<std::shared_ptr<KernelObject>> objs;
  try {
    for (Word i = 0; i < count; ++i) {
      const Word h = s.mem().read_u32(Ptr{handles_ptr + i * 4});
      auto obj = s.resolve(h);
      if (obj == nullptr) co_return s.fail(Win32Error::kInvalidHandle, kWaitFailed);
      objs.push_back(std::move(obj));
    }
  } catch (const AccessViolation&) {
    co_return s.fail(Win32Error::kNoAccess, kWaitFailed);
  }

  sim::Simulation& simu = machine_->sim();
  const bool finite = ms != kInfinite;
  const sim::TimePoint deadline = simu.now() + sim::Duration::millis(finite ? ms : 0);

  for (;;) {
    if (wait_all != 0) {
      bool all = true;
      for (auto& o : objs) {
        if (!o->is_signaled()) {
          all = false;
          break;
        }
      }
      if (all) {
        for (auto& o : objs) o->try_acquire(c.tid);
        co_return kWaitObject0;
      }
    } else {
      for (Word i = 0; i < count; ++i) {
        if (objs[i]->try_acquire(c.tid)) co_return kWaitObject0 + i;
      }
    }
    if (finite && simu.now() >= deadline) co_return kWaitTimeout;

    auto tok = make_wait(c);
    for (auto& o : objs) o->add_waiter(tok);
    std::optional<sim::Duration> remaining;
    if (finite) remaining = deadline - simu.now();
    const sim::WakeReason reason = co_await await_token(c, tok, remaining);
    if (reason == sim::WakeReason::kTimeout) co_return kWaitTimeout;
  }
}

sim::CoTask<Word> Kernel32::do_sleep(Ctx c, Word ms) {
  if (ms == kInfinite) {
    // Sleep(INFINITE): the thread never runs again. The "set all bits" fault
    // on Sleep's parameter produces exactly this hang.
    auto tok = make_wait(c);
    co_await await_token(c, tok, std::nullopt);
    co_return 0;  // unreachable in practice
  }
  co_await sleep_in_sim(c, sim::Duration::millis(ms));
  co_return 0;
}

sim::CoTask<Word> Kernel32::do_read_file(Ctx c, const CallRecord& r, bool ex) {
  k32::Sys s{c, *machine_, *c.process, *this};
  const Word h = r.args[0];
  const Ptr buffer{r.args[1]};
  const Word to_read = r.args[2];
  // ReadFile: args[3]=lpNumberOfBytesRead; ReadFileEx: args[3]=lpOverlapped,
  // args[4]=lpCompletionRoutine.
  auto obj = s.resolve(h);
  if (obj == nullptr) co_return s.fail(Win32Error::kInvalidHandle);

  std::string data;
  if (auto* f = dynamic_cast<FileObject*>(obj.get())) {
    const auto canonical = Filesystem::fold(*Filesystem::normalize(f->path()));
    std::string chunk;
    const Win32Error e = machine_->fs().read(canonical, f->offset(), to_read, &chunk);
    if (e != Win32Error::kSuccess) co_return s.fail(e);
    data = std::move(chunk);
    f->set_offset(f->offset() + static_cast<Word>(data.size()));
  } else if (auto* pr = dynamic_cast<PipeReadObject*>(obj.get())) {
    PipeBuffer& buf = pr->buffer();
    while (buf.data.empty() && !buf.write_closed) {
      auto tok = make_wait(c);
      pr->add_waiter(tok);
      co_await await_token(c, tok, std::nullopt);
    }
    if (buf.data.empty() && buf.write_closed) {
      co_return s.fail(Win32Error::kBrokenPipe);  // pipe EOF
    }
    const Word n = std::min<Word>(to_read, static_cast<Word>(buf.data.size()));
    data.reserve(n);
    for (Word i = 0; i < n; ++i) {
      data.push_back(static_cast<char>(buf.data.front()));
      buf.data.pop_front();
    }
    if (buf.write_end != nullptr) buf.write_end->wake_all();  // room available
  } else if (auto* np = dynamic_cast<NamedPipeEndObject*>(obj.get())) {
    PipeBuffer& buf = np->inbound();
    while (buf.data.empty() && !buf.write_closed && np->peer() != nullptr) {
      auto tok = make_wait(c);
      np->add_waiter(tok);
      co_await await_token(c, tok, std::nullopt);
    }
    if (buf.data.empty()) co_return s.fail(Win32Error::kBrokenPipe);
    const Word n = std::min<Word>(to_read, static_cast<Word>(buf.data.size()));
    data.reserve(n);
    for (Word i = 0; i < n; ++i) {
      data.push_back(static_cast<char>(buf.data.front()));
      buf.data.pop_front();
    }
    if (np->peer() != nullptr) np->peer()->wake_all();  // room for the writer
  } else {
    co_return s.fail(Win32Error::kInvalidHandle);
  }

  co_await sleep_in_sim(c, machine_->cost(io_cost(static_cast<Word>(data.size()))));

  // The kernel probes the user buffer: bad pointers are error returns.
  try {
    if (!data.empty()) s.mem().write_bytes(buffer, data);
    if (!ex && r.args[3] != 0) s.mem().write_u32(Ptr{r.args[3]}, static_cast<Word>(data.size()));
  } catch (const AccessViolation&) {
    co_return s.fail(Win32Error::kNoAccess);
  }

  if (ex) {
    // The completion routine runs as user code at a bogus address if the
    // parameter was corrupted: an unhandled exception, i.e. a crash.
    const Word routine = r.args[4];
    if (routine != 0 && s.p.find_routine(routine) == nullptr) {
      throw AccessViolation{routine, /*is_write=*/false};
    }
  }
  co_return 1;
}

sim::CoTask<Word> Kernel32::do_write_file(Ctx c, const CallRecord& r, bool ex) {
  k32::Sys s{c, *machine_, *c.process, *this};
  const Word h = r.args[0];
  const Ptr buffer{r.args[1]};
  const Word to_write = r.args[2];
  auto obj = s.resolve(h);
  if (obj == nullptr) co_return s.fail(Win32Error::kInvalidHandle);

  // Probe-read the user buffer up front (kernel behaviour).
  std::string data;
  try {
    if (to_write > 0) data = s.mem().read_bytes(buffer, to_write);
  } catch (const AccessViolation&) {
    co_return s.fail(Win32Error::kNoAccess);
  }

  co_await sleep_in_sim(c, machine_->cost(io_cost(to_write)));

  if (auto* f = dynamic_cast<FileObject*>(obj.get())) {
    if ((f->access() & kGenericWrite) == 0) co_return s.fail(Win32Error::kAccessDenied);
    const auto canonical = Filesystem::fold(*Filesystem::normalize(f->path()));
    const Win32Error e = machine_->fs().write(canonical, f->offset(), data);
    if (e != Win32Error::kSuccess) co_return s.fail(e);
    f->set_offset(f->offset() + to_write);
  } else if (auto* np = dynamic_cast<NamedPipeEndObject*>(obj.get())) {
    if (np->state() != NamedPipeEndObject::State::kConnected || np->peer() == nullptr) {
      co_return s.fail(Win32Error::kPipeNotConnected);
    }
    PipeBuffer& buf = np->outbound();
    std::size_t written = 0;
    while (written < data.size()) {
      if (np->peer() == nullptr || buf.read_closed) {
        co_return s.fail(Win32Error::kNoData);
      }
      while (buf.data.size() >= buf.capacity && np->peer() != nullptr &&
             !buf.read_closed) {
        auto tok = make_wait(c);
        np->add_waiter(tok);
        co_await await_token(c, tok, std::nullopt);
      }
      if (np->peer() == nullptr || buf.read_closed) {
        co_return s.fail(Win32Error::kNoData);
      }
      while (written < data.size() && buf.data.size() < buf.capacity) {
        buf.data.push_back(static_cast<std::byte>(data[written++]));
      }
      np->peer()->wake_all();
    }
  } else if (auto* pw = dynamic_cast<PipeWriteObject*>(obj.get())) {
    PipeBuffer& buf = pw->buffer();
    std::size_t written = 0;
    while (written < data.size()) {
      if (buf.read_closed) co_return s.fail(Win32Error::kNoData);
      while (buf.data.size() >= buf.capacity && !buf.read_closed) {
        auto tok = make_wait(c);
        pw->add_waiter(tok);
        co_await await_token(c, tok, std::nullopt);
      }
      if (buf.read_closed) co_return s.fail(Win32Error::kNoData);
      while (written < data.size() && buf.data.size() < buf.capacity) {
        buf.data.push_back(static_cast<std::byte>(data[written++]));
      }
      if (buf.read_end != nullptr) buf.read_end->wake_all();
    }
  } else {
    co_return s.fail(Win32Error::kInvalidHandle);
  }

  try {
    if (!ex && r.args[3] != 0) s.mem().write_u32(Ptr{r.args[3]}, to_write);
  } catch (const AccessViolation&) {
    co_return s.fail(Win32Error::kNoAccess);
  }
  if (ex) {
    const Word routine = r.args[4];
    if (routine != 0 && s.p.find_routine(routine) == nullptr) {
      throw AccessViolation{routine, /*is_write=*/false};
    }
  }
  co_return 1;
}

void Kernel32::register_pipe_instance(const std::string& folded_name,
                                      const std::shared_ptr<NamedPipeEndObject>& server_end) {
  pipes_[folded_name].push_back(server_end);
}

std::shared_ptr<NamedPipeEndObject> Kernel32::find_listening_pipe(
    const std::string& folded_name) {
  auto it = pipes_.find(folded_name);
  if (it == pipes_.end()) return nullptr;
  auto& instances = it->second;
  std::shared_ptr<NamedPipeEndObject> found;
  // Prune dead instances while scanning for a listening one.
  std::erase_if(instances, [&](const std::weak_ptr<NamedPipeEndObject>& w) {
    auto end = w.lock();
    if (end == nullptr) return true;
    if (found == nullptr && end->state() == NamedPipeEndObject::State::kListening) {
      found = std::move(end);
    }
    return false;
  });
  if (instances.empty()) pipes_.erase(it);
  return found;
}

bool Kernel32::pipe_name_exists(const std::string& folded_name) {
  auto it = pipes_.find(folded_name);
  if (it == pipes_.end()) return false;
  std::erase_if(it->second,
                [](const std::weak_ptr<NamedPipeEndObject>& w) { return w.expired(); });
  if (it->second.empty()) {
    pipes_.erase(it);
    return false;
  }
  return true;
}

sim::CoTask<Word> Kernel32::do_connect_named_pipe(Ctx c, Word handle) {
  k32::Sys s{c, *machine_, *c.process, *this};
  auto end = std::dynamic_pointer_cast<NamedPipeEndObject>(s.resolve(handle));
  if (end == nullptr || end->role() != NamedPipeEndObject::Role::kServer) {
    co_return s.fail(Win32Error::kInvalidHandle);
  }
  if (end->state() == NamedPipeEndObject::State::kConnected) {
    // A client connected between creation and this call; NT reports
    // ERROR_PIPE_CONNECTED, which callers treat as success.
    co_return s.fail(Win32Error::kPipeConnected);
  }
  if (end->state() == NamedPipeEndObject::State::kDisconnected) {
    // Re-arm the instance for the next client.
    end->inbound().data.clear();
    end->inbound().write_closed = false;
    end->inbound().read_closed = false;
    end->outbound().data.clear();
    end->outbound().write_closed = false;
    end->outbound().read_closed = false;
    end->set_state(NamedPipeEndObject::State::kListening);
  }
  while (end->state() == NamedPipeEndObject::State::kListening) {
    auto tok = make_wait(c);
    end->add_waiter(tok);
    co_await await_token(c, tok, std::nullopt);
  }
  co_return 1;
}

sim::CoTask<Word> Kernel32::do_wait_named_pipe(Ctx c, Word name_ptr, Word timeout_ms) {
  k32::Sys s{c, *machine_, *c.process, *this};
  const std::string name = s.mem().read_cstr(Ptr{name_ptr});  // user-mode read
  const std::string folded = Filesystem::fold(name);
  const sim::TimePoint deadline =
      machine_->sim().now() + sim::Duration::millis(timeout_ms == 0 ? 50 : timeout_ms);
  for (;;) {
    if (!pipe_name_exists(folded)) co_return s.fail(Win32Error::kFileNotFound);
    if (find_listening_pipe(folded) != nullptr) co_return 1;
    if (timeout_ms != kInfinite && machine_->sim().now() >= deadline) {
      co_return s.fail(Win32Error::kTimeoutError);
    }
    co_await sleep_in_sim(c, sim::Duration::millis(50));
  }
}

sim::CoTask<Word> Kernel32::do_call_named_pipe(Ctx c, const CallRecord& r) {
  // CallNamedPipeA = open + write + read-one-message + close, a transaction
  // convenience NT clients used for one-shot RPC over a pipe.
  k32::Sys s{c, *machine_, *c.process, *this};
  const std::string name = s.mem().read_cstr(Ptr{r.args[0]});  // user-mode read
  const std::string folded = Filesystem::fold(name);
  const sim::TimePoint deadline =
      machine_->sim().now() + sim::Duration::millis(r.args[6] == 0 ? 50 : r.args[6]);

  // Wait for a listening instance within the timeout.
  std::shared_ptr<NamedPipeEndObject> server;
  for (;;) {
    if (!pipe_name_exists(folded)) co_return s.fail(Win32Error::kFileNotFound);
    server = find_listening_pipe(folded);
    if (server != nullptr) break;
    if (r.args[6] != kInfinite && machine_->sim().now() >= deadline) {
      co_return s.fail(Win32Error::kPipeBusy);
    }
    co_await sleep_in_sim(c, sim::Duration::millis(50));
  }

  // Probe-read the request before connecting (kernel behaviour).
  std::string request;
  try {
    if (r.args[2] > 0) request = s.mem().read_bytes(Ptr{r.args[1]}, r.args[2]);
  } catch (const AccessViolation&) {
    co_return s.fail(Win32Error::kNoAccess);
  }

  auto client = std::make_shared<NamedPipeEndObject>(
      machine_->sim(), NamedPipeEndObject::Role::kClient, server->shared_outbound(),
      server->shared_inbound());
  NamedPipeEndObject::link(*server, *client);
  server->set_state(NamedPipeEndObject::State::kConnected);
  client->set_state(NamedPipeEndObject::State::kConnected);
  server->wake_all();

  // Send the request.
  PipeBuffer& out = client->outbound();
  for (char ch : request) out.data.push_back(static_cast<std::byte>(ch));
  if (client->peer() != nullptr) client->peer()->wake_all();

  // Read one reply chunk.
  PipeBuffer& in = client->inbound();
  while (in.data.empty() && !in.write_closed && client->peer() != nullptr) {
    auto tok = make_wait(c);
    client->add_waiter(tok);
    co_await await_token(c, tok, std::nullopt);
  }
  if (in.data.empty()) co_return s.fail(Win32Error::kBrokenPipe);
  const Word n = std::min<Word>(r.args[4], static_cast<Word>(in.data.size()));
  std::string reply;
  reply.reserve(n);
  for (Word i = 0; i < n; ++i) {
    reply.push_back(static_cast<char>(in.data.front()));
    in.data.pop_front();
  }
  try {
    if (n > 0) s.mem().write_bytes(Ptr{r.args[3]}, reply);
    if (r.args[5] != 0) s.mem().write_u32(Ptr{r.args[5]}, n);
  } catch (const AccessViolation&) {
    co_return s.fail(Win32Error::kNoAccess);
  }
  // client object drops at scope exit: the server sees the disconnect.
  co_return 1;
}

sim::CoTask<Word> Kernel32::do_enter_critical_section(Ctx c, Word addr) {
  k32::Sys s{c, *machine_, *c.process, *this};
  // EnterCriticalSection runs entirely in user mode; touching a corrupted
  // pointer is an unhandled access violation — a crash.
  s.mem().read_u32(Ptr{addr});
  const std::pair<Pid, Word> key{s.p.pid(), addr};
  bool first_look = true;
  for (;;) {
    auto it = critsecs_.find(key);
    if (it == critsecs_.end()) {
      // Entering an uninitialized critical section: undefined behaviour on
      // NT 4.0, modelled as the crash it usually was. (If the section was
      // deleted while we were blocked, just return.)
      if (first_look) throw AccessViolation{addr, /*is_write=*/true};
      co_return 0;
    }
    first_look = false;
    k32::CritSec& cs = it->second;
    if (cs.owner == 0 || cs.owner == c.tid) {
      cs.owner = c.tid;
      ++cs.recursion;
      co_return 0;
    }
    auto tok = make_wait(c);
    cs.waiters.push_back(tok);
    co_await await_token(c, tok, std::nullopt);
  }
}

}  // namespace dts::nt
