// Simulated NT Service Control Manager.
//
// Reproduces the behaviour the paper's Fig. 4 analysis hinges on: "When any
// service is in a pending state, the SCM locks its database, which causes any
// state change requests to the SCM to be denied. Thus, both MSCS and watchd
// must wait until the 'Start Pending' state times out before initiating a
// restart of the service."
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ntsim/event_log.h"
#include "ntsim/types.h"
#include "sim/time.h"

namespace dts::nt {

class Machine;

enum class ServiceState { kStopped, kStartPending, kRunning, kStopPending };

std::string_view to_string(ServiceState s);

struct ServiceConfig {
  std::string name;
  std::string image;         // program image started for this service
  std::string command_line;
  /// Wait hint: how long the SCM tolerates the start-pending state before
  /// declaring the start failed. The paper observed Apache holding the
  /// pending state longer than IIS; the hint is where that lives.
  sim::Duration start_wait_hint = sim::Duration::seconds(30);

  friend bool operator==(const ServiceConfig&, const ServiceConfig&) = default;
};

struct ServiceStatus {
  ServiceState state = ServiceState::kStopped;
  Pid pid = 0;
  /// Process handle-equivalent: the object is exposed so monitors (watchd)
  /// can wait on service death. May be null when stopped.
  std::shared_ptr<class ProcessObject> process;
};

class Scm {
 public:
  explicit Scm(Machine& machine);

  void register_service(ServiceConfig cfg);
  bool has_service(std::string_view name) const;

  /// Appends a command-line switch to a registered service (middleware
  /// installers add their interaction flags, e.g. "/cluster"). Returns false
  /// if the service does not exist or already carries the switch.
  bool append_service_switch(const std::string& name, const std::string& sw);

  /// True while any service is in a pending state. While locked, all state
  /// change requests (start/stop) are denied with
  /// ERROR_SERVICE_DATABASE_LOCKED.
  bool database_locked() const;

  /// Starts a service: spawns its process and enters StartPending. The
  /// service process must report Running via set_service_status before the
  /// start wait hint expires.
  ///
  /// If `info` is non-null it receives the new process object, captured at
  /// spawn time — the "merged startService/getServiceInfo" API the improved
  /// watchd (Watchd2/3) relies on. The original Watchd1 instead calls
  /// start_service() and later query(), losing the handle if the process
  /// dies in between (the paper's coverage hole).
  Win32Error start_service(const std::string& name,
                           std::shared_ptr<ProcessObject>* info = nullptr);

  /// Requests a stop: enters StopPending and asks the machine to terminate
  /// the service process.
  Win32Error control_stop(const std::string& name);

  std::optional<ServiceStatus> query(const std::string& name) const;

  /// Called by the service process itself (SetServiceStatus). Only the
  /// process registered for the service may report.
  Win32Error set_service_status(Pid pid, ServiceState state);

  /// Machine teardown hook: a process died. If it backed a running service,
  /// the service becomes Stopped (logged). If it backed a *pending* service,
  /// the SCM keeps the pending state (and the database lock!) until the wait
  /// hint expires — the paper's restart-delay mechanism.
  void on_process_exit(Pid pid);

  /// Total number of successful service starts (diagnostics).
  std::size_t starts() const { return starts_; }

 private:
  struct Record {
    ServiceConfig cfg;
    ServiceState state = ServiceState::kStopped;
    Pid pid = 0;
    std::uint64_t pending_epoch = 0;  // invalidates stale deadline events

    friend bool operator==(const Record&, const Record&) = default;
  };

 public:
  // --- snapshots (src/snap/) ------------------------------------------------
  // The service database is plain value data. Pending-state deadline events
  // live in the sim event queue, not here; pending_epoch makes a restored
  // database ignore deadline events armed after the capture.

  struct Snapshot {
    std::map<std::string, Record> services;
    std::size_t starts = 0;

    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };

  Snapshot capture() const { return Snapshot{services_, starts_}; }
  void restore(const Snapshot& s) {
    services_ = s.services;
    starts_ = s.starts;
  }

 private:
  void log(EventSeverity sev, std::uint32_t id, std::string msg);
  void arm_start_deadline(const std::string& name);

  Machine* machine_;
  std::map<std::string, Record> services_;
  std::size_t starts_ = 0;
};

}  // namespace dts::nt
