// The simulated KERNEL32.dll API surface.
//
// All simulated user code enters the kernel through Kernel32::call() — the
// single choke point where DTS-style fault injection happens. Function
// semantics follow NT 4.0 closely enough that corrupted parameters produce
// the real failure modes: error returns for unresolvable handles, access
// violations (process crash) where NT touches memory in user mode, hangs for
// corrupted waits, and silent data corruption for corrupted sizes.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ntsim/process.h"
#include "ntsim/syscall.h"
#include "ntsim/types.h"
#include "sim/task.h"

namespace dts::nt {

class Machine;
class Kernel32;

namespace k32 {

/// Per-syscall execution context with common helpers, passed to every
/// synchronous implementation function.
struct Sys {
  Ctx c;
  Machine& m;
  Process& p;
  Kernel32& k;

  VirtualMemory& mem() const { return p.mem(); }
  Thread& thread() const { return c.thread(); }

  /// Sets the calling thread's last error and returns `ret` (usually 0).
  Word fail(Win32Error e, Word ret = 0) const {
    c.thread().last_error = to_dword(e);
    return ret;
  }

  /// Resolves a handle word, honouring NT pseudo-handles ((HANDLE)-1 is the
  /// current process, (HANDLE)-2 the current thread). Null on failure.
  std::shared_ptr<KernelObject> resolve(Word handle) const;
};

/// Kernel-side shadow of a CRITICAL_SECTION living in user memory.
struct CritSec {
  Tid owner = 0;
  int recursion = 0;
  std::vector<sim::WakePtr> waiters;
};

}  // namespace k32

class Kernel32 {
 public:
  explicit Kernel32(Machine& machine);

  /// Installs (or clears) the interception hook. Not owned.
  void set_hook(SyscallHook* hook) { hook_ = hook; }
  SyscallHook* hook() const { return hook_; }

  /// Invokes a KERNEL32 function on behalf of the calling thread. The
  /// argument count must match the registry's parameter count for `fn`.
  /// Returns the raw 32-bit result (BOOL, DWORD or handle value).
  ///
  /// May throw AccessViolation (simulated crash — escapes to the thread body
  /// and terminates the process) for functions whose NT implementation
  /// touches user memory without probing.
  sim::CoTask<Word> call(Ctx c, Fn fn, std::vector<Word> args);

  /// Convenience overload: plain argument words. (Do not pass braced
  /// initializer lists through co_await — their backing arrays cannot live
  /// in coroutine frames on GCC.)
  template <typename... A>
  sim::CoTask<Word> call(Ctx c, Fn fn, A... args) {
    return call(c, fn, std::vector<Word>{static_cast<Word>(args)...});
  }

  /// Machine-wide named-object namespace (events, mutexes, semaphores and
  /// file mappings share it, as on NT).
  std::shared_ptr<KernelObject> find_named(const std::string& name) const;
  void publish_named(const std::string& name, const std::shared_ptr<KernelObject>& obj);

  /// Critical-section shadow table, keyed by (pid, user address).
  std::map<std::pair<Pid, Word>, k32::CritSec>& critsecs() { return critsecs_; }

  /// Named-pipe namespace ("\\.\pipe\..."): registers a listening server
  /// instance / finds one for a client to connect to.
  void register_pipe_instance(const std::string& folded_name,
                              const std::shared_ptr<NamedPipeEndObject>& server_end);
  std::shared_ptr<NamedPipeEndObject> find_listening_pipe(const std::string& folded_name);
  bool pipe_name_exists(const std::string& folded_name);

  /// Base CPU cost charged per syscall (scaled by the machine's cpu_scale).
  static constexpr sim::Duration kBaseCost = sim::Duration::micros(40);

 private:
  sim::CoTask<Word> dispatch(Ctx c, const CallRecord& r);

  // Blocking implementations (everything else is synchronous and lives in
  // the per-area .cpp files as free functions).
  sim::CoTask<Word> do_wait_single(Ctx c, Word handle, Word ms);
  sim::CoTask<Word> do_wait_multiple(Ctx c, Word count, Word handles_ptr, Word wait_all,
                                     Word ms);
  sim::CoTask<Word> do_sleep(Ctx c, Word ms);
  sim::CoTask<Word> do_read_file(Ctx c, const CallRecord& r, bool ex);
  sim::CoTask<Word> do_write_file(Ctx c, const CallRecord& r, bool ex);
  sim::CoTask<Word> do_enter_critical_section(Ctx c, Word addr);
  sim::CoTask<Word> do_connect_named_pipe(Ctx c, Word handle);
  sim::CoTask<Word> do_wait_named_pipe(Ctx c, Word name_ptr, Word timeout_ms);
  sim::CoTask<Word> do_call_named_pipe(Ctx c, const CallRecord& r);

  Machine* machine_;
  SyscallHook* hook_ = nullptr;
  std::map<std::string, std::weak_ptr<KernelObject>> named_;
  std::map<std::pair<Pid, Word>, k32::CritSec> critsecs_;
  std::map<std::string, std::vector<std::weak_ptr<NamedPipeEndObject>>> pipes_;
};

// Synchronous implementation entry points, grouped by area. Each returns the
// raw result word and may throw AccessViolation. Declared here so the
// dispatcher (kernel32.cpp) and the area files can share them.
namespace k32 {
Word sync_proc(Sys& s, const CallRecord& r);   // kernel32_proc.cpp
Word sync_sync(Sys& s, const CallRecord& r);   // kernel32_sync.cpp
Word sync_file(Sys& s, const CallRecord& r);   // kernel32_file.cpp
Word sync_mem(Sys& s, const CallRecord& r);    // kernel32_mem.cpp
Word sync_misc(Sys& s, const CallRecord& r);   // kernel32_misc.cpp

/// Routing table: which area implements a function, or kBlocking for the
/// coroutine-implemented ones handled directly by the dispatcher.
enum class Area { kProc, kSync, kFile, kMem, kMisc, kBlocking };
Area area_of(Fn fn);
}  // namespace k32

}  // namespace dts::nt
