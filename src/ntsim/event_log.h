// Simulated Windows NT event log.
//
// Middleware such as MSCS reports restarts here; the DTS data collector reads
// it back to classify outcomes (paper §3: "Some middleware, such as Microsoft
// Cluster Server, write output to the Windows NT event log").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace dts::nt {

enum class EventSeverity { kInformation, kWarning, kError };

struct EventLogEntry {
  sim::TimePoint time;
  EventSeverity severity = EventSeverity::kInformation;
  std::string source;
  std::uint32_t event_id = 0;
  std::string message;

  friend bool operator==(const EventLogEntry&, const EventLogEntry&) = default;
};

class EventLog {
 public:
  void write(sim::TimePoint time, EventSeverity sev, std::string source,
             std::uint32_t event_id, std::string message);

  /// Bounds the log to the newest `max_entries` records, dropping the oldest
  /// on overflow — NT's circular event-log behaviour. 0 (the default) keeps
  /// everything: the run classifiers count restart events over the whole run.
  void set_retention(std::size_t max_entries);
  std::size_t retention() const { return retention_; }

  const std::vector<EventLogEntry>& entries() const { return entries_; }

  /// Entries from `source` at or after `since`.
  std::vector<EventLogEntry> query(std::string_view source,
                                   sim::TimePoint since = {}) const;

  /// Number of entries from `source` with the given event id.
  std::size_t count(std::string_view source, std::uint32_t event_id) const;

  void clear() { entries_.clear(); }

  // --- snapshots (src/snap/) ------------------------------------------------

  struct Snapshot {
    std::vector<EventLogEntry> entries;
    std::size_t retention = 0;

    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };

  Snapshot capture() const { return Snapshot{entries_, retention_}; }
  void restore(const Snapshot& s) {
    entries_ = s.entries;
    retention_ = s.retention;
  }

 private:
  std::vector<EventLogEntry> entries_;
  std::size_t retention_ = 0;
};

}  // namespace dts::nt
