// Core Windows NT 4.0 types and constants, modeled for the simulator.
//
// The simulated machine is 32-bit x86 (the paper's testbed is a Pentium
// running NT 4.0 SP4), so every raw syscall argument is a 32-bit word. Fault
// injection corrupts these words exactly as DTS did: zero all bits, set all
// bits, or flip all bits.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dts::nt {

using Word = std::uint32_t;  // a raw 32-bit syscall argument
using Dword = std::uint32_t;
using Pid = std::uint32_t;
using Tid = std::uint32_t;

/// A user-space address in a simulated process. Strongly typed so app code
/// cannot confuse pointers with sizes or handles.
struct Ptr {
  Word addr = 0;

  constexpr bool is_null() const { return addr == 0; }
  constexpr friend auto operator<=>(Ptr, Ptr) = default;
  constexpr Ptr offset(Word delta) const { return Ptr{addr + delta}; }
};

constexpr Ptr kNullPtr{};

/// A handle value as seen by user code. Real object resolution goes through
/// the process handle table; corrupted values simply fail to resolve.
struct Handle {
  Word value = 0;

  constexpr bool is_null() const { return value == 0; }
  constexpr friend auto operator<=>(Handle, Handle) = default;
};

constexpr Handle kNullHandle{};
/// NT pseudo-handle for the current process ((HANDLE)-1). Note that the
/// "set all bits" fault turns any handle argument into this value — a real
/// phenomenon on NT that DTS exercised.
constexpr Handle kCurrentProcessPseudoHandle{0xFFFFFFFFu};
/// NT pseudo-handle for the current thread ((HANDLE)-2).
constexpr Handle kCurrentThreadPseudoHandle{0xFFFFFFFEu};
constexpr Word kInvalidHandleValue = 0xFFFFFFFFu;  // returned by CreateFile on error

// Win32 wait constants.
constexpr Dword kWaitObject0 = 0x00000000;
constexpr Dword kWaitAbandoned = 0x00000080;
constexpr Dword kWaitTimeout = 0x00000102;
constexpr Dword kWaitFailed = 0xFFFFFFFF;
constexpr Dword kInfinite = 0xFFFFFFFF;

// Win32 error codes (the subset the simulated API can produce).
enum class Win32Error : Dword {
  kSuccess = 0,
  kFileNotFound = 2,
  kPathNotFound = 3,
  kTooManyOpenFiles = 4,
  kAccessDenied = 5,
  kInvalidHandle = 6,
  kNotEnoughMemory = 8,
  kInvalidData = 13,
  kOutOfMemory = 14,
  kWriteProtect = 19,
  kNotReady = 21,
  kSharingViolation = 32,
  kHandleEof = 38,
  kNotSupported = 50,
  kFileExists = 80,
  kInvalidParameter = 87,
  kBrokenPipe = 109,
  kBufferOverflow = 111,
  kDiskFull = 112,
  kInsufficientBuffer = 122,
  kInvalidName = 123,
  kDirNotEmpty = 145,
  kAlreadyExists = 183,
  kEnvVarNotFound = 203,
  kNotOwner = 288,
  kPipeBusy = 231,
  kPipeConnected = 535,
  kPipeListening = 536,
  kNoData = 232,
  kPipeNotConnected = 233,
  kMoreData = 234,
  kWaitNoChildren = 128,
  kNoMoreFiles = 18,
  kNegativeSeek = 131,
  kNoAccess = 998,            // attempt to access invalid address
  kInvalidFlags = 1004,
  kServiceRequestTimeout = 1053,
  kServiceDatabaseLocked = 1055,
  kServiceAlreadyRunning = 1056,
  kServiceNotActive = 1062,
  kServiceCannotAcceptCtrl = 1061,
  kServiceDoesNotExist = 1060,
  kInvalidAddress = 487,
  kIoPending = 997,
  kOperationAborted = 995,
  kConnectionRefused = 1225,
  kConnectionAborted = 1236,
  kTimeoutError = 1460,
};

inline Dword to_dword(Win32Error e) { return static_cast<Dword>(e); }

/// Access-mode bits for CreateFile.
constexpr Dword kGenericRead = 0x80000000;
constexpr Dword kGenericWrite = 0x40000000;

/// Creation-disposition values for CreateFile.
constexpr Dword kCreateNew = 1;
constexpr Dword kCreateAlways = 2;
constexpr Dword kOpenExisting = 3;
constexpr Dword kOpenAlways = 4;
constexpr Dword kTruncateExisting = 5;

/// File attributes (subset).
constexpr Dword kFileAttributeNormal = 0x80;
constexpr Dword kFileAttributeDirectory = 0x10;
constexpr Dword kInvalidFileAttributes = 0xFFFFFFFF;

/// SetFilePointer move methods.
constexpr Dword kFileBegin = 0;
constexpr Dword kFileCurrent = 1;
constexpr Dword kFileEnd = 2;
constexpr Dword kInvalidSetFilePointer = 0xFFFFFFFF;

/// Std handle ids.
constexpr Dword kStdInputHandle = 0xFFFFFFF6;   // (DWORD)-10
constexpr Dword kStdOutputHandle = 0xFFFFFFF5;  // (DWORD)-11
constexpr Dword kStdErrorHandle = 0xFFFFFFF4;   // (DWORD)-12

/// Simulated access violation: thrown when simulated user code (or the
/// user-mode half of a KERNEL32 function) touches an invalid address.
/// Escaping a thread body, it terminates the process — NT's unhandled
/// exception behaviour, and the dominant crash mechanism under DTS faults.
class AccessViolation : public std::runtime_error {
 public:
  AccessViolation(Word address, bool is_write)
      : std::runtime_error(std::string("access violation ") +
                           (is_write ? "writing" : "reading") + " address " +
                           to_hex(address)),
        address_(address),
        is_write_(is_write) {}

  Word address() const { return address_; }
  bool is_write() const { return is_write_; }

  static std::string to_hex(Word v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%08X", v);
    return buf;
  }

 private:
  Word address_;
  bool is_write_;
};

/// Simulated structured exception raised by RaiseException / DebugBreak.
/// Unhandled (no simulated debugger ever attaches), it terminates the
/// process with its status code.
class RaisedException : public std::runtime_error {
 public:
  explicit RaisedException(Dword code)
      : std::runtime_error("unhandled exception " + AccessViolation::to_hex(code)),
        code_(code) {}
  Dword code() const { return code_; }

 private:
  Dword code_;
};

/// Copy-on-write sharing accounting for snapshot capture (src/snap/):
/// how many payload blocks of a component are structure-shared with live
/// state or earlier snapshots vs privately owned, and the bytes covered.
/// "Block" is the component's payload unit — a VirtualMemory allocation
/// ("page") or one file's content run.
struct CowStats {
  std::uint64_t shared_blocks = 0;
  std::uint64_t copied_blocks = 0;
  std::uint64_t shared_bytes = 0;
  std::uint64_t copied_bytes = 0;
};

/// Process exit codes used by the simulated NT for abnormal termination.
constexpr Dword kExitCodeAccessViolation = 0xC0000005;  // STATUS_ACCESS_VIOLATION
constexpr Dword kExitCodeStackOverflow = 0xC00000FD;
constexpr Dword kExitCodeTerminated = 1;
constexpr Dword kStillActive = 259;  // STILL_ACTIVE

}  // namespace dts::nt
