// Per-process handle table.
//
// Handle values follow NT conventions (small multiples of 4). A corrupted
// handle argument almost never resolves — except "set all bits", which
// becomes the current-process pseudo-handle, a genuine NT hazard that DTS
// exercised.
#pragma once

#include <map>
#include <memory>

#include "ntsim/object.h"
#include "ntsim/types.h"

namespace dts::nt {

class HandleTable {
 public:
  /// Inserts an object and returns the new handle.
  Handle insert(std::shared_ptr<KernelObject> obj);

  /// Resolves a handle to its object, or nullptr. Pseudo-handles are not
  /// resolved here (the kernel layer handles those before consulting the
  /// table).
  std::shared_ptr<KernelObject> get(Handle h) const;

  /// Resolves and downcasts. Returns nullptr on bad handle or wrong type.
  template <typename T>
  std::shared_ptr<T> get_as(Handle h) const {
    return std::dynamic_pointer_cast<T>(get(h));
  }

  /// Closes a handle. Returns false if the handle was not open.
  bool close(Handle h);

  /// Removes every handle (process teardown). Object destructors run here
  /// for objects whose last reference this was.
  void clear() { table_.clear(); }

  std::size_t open_handles() const { return table_.size(); }

  /// Iteration support (used by process teardown to abandon owned mutexes).
  auto begin() const { return table_.begin(); }
  auto end() const { return table_.end(); }

  // --- snapshots (src/snap/) ------------------------------------------------
  // A capture shares the kernel objects themselves (they are live objects
  // wired to the simulation — only the handle→object mapping is state here).
  // Equality is therefore handle values + object identity, and an in-memory
  // restore is only meaningful within the world that captured it; snapshots
  // of a *different* world go through the fork-based execution path.

  struct Snapshot {
    std::map<Word, std::shared_ptr<KernelObject>> table;
    Word next = 0x10;

    // shared_ptr comparison == pointer identity, which is exactly the
    // equality that makes sense for live kernel objects.
    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };

  Snapshot capture() const { return Snapshot{table_, next_}; }
  void restore(const Snapshot& s) {
    table_ = s.table;
    next_ = s.next;
  }

 private:
  std::map<Word, std::shared_ptr<KernelObject>> table_;
  Word next_ = 0x10;
};

}  // namespace dts::nt
