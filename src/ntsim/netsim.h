// Simulated TCP networking between machines (the WSOCK32 analogue).
//
// Deliberately NOT routed through the injected KERNEL32 surface: DTS
// intercepted KERNEL32.dll only, so socket calls are not fault-injection
// candidates — but server crashes must still reset connections and refuse
// new ones, which is what drives the client's retry logic.
//
// Sockets and listeners are plain reference-counted objects held in
// coroutine frames; when a process is killed its frames are destroyed and
// the destructors close everything, waking blocked peers.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ntsim/process.h"
#include "sim/task.h"

namespace dts::nt::net {

struct NetworkConfig {
  sim::Duration latency = sim::Duration::millis(2);
  /// Link throughput; 10 Mbit/s Ethernet of the era.
  std::uint64_t bytes_per_second = 1'250'000;

  friend bool operator==(const NetworkConfig&, const NetworkConfig&) = default;
};

class Network;
class Listener;

/// One direction of a connection.
struct Stream {
  std::string buffer;  // delivered, unread bytes
  bool eof = false;    // sender closed (or crashed)
  std::vector<sim::WakePtr> read_waiters;
  sim::TimePoint earliest_delivery;  // FIFO ordering of in-flight sends

  void wake_readers(sim::Simulation& sim) {
    auto pending = std::move(read_waiters);
    read_waiters.clear();
    for (auto& tok : pending) sim::wake(sim, tok, sim::WakeReason::kSignaled);
  }
};

/// One endpoint of an established connection. Each socket carries the
/// NetworkConfig of the link it was established over (per-link overrides are
/// resolved once, at connect time), so send/close costs follow that link.
class Socket {
 public:
  Socket(Network& net, std::shared_ptr<Stream> rx, std::shared_ptr<Stream> tx,
         NetworkConfig cfg)
      : net_(&net), rx_(std::move(rx)), tx_(std::move(tx)), cfg_(cfg) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Queues data for delivery to the peer after latency + size/bandwidth.
  /// Never blocks (unbounded send buffer). Data sent after close is dropped.
  void send(std::string_view data);

  /// Receives up to `max` bytes. Blocks until data, EOF or timeout. Returns
  /// nullopt on timeout; empty string on EOF.
  sim::CoTask<std::optional<std::string>> recv(Ctx c, std::size_t max,
                                               std::optional<sim::Duration> timeout = {});

  /// Receives until `delim` appears (returning everything through the
  /// delimiter), EOF (nullopt), timeout (nullopt) or `max` bytes (nullopt —
  /// oversized request). Consumes what it returns.
  sim::CoTask<std::optional<std::string>> recv_until(Ctx c, std::string delim,
                                                     std::size_t max,
                                                     std::optional<sim::Duration> timeout = {});

  /// Receives exactly `n` bytes (or nullopt on EOF/timeout).
  sim::CoTask<std::optional<std::string>> recv_exactly(Ctx c, std::size_t n,
                                                       std::optional<sim::Duration> timeout = {});

  /// True once the peer has closed and all delivered data was consumed.
  bool at_eof() const { return rx_->buffer.empty() && rx_->eof; }
  bool closed() const { return closed_; }

  void close();

 private:
  Network* net_;
  std::shared_ptr<Stream> rx_;
  std::shared_ptr<Stream> tx_;
  NetworkConfig cfg_;
  bool closed_ = false;
};

/// A listening port. Owned by the server accept-loop frame; destruction
/// releases the port and resets un-accepted connections.
class Listener {
 public:
  Listener(Network& net, std::string machine, std::uint16_t port)
      : net_(&net), machine_(std::move(machine)), port_(port) {}
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Accepts the next pending connection; blocks until one arrives.
  /// Returns nullptr only on timeout (if given).
  sim::CoTask<std::shared_ptr<Socket>> accept(Ctx c,
                                              std::optional<sim::Duration> timeout = {});

  std::uint16_t port() const { return port_; }
  std::size_t backlog() const { return pending_.size(); }

 private:
  friend class Network;
  Network* net_;
  std::string machine_;
  std::uint16_t port_;
  std::deque<std::shared_ptr<Socket>> pending_;
  std::vector<sim::WakePtr> accept_waiters_;
};

/// LIFETIME: the Network must outlive every Machine whose processes hold
/// sockets or listeners — declare it before the machines (socket/listener
/// destructors, run during process teardown, call back into the Network).
class Network {
 public:
  explicit Network(sim::Simulation& sim, NetworkConfig cfg = {}) : sim_(&sim), cfg_(cfg) {}

  sim::Simulation& sim() const { return *sim_; }
  const NetworkConfig& config() const { return cfg_; }

  /// Overrides latency/bandwidth for the (a, b) machine pair, both
  /// directions (the pair key is unordered). Connections established later
  /// use the override; live sockets keep the config they connected with.
  void set_link(const std::string& a, const std::string& b, NetworkConfig cfg);

  /// The effective config between two machines: the per-link override if one
  /// was set, the network default otherwise. A machine's link to itself
  /// (loopback within the simulated LAN) resolves the same way.
  const NetworkConfig& link_config(const std::string& a, const std::string& b) const;

  /// Opens a listening port on the named machine. Nullptr if the port is
  /// already bound.
  std::shared_ptr<Listener> listen(const std::string& machine, std::uint16_t port);

  /// Connects from the calling simulated thread to (machine, port). Returns
  /// nullptr on refusal (no listener) — immediately, like a TCP RST — or on
  /// timeout.
  sim::CoTask<std::shared_ptr<Socket>> connect(Ctx c, const std::string& machine,
                                               std::uint16_t port,
                                               std::optional<sim::Duration> timeout = {});

  /// Host-side probe: is anything listening on (machine, port)?
  bool port_open(const std::string& machine, std::uint16_t port) const;

  std::uint64_t connections_made() const { return connections_; }

  // --- snapshots (src/snap/) ------------------------------------------------
  // Listeners and sockets live inside coroutine frames the Network does not
  // own, so a snapshot records only the connection counter plus which ports
  // were bound (an identity check). Live wire state is covered by the
  // fork-based execution path, never by in-memory restore.

  struct Snapshot {
    std::uint64_t connections = 0;
    std::vector<std::pair<std::string, std::uint16_t>> bound_ports;  // sorted

    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };

  Snapshot capture() const;

  /// Restores the counter. Returns false if the currently bound port set
  /// differs from the snapshot's (the world diverged structurally).
  bool restore(const Snapshot& s);

 private:
  friend class Socket;
  friend class Listener;

  void unbind(const std::string& machine, std::uint16_t port, const Listener* who);

  sim::Simulation* sim_;
  NetworkConfig cfg_;
  std::map<std::pair<std::string, std::uint16_t>, Listener*> listeners_;
  std::map<std::pair<std::string, std::string>, NetworkConfig> links_;  // key sorted
  std::uint64_t connections_ = 0;
};

}  // namespace dts::nt::net
