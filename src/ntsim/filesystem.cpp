#include "ntsim/filesystem.h"

#include <algorithm>
#include <cctype>

namespace dts::nt {

namespace {

char lower(char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); }

bool is_sep(char c) { return c == '\\' || c == '/'; }

}  // namespace

Filesystem::Filesystem() {
  dirs_.emplace("c:", "C:");
}

std::optional<std::string> Filesystem::normalize(std::string_view path) {
  if (path.empty() || path.size() < 2) return std::nullopt;
  if (path.find('\0') != std::string_view::npos) return std::nullopt;
  // Require a drive letter — the simulated machine has a single C: volume,
  // but we accept any letter so bad paths fail with PATH_NOT_FOUND later.
  if (!std::isalpha(static_cast<unsigned char>(path[0])) || path[1] != ':') return std::nullopt;

  std::string out;
  out.reserve(path.size());
  out.push_back(path[0]);
  out.push_back(':');
  std::size_t i = 2;
  while (i < path.size()) {
    // skip runs of separators
    while (i < path.size() && is_sep(path[i])) ++i;
    if (i >= path.size()) break;
    std::size_t j = i;
    while (j < path.size() && !is_sep(path[j])) ++j;
    std::string_view comp = path.substr(i, j - i);
    if (comp == ".") {
      // ignore
    } else if (comp == "..") {
      auto pos = out.rfind('\\');
      if (pos == std::string::npos) return std::nullopt;  // above the drive root
      out.resize(pos);  // pos == 2 pops the last component off the root
    } else {
      out.push_back('\\');
      out.append(comp);
    }
    i = j;
  }
  return out;
}

std::string Filesystem::fold(std::string_view normalized) {
  std::string out(normalized);
  std::transform(out.begin(), out.end(), out.begin(), lower);
  return out;
}

std::optional<std::string> Filesystem::parent_of(std::string_view normalized) {
  auto pos = normalized.rfind('\\');
  if (pos == std::string_view::npos) return std::nullopt;  // drive root has no parent
  if (pos == 2) return std::string(normalized.substr(0, 2));  // "c:\x" -> "c:"
  return std::string(normalized.substr(0, pos));
}

Win32Error Filesystem::mkdir(std::string_view path) {
  auto norm = normalize(path);
  if (!norm) return Win32Error::kInvalidName;
  const std::string key = fold(*norm);
  if (dirs_.contains(key) || files_.contains(key)) return Win32Error::kAlreadyExists;
  auto parent = parent_of(*norm);
  if (!parent || !dirs_.contains(fold(*parent))) return Win32Error::kPathNotFound;
  dirs_.emplace(key, *norm);
  return Win32Error::kSuccess;
}

void Filesystem::mkdirs(std::string_view path) {
  auto norm = normalize(path);
  if (!norm) return;
  std::string built;
  std::size_t start = 0;
  while (start < norm->size()) {
    auto pos = norm->find('\\', start);
    if (pos == std::string::npos) pos = norm->size();
    built = norm->substr(0, pos);
    const std::string key = fold(built);
    if (!dirs_.contains(key) && !files_.contains(key)) dirs_.emplace(key, built);
    start = pos + 1;
  }
}

Win32Error Filesystem::rmdir(std::string_view path) {
  auto norm = normalize(path);
  if (!norm) return Win32Error::kInvalidName;
  const std::string key = fold(*norm);
  auto it = dirs_.find(key);
  if (it == dirs_.end()) return Win32Error::kPathNotFound;
  if (!list(path).empty()) return Win32Error::kDirNotEmpty;
  dirs_.erase(it);
  return Win32Error::kSuccess;
}

bool Filesystem::exists(std::string_view path) const {
  auto norm = normalize(path);
  if (!norm) return false;
  const std::string key = fold(*norm);
  return dirs_.contains(key) || files_.contains(key);
}

bool Filesystem::is_directory(std::string_view path) const {
  auto norm = normalize(path);
  return norm && dirs_.contains(fold(*norm));
}

bool Filesystem::is_file(std::string_view path) const {
  auto norm = normalize(path);
  return norm && files_.contains(fold(*norm));
}

Dword Filesystem::attributes(std::string_view path) const {
  if (is_directory(path)) return kFileAttributeDirectory;
  if (is_file(path)) return kFileAttributeNormal;
  return kInvalidFileAttributes;
}

void Filesystem::put_file(std::string_view path, std::string_view contents) {
  auto norm = normalize(path);
  if (!norm) throw std::invalid_argument("put_file: bad path: " + std::string(path));
  auto parent = parent_of(*norm);
  if (parent) mkdirs(*parent);
  files_[fold(*norm)] = FileNode{*norm, std::make_shared<std::string>(contents)};
}

std::optional<std::string> Filesystem::get_file(std::string_view path) const {
  auto norm = normalize(path);
  if (!norm) return std::nullopt;
  auto it = files_.find(fold(*norm));
  if (it == files_.end()) return std::nullopt;
  return it->second.data();
}

Win32Error Filesystem::open(std::string_view path, Dword access, Dword disposition,
                            std::string* canonical, bool* created) {
  (void)access;
  if (created != nullptr) *created = false;
  auto norm = normalize(path);
  if (!norm) return Win32Error::kInvalidName;
  const std::string key = fold(*norm);
  if (dirs_.contains(key)) return Win32Error::kAccessDenied;  // opening a directory as a file
  const bool exists = files_.contains(key);

  switch (disposition) {
    case kCreateNew:
      if (exists) return Win32Error::kFileExists;
      break;
    case kCreateAlways:
    case kOpenAlways:
      break;
    case kOpenExisting:
      if (!exists) return Win32Error::kFileNotFound;
      break;
    case kTruncateExisting:
      if (!exists) return Win32Error::kFileNotFound;
      break;
    default:
      return Win32Error::kInvalidParameter;
  }

  if (!exists) {
    auto parent = parent_of(*norm);
    if (!parent || !dirs_.contains(fold(*parent))) return Win32Error::kPathNotFound;
    files_.emplace(key, FileNode{*norm, std::make_shared<std::string>()});
    if (created != nullptr) *created = true;
  } else if (disposition == kCreateAlways || disposition == kTruncateExisting) {
    // Fresh empty content: never clone the old bytes just to discard them.
    files_[key].content = std::make_shared<std::string>();
  }
  if (canonical != nullptr) *canonical = key;
  return Win32Error::kSuccess;
}

Win32Error Filesystem::read(const std::string& canonical, Word offset, Word size,
                            std::string* out) const {
  auto it = files_.find(canonical);
  if (it == files_.end()) return Win32Error::kFileNotFound;
  const std::string& c = it->second.data();
  if (offset >= c.size()) {
    out->clear();
    return Win32Error::kSuccess;  // EOF: zero bytes read
  }
  const Word avail = static_cast<Word>(c.size()) - offset;
  *out = c.substr(offset, std::min(size, avail));
  return Win32Error::kSuccess;
}

Win32Error Filesystem::write(const std::string& canonical, Word offset, std::string_view data) {
  auto it = files_.find(canonical);
  if (it == files_.end()) return Win32Error::kFileNotFound;
  std::string& c = writable(it->second);
  if (c.size() < offset + data.size()) c.resize(offset + data.size(), '\0');
  c.replace(offset, data.size(), data);
  return Win32Error::kSuccess;
}

Win32Error Filesystem::truncate(const std::string& canonical, Word new_size) {
  auto it = files_.find(canonical);
  if (it == files_.end()) return Win32Error::kFileNotFound;
  writable(it->second).resize(new_size, '\0');
  return Win32Error::kSuccess;
}

std::optional<Word> Filesystem::size(std::string_view path) const {
  auto norm = normalize(path);
  if (!norm) return std::nullopt;
  auto it = files_.find(fold(*norm));
  if (it == files_.end()) return std::nullopt;
  return static_cast<Word>(it->second.data().size());
}

Win32Error Filesystem::remove(std::string_view path) {
  auto norm = normalize(path);
  if (!norm) return Win32Error::kInvalidName;
  return files_.erase(fold(*norm)) > 0 ? Win32Error::kSuccess : Win32Error::kFileNotFound;
}

Win32Error Filesystem::move(std::string_view from, std::string_view to) {
  auto nf = normalize(from);
  auto nt_ = normalize(to);
  if (!nf || !nt_) return Win32Error::kInvalidName;
  auto it = files_.find(fold(*nf));
  if (it == files_.end()) return Win32Error::kFileNotFound;
  if (files_.contains(fold(*nt_))) return Win32Error::kAlreadyExists;
  auto parent = parent_of(*nt_);
  if (!parent || !dirs_.contains(fold(*parent))) return Win32Error::kPathNotFound;
  FileNode node = std::move(it->second);
  files_.erase(it);
  node.display_path = *nt_;
  files_.emplace(fold(*nt_), std::move(node));
  return Win32Error::kSuccess;
}

Win32Error Filesystem::copy(std::string_view from, std::string_view to, bool fail_if_exists) {
  auto nf = normalize(from);
  auto nt_ = normalize(to);
  if (!nf || !nt_) return Win32Error::kInvalidName;
  auto it = files_.find(fold(*nf));
  if (it == files_.end()) return Win32Error::kFileNotFound;
  if (fail_if_exists && files_.contains(fold(*nt_))) return Win32Error::kFileExists;
  auto parent = parent_of(*nt_);
  if (!parent || !dirs_.contains(fold(*parent))) return Win32Error::kPathNotFound;
  files_[fold(*nt_)] = FileNode{*nt_, it->second.content};
  return Win32Error::kSuccess;
}

std::vector<std::string> Filesystem::list(std::string_view dir, std::string_view pattern) const {
  std::vector<std::string> out;
  auto norm = normalize(dir);
  if (!norm || !dirs_.contains(fold(*norm))) return out;
  const std::string prefix = fold(*norm) + "\\";

  auto collect = [&](const std::string& key, const std::string& display) {
    if (key.size() <= prefix.size() || key.compare(0, prefix.size(), prefix) != 0) return;
    std::string_view rest{key.data() + prefix.size(), key.size() - prefix.size()};
    if (rest.find('\\') != std::string_view::npos) return;  // not a direct child
    std::string_view name{display.data() + prefix.size(), display.size() - prefix.size()};
    if (match(pattern, name)) out.emplace_back(name);
  };

  for (const auto& [key, node] : files_) collect(key, node.display_path);
  for (const auto& [key, display] : dirs_) collect(key, display);
  std::sort(out.begin(), out.end());
  return out;
}

bool Filesystem::match(std::string_view pattern, std::string_view name) {
  // Iterative glob with backtracking over '*'.
  std::size_t p = 0, n = 0, star = std::string_view::npos, star_n = 0;
  while (n < name.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || lower(pattern[p]) == lower(name[n]))) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_n = n;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string& Filesystem::writable(FileNode& node) {
  if (!node.content) {
    node.content = std::make_shared<std::string>();
  } else if (node.content.use_count() > 1) {
    node.content = std::make_shared<std::string>(*node.content);
    ++cow_copies_;
  }
  return *node.content;
}

bool operator==(const Filesystem::Snapshot& a, const Filesystem::Snapshot& b) {
  if (a.dirs != b.dirs || a.files.size() != b.files.size()) return false;
  auto ia = a.files.begin();
  auto ib = b.files.begin();
  for (; ia != a.files.end(); ++ia, ++ib) {
    if (ia->first != ib->first ||
        ia->second.display_path != ib->second.display_path) {
      return false;
    }
    if (ia->second.content != ib->second.content &&
        ia->second.data() != ib->second.data()) {
      return false;
    }
  }
  return true;
}

Filesystem::Snapshot Filesystem::capture(CowStats* stats) const {
  if (stats != nullptr) {
    for (const auto& [key, node] : files_) {
      if (node.content.use_count() > 1) {
        ++stats->shared_blocks;
        stats->shared_bytes += node.data().size();
      } else {
        ++stats->copied_blocks;
        stats->copied_bytes += node.data().size();
      }
    }
  }
  return Snapshot{files_, dirs_};
}

void Filesystem::restore(const Snapshot& s) {
  files_ = s.files;
  dirs_ = s.dirs;
}

std::uint64_t Filesystem::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& [_, node] : files_) sum += node.data().size();
  return sum;
}

}  // namespace dts::nt
