#include "ntsim/handle_table.h"

namespace dts::nt {

Handle HandleTable::insert(std::shared_ptr<KernelObject> obj) {
  const Word value = next_;
  next_ += 4;
  table_.emplace(value, std::move(obj));
  return Handle{value};
}

std::shared_ptr<KernelObject> HandleTable::get(Handle h) const {
  auto it = table_.find(h.value);
  return it == table_.end() ? nullptr : it->second;
}

bool HandleTable::close(Handle h) {
  return table_.erase(h.value) > 0;
}

}  // namespace dts::nt
