#include "ntsim/event_log.h"

namespace dts::nt {

void EventLog::write(sim::TimePoint time, EventSeverity sev, std::string source,
                     std::uint32_t event_id, std::string message) {
  entries_.push_back(EventLogEntry{time, sev, std::move(source), event_id, std::move(message)});
  if (retention_ > 0 && entries_.size() > retention_) {
    entries_.erase(entries_.begin(),
                   entries_.begin() +
                       static_cast<std::ptrdiff_t>(entries_.size() - retention_));
  }
}

void EventLog::set_retention(std::size_t max_entries) {
  retention_ = max_entries;
  if (retention_ > 0 && entries_.size() > retention_) {
    entries_.erase(entries_.begin(),
                   entries_.begin() +
                       static_cast<std::ptrdiff_t>(entries_.size() - retention_));
  }
}

std::vector<EventLogEntry> EventLog::query(std::string_view source, sim::TimePoint since) const {
  std::vector<EventLogEntry> out;
  for (const auto& e : entries_) {
    if (e.time >= since && e.source == source) out.push_back(e);
  }
  return out;
}

std::size_t EventLog::count(std::string_view source, std::uint32_t event_id) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.source == source && e.event_id == event_id) ++n;
  }
  return n;
}

}  // namespace dts::nt
