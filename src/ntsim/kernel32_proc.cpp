// KERNEL32 process / thread / handle functions (synchronous subset).
//
// Crash-versus-error behaviour mirrors NT 4.0: functions that touch caller
// memory in their user-mode portion (CreateProcessA string parsing,
// PROCESS_INFORMATION output, GetStartupInfoA, ...) let AccessViolation
// escape — corrupted pointers crash the process. Handle arguments resolve
// through the handle table and fail cleanly when corrupted.
#include "ntsim/kernel.h"
#include "ntsim/kernel32.h"

namespace dts::nt::k32 {

namespace {

Word create_process_a(Sys& s, const CallRecord& r) {
  const Ptr app_name{r.args[0]};
  const Ptr cmd_line{r.args[1]};
  const Word env_block = r.args[6];
  const Ptr startup_info{r.args[8]};
  const Ptr proc_info{r.args[9]};

  // CreateProcessA parses its string arguments in user mode: corrupted
  // pointers crash the caller.
  std::string command;
  if (!cmd_line.is_null()) command = s.mem().read_cstr(cmd_line);
  std::string image;
  if (!app_name.is_null()) {
    image = s.mem().read_cstr(app_name);
  } else {
    // First whitespace-delimited token of the command line.
    const auto end = command.find(' ');
    image = command.substr(0, end);
  }
  if (image.empty()) return s.fail(Win32Error::kFileNotFound);

  // lpStartupInfo is read (STARTUPINFOA, 68 bytes) in user mode.
  constexpr Word kStartfUseStdHandles = 0x100;
  Word si_flags = 0;
  std::array<Word, 3> si_std{};  // hStdInput, hStdOutput, hStdError
  if (!startup_info.is_null()) {
    (void)s.mem().read(startup_info, 68);
    si_flags = s.mem().read_u32(startup_info.offset(44));
    if ((si_flags & kStartfUseStdHandles) != 0) {
      si_std[0] = s.mem().read_u32(startup_info.offset(56));
      si_std[1] = s.mem().read_u32(startup_info.offset(60));
      si_std[2] = s.mem().read_u32(startup_info.offset(64));
    }
  }

  // An explicit environment block is parsed in user mode (sequence of
  // "K=V\0" strings, double-NUL terminated).
  std::map<std::string, std::string> env;
  bool has_env = false;
  if (env_block != 0) {
    has_env = true;
    Word off = 0;
    for (;;) {
      const std::string entry = s.mem().read_cstr(Ptr{env_block + off});
      if (entry.empty()) break;
      off += static_cast<Word>(entry.size()) + 1;
      const auto eq = entry.find('=');
      if (eq != std::string::npos) env[entry.substr(0, eq)] = entry.substr(eq + 1);
    }
  }

  const Pid child = s.m.start_process(image, command, s.p.pid());
  if (child == 0) return s.fail(Win32Error::kFileNotFound);
  Process* cp = s.m.find_process(child);
  if (has_env) {
    // Replace the default environment wholesale, as NT does.
    cp->env() = std::move(env);
  }

  // STARTF_USESTDHANDLES: redirect the child's standard handles to (copies
  // of) the parent's — the CGI stdout-pipe mechanism. Unresolvable handle
  // values leave the child with its defaults, as NT's inheritance did.
  if ((si_flags & kStartfUseStdHandles) != 0) {
    const Dword ids[3] = {kStdInputHandle, kStdOutputHandle, kStdErrorHandle};
    for (int i = 0; i < 3; ++i) {
      if (auto obj = s.resolve(si_std[static_cast<std::size_t>(i)])) {
        cp->user.std_handles[ids[i]] = cp->handles().insert(std::move(obj)).value;
      }
    }
  }

  const Handle h_process = s.p.handles().insert(cp->object());
  Thread* main_thread = cp->find_thread(cp->main_tid());
  const Handle h_thread = s.p.handles().insert(main_thread->object());

  // PROCESS_INFORMATION is written in user mode: bad pointers crash.
  s.mem().write_u32(proc_info, h_process.value);
  s.mem().write_u32(proc_info.offset(4), h_thread.value);
  s.mem().write_u32(proc_info.offset(8), child);
  s.mem().write_u32(proc_info.offset(12), cp->main_tid());
  return 1;
}

Word create_thread(Sys& s, const CallRecord& r) {
  const Word start_address = r.args[2];
  const Word parameter = r.args[3];
  const Word tid_out = r.args[5];

  const ThreadRoutine* routine = s.p.find_routine(start_address);
  Thread* t = nullptr;
  if (routine != nullptr) {
    const ThreadRoutine fn = *routine;
    t = &s.p.spawn_thread([fn, parameter](Ctx ctx) { return fn(ctx, parameter); });
  } else {
    // NT creates the thread regardless; it faults at the bogus start address
    // on its first time slice, taking the whole process down.
    t = &s.p.spawn_thread([start_address](Ctx) -> sim::Task {
      throw AccessViolation{start_address, /*is_write=*/false};
      co_return;  // unreachable; makes this a coroutine
    });
  }

  const Handle h = s.p.handles().insert(t->object());
  if (tid_out != 0) s.mem().write_u32(Ptr{tid_out}, t->tid());  // user-mode write
  return h.value;
}

Word duplicate_handle(Sys& s, const CallRecord& r) {
  auto src_proc = s.resolve(r.args[0]);
  auto dst_proc = s.resolve(r.args[2]);
  if (src_proc == nullptr || dst_proc == nullptr ||
      src_proc->type() != ObjectType::kProcess || dst_proc->type() != ObjectType::kProcess) {
    return s.fail(Win32Error::kInvalidHandle);
  }
  // Only same-process duplication is supported by the simulated servers.
  auto* sp = static_cast<ProcessObject*>(src_proc.get());
  auto* dp = static_cast<ProcessObject*>(dst_proc.get());
  if (sp->pid() != s.p.pid() || dp->pid() != s.p.pid()) {
    return s.fail(Win32Error::kAccessDenied);
  }
  auto obj = s.resolve(r.args[1]);
  if (obj == nullptr) return s.fail(Win32Error::kInvalidHandle);
  const Handle dup = s.p.handles().insert(std::move(obj));
  // The output handle is probed by the kernel: error return, not a crash.
  try {
    s.mem().write_u32(Ptr{r.args[3]}, dup.value);
  } catch (const AccessViolation&) {
    s.p.handles().close(dup);
    return s.fail(Win32Error::kNoAccess);
  }
  return 1;
}

Word get_std_handle(Sys& s, Word id) {
  auto it = s.p.user.std_handles.find(id);
  if (it == s.p.user.std_handles.end()) {
    return s.fail(Win32Error::kInvalidHandle, kInvalidHandleValue);
  }
  return it->second;
}

}  // namespace

Word sync_proc(Sys& s, const CallRecord& r) {
  const auto& a = r.args;
  switch (r.fn) {
    case Fn::CreateProcessA:
      return create_process_a(s, r);
    case Fn::CreateThread:
      return create_thread(s, r);
    case Fn::TerminateProcess: {
      auto obj = s.resolve(a[0]);
      auto* po = dynamic_cast<ProcessObject*>(obj.get());
      if (po == nullptr) return s.fail(Win32Error::kInvalidHandle);
      if (po->exited()) return s.fail(Win32Error::kAccessDenied);
      s.m.request_process_exit(po->pid(), a[1], "TerminateProcess");
      return 1;
    }
    case Fn::GetExitCodeProcess: {
      auto obj = s.resolve(a[0]);
      auto* po = dynamic_cast<ProcessObject*>(obj.get());
      if (po == nullptr) return s.fail(Win32Error::kInvalidHandle);
      s.mem().write_u32(Ptr{a[1]}, po->exit_code());  // user-mode write
      return 1;
    }
    case Fn::GetExitCodeThread: {
      auto obj = s.resolve(a[0]);
      auto* to = dynamic_cast<ThreadObject*>(obj.get());
      if (to == nullptr) return s.fail(Win32Error::kInvalidHandle);
      s.mem().write_u32(Ptr{a[1]}, to->exit_code());
      return 1;
    }
    case Fn::OpenProcess: {
      Process* target = s.m.find_process(a[2]);
      if (target == nullptr) return s.fail(Win32Error::kInvalidParameter);
      return s.p.handles().insert(target->object()).value;
    }
    case Fn::GetCurrentProcess:
      return kCurrentProcessPseudoHandle.value;
    case Fn::GetCurrentProcessId:
      return s.p.pid();
    case Fn::GetCurrentThread:
      return kCurrentThreadPseudoHandle.value;
    case Fn::GetCurrentThreadId:
      return s.c.tid;
    case Fn::SetThreadPriority:
    case Fn::SetPriorityClass: {
      if (s.resolve(a[0]) == nullptr) return s.fail(Win32Error::kInvalidHandle);
      return 1;  // priorities have no effect on the simulated scheduler
    }
    case Fn::GetThreadPriority: {
      if (s.resolve(a[0]) == nullptr) {
        return s.fail(Win32Error::kInvalidHandle, 0x7FFFFFFF);  // THREAD_PRIORITY_ERROR_RETURN
      }
      return 0;  // THREAD_PRIORITY_NORMAL
    }
    case Fn::GetPriorityClass: {
      if (s.resolve(a[0]) == nullptr) return s.fail(Win32Error::kInvalidHandle);
      return 0x20;  // NORMAL_PRIORITY_CLASS
    }
    case Fn::ResumeThread:
    case Fn::SuspendThread: {
      if (dynamic_cast<ThreadObject*>(s.resolve(a[0]).get()) == nullptr) {
        return s.fail(Win32Error::kInvalidHandle, kInvalidHandleValue);
      }
      return 0;  // previous suspend count; suspension itself is not modelled
    }
    case Fn::CloseHandle: {
      if (a[0] == kCurrentProcessPseudoHandle.value ||
          a[0] == kCurrentThreadPseudoHandle.value) {
        return 1;  // NT ignores closing pseudo-handles
      }
      if (!s.p.handles().close(Handle{a[0]})) return s.fail(Win32Error::kInvalidHandle);
      return 1;
    }
    case Fn::DuplicateHandle:
      return duplicate_handle(s, r);
    case Fn::GetStartupInfoA: {
      // Writes a STARTUPINFOA (68 bytes) through the pointer in user mode.
      const Ptr p{a[0]};
      s.mem().write_u32(p, 68);  // cb
      std::vector<std::byte> zeros(64, std::byte{0});
      s.mem().write(p.offset(4), zeros);
      return 0;  // void
    }
    case Fn::GetCommandLineA: {
      if (s.p.user.command_line_ptr == 0) {
        s.p.user.command_line_ptr = s.mem().alloc_cstr(s.p.command_line()).addr;
      }
      return s.p.user.command_line_ptr;
    }
    case Fn::SetConsoleCtrlHandler:
      return 1;  // stored handler is never invoked by the simulated console
    case Fn::GetStdHandle:
      return get_std_handle(s, a[0]);
    case Fn::SetStdHandle: {
      if (s.resolve(a[1]) == nullptr) return s.fail(Win32Error::kInvalidHandle);
      s.p.user.std_handles[a[0]] = a[1];
      return 1;
    }
    default:
      throw std::logic_error("sync_proc: unrouted function");
  }
}

}  // namespace dts::nt::k32
