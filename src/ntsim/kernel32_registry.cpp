#include "ntsim/kernel32_registry.h"

#include <map>

namespace dts::nt {

namespace {

/// Additional genuine KERNEL32 4.0 exports that the simulated servers never
/// call. Only name and parameter count matter (they size the fault list and
/// the "not called" statistics); parameter names are synthesized.
struct ExtraExport {
  std::string_view name;
  int params;
};

constexpr ExtraExport kExtraExports[] = {
    {"AddAtomA", 1}, {"AddAtomW", 1}, {"AllocConsole", 0},
    {"AreFileApisANSI", 0}, {"BackupRead", 7}, {"BackupSeek", 6},
    {"BackupWrite", 7}, {"BuildCommDCBA", 2}, {"BuildCommDCBAndTimeoutsA", 3},
    {"ClearCommBreak", 1}, {"ClearCommError", 3},
    {"ContinueDebugEvent", 3},
    {"ConvertDefaultLocale", 1}, {"CopyFileExA", 6}, {"CopyFileW", 3},
    {"CreateConsoleScreenBuffer", 5}, {"CreateDirectoryExA", 3},
    {"CreateDirectoryW", 2}, {"CreateEventW", 4}, {"CreateFileW", 7},
    {"CreateFileMappingW", 6}, {"CreateIoCompletionPort", 4},
    {"CreateMailslotA", 4}, {"CreateMutexW", 3},
    {"CreateNamedPipeW", 8}, {"CreateProcessW", 10}, {"CreateRemoteThread", 7},
    {"CreateSemaphoreW", 4}, {"CreateTapePartition", 4}, {"CreateWaitableTimerA", 3},
    {"DebugActiveProcess", 1}, {"DefineDosDeviceA", 3}, {"DeleteAtom", 1},
    {"DeleteFileW", 1}, {"DisableThreadLibraryCalls", 1},
    {"DosDateTimeToFileTime", 3},
    {"EndUpdateResourceA", 2}, {"EnumCalendarInfoA", 4},
    {"EnumDateFormatsA", 3}, {"EnumResourceLanguagesA", 6},
    {"EnumResourceNamesA", 4}, {"EnumResourceTypesA", 3},
    {"EnumSystemCodePagesA", 2}, {"EnumSystemLocalesA", 2},
    {"EnumTimeFormatsA", 3}, {"EraseTape", 3}, {"EscapeCommFunction", 2},
    {"FatalAppExitA", 2}, {"FatalExit", 1},
    {"FileTimeToDosDateTime", 3}, {"FileTimeToLocalFileTime", 2},
    {"FillConsoleOutputAttribute", 5},
    {"FillConsoleOutputCharacterA", 5}, {"FindAtomA", 1},
    {"FindCloseChangeNotification", 1}, {"FindFirstChangeNotificationA", 3},
    {"FindFirstFileW", 2}, {"FindNextChangeNotification", 1},
    {"FindNextFileW", 2}, {"FindResourceA", 3}, {"FindResourceExA", 4},
    {"FlushConsoleInputBuffer", 1}, {"FlushInstructionCache", 3},
    {"FlushViewOfFile", 2}, {"FoldStringA", 5}, {"FormatMessageW", 7},
    {"FreeConsole", 0}, {"FreeEnvironmentStringsW", 1}, {"FreeLibraryAndExitThread", 2},
    {"FreeResource", 1}, {"GenerateConsoleCtrlEvent", 2}, {"GetAtomNameA", 3},
    {"GetBinaryTypeA", 2}, {"GetCommandLineW", 0}, {"GetCommConfig", 3},
    {"GetCommMask", 2}, {"GetCommModemStatus", 2}, {"GetCommProperties", 2},
    {"GetCommState", 2}, {"GetCommTimeouts", 2}, {"GetCompressedFileSizeA", 2},
    {"GetComputerNameW", 2}, {"GetConsoleCP", 0}, {"GetConsoleCursorInfo", 2},
    {"GetConsoleMode", 2}, {"GetConsoleOutputCP", 0},
    {"GetConsoleScreenBufferInfo", 2}, {"GetConsoleTitleA", 2},
    {"GetCurrencyFormatA", 6}, {"GetCurrentDirectoryW", 2},
    {"GetDateFormatA", 6}, {"GetDefaultCommConfigA", 3},
    {"GetDiskFreeSpaceW", 5}, {"GetDriveTypeW", 1},
    {"GetEnvironmentStringsW", 0}, {"GetEnvironmentVariableW", 3},
    {"GetExitCodeProcessW", 2}, {"GetFileAttributesW", 1},
    {"GetFileInformationByHandle", 2}, 
    {"GetFullPathNameW", 4}, {"GetHandleInformation", 2},
    {"GetLargestConsoleWindowSize", 1}, 
    {"GetLogicalDriveStringsA", 2}, {"GetMailslotInfo", 5},
    {"GetModuleFileNameW", 3}, {"GetModuleHandleW", 1},
    {"GetNamedPipeHandleStateA", 7}, {"GetNamedPipeInfo", 5},
    {"GetNumberFormatA", 6}, {"GetNumberOfConsoleInputEvents", 2},
    {"GetNumberOfConsoleMouseButtons", 1}, 
    {"GetOverlappedResult", 4}, {"GetPrivateProfileSectionA", 4},
    {"GetPrivateProfileSectionNamesA", 3}, {"GetProcessAffinityMask", 3},
    {"GetProcessShutdownParameters", 2}, {"GetProcessTimes", 5},
    {"GetProcessVersion", 1}, {"GetProcessWorkingSetSize", 3},
    {"GetProfileIntA", 3}, {"GetProfileSectionA", 3}, 
    {"GetQueuedCompletionStatus", 5}, {"GetStringTypeA", 5},
    {"GetStringTypeExA", 5}, {"GetStringTypeW", 4},
    {"GetSystemDefaultLCID", 0}, {"GetSystemPowerStatus", 1},
    {"GetSystemTimeAdjustment", 3}, {"GetTapeParameters", 4},
    {"GetTapePosition", 5}, {"GetTapeStatus", 1}, {"GetThreadContext", 2},
    {"GetThreadLocale", 0}, {"GetThreadSelectorEntry", 3},
    {"GetThreadTimes", 5}, {"GetTimeFormatA", 6}, {"GetTimeZoneInformation", 1},
    {"GetUserDefaultLangID", 0}, {"GetUserDefaultLCID", 0},
    {"GetWindowsDirectoryW", 2},
    {"GlobalAddAtomA", 1}, {"GlobalDeleteAtom", 1}, {"GlobalFindAtomA", 1},
    {"GlobalFlags", 1}, {"GlobalGetAtomNameA", 3}, {"GlobalHandle", 1},
    {"GlobalReAlloc", 3}, {"HeapCompact", 2},
    {"HeapLock", 1}, {"HeapUnlock", 1}, {"HeapValidate", 3}, {"HeapWalk", 2},
    {"InitAtomTable", 1}, {"IsBadCodePtr", 1}, {"IsBadHugeReadPtr", 2},
    {"IsBadHugeWritePtr", 2}, {"IsDBCSLeadByte", 1},
    {"IsDBCSLeadByteEx", 2}, {"IsDebuggerPresent", 0}, {"IsValidCodePage", 1},
    {"IsValidLocale", 2}, {"LCMapStringA", 6}, {"LCMapStringW", 6},
    {"LoadLibraryExA", 3}, {"LoadLibraryExW", 3}, {"LoadLibraryW", 1},
    {"LoadModule", 2}, {"LoadResource", 2}, {"LocalFlags", 1},
    {"LocalHandle", 1}, {"LocalLock", 1}, {"LocalReAlloc", 3},
    {"LocalShrink", 2}, {"LocalSize", 1}, {"LocalUnlock", 1},
    {"LockResource", 1}, {"MapViewOfFileEx", 6}, 
    {"MoveFileW", 2}, {"OpenFile", 3},
    {"OpenFileMappingA", 3}, {"OpenProcessToken", 3}, {"OpenWaitableTimerA", 3},
    {"PostQueuedCompletionStatus", 4}, {"PrepareTape", 3},
    {"PulseEventW", 1}, {"PurgeComm", 2}, {"QueryDosDeviceA", 3},
    {"QueueUserAPC", 3}, {"ReadConsoleA", 5}, {"ReadConsoleInputA", 4},
    {"ReadConsoleOutputA", 5}, {"ReadProcessMemory", 5},
    {"RegisterConsoleVDM", 11}, {"ReleaseMutexW", 1}, {"RemoveDirectoryW", 1},
    {"ResetEventW", 1}, {"SetCommBreak", 1}, {"SetCommConfig", 3},
    {"SetCommMask", 2}, {"SetCommState", 2}, {"SetCommTimeouts", 2},
    {"SetComputerNameA", 1}, {"SetConsoleActiveScreenBuffer", 1},
    {"SetConsoleCP", 1}, {"SetConsoleCursorInfo", 2},
    {"SetConsoleCursorPosition", 2}, {"SetConsoleMode", 2},
    {"SetConsoleOutputCP", 1}, {"SetConsoleScreenBufferSize", 2},
    {"SetConsoleTextAttribute", 2}, {"SetConsoleTitleA", 1},
    {"SetConsoleWindowInfo", 3}, {"SetDefaultCommConfigA", 3},
    {"SetEndOfFileW", 1}, {"SetEnvironmentVariableW", 2},
    {"SetFileApisToANSI", 0}, {"SetFileApisToOEM", 0}, 
    {"SetLocaleInfoA", 3}, {"SetLocalTime", 1}, {"SetMailslotInfo", 2},
    {"SetNamedPipeHandleState", 4}, {"SetProcessAffinityMask", 2},
    {"SetProcessShutdownParameters", 2}, {"SetProcessWorkingSetSize", 3},
    {"SetSystemPowerState", 2}, {"SetSystemTime", 1},
    {"SetSystemTimeAdjustment", 2}, {"SetTapeParameters", 3},
    {"SetTapePosition", 6}, {"SetThreadAffinityMask", 2},
    {"SetThreadContext", 2}, {"SetThreadLocale", 1}, {"SetTimeZoneInformation", 1},
    {"SetVolumeLabelA", 2}, {"SetWaitableTimer", 6}, {"SizeofResource", 2},
    {"SuspendThreadW", 1}, 
    {"SystemTimeToTzSpecificLocalTime", 3}, {"TerminateThread", 2},
    {"TransactNamedPipe", 7}, {"TransmitCommChar", 2},
    {"UnhandledExceptionFilter", 1}, {"UnlockFileEx", 5},
    {"UpdateResourceA", 6}, {"VerLanguageNameA", 3}, {"VirtualAllocEx", 5},
    {"VirtualLock", 2}, {"VirtualProtect", 4}, {"VirtualProtectEx", 5},
    {"VirtualQuery", 3}, {"VirtualQueryEx", 4}, {"VirtualUnlock", 2},
    {"WaitCommEvent", 3}, {"WaitForDebugEvent", 2},
    {"WaitForMultipleObjectsEx", 5},
    {"WideCharToMultiByteW", 8}, {"WinExec", 2}, {"WriteConsoleA", 5},
    {"WriteConsoleInputA", 4}, {"WriteConsoleOutputA", 5},
    {"WritePrivateProfileSectionA", 3}, {"WriteProcessMemory", 5},
    {"WriteProfileStringA", 3}, {"WriteTapemark", 4},
    {"_hread", 3}, {"_hwrite", 3}, {"_lclose", 1}, {"_lcreat", 2},
    {"_llseek", 3}, {"_lopen", 2}, {"_lread", 3}, {"_lwrite", 3},
};

/// Synthesized parameter names for uncalled exports ("arg0", "arg1", ...).
std::string_view synth_param_name(int i) {
  static constexpr std::string_view kNames[] = {
      "arg0", "arg1", "arg2", "arg3", "arg4", "arg5",
      "arg6", "arg7", "arg8", "arg9", "arg10", "arg11",
  };
  return kNames[i];
}

}  // namespace

Kernel32Registry::Kernel32Registry() {
  // Implemented functions, from the X-macro table.
  std::uint16_t id = 0;
#define X(fn_name, ...)                                              \
  {                                                                  \
    FunctionInfo info;                                               \
    info.id = id++;                                                  \
    info.name = #fn_name;                                            \
    info.implemented = true;                                         \
    const std::string_view names[] = {"", ##__VA_ARGS__};            \
    for (std::size_t i = 1; i < std::size(names); ++i) {             \
      info.params.push_back(names[i]);                               \
    }                                                                \
    functions_.push_back(std::move(info));                           \
  }
#include "ntsim/kernel32_functions.inc"
#undef X

  // Uncalled genuine exports.
  for (const ExtraExport& e : kExtraExports) {
    FunctionInfo info;
    info.id = id++;
    info.name = e.name;
    info.implemented = false;
    for (int i = 0; i < e.params; ++i) info.params.push_back(synth_param_name(i));
    functions_.push_back(std::move(info));
  }

  for (const auto& f : functions_) {
    if (f.params.empty()) ++zero_param_;
  }
}

const Kernel32Registry& Kernel32Registry::instance() {
  static const Kernel32Registry reg;
  return reg;
}

const FunctionInfo* Kernel32Registry::by_name(std::string_view name) const {
  for (const auto& f : functions_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::string_view to_string(Fn f) {
  return Kernel32Registry::instance().info(f).name;
}

}  // namespace dts::nt
