#include "middleware/mscs.h"

#include <optional>

#include "ntsim/scm.h"

namespace dts::mw {

namespace {

using nt::Ctx;
using nt::ServiceState;

void log_event(nt::Machine& m, nt::EventSeverity sev, std::uint32_t id, std::string msg) {
  m.event_log().write(m.sim().now(), sev, "ClusSvc", id, std::move(msg));
}

/// The generic service resource monitor loop.
sim::Task mscs_main(Ctx c, MscsConfig cfg) {
  nt::Machine& m = c.m();
  nt::Scm& scm = m.scm();
  int failed_attempts = 0;
  bool ever_online = false;
  // When the current failure episode was detected (for the recovery span);
  // empty while the resource is healthy.
  std::optional<sim::TimePoint> failure_detected_at;
  auto note_failure = [&] {
    if (cfg.spans != nullptr && !failure_detected_at) {
      failure_detected_at = m.sim().now();
    }
  };

  // Bring the resource online, then monitor. One iteration per online
  // attempt or per detected failure.
  for (;;) {
    // --- online: start the service ---------------------------------------
    const nt::Win32Error start = scm.start_service(cfg.service_name);
    if (start != nt::Win32Error::kSuccess &&
        start != nt::Win32Error::kServiceAlreadyRunning) {
      // Typically ERROR_SERVICE_DATABASE_LOCKED while a previous instance is
      // stuck in StartPending. Counts as a failed attempt.
      note_failure();
      ++failed_attempts;
      if (failed_attempts > cfg.restart_threshold) break;
      co_await nt::sleep_in_sim(c, cfg.poll_interval);
      continue;
    }

    // --- wait (bounded) for Running ---------------------------------------
    const sim::TimePoint pending_deadline = m.sim().now() + cfg.pending_timeout;
    bool online = false;
    while (m.sim().now() < pending_deadline) {
      auto st = scm.query(cfg.service_name);
      if (!st) break;
      if (st->state == ServiceState::kRunning) {
        online = true;
        break;
      }
      if (st->state == ServiceState::kStopped) break;  // start failed fast
      co_await nt::sleep_in_sim(c, cfg.poll_interval);
    }
    if (!online) {
      note_failure();
      ++failed_attempts;
      if (failed_attempts > cfg.restart_threshold) break;
      continue;
    }
    if (ever_online || failed_attempts > 0) {
      // Coming online after a failure of any kind is a restart of the
      // server program (even if the resource never managed to be online
      // before) — the data collector counts these.
      log_event(m, nt::EventSeverity::kInformation, kMscsEventRestart,
                "Cluster resource '" + cfg.service_name + "' restarted");
      if (cfg.spans != nullptr && failure_detected_at) {
        cfg.spans->add("mscs.recovery", *failure_detected_at, m.sim().now());
      }
    } else {
      log_event(m, nt::EventSeverity::kInformation, kMscsEventOnline,
                "Cluster resource '" + cfg.service_name + "' is now online");
    }
    ever_online = true;
    failure_detected_at.reset();

    // --- IsAlive polling ---------------------------------------------------
    sim::TimePoint last_healthy_poll = m.sim().now();
    for (;;) {
      co_await nt::sleep_in_sim(c, cfg.poll_interval);
      auto st = scm.query(cfg.service_name);
      // The generic monitor's IsAlive is just "does the SCM say Running?" —
      // a hung-but-running service passes, which is one of MSCS's blind
      // spots in the paper's data.
      if (st && st->state == ServiceState::kRunning) {
        last_healthy_poll = m.sim().now();
        continue;
      }
      break;  // Stopped (crash) or pending (external restart): recover
    }
    // Detected a failure: fall through to restart (counted by the online
    // path's event-log entry). The detection span is the polling blind
    // window — last healthy IsAlive to the poll that noticed the failure.
    if (cfg.spans != nullptr) {
      cfg.spans->add("mscs.detection", last_healthy_poll, m.sim().now());
      failure_detected_at = m.sim().now();
    }
  }

  log_event(m, nt::EventSeverity::kError, kMscsEventResourceFailed,
            "Cluster resource '" + cfg.service_name +
                "' failed; restart attempts exhausted, no failover target");
  // Resource stays failed; the monitor idles (nothing left to do).
  for (;;) co_await nt::sleep_in_sim(c, sim::Duration::seconds(3600));
}

}  // namespace

void install_mscs(nt::Machine& machine, const MscsConfig& cfg) {
  machine.register_program(cfg.image, [cfg](Ctx c) { return mscs_main(c, cfg); });
  // The resource monitor's interaction switch: servers started under MSCS
  // execute a small extra code path (paper Table 1's extra activated
  // functions under MSCS).
  machine.scm().append_service_switch(cfg.service_name, "/cluster");
}

nt::Pid start_mscs(nt::Machine& machine, const MscsConfig& cfg) {
  return machine.start_process(cfg.image, cfg.image);
}

}  // namespace dts::mw
