// Microsoft Cluster Server — generic service resource monitor (the default
// monitor, per the paper: "only the generic service resource monitor is
// used"). Single-node configuration, as on the paper's testbed.
//
// Semantics modelled:
//  * brings the service resource online and tolerates the pending state only
//    up to a pending timeout;
//  * polls IsAlive (SCM service status) at a fixed interval;
//  * restarts on failure, but gives up after a restart threshold — on a
//    single-node cluster there is nowhere to fail over, so the resource is
//    left in the failed state. This is the mechanism that loses against the
//    improved watchd on services with long start wait hints.
#pragma once

#include <string>

#include "ntsim/kernel.h"
#include "obs/span.h"

namespace dts::mw {

struct MscsConfig {
  std::string service_name;
  std::string image = "clussvc.exe";
  sim::Duration poll_interval = sim::Duration::seconds(5);
  /// How long an online attempt may stay pending before it counts as failed.
  sim::Duration pending_timeout = sim::Duration::seconds(20);
  /// Failed online/restart attempts before the resource is marked failed.
  /// On a single-node cluster exceeding it leaves the resource failed.
  int restart_threshold = 2;

  /// Optional latency-span sink ("mscs.detection" = last healthy poll to
  /// failure detection, "mscs.recovery" = detection to back online). The
  /// pointee must outlive the monitor; null disables recording.
  obs::SpanLog* spans = nullptr;
};

/// Event-log ids written by the monitor (source "ClusSvc").
constexpr std::uint32_t kMscsEventOnline = 1200;
constexpr std::uint32_t kMscsEventRestart = 1201;
constexpr std::uint32_t kMscsEventResourceFailed = 1203;

/// Registers the cluster service program and re-registers the monitored
/// service with the "/cluster" command-line switch (the resource monitor's
/// interaction surface; paper Table 1 shows MSCS activating extra functions
/// in the servers). Call start() afterwards to bring the resource online.
void install_mscs(nt::Machine& machine, const MscsConfig& cfg);

/// Starts the cluster service process (which immediately brings the
/// monitored service online). Returns its pid.
nt::Pid start_mscs(nt::Machine& machine, const MscsConfig& cfg);

}  // namespace dts::mw
