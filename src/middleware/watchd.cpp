#include "middleware/watchd.h"

#include <optional>

#include "apps/winapp.h"
#include "ntsim/scm.h"

namespace dts::mw {

namespace {

using apps::Api;
using nt::Ctx;
using nt::Fn;
using nt::ServiceState;
using ProcObj = std::shared_ptr<nt::ProcessObject>;

/// V1's acquisition: start, wait the window, then ask the SCM for the
/// process. Returns null if the process died inside the window.
sim::CoTask<ProcObj> acquire_v1(const Api& api, const WatchdConfig& cfg) {
  nt::Scm& scm = api.machine().scm();
  const nt::Win32Error err = scm.start_service(cfg.service_name);
  if (err != nt::Win32Error::kSuccess && err != nt::Win32Error::kServiceAlreadyRunning) {
    co_return nullptr;
  }
  co_await nt::sleep_in_sim(api.ctx(), cfg.v1_info_delay);  // the window
  auto st = scm.query(cfg.service_name);
  co_return st ? st->process : nullptr;
}

/// V2's acquisition: merged start + handle.
sim::CoTask<ProcObj> acquire_v2(const Api& api, const WatchdConfig& cfg) {
  ProcObj proc;
  const nt::Win32Error err = api.machine().scm().start_service(cfg.service_name, &proc);
  if (err != nt::Win32Error::kSuccess) co_return nullptr;
  co_return proc;  // NOT validated — V2's residual hole
}

/// V3's acquisition: merged start + validation + SCM confirmation, patiently
/// retried until the budget runs out. Logs "service restarted" whenever the
/// server process had to be started more than once (`is_restart` forces the
/// log even when the first attempt succeeds — the post-death path).
sim::CoTask<ProcObj> acquire_v3(const Api& api, const WatchdConfig& cfg, nt::Word h_log,
                                bool is_restart) {
  nt::Scm& scm = api.machine().scm();
  const sim::TimePoint budget_deadline = api.machine().sim().now() + cfg.long_retry_budget;
  bool needed_retry = false;
  auto success = [&](ProcObj proc) -> sim::CoTask<ProcObj> {
    if (is_restart || needed_retry) {
      co_await apps::log_line(api, h_log, "watchd: service restarted");
    }
    co_return proc;
  };
  while (api.machine().sim().now() < budget_deadline) {
    if (scm.database_locked()) {
      // A dead instance is stuck in a pending state; wait for the SCM to
      // release the lock rather than burning attempts.
      needed_retry = true;
      co_await nt::sleep_in_sim(api.ctx(), cfg.retry_interval);
      continue;
    }
    ProcObj proc;
    const nt::Win32Error err = scm.start_service(cfg.service_name, &proc);
    if (err == nt::Win32Error::kServiceAlreadyRunning) {
      auto st = scm.query(cfg.service_name);
      if (st && st->process) co_return co_await success(st->process);
    }
    if (err != nt::Win32Error::kSuccess || proc == nullptr || proc->exited()) {
      // The explicit valid-handle check that distinguishes V3.
      needed_retry = true;
      co_await apps::log_line(api, h_log, "watchd: invalid service handle, retrying");
      co_await nt::sleep_in_sim(api.ctx(), cfg.retry_interval);
      continue;
    }
    // Confirm with the SCM that the service really reaches Running.
    const sim::TimePoint confirm_deadline =
        api.machine().sim().now() + cfg.confirm_timeout;
    bool confirmed = false;
    for (;;) {
      auto st = scm.query(cfg.service_name);
      if (st && st->state == ServiceState::kRunning && !proc->exited()) {
        confirmed = true;
        break;
      }
      if (!st || st->state == ServiceState::kStopped || proc->exited()) break;  // retry
      if (api.machine().sim().now() >= confirm_deadline) break;
      co_await nt::sleep_in_sim(api.ctx(), cfg.retry_interval);
    }
    if (confirmed) co_return co_await success(proc);
    needed_retry = true;
  }
  co_return nullptr;
}

/// V1/V2 restart: brief retry loop, no validation beyond start success.
sim::CoTask<ProcObj> restart_v12(const Api& api, const WatchdConfig& cfg, bool* gave_up) {
  nt::Scm& scm = api.machine().scm();
  const sim::TimePoint deadline = api.machine().sim().now() + cfg.short_retry_budget;
  *gave_up = false;
  for (;;) {
    ProcObj proc;
    nt::Win32Error err;
    if (cfg.version == WatchdVersion::kV1) {
      err = scm.start_service(cfg.service_name);
    } else {
      err = scm.start_service(cfg.service_name, &proc);
    }
    if (err == nt::Win32Error::kSuccess) {
      if (cfg.version == WatchdVersion::kV1) {
        co_await nt::sleep_in_sim(api.ctx(), cfg.v1_info_delay);
        auto st = scm.query(cfg.service_name);
        proc = st ? st->process : nullptr;
      }
      co_return proc;  // possibly null: restarted but unmonitored
    }
    if (api.machine().sim().now() >= deadline) {
      *gave_up = true;
      co_return nullptr;
    }
    co_await nt::sleep_in_sim(api.ctx(), cfg.retry_interval);
  }
}

/// Heartbeat thread: probes the service port and terminates a hung service
/// so the main loop's death-watch can restart it.
sim::Task watchd_heartbeat_thread(Ctx c, WatchdConfig cfg, nt::net::Network* net) {
  Api api(c);
  nt::Scm& scm = api.machine().scm();
  int misses = 0;
  std::optional<sim::TimePoint> first_miss_at;  // start of the hang episode
  for (;;) {
    co_await nt::sleep_in_sim(c, cfg.heartbeat_interval);
    auto st = scm.query(cfg.service_name);
    if (!st || st->state != ServiceState::kRunning) {
      misses = 0;  // only a Running-but-unresponsive service is a hang
      continue;
    }
    bool alive = false;
    {
      auto sock = co_await net->connect(c, api.machine().name(), cfg.heartbeat_port);
      if (sock != nullptr) {
        sock->send(cfg.heartbeat_probe);
        auto first = co_await sock->recv(c, 64, cfg.heartbeat_timeout);
        alive = first.has_value() && !first->empty();
      }
    }
    if (alive) {
      misses = 0;
      first_miss_at.reset();
      continue;
    }
    if (misses == 0) first_miss_at = api.machine().sim().now();
    if (++misses < cfg.heartbeat_misses) continue;
    misses = 0;
    // Hung: kill the service process; the death-watch performs the restart.
    auto hung = scm.query(cfg.service_name);
    if (hung && hung->pid != 0 && api.machine().alive(hung->pid)) {
      api.machine().request_process_exit(hung->pid, nt::kExitCodeTerminated,
                                         "watchd heartbeat: service hung");
      if (cfg.spans != nullptr && first_miss_at) {
        cfg.spans->add("watchd.hang_detection", *first_miss_at,
                       api.machine().sim().now());
      }
    }
    first_miss_at.reset();
  }
}

sim::Task watchd_main(Ctx c, WatchdConfig cfg, nt::net::Network* net) {
  Api api(c);
  if (cfg.heartbeat && net != nullptr) {
    api.proc().spawn_thread(
        [cfg, net](Ctx tc) { return watchd_heartbeat_thread(tc, cfg, net); });
  }
  const nt::Word h_log =
      co_await api(Fn::CreateFileA, api.str(cfg.log_path).addr, nt::kGenericWrite, 1, 0,
                   nt::kOpenAlways, 0, 0);
  co_await apps::log_line(api, h_log,
                          "watchd (" + std::string(to_string(cfg.version)) +
                              ") monitoring service " + cfg.service_name);

  // --- initial start + handle acquisition ---------------------------------
  ProcObj proc;
  switch (cfg.version) {
    case WatchdVersion::kV1: proc = co_await acquire_v1(api, cfg); break;
    case WatchdVersion::kV2: proc = co_await acquire_v2(api, cfg); break;
    case WatchdVersion::kV3:
      proc = co_await acquire_v3(api, cfg, h_log, /*is_restart=*/false);
      break;
  }
  if (proc == nullptr) {
    // The paper's Watchd1 hole: the process died before getServiceInfo(),
    // so there is nothing to monitor. watchd idles, blind.
    co_await apps::log_line(api, h_log,
                            "watchd: ERROR could not obtain service process info; "
                            "service is not monitored");
    for (;;) co_await nt::sleep_in_sim(c, sim::Duration::seconds(3600));
  }
  co_await apps::log_line(api, h_log, "watchd: service started, monitoring process");

  // --- death-watch loop -----------------------------------------------------
  for (;;) {
    // Immediate notification (vs MSCS's polling): block on the process.
    (void)co_await nt::wait_on_object(c, proc, nt::kInfinite);
    const sim::TimePoint death_noticed_at = api.machine().sim().now();
    co_await apps::log_line(api, h_log, "watchd: service process terminated; restarting");

    if (cfg.version == WatchdVersion::kV3) {
      // acquire_v3 logs the restart itself (it may perform several).
      proc = co_await acquire_v3(api, cfg, h_log, /*is_restart=*/true);
    } else {
      bool gave_up = false;
      proc = co_await restart_v12(api, cfg, &gave_up);
      if (proc == nullptr && !gave_up) {
        // Start succeeded but no handle (V1's window, again): the service
        // runs unmonitored from here on.
        co_await apps::log_line(api, h_log, "watchd: service restarted");
        co_await apps::log_line(api, h_log,
                                "watchd: WARNING could not re-obtain process info; "
                                "service is no longer monitored");
        for (;;) co_await nt::sleep_in_sim(c, sim::Duration::seconds(3600));
      }
    }
    if (proc == nullptr) {
      co_await apps::log_line(api, h_log,
                              "watchd: ERROR restart failed, giving up on service");
      for (;;) co_await nt::sleep_in_sim(c, sim::Duration::seconds(3600));
    }
    if (cfg.version != WatchdVersion::kV3) {
      co_await apps::log_line(api, h_log, "watchd: service restarted");
    }
    if (cfg.spans != nullptr) {
      cfg.spans->add("watchd.recovery", death_noticed_at, api.machine().sim().now());
    }
  }
}

}  // namespace

void install_watchd(nt::Machine& machine, const WatchdConfig& cfg,
                    nt::net::Network* network) {
  machine.fs().mkdirs("C:\\watchd");
  machine.register_program(cfg.image,
                           [cfg, network](Ctx c) { return watchd_main(c, cfg, network); });
  machine.scm().append_service_switch(cfg.service_name, "/watchd");
}

nt::Pid start_watchd(nt::Machine& machine, const WatchdConfig& cfg) {
  return machine.start_process(cfg.image, cfg.image);
}

std::size_t watchd_restarts_logged(nt::Machine& machine, const std::string& log_path) {
  auto content = machine.fs().get_file(log_path);
  if (!content) return 0;
  std::size_t count = 0;
  std::size_t pos = 0;
  const std::string needle = "watchd: service restarted";
  while ((pos = content->find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

}  // namespace dts::mw
