// Bell Labs watchd (the NT-SwiFT process-monitoring component), in the three
// versions the paper iterates through (§4.3):
//
//  Watchd1: startService(); <window>; getServiceInfo(). If the service
//           process dies inside the window, watchd never obtains a process
//           handle, so the failure is invisible — the paper's original
//           coverage hole. Restart attempts are retried only briefly.
//  Watchd2: startService() and handle acquisition merged (the SCM returns
//           the process object atomically), closing the window. Restart
//           retries remain brief, so services whose start-pending hangs
//           outlive the retry budget still fail.
//  Watchd3: additionally validates the handle, confirms with the SCM that
//           the service actually reached Running, and patiently retries the
//           start until the SCM database unlocks.
//
// Death detection is a blocking wait on the service's process handle —
// immediate, unlike MSCS's polling.
#pragma once

#include <string>

#include "middleware/middleware.h"
#include "ntsim/kernel.h"
#include "ntsim/netsim.h"
#include "obs/span.h"

namespace dts::mw {

struct WatchdConfig {
  std::string service_name;
  WatchdVersion version = WatchdVersion::kV3;
  std::string image = "watchd.exe";
  std::string log_path = "C:\\watchd\\watchd.log";

  /// Watchd1's window between startService() and getServiceInfo().
  sim::Duration v1_info_delay = sim::Duration::millis(500);
  /// How long V1/V2 retry a failed restart before giving up.
  sim::Duration short_retry_budget = sim::Duration::seconds(12);
  /// V3 retries until this much longer budget expires.
  sim::Duration long_retry_budget = sim::Duration::seconds(240);
  sim::Duration retry_interval = sim::Duration::seconds(1);
  /// After a successful start, how long V3 waits for Running confirmation
  /// before treating the attempt as failed (per attempt).
  sim::Duration confirm_timeout = sim::Duration::seconds(90);

  /// OPTIONAL application-level heartbeat — an NT-SwiFT capability beyond
  /// the paper's default configuration (which only death-watches the
  /// process). When enabled, watchd probes the service's TCP port with a
  /// minimal request; after `heartbeat_misses` consecutive unanswered probes
  /// while the SCM reports Running, the service is declared hung and is
  /// terminated so the death-watch restarts it. Closes the hang-detection
  /// hole both MSCS and default watchd share (see the ablation benchmark).
  bool heartbeat = false;
  std::uint16_t heartbeat_port = 80;
  std::string heartbeat_probe = "GET /index.html HTTP/1.0\r\n\r\n";
  sim::Duration heartbeat_interval = sim::Duration::seconds(10);
  sim::Duration heartbeat_timeout = sim::Duration::seconds(20);
  int heartbeat_misses = 2;

  /// Optional latency-span sink ("watchd.recovery" = process death to
  /// monitored-again, "watchd.hang_detection" = first missed heartbeat to
  /// the kill). The pointee must outlive watchd; null disables recording.
  obs::SpanLog* spans = nullptr;
};

/// Registers the watchd program and adds the "/watchd" switch to the
/// monitored service. Call start_watchd() to launch it (it starts the
/// monitored service itself). `network` is only needed when the heartbeat
/// is enabled.
void install_watchd(nt::Machine& machine, const WatchdConfig& cfg,
                    nt::net::Network* network = nullptr);

nt::Pid start_watchd(nt::Machine& machine, const WatchdConfig& cfg);

/// Parses watchd's log file on `machine` and returns the number of service
/// restarts it performed (the DTS data collector's restart source for
/// watchd, paper §3).
std::size_t watchd_restarts_logged(nt::Machine& machine,
                                   const std::string& log_path = "C:\\watchd\\watchd.log");

}  // namespace dts::mw
