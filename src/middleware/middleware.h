// Common vocabulary for the fault-tolerance middleware packages under test.
#pragma once

#include <string>

namespace dts::mw {

enum class MiddlewareKind { kNone, kMscs, kWatchd };

/// The three watchd iterations of the paper's §4.3 improvement loop.
enum class WatchdVersion { kV1 = 1, kV2 = 2, kV3 = 3 };

std::string_view to_string(MiddlewareKind k);
std::string_view to_string(WatchdVersion v);

inline std::string_view to_string(MiddlewareKind k) {
  switch (k) {
    case MiddlewareKind::kNone: return "none";
    case MiddlewareKind::kMscs: return "MSCS";
    case MiddlewareKind::kWatchd: return "watchd";
  }
  return "?";
}

inline std::string_view to_string(WatchdVersion v) {
  switch (v) {
    case WatchdVersion::kV1: return "Watchd1";
    case WatchdVersion::kV2: return "Watchd2";
    case WatchdVersion::kV3: return "Watchd3";
  }
  return "?";
}

}  // namespace dts::mw
