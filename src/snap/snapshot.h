// World snapshots: copy-on-write capture/restore of a complete run world.
//
// A WorldSnapshot is the value state of one FaultInjectionRun mid-execute —
// simulation kernel (clock, event queue, RNG state + cursor), both machines
// (processes with address spaces and handle tables, filesystem, registry,
// SCM, event log) and the network. Memory pages and file contents are
// structure-shared with the live world (see VirtualMemory / Filesystem):
// capturing at every checkpoint of a campaign costs map copies, not deep
// copies, and the first post-capture write to any shared payload clones it.
//
// Two consumers:
//  - in-memory restore (tests, single-world rewind): restore_world() puts the
//    captured value state back into the world that captured it;
//  - fork execution (src/snap/fork_runner.h): live coroutine frames cannot be
//    value-copied, so cross-run resume forks the host process at the
//    checkpoint instead — the in-memory snapshot then serves as the identity
//    witness (digest) and the COW accounting record.
#pragma once

#include <cstdint>

#include "core/run.h"
#include "ntsim/kernel.h"
#include "ntsim/netsim.h"
#include "sim/simulation.h"

namespace dts::snap {

struct WorldSnapshot {
  std::uint64_t site = 0;  // golden-run call site this was captured at
  sim::Simulation::Snapshot sim;
  nt::Machine::Snapshot target;
  nt::Machine::Snapshot control;
  nt::net::Network::Snapshot network;
  nt::CowStats cow;          // shared-vs-copied payload accounting at capture
  std::uint64_t digest = 0;  // world_digest() at capture time
};

/// Captures the live world of `run` (typically from a checkpoint callback,
/// mid-execute). Fills `cow` and `digest`.
WorldSnapshot capture_world(core::FaultInjectionRun& run, std::uint64_t site);

/// Restores a snapshot into the world that captured it. Returns false
/// (leaving the world partially untouched only in the network counter) if the
/// world structurally diverged — live process set or bound ports changed.
bool restore_world(core::FaultInjectionRun& run, const WorldSnapshot& snap);

/// Order-stable FNV-1a digest over the snapshot's full value state — file
/// and memory *contents* included, so a shared COW payload mutated in place
/// after capture changes the digest. Recomputing a stored snapshot's digest
/// after the host run completes is therefore a COW-violation self-check, and
/// plan::snapshot_identity folds this digest into the campaign identity a
/// forked child validates before arming its fault.
std::uint64_t world_digest(const WorldSnapshot& snap);

}  // namespace dts::snap
