// Snapshot/fork execution of campaign runs: skip the golden prefix.
//
// Every fault run of a campaign replays the same fault-free prefix up to its
// injection site before diverging. The ForkRunner executes that prefix ONCE
// (the host golden run, seeded exactly like the planner's profiler so call
// sites align seq-for-seq), captures a COW world snapshot at each planned
// checkpoint, and fork()s one child per fault run from the checkpoint
// nearest below its injection site. The child arms its fault, reseeds the
// root RNG to what its own full-run seed would have produced at this point
// (cursor replay — the prefix trajectory is seed-invariant while no draw
// value escapes into state), and simply keeps executing: the OS's
// copy-on-write pages carry the live coroutine frames that no in-memory
// snapshot could. Results return over a pipe in the dist-protocol wire
// format, so a forked run's record is reconstructed exactly like a
// distributed worker's — the path already guaranteed byte-identical to
// in-process execution.
//
// Runs whose fault the golden profile proves can never fire (invocation
// beyond the golden call count) have an empty suffix: every injection point
// lies before the golden tail, so their whole trajectory IS the golden run.
// Those results are synthesized directly from the host run's end state —
// zero fork, zero replay — gated on the same seed-invariance conditions
// (no jitter, zero semantic RNG draws over the entire host run).
//
// Everything that cannot be proven equivalent falls back to a full run:
// unknown injection sites, jitter/tracing configs, semantic RNG draws in the
// prefix, host divergence from the golden trajectory, and any child that
// exits abnormally. Fallbacks are returned to the caller, never dropped.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/run.h"
#include "snap/snapshot.h"

namespace dts::snap {

/// True when the platform supports fork-based snapshot execution (POSIX).
bool snapshots_supported();

/// Human-readable reason snapshot execution cannot serve this configuration
/// (empty = supported). `tracing` = the executor wants per-run syscall
/// traces, which would be missing their skipped prefix.
std::string unsupported_reason(const core::RunConfig& base, bool tracing);

struct ForkItem {
  std::size_t index = 0;  // caller's identifier, echoed in ChildOutcome
  inject::FaultSpec fault;
  std::uint64_t seed = 0;  // the run's own seed: mix(campaign, hash(id))

  /// kAtSite: the golden run reaches the injection site at `site`; fork from
  /// the greatest checkpoint <= site (the fault then fires naturally in the
  /// suffix). kGoldenTail: the profile proves the fault can never fire
  /// (invocation beyond the golden count); the run IS the golden run — its
  /// suffix past the last golden call site contains no injection point, so
  /// its result is synthesized from the host run's own end state instead of
  /// forking a child that would re-execute an identical tail.
  enum class Mode { kAtSite, kGoldenTail };
  Mode mode = Mode::kAtSite;
  std::uint64_t site = 0;  // valid for kAtSite

  /// Whether the golden run calls the fault's function at all — the value a
  /// full run's interceptor would report. Used verbatim for synthesized
  /// kGoldenTail results (a fork reports the child's own interceptor state).
  bool fn_called = true;
};

struct ChildOutcome {
  std::size_t index = 0;
  core::RunResult result;
  bool fn_called = false;
  std::uint64_t wall_us = 0;         // child-side wall clock, fork -> done
  std::uint64_t skipped_sim_us = 0;  // golden-prefix sim time not re-executed
  /// Forensics (journal v4): the interceptor's rolling trace digest at run
  /// end and the injected call's context. A forked child inherits the host's
  /// digest state across fork(), so both match a full run byte-for-byte.
  std::uint64_t trace_digest = 0;
  std::string call_context;
};

struct ForkStats {
  std::uint64_t checkpoints_planned = 0;
  std::uint64_t snapshots_taken = 0;
  std::uint64_t forked_runs = 0;
  std::uint64_t synthesized_runs = 0;  // kGoldenTail results from the host run
  std::uint64_t fallback_runs = 0;
  std::uint64_t identity_checks = 0;  // snapshot-identity validations issued
  std::uint64_t cow_violations = 0;   // post-run digest self-check failures
  // COW accounting summed over every capture (see nt::CowStats).
  std::uint64_t shared_blocks = 0;
  std::uint64_t copied_blocks = 0;
  std::uint64_t shared_bytes = 0;
  std::uint64_t copied_bytes = 0;
  std::uint64_t skipped_sim_us = 0;  // summed across forked runs
};

class ForkRunner {
 public:
  struct Options {
    std::uint64_t campaign_seed = 0;
    std::uint64_t campaign_digest = 0;  // folded into snapshot identities
    std::size_t max_checkpoints = 64;   // 0 = one per distinct site
    /// Max concurrently live forked children (the campaign's --jobs).
    int jobs = 1;
    /// Latest golden call site (max seq the profile observed); when nonzero
    /// it is added to the checkpoint set, anchoring the COW self-check
    /// witness closest to the host run's end.
    std::uint64_t tail_site = 0;
  };

  ForkRunner(core::RunConfig base, Options opts)
      : base_(std::move(base)), opts_(opts) {}

  /// Executes `items` against one host golden run. `on_result` fires in fork
  /// order (ascending checkpoint, then item order — deterministic). Returns
  /// the indices that must instead be executed as full runs; a failed child
  /// is a fallback, never an exception.
  std::vector<std::size_t> run(const std::vector<ForkItem>& items,
                               const std::function<void(const ChildOutcome&)>& on_result);

  const ForkStats& stats() const { return stats_; }

 private:
  struct Child {
    long pid = 0;
    int fd = -1;
    std::size_t index = 0;
    std::uint64_t skipped_us = 0;
  };

  bool on_checkpoint(std::uint64_t site);
  void spawn_child(const ForkItem& item, const WorldSnapshot& snap,
                   std::uint64_t identity);
  void reap_oldest();
  [[noreturn]] void finish_child(core::RunResult result);
  void mark_fallback(std::size_t index);

  core::RunConfig base_;
  Options opts_;
  ForkStats stats_;

  std::optional<core::FaultInjectionRun> run_;
  std::vector<std::uint64_t> checkpoints_;
  std::map<std::uint64_t, std::vector<ForkItem>> groups_;  // checkpoint -> items
  std::vector<ForkItem> tail_items_;  // kGoldenTail: synthesized, not forked
  std::vector<std::uint64_t> fired_;
  std::vector<Child> active_;  // reaped FIFO (fork order)
  std::optional<WorldSnapshot> first_snapshot_;  // COW self-check witness
  std::vector<std::size_t>* fallback_ = nullptr;
  const std::function<void(const ChildOutcome&)>* on_result_ = nullptr;

  // Child-side state (meaningful only after fork, in the child).
  bool in_child_ = false;
  int child_fd_ = -1;
  ForkItem child_item_;
  std::int64_t child_start_us_ = 0;
};

}  // namespace dts::snap
