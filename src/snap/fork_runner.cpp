#include "snap/fork_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#define DTS_SNAP_POSIX 1
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define DTS_SNAP_POSIX 0
#endif

#include "core/campaign.h"
#include "dist/protocol.h"
#include "plan/checkpoints.h"
#include "sim/rng.h"

namespace dts::snap {

namespace {

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool snapshots_supported() { return DTS_SNAP_POSIX != 0; }

std::string unsupported_reason(const core::RunConfig& base, bool tracing) {
  if (!snapshots_supported()) return "platform has no fork()";
  if (base.target_jitter > 0.0) {
    return "target_jitter draws from the run RNG in the prefix, so the "
           "prefix trajectory is not seed-invariant";
  }
  if (tracing || base.trace_limit > 0) {
    return "syscall tracing would be missing the skipped golden prefix";
  }
  if (base.golden_capture > 0) return "golden-capture runs are not fault runs";
  if (base.checkpoints != nullptr) return "a checkpoint plan is already installed";
  if (!base.topo.empty()) {
    // The multi-tier path builds its machines inside execute_topology, after
    // the checkpoint plan would have to be armed; full runs keep topology
    // campaigns byte-identical under --snapshots=on.
    return "multi-tier topology runs execute in full";
  }
  return "";
}

void ForkRunner::mark_fallback(std::size_t index) {
  fallback_->push_back(index);
  ++stats_.fallback_runs;
}

#if DTS_SNAP_POSIX

std::vector<std::size_t> ForkRunner::run(
    const std::vector<ForkItem>& items,
    const std::function<void(const ChildOutcome&)>& on_result) {
  std::vector<std::size_t> fallback;
  fallback_ = &fallback;
  on_result_ = &on_result;
  if (items.empty()) return fallback;

  // --- checkpoint placement ---------------------------------------------------
  std::vector<std::uint64_t> sites;
  for (const ForkItem& item : items) {
    if (item.mode == ForkItem::Mode::kAtSite) sites.push_back(item.site);
  }
  if (opts_.tail_site > 0) sites.push_back(opts_.tail_site);
  checkpoints_ = plan::place_checkpoints(std::move(sites), opts_.max_checkpoints);
  if (checkpoints_.empty()) {
    for (const ForkItem& item : items) mark_fallback(item.index);
    return fallback;
  }
  stats_.checkpoints_planned = checkpoints_.size();

  // --- group items by their checkpoint ----------------------------------------
  groups_.clear();
  tail_items_.clear();
  for (const ForkItem& item : items) {
    if (item.mode == ForkItem::Mode::kGoldenTail) {
      // No injection point exists past the golden tail: the run's whole
      // trajectory is the golden run. Synthesize from the host's end state
      // (below) instead of forking a child to re-execute an identical tail.
      tail_items_.push_back(item);
      continue;
    }
    // Greatest checkpoint <= injection site; the fault then fires naturally
    // while replaying the suffix. A checkpoint *after* the site would have
    // already passed the injection point — useless.
    auto it = std::upper_bound(checkpoints_.begin(), checkpoints_.end(), item.site);
    if (it == checkpoints_.begin()) {
      mark_fallback(item.index);
      continue;
    }
    groups_[*std::prev(it)].push_back(item);
  }

  // --- host golden run ---------------------------------------------------------
  // Seeded exactly like the planner's profiler (and the campaign's profiling
  // pass), so golden call sites align with the profile seq-for-seq.
  core::RunConfig cfg = base_;
  cfg.seed = sim::Rng::mix(opts_.campaign_seed, sim::Rng::hash("profile"));
  inject::Interceptor::CheckpointPlan plan;
  plan.sites = checkpoints_;
  plan.on_checkpoint = [this](std::uint64_t site) { return on_checkpoint(site); };
  cfg.checkpoints = &plan;

  run_.emplace(std::move(cfg));
  core::RunResult end_result;
  bool host_ok = false;
  try {
    end_result = run_->execute(std::nullopt);
    host_ok = true;
  } catch (...) {
    if (in_child_) _exit(2);
    // Host failure: nothing forked after this point; unfired groups fall
    // back below. Children already forked are reaped normally.
  }
  if (in_child_) {
    end_result.fault = child_item_.fault;
    finish_child(std::move(end_result));  // never returns
  }

  // --- parent: drain children, self-check, collect fallbacks -------------------
  while (!active_.empty()) reap_oldest();

  // Golden-tail synthesis: valid only when the host run completed and made
  // zero semantic RNG draws end to end — then every serialized field of a
  // full run under any seed equals the host's (target_jitter == 0 is an
  // applicability precondition), and a run whose fault provably never fires
  // serializes exactly as the host did.
  if (!tail_items_.empty()) {
    if (host_ok && run_->simulation().semantic_rng_draws() == 0) {
      const std::uint64_t run_sim_us =
          static_cast<std::uint64_t>(end_result.sim_elapsed.count_micros());
      for (const ForkItem& item : tail_items_) {
        ChildOutcome out;
        out.index = item.index;
        out.result = end_result;
        out.result.fault = item.fault;
        out.fn_called = item.fn_called;
        out.wall_us = 0;  // synthesis does no per-run work
        out.skipped_sim_us = run_sim_us;
        // The run's trajectory IS the host trajectory (seed-invariance gate
        // above), so the host's end-state digest is the run's digest. The
        // fault never fires, so there is no injection context.
        out.trace_digest = run_->interceptor().trace_digest();
        stats_.skipped_sim_us += run_sim_us;
        ++stats_.synthesized_runs;
        (*on_result_)(out);
      }
    } else {
      for (const ForkItem& item : tail_items_) mark_fallback(item.index);
    }
  }

  if (first_snapshot_) {
    // COW-violation self-check: the first snapshot structure-shares payloads
    // with a world that has since run to completion. If any shared payload
    // was mutated in place (a missing clone-on-write), the stored snapshot's
    // recomputed digest no longer matches the one taken at capture.
    ++stats_.identity_checks;
    if (world_digest(*first_snapshot_) != first_snapshot_->digest) {
      ++stats_.cow_violations;
    }
  }

  for (const auto& [site, group] : groups_) {
    if (std::find(fired_.begin(), fired_.end(), site) != fired_.end()) continue;
    for (const ForkItem& item : group) mark_fallback(item.index);
  }
  std::sort(fallback.begin(), fallback.end());
  run_.reset();
  return fallback;
}

bool ForkRunner::on_checkpoint(std::uint64_t site) {
  if (in_child_) return false;  // children never checkpoint

  // Alignment guard: the callback fires at the first call with seq >= site;
  // strict equality is the golden-trajectory guarantee. On divergence every
  // remaining checkpoint is unreliable — cancel, let those items fall back.
  if (run_->target().syscalls_made != site) return false;

  // A semantic RNG draw in the prefix (e.g. GetTempFileName's suffix) means
  // the prefix state depends on the run seed — a fork under a *different*
  // seed would resume from a prefix its own full run could not produce.
  if (run_->simulation().semantic_rng_draws() > 0) return false;

  fired_.push_back(site);
  ++stats_.snapshots_taken;
  WorldSnapshot snap = capture_world(*run_, site);
  stats_.shared_blocks += snap.cow.shared_blocks;
  stats_.copied_blocks += snap.cow.copied_blocks;
  stats_.shared_bytes += snap.cow.shared_bytes;
  stats_.copied_bytes += snap.cow.copied_bytes;
  const std::uint64_t identity =
      plan::snapshot_identity(opts_.campaign_digest, site, snap.digest);
  if (!first_snapshot_) first_snapshot_ = snap;

  auto it = groups_.find(site);
  if (it != groups_.end()) {
    for (const ForkItem& item : it->second) {
      spawn_child(item, snap, identity);
      if (in_child_) return false;  // resume the run as this item's fault run
    }
  }
  return true;
}

void ForkRunner::spawn_child(const ForkItem& item, const WorldSnapshot& snap,
                             std::uint64_t identity) {
  const int jobs = opts_.jobs < 1 ? 1 : opts_.jobs;
  while (static_cast<int>(active_.size()) >= jobs) reap_oldest();

  int fds[2];
  if (::pipe(fds) != 0) {
    mark_fallback(item.index);
    return;
  }
  // The child inherits stdio buffers; flush now so nothing is emitted twice.
  std::fflush(stdout);
  std::fflush(stderr);
  ++stats_.identity_checks;  // the child validates; account here (its memory is its own)
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    mark_fallback(item.index);
    return;
  }
  if (pid == 0) {
    ::close(fds[0]);
    in_child_ = true;
    child_fd_ = fds[1];
    child_item_ = item;
    child_start_us_ = steady_now_us();
    // Snapshot identity: campaign digest x site x world digest. The child
    // re-derives it from the inherited snapshot's stored fields plus its own
    // live sim state — a mismatch means it was handed another campaign's (or
    // another site's) world, or a world whose trajectory already diverged
    // from the snapshot. Deliberately NOT a full world re-hash: that would
    // cost a per-fork scan of every memory payload, and in-place payload
    // corruption is what the parent's post-run COW self-check covers.
    if (plan::snapshot_identity(opts_.campaign_digest, snap.site, snap.digest) !=
            identity ||
        run_->target().syscalls_made != snap.site) {
      _exit(3);
    }
    run_->interceptor().arm(item.fault);
    // Reseed the root RNG to what a full run under item.seed would hold at
    // this point: same raw-draw count (the prefix trajectory is
    // seed-invariant — checked via semantic_rng_draws), fresh seed.
    sim::Rng& rng = run_->simulation().rng();
    rng.reseed(item.seed, rng.cursor());
    return;  // unwinds into on_checkpoint -> false -> the run continues
  }
  ::close(fds[1]);
  Child c;
  c.pid = pid;
  c.fd = fds[0];
  c.index = item.index;
  c.skipped_us = static_cast<std::uint64_t>(
      (snap.sim.now - sim::TimePoint{}).count_micros());
  active_.push_back(c);
  ++stats_.forked_runs;
}

void ForkRunner::reap_oldest() {
  const Child c = active_.front();
  active_.erase(active_.begin());

  // Read to EOF before waitpid: a child writing more than the pipe buffer
  // must not deadlock against a parent waiting for its exit.
  std::string buf;
  char tmp[4096];
  ssize_t n;
  while ((n = ::read(c.fd, tmp, sizeof tmp)) > 0) buf.append(tmp, static_cast<std::size_t>(n));
  ::close(c.fd);
  int status = 0;
  ::waitpid(static_cast<pid_t>(c.pid), &status, 0);

  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    mark_fallback(c.index);
    return;
  }
  if (!buf.empty() && buf.back() == '\n') buf.pop_back();
  auto wire = dist::decode_result(buf);
  if (!wire) {
    mark_fallback(c.index);
    return;
  }
  ChildOutcome out;
  out.index = c.index;
  if (!core::parse_run_line(base_.workload.target_image, wire->run_line, &out.result,
                            nullptr)) {
    mark_fallback(c.index);
    return;
  }
  out.result.requests = dist::decode_requests(wire->requests);
  out.result.detail = wire->detail;
  out.result.sim_elapsed = sim::Duration::micros(static_cast<std::int64_t>(wire->sim_us));
  out.fn_called = wire->fn_called;
  out.wall_us = wire->wall_us;
  out.skipped_sim_us = c.skipped_us;
  out.trace_digest = wire->trace_digest;
  out.call_context = wire->call_context;
  stats_.skipped_sim_us += c.skipped_us;
  (*on_result_)(out);
}

void ForkRunner::finish_child(core::RunResult result) {
  // In the forked child after its run completed. Serialize over the pipe
  // with raw write() and leave via _exit(): no atexit handlers, no flushing
  // of inherited journal/metrics/stdio buffers.
  dist::WireResult wire;
  wire.lease_id = 0;
  wire.index = child_item_.index;
  wire.fault_id = child_item_.fault.id();
  wire.fn_called = run_->interceptor().target_function_called();
  wire.run_line = core::serialize_run_line(result);
  wire.wall_us = static_cast<std::uint64_t>(steady_now_us() - child_start_us_);
  wire.sim_us = static_cast<std::uint64_t>(result.sim_elapsed.count_micros());
  wire.requests = dist::encode_requests(result.requests);
  wire.detail = result.detail;
  wire.trace_digest = run_->interceptor().trace_digest();
  const auto& inj_ctx = run_->interceptor().injection_context();
  wire.call_context = inj_ctx ? inj_ctx->to_string() : "";
  std::string line = dist::encode_result(wire);
  line += '\n';
  const char* p = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t w = ::write(child_fd_, p, left);
    if (w <= 0) _exit(4);
    p += w;
    left -= static_cast<std::size_t>(w);
  }
  _exit(0);
}

#else  // !DTS_SNAP_POSIX

std::vector<std::size_t> ForkRunner::run(
    const std::vector<ForkItem>& items,
    const std::function<void(const ChildOutcome&)>& on_result) {
  (void)on_result;
  std::vector<std::size_t> fallback;
  fallback_ = &fallback;
  for (const ForkItem& item : items) mark_fallback(item.index);
  return fallback;
}

bool ForkRunner::on_checkpoint(std::uint64_t) { return false; }
void ForkRunner::spawn_child(const ForkItem&, const WorldSnapshot&, std::uint64_t) {}
void ForkRunner::reap_oldest() {}
void ForkRunner::finish_child(core::RunResult) { std::abort(); }

#endif  // DTS_SNAP_POSIX

}  // namespace dts::snap
