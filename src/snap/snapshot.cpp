#include "snap/snapshot.h"

#include <cstring>
#include <string_view>

namespace dts::snap {

namespace {

// FNV-1a, folded field by field. Every variable-length field is preceded by
// its length so adjacent fields cannot alias ("ab"+"c" vs "a"+"bc").
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fold_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fold_u64(std::uint64_t& h, std::uint64_t v) { fold_bytes(h, &v, sizeof v); }

void fold_i64(std::uint64_t& h, std::int64_t v) {
  fold_u64(h, static_cast<std::uint64_t>(v));
}

void fold_str(std::uint64_t& h, std::string_view s) {
  fold_u64(h, s.size());
  fold_bytes(h, s.data(), s.size());
}

void fold_machine(std::uint64_t& h, const nt::Machine::Snapshot& m) {
  // Filesystem: keys, display paths and full contents.
  fold_u64(h, m.fs.files.size());
  for (const auto& [key, node] : m.fs.files) {
    fold_str(h, key);
    fold_str(h, node.display_path);
    fold_str(h, node.data());
  }
  fold_u64(h, m.fs.dirs.size());
  for (const auto& [key, display] : m.fs.dirs) {
    fold_str(h, key);
    fold_str(h, display);
  }

  // Registry hive.
  fold_u64(h, m.registry.keys.size());
  for (const auto& [path, key] : m.registry.keys) {
    fold_str(h, path);
    fold_str(h, key.display);
    fold_u64(h, key.values.size());
    for (const auto& [name, value] : key.values) {
      fold_str(h, name);
      fold_u64(h, value.index());
      if (const auto* dw = std::get_if<nt::Dword>(&value)) {
        fold_u64(h, *dw);
      } else {
        fold_str(h, std::get<std::string>(value));
      }
    }
  }

  // Event log.
  fold_u64(h, m.event_log.entries.size());
  for (const auto& e : m.event_log.entries) {
    fold_i64(h, e.time.count_micros());
    fold_u64(h, static_cast<std::uint64_t>(e.severity));
    fold_str(h, e.source);
    fold_u64(h, e.event_id);
    fold_str(h, e.message);
  }
  fold_u64(h, m.event_log.retention);

  // SCM service database.
  fold_u64(h, m.scm.services.size());
  for (const auto& [name, rec] : m.scm.services) {
    fold_str(h, name);
    fold_str(h, rec.cfg.image);
    fold_str(h, rec.cfg.command_line);
    fold_i64(h, rec.cfg.start_wait_hint.count_micros());
    fold_u64(h, static_cast<std::uint64_t>(rec.state));
    fold_u64(h, rec.pid);
    fold_u64(h, rec.pending_epoch);
  }
  fold_u64(h, m.scm.starts);

  // Processes: address-space contents and handle tables. Handles fold their
  // value and object *type* (not the object pointer — pointers would make the
  // digest depend on allocator layout rather than on simulated state).
  fold_u64(h, m.processes.size());
  for (const auto& [pid, ps] : m.processes) {
    fold_u64(h, pid);
    fold_str(h, ps.image);
    fold_u64(h, ps.mem.next_addr);
    fold_u64(h, ps.mem.bytes_in_use);
    fold_u64(h, ps.mem.blocks.size());
    for (const auto& [base, block] : ps.mem.blocks) {
      fold_u64(h, base);
      fold_u64(h, block.size);
      fold_u64(h, block.bytes->size());
      fold_bytes(h, block.bytes->data(), block.bytes->size());
    }
    fold_u64(h, ps.handles.next);
    fold_u64(h, ps.handles.table.size());
    for (const auto& [handle, obj] : ps.handles.table) {
      fold_u64(h, handle);
      fold_u64(h, static_cast<std::uint64_t>(obj->type()));
    }
  }

  fold_u64(h, m.next_pid);
  fold_u64(h, m.syscalls);
  fold_u64(h, m.exits.size());
  for (const auto& e : m.exits) {
    fold_u64(h, e.pid);
    fold_str(h, e.image);
    fold_u64(h, e.exit_code);
    fold_str(h, e.reason);
    fold_i64(h, e.at.count_micros());
  }
  fold_u64(h, m.starts.size());
  for (const auto& s : m.starts) {
    fold_u64(h, s.pid);
    fold_str(h, s.image);
    fold_i64(h, s.at.count_micros());
  }
}

}  // namespace

WorldSnapshot capture_world(core::FaultInjectionRun& run, std::uint64_t site) {
  WorldSnapshot snap;
  snap.site = site;
  snap.sim = run.simulation().capture();
  snap.target = run.target().capture(&snap.cow);
  snap.control = run.control().capture(&snap.cow);
  snap.network = run.network().capture();
  snap.digest = world_digest(snap);
  return snap;
}

bool restore_world(core::FaultInjectionRun& run, const WorldSnapshot& snap) {
  if (!run.target().restore(snap.target)) return false;
  if (!run.control().restore(snap.control)) return false;
  if (!run.network().restore(snap.network)) return false;
  run.simulation().restore(snap.sim);
  return true;
}

std::uint64_t world_digest(const WorldSnapshot& snap) {
  std::uint64_t h = kFnvOffset;
  fold_u64(h, snap.site);

  // Simulation kernel: clock, RNG value state + cursor, pending events by
  // (time, seq) — callbacks are code, not state.
  fold_i64(h, snap.sim.now.count_micros());
  for (std::uint64_t w : snap.sim.rng.state()) fold_u64(h, w);
  fold_u64(h, snap.sim.rng.cursor());
  fold_u64(h, snap.sim.queue.next_seq);
  fold_u64(h, snap.sim.queue.heap.size());
  for (const auto& e : snap.sim.queue.heap) {
    fold_i64(h, e.at.count_micros());
    fold_u64(h, e.seq);
  }
  fold_u64(h, snap.sim.stopped ? 1 : 0);
  fold_u64(h, snap.sim.events_processed);
  fold_u64(h, snap.sim.semantic_rng_draws);

  fold_machine(h, snap.target);
  fold_machine(h, snap.control);

  fold_u64(h, snap.network.connections);
  fold_u64(h, snap.network.bound_ports.size());
  for (const auto& [machine, port] : snap.network.bound_ports) {
    fold_str(h, machine);
    fold_u64(h, port);
  }
  return h;
}

}  // namespace dts::snap
