// Fixed-capacity ring buffer used by the observability layer (per-run
// syscall traces). Capacity 0 means disabled: push() is a no-op, which is
// what makes tracing-off campaigns effectively free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dts::obs {

template <typename T>
class RingBuffer {
 public:
  /// Resets the buffer to hold at most `n` elements (0 disables it).
  void set_capacity(std::size_t n) {
    data_.assign(n, T{});
    cap_ = n;
    next_ = 0;
    count_ = 0;
    pushed_ = 0;
  }

  std::size_t capacity() const { return cap_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool enabled() const { return cap_ > 0; }

  /// Total number of elements ever pushed (including evicted ones).
  std::uint64_t pushed() const { return pushed_; }

  void push(T value) {
    if (cap_ == 0) return;
    data_[next_] = std::move(value);
    next_ = (next_ + 1) % cap_;
    if (count_ < cap_) ++count_;
    ++pushed_;
  }

  /// Element `i` counted from the oldest retained entry (0 = oldest).
  const T& operator[](std::size_t i) const { return data_[physical(i)]; }
  T& operator[](std::size_t i) { return data_[physical(i)]; }

  /// Newest-first search; returns nullptr when no retained element matches.
  template <typename Pred>
  T* find_last_if(Pred pred) {
    for (std::size_t i = count_; i > 0; --i) {
      T& e = data_[physical(i - 1)];
      if (pred(e)) return &e;
    }
    return nullptr;
  }

  /// Snapshot in oldest-to-newest order.
  std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(count_);
    for (std::size_t i = 0; i < count_; ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  std::size_t physical(std::size_t logical) const {
    return (next_ + cap_ - count_ + logical) % cap_;
  }

  std::vector<T> data_;
  std::size_t cap_ = 0;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
  std::uint64_t pushed_ = 0;
};

}  // namespace dts::obs
