#include "obs/trace.h"

#include <cstdio>

namespace dts::obs {

std::string_view to_string(TraceMode mode) {
  switch (mode) {
    case TraceMode::kOff: return "off";
    case TraceMode::kFailures: return "failures";
    case TraceMode::kAll: return "all";
  }
  return "?";
}

bool trace_mode_from_string(std::string_view s, TraceMode* out) {
  if (s == "off") { *out = TraceMode::kOff; return true; }
  if (s == "failures") { *out = TraceMode::kFailures; return true; }
  if (s == "all") { *out = TraceMode::kAll; return true; }
  return false;
}

std::uint32_t TraceEvent::args_digest() const {
  std::uint32_t h = 2166136261u;
  for (int i = 0; i < argc; ++i) {
    const nt::Word w = args[static_cast<std::size_t>(i)];
    for (int b = 0; b < 4; ++b) {
      h ^= (w >> (8 * b)) & 0xFFu;
      h *= 16777619u;
    }
  }
  return h;
}

std::string TraceEvent::to_string() const {
  char head[32];
  std::snprintf(head, sizeof head, "%.3fs ", time.to_seconds());
  std::string out = head;
  out += "pid " + std::to_string(pid) + ": ";
  out += nt::to_string(fn);
  out += "(";
  for (int i = 0; i < argc; ++i) {
    if (i > 0) out += ", ";
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%X", args[static_cast<std::size_t>(i)]);
    out += buf;
  }
  out += ")";
  if (completed) {
    char buf[24];
    std::snprintf(buf, sizeof buf, " -> 0x%X", result);
    out += buf;
  }
  if (injected_here) out += "  <== FAULT INJECTED";
  return out;
}

void SyscallTrace::record_call(const TraceEvent& e) {
  ring_.push(e);
  // Pin the corrupted call plus its predecessors so a long post-injection
  // tail cannot evict the most interesting entry of the whole run.
  if (e.injected_here && injection_context_.empty()) {
    injection_context_ = ring_.snapshot();
  }
}

void SyscallTrace::record_result(std::uint64_t seq, nt::Word result) {
  if (!ring_.enabled()) return;
  TraceEvent* e = ring_.find_last_if(
      [seq](const TraceEvent& t) { return t.seq == seq; });
  if (e != nullptr) {
    e->completed = true;
    e->result = result;
  }
  // Keep the pinned injection context consistent too: the corrupted call's
  // own result usually arrives right after pinning.
  for (auto it = injection_context_.rbegin(); it != injection_context_.rend(); ++it) {
    if (it->seq == seq) {
      it->completed = true;
      it->result = result;
      break;
    }
  }
}

std::string forensics_dump(std::string_view title,
                           const std::vector<std::string>& context,
                           const SpanLog* spans, const SyscallTrace& trace) {
  std::string out = "=== DTS forensics: ";
  out += title;
  out += " ===\n";
  for (const std::string& line : context) {
    out += line;
    out += "\n";
  }
  if (spans != nullptr && !spans->empty()) {
    out += "--- middleware spans ---\n";
    for (const Span& s : spans->spans()) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "%s %.3fs..%.3fs (%s)\n", s.name.c_str(),
                    s.begin.to_seconds(), s.end.to_seconds(),
                    sim::to_string(s.duration()).c_str());
      out += buf;
    }
  }
  const std::vector<TraceEvent>& ctx = trace.injection_context();
  const std::vector<TraceEvent> tail = trace.entries();
  if (!ctx.empty()) {
    out += "--- injection context (corrupted call last) ---\n";
    for (const TraceEvent& e : ctx) {
      out += "  " + e.to_string() + "\n";
    }
  }
  // The tail duplicates the injection context when nothing was traced after
  // the corruption; print it only when it adds information.
  const bool tail_is_context =
      !ctx.empty() && !tail.empty() && tail.back().seq == ctx.back().seq;
  if (!tail.empty() && !tail_is_context) {
    char hdr[80];
    std::snprintf(hdr, sizeof hdr, "--- last %zu calls before run end ---\n",
                  tail.size());
    out += hdr;
    for (const TraceEvent& e : tail) {
      out += "  " + e.to_string() + "\n";
    }
  }
  char foot[96];
  std::snprintf(foot, sizeof foot,
                "(calls traced: %llu, ring capacity: %zu)\n",
                static_cast<unsigned long long>(trace.recorded()),
                trace.capacity());
  out += foot;
  return out;
}

}  // namespace dts::obs
