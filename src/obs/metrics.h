// Campaign metrics registry: counters, gauges and histograms shared by the
// exec workers, the ntdts CLI and the bench harness.
//
// Concurrency model: metric handles are created (or looked up) under one
// registry mutex, but updating an existing handle is a relaxed atomic op —
// workers resolve their handles once per campaign (or tolerate a short map
// lookup per run; at milliseconds per simulated run either is invisible).
//
// Exports: Prometheus text exposition (prometheus_text) and Chrome
// trace_event JSON (chrome_trace_json) for chrome://tracing / Perfetto
// timeline viewing of a campaign's per-run schedule.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dts::obs {

/// Prometheus-style label set. Order is preserved in the output; callers use
/// a consistent order so identical label sets map to the same child.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// Telemetry merge: mirrors a worker's cumulative snapshot into this child.
  /// Monotonic — a stale frame arriving out of order can never wind the
  /// counter backwards.
  void advance_to(std::uint64_t v) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are the inclusive upper bucket edges;
/// one implicit +Inf bucket follows. The sum is kept in integer microunits
/// so observe() stays a pair of relaxed atomic adds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds().size() is +Inf.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const {
    return static_cast<double>(sum_micro_.load(std::memory_order_relaxed)) / 1e6;
  }
  std::int64_t sum_micro() const { return sum_micro_.load(std::memory_order_relaxed); }

  /// Telemetry merge: mirrors a worker's cumulative bucket snapshot into this
  /// child (`buckets` per-bucket including +Inf; sizes must match bounds).
  /// The internal count is derived from the buckets, never shipped
  /// separately, so the merged child can't disagree with itself.
  void mirror(const std::vector<std::uint64_t>& buckets, std::int64_t sum_micro);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_micro_{0};
};

/// Default bucket edges for response-time and latency histograms (seconds).
const std::vector<double>& response_time_buckets();
/// Default bucket edges for per-run wall time (seconds).
const std::vector<double>& wall_time_buckets();

/// Splices one more label into an already-rendered `{k="v",...}` label
/// string (telemetry merging tags shipped children with worker="N").
std::string labels_with(const std::string& rendered, const std::string& key,
                        const std::string& value);

/// One metric child, frozen at snapshot() time. For histograms the buckets
/// are per-bucket (non-cumulative) with +Inf last; the count is by
/// definition the bucket total and is not carried separately.
struct MetricSample {
  char kind = 'c';  // 'c' counter, 'g' gauge, 'h' histogram
  std::string name;
  std::string help;
  std::string labels;  // rendered {k="v",...}, "" for no labels
  std::uint64_t counter_value = 0;
  double gauge_value = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::int64_t sum_micro = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter/gauge/histogram child for (name, labels), creating
  /// it on first use. Handles stay valid for the registry's lifetime.
  /// Reusing a name with a different metric kind throws std::logic_error.
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  Histogram& histogram(const std::string& name, const Labels& labels,
                       const std::vector<double>& bounds,
                       const std::string& help = "");

  /// Handle lookup by pre-rendered label string (the form snapshot() and the
  /// telemetry wire carry) — the merge path re-creates a worker's children
  /// without reconstructing Labels vectors.
  Counter& counter_at(const std::string& name, const std::string& rendered_labels,
                      const std::string& help = "");
  Gauge& gauge_at(const std::string& name, const std::string& rendered_labels,
                  const std::string& help = "");
  Histogram& histogram_at(const std::string& name, const std::string& rendered_labels,
                          const std::vector<double>& bounds,
                          const std::string& help = "");

  /// Consistent-enough copy of every child for telemetry shipping. Values
  /// are relaxed-atomic reads; histogram counts derive from the buckets (see
  /// Histogram::mirror), so a snapshot never exposes a torn count/bucket
  /// pair.
  std::vector<MetricSample> snapshot() const;

  /// Prometheus text exposition format (# HELP / # TYPE + samples).
  std::string prometheus_text() const;

  // --- Chrome trace_event timeline ---------------------------------------

  /// Microseconds since registry construction on the monotonic clock — the
  /// `ts` base for complete events.
  double now_us() const;

  /// Records one "ph":"X" (complete) event. `tid` groups events into rows
  /// (the executor uses the worker index).
  void add_complete_event(const std::string& name, const std::string& cat,
                          int tid, double ts_us, double dur_us,
                          const Labels& args = {});

  /// Names a timeline row (emitted as a thread_name metadata event).
  void set_thread_name(int tid, const std::string& name);

  /// {"traceEvents":[...]} JSON for chrome://tracing / Perfetto.
  std::string chrome_trace_json() const;

 private:
  enum class Kind : char { kCounter = 'c', kGauge = 'g', kHistogram = 'h' };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    // label-string -> child; the label string is the rendered {k="v",...}.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  struct CompleteEvent {
    std::string name;
    std::string cat;
    int tid = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;
    Labels args;
  };

  Family& family(const std::string& name, Kind kind, const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex events_mu_;
  std::vector<CompleteEvent> events_;
  std::map<int, std::string> thread_names_;
};

/// Writes prometheus_text() to `path` and chrome_trace_json() to
/// `path + ".trace.json"`. Returns false (with *error set) on I/O failure.
bool write_metrics_files(const MetricsRegistry& registry, const std::string& path,
                         std::string* error);

}  // namespace dts::obs
