#include "obs/jsonl.h"

#include <charconv>
#include <cstdio>

namespace dts::obs {

namespace {

/// Locates `"key":` in `line` and returns the offset just past the colon,
/// or npos.
std::size_t find_value(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  return pos == std::string_view::npos ? std::string_view::npos : pos + needle.size();
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool json_uint_field(std::string_view line, std::string_view key, std::uint64_t* out) {
  const auto pos = find_value(line, key);
  if (pos == std::string_view::npos) return false;
  const char* begin = line.data() + pos;
  const char* end = line.data() + line.size();
  auto [p, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && p != begin;
}

bool json_string_field(std::string_view line, std::string_view key, std::string* out) {
  auto pos = find_value(line, key);
  if (pos == std::string_view::npos || pos >= line.size() || line[pos] != '"') return false;
  ++pos;
  out->clear();
  while (pos < line.size()) {
    const char c = line[pos];
    if (c == '"') return true;
    if (c == '\\') {
      if (pos + 1 >= line.size()) return false;
      const char e = line[pos + 1];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        default: return false;  // \uXXXX never appears in ids/run lines
      }
      pos += 2;
    } else {
      *out += c;
      ++pos;
    }
  }
  return false;  // unterminated string (truncated line)
}

}  // namespace dts::obs
