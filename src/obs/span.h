// Sim-time spans for middleware latency accounting: how long did MSCS take
// to notice a dead service, how long did watchd's restart take? Middleware
// programs record spans through a raw pointer in their config (null = off);
// the run owner aggregates them into metrics histograms and forensics dumps.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace dts::obs {

struct Span {
  std::string name;  // e.g. "mscs.detection", "watchd.recovery"
  sim::TimePoint begin{};
  sim::TimePoint end{};

  sim::Duration duration() const { return end - begin; }
};

/// Single-threaded span collection (one run = one simulation). Cheap enough
/// to be always on: a handful of entries per run at most.
class SpanLog {
 public:
  void add(std::string name, sim::TimePoint begin, sim::TimePoint end) {
    spans_.push_back(Span{std::move(name), begin, end});
  }

  const std::vector<Span>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }
  void clear() { spans_.clear(); }

 private:
  std::vector<Span> spans_;
};

}  // namespace dts::obs
