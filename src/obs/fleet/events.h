// Structured fleet event log: worker connect/disconnect, lease lifecycle
// and anomaly events of a distributed (or in-process) campaign, in one
// bounded, thread-safe, strictly-ordered buffer. Before this existed, lease
// reassignment was only a metric counter — a number with no story; the event
// log records who lost which lease when, so a post-mortem can replay the
// fleet's history instead of inferring it.
//
// Entries carry a strictly increasing sequence number (the ordering tests'
// anchor), a wall-clock timestamp (fleet events are host-side operational
// facts — unlike nt::EventLog, which logs simulated time inside a run) and
// a monotonic microsecond offset for interval math.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dts::obs::fleet {

enum class FleetEventKind {
  kWorkerConnect,
  kWorkerDisconnect,
  kLeaseIssued,
  kLeaseExpired,
  kLeaseReassigned,
  kAnomaly,
};

std::string_view to_string(FleetEventKind k);

struct FleetEvent {
  std::uint64_t seq = 0;  // strictly increasing, never reused
  std::chrono::system_clock::time_point wall{};
  std::uint64_t mono_us = 0;  // microseconds since log construction
  FleetEventKind kind = FleetEventKind::kWorkerConnect;
  int worker_id = -1;          // -1 = not worker-scoped
  std::uint64_t lease_id = 0;  // 0 = not lease-scoped
  std::string detail;
};

class FleetEventLog {
 public:
  /// Keeps at most `capacity` entries; older entries are dropped (counted in
  /// dropped()).
  explicit FleetEventLog(std::size_t capacity = 4096);

  void record(FleetEventKind kind, int worker_id, std::uint64_t lease_id,
              std::string detail);

  /// Copy of the retained entries, oldest first.
  std::vector<FleetEvent> entries() const;
  /// The last `n` retained entries, oldest first.
  std::vector<FleetEvent> tail(std::size_t n) const;

  std::uint64_t total() const;    // events ever recorded
  std::uint64_t dropped() const;  // events evicted by the capacity bound

 private:
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::deque<FleetEvent> entries_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace dts::obs::fleet
