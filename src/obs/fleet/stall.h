// Stall/anomaly detection for campaign runs. Fault-injection runs within one
// (function, fault-type) stratum simulate near-identical scenarios, so their
// host wall-clock durations cluster tightly; a run that takes far longer than
// its stratum's recent history is stalling (a wedged simulation, a slow
// worker, an interposed debugger...) and worth flagging while the campaign
// is still running rather than in the post-mortem.
//
// The budget is adaptive and robust: median + k * IQR over a sliding window
// of recent durations for the stratum, armed only once the window holds
// min_samples observations (cold strata never false-positive). Flagged runs
// increment dts_anomaly_runs_total{fn,type}, the live budget is exported as
// dts_anomaly_budget_seconds{fn,type}, and each anomaly lands in the fleet
// event log with the run's execution index so it links back to the exact
// journal record.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/fleet/events.h"
#include "obs/metrics.h"
#include "plan/plan.h"

namespace dts::obs::fleet {

class StallDetector {
 public:
  struct Options {
    double k = 4.0;               // budget = median + k * IQR (+ slack)
    double slack_s = 0.002;       // absolute slack: never flag sub-slack jitter
    std::size_t min_samples = 8;  // window size before the budget arms
    std::size_t window = 128;     // sliding window per stratum
  };

  /// Either sink may be null; detection still runs (anomalies() counts).
  StallDetector(MetricsRegistry* metrics, FleetEventLog* events);
  StallDetector(MetricsRegistry* metrics, FleetEventLog* events, Options options);

  /// Records one run and returns true when it exceeded the stratum's armed
  /// budget. `fault_id`/`exec_index` only decorate the emitted event.
  bool observe(const plan::StratumKey& key, double wall_s,
               const std::string& fault_id, const std::string& exec_index);

  /// Current budget for a stratum in seconds, or 0 while unarmed.
  double budget_s(const plan::StratumKey& key) const;

  std::uint64_t anomalies() const;

 private:
  struct Stratum {
    std::vector<double> window;  // ring buffer of recent wall durations
    std::size_t next = 0;
    obs::Counter* flagged = nullptr;
    obs::Gauge* budget = nullptr;
    double armed_budget_s = 0.0;
  };

  const Options options_;
  MetricsRegistry* metrics_;
  FleetEventLog* events_;
  mutable std::mutex mu_;
  std::map<plan::StratumKey, Stratum> strata_;
  std::uint64_t anomalies_ = 0;
};

}  // namespace dts::obs::fleet
