// Fleet telemetry shipping: a worker serializes its local MetricsRegistry
// snapshot into a compact text payload (carried inside the TELEMETRY wire
// message, dist/protocol.h), and the coordinator merges decoded samples into
// the fleet-wide registry with a worker="<id>" label spliced into every
// child — one Prometheus scrape of the coordinator then shows the whole
// fleet, per worker.
//
// Payload grammar (one sample per line, fields tab-separated — names, label
// strings and help texts never contain tabs):
//   c <TAB> name <TAB> {labels} <TAB> value            <TAB> help
//   g <TAB> name <TAB> {labels} <TAB> value            <TAB> help
//   h <TAB> name <TAB> {labels} <TAB> bounds;buckets;sum_micro <TAB> help
// Histogram bounds/buckets are space-joined; buckets are per-bucket with
// +Inf last. Snapshots are cumulative, not deltas: merging mirrors the
// latest snapshot into the worker's children (Counter::advance_to /
// Histogram::mirror), so a lost or reordered frame can only make the fleet
// view momentarily stale, never wrong.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dts::obs::fleet {

/// Serializes registry samples for the wire (see grammar above).
std::string encode_samples(const std::vector<MetricSample>& samples);

/// Parses an encoded payload. Malformed lines are skipped — a telemetry
/// frame is advisory, never worth killing a worker connection over.
std::vector<MetricSample> decode_samples(const std::string& text);

/// Merges one worker's snapshot into `registry`, tagging every child with
/// worker="<worker_id>".
void merge_samples(MetricsRegistry& registry, int worker_id,
                   const std::vector<MetricSample>& samples);

}  // namespace dts::obs::fleet
