#include "obs/fleet/http.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "dist/socket.h"

namespace dts::obs::fleet {

namespace {

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

}  // namespace

std::map<std::string, std::string> parse_query(std::string_view query) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view pair = query.substr(pos, end - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && eq > 0) {
      out[std::string(pair.substr(0, eq))] = std::string(pair.substr(eq + 1));
    } else if (!pair.empty()) {
      out[std::string(pair)] = "";
    }
    pos = end + 1;
  }
  return out;
}

struct HttpEndpoint::Impl {
  Options options;
  std::map<std::string, std::function<HttpResponse(const HttpRequest&)>> routes;
  dist::Listener listener;
  std::thread thread;
  std::atomic<bool> stopping{false};
  bool started = false;
  std::chrono::steady_clock::time_point start_time;

  void serve() {
    while (!stopping.load(std::memory_order_relaxed)) {
      dist::Socket conn = listener.accept(100);
      if (!conn.valid()) continue;
      serve_connection(conn.fd());
    }
  }

  void serve_connection(int fd) {
    std::string head;
    while (head.find("\r\n\r\n") == std::string::npos &&
           head.find("\n\n") == std::string::npos) {
      if (head.size() >= options.max_request) return;
      const dist::RecvStatus st =
          dist::recv_some(fd, &head, options.max_request - head.size(),
                          options.io_timeout_ms);
      if (st != dist::RecvStatus::kData) return;
    }

    // Request line: METHOD SP request-target SP HTTP/x.y
    const std::size_t line_end = head.find_first_of("\r\n");
    const std::string line = head.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    HttpResponse resp;
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      resp = {400, "text/plain; charset=utf-8", "bad request\n"};
    } else {
      HttpRequest req;
      req.method = line.substr(0, sp1);
      std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::size_t qmark = target.find('?');
      if (qmark != std::string::npos) {
        req.query = parse_query(std::string_view(target).substr(qmark + 1));
        target.resize(qmark);
      }
      req.path = std::move(target);
      if (req.method != "GET" && req.method != "HEAD") {
        resp = {405, "text/plain; charset=utf-8", "method not allowed\n"};
      } else if (auto it = routes.find(req.path); it != routes.end()) {
        resp = it->second(req);
      } else if (req.path == "/healthz") {
        // Built-in liveness probe: a user handler on /healthz (above) wins,
        // otherwise every endpoint answers without registration.
        const double up = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start_time)
                              .count();
        char body[160];
        std::snprintf(body, sizeof body,
                      "{\"status\":\"ok\",\"version\":\"%.64s\","
                      "\"uptime_s\":%.3f}",
                      options.version.c_str(), up);
        resp = {200, "application/json", body};
      } else {
        resp = {404, "text/plain; charset=utf-8", "not found\n"};
      }
      if (req.method == "HEAD") resp.body.clear();
    }

    std::string out = "HTTP/1.0 " + std::to_string(resp.status) + " " +
                      reason_phrase(resp.status) + "\r\n";
    out += "Content-Type: " + resp.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += resp.body;
    dist::send_all(fd, out, options.io_timeout_ms);
  }
};

HttpEndpoint::HttpEndpoint() : HttpEndpoint(Options()) {}

HttpEndpoint::HttpEndpoint(Options options) : impl_(new Impl) {
  impl_->options = options;
}

HttpEndpoint::~HttpEndpoint() { stop(); }

void HttpEndpoint::handle(const std::string& path,
                          std::function<HttpResponse(const HttpRequest&)> handler) {
  impl_->routes[path] = std::move(handler);
}

bool HttpEndpoint::start(const std::string& host, std::uint16_t port,
                         std::string* error) {
  if (impl_->started) {
    if (error != nullptr) *error = "http endpoint already started";
    return false;
  }
  std::string err;
  impl_->listener = dist::Listener::open(host, port, &err);
  if (!impl_->listener.valid()) {
    if (error != nullptr) *error = "http: " + err;
    return false;
  }
  impl_->started = true;
  impl_->start_time = std::chrono::steady_clock::now();
  impl_->thread = std::thread([impl = impl_.get()] { impl->serve(); });
  return true;
}

void HttpEndpoint::stop() {
  if (!impl_->started) return;
  impl_->stopping.store(true, std::memory_order_relaxed);
  if (impl_->thread.joinable()) impl_->thread.join();
  impl_->started = false;
}

std::uint16_t HttpEndpoint::port() const { return impl_->listener.port(); }

}  // namespace dts::obs::fleet
