#include "obs/fleet/events.h"

namespace dts::obs::fleet {

std::string_view to_string(FleetEventKind k) {
  switch (k) {
    case FleetEventKind::kWorkerConnect: return "worker_connect";
    case FleetEventKind::kWorkerDisconnect: return "worker_disconnect";
    case FleetEventKind::kLeaseIssued: return "lease_issued";
    case FleetEventKind::kLeaseExpired: return "lease_expired";
    case FleetEventKind::kLeaseReassigned: return "lease_reassigned";
    case FleetEventKind::kAnomaly: return "anomaly";
  }
  return "?";
}

FleetEventLog::FleetEventLog(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1),
      epoch_(std::chrono::steady_clock::now()) {}

void FleetEventLog::record(FleetEventKind kind, int worker_id,
                           std::uint64_t lease_id, std::string detail) {
  FleetEvent e;
  e.wall = std::chrono::system_clock::now();
  e.mono_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  e.kind = kind;
  e.worker_id = worker_id;
  e.lease_id = lease_id;
  e.detail = std::move(detail);

  std::lock_guard<std::mutex> lock(mu_);
  e.seq = next_seq_++;
  if (entries_.size() == capacity_) {
    entries_.pop_front();
    ++dropped_;
  }
  entries_.push_back(std::move(e));
}

std::vector<FleetEvent> FleetEventLog::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

std::vector<FleetEvent> FleetEventLog::tail(std::size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t skip = entries_.size() > n ? entries_.size() - n : 0;
  return {entries_.begin() + static_cast<std::ptrdiff_t>(skip), entries_.end()};
}

std::uint64_t FleetEventLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::uint64_t FleetEventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace dts::obs::fleet
