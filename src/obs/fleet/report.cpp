#include "obs/fleet/report.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/campaign.h"
#include "core/workload.h"
#include "fault/model.h"
#include "obs/fleet/span.h"
#include "obs/metrics.h"

namespace dts::obs::fleet {

namespace {

std::size_t outcome_slot(core::Outcome o) { return static_cast<std::size_t>(o); }

std::string config_label(const exec::JournalKey& key) {
  std::ostringstream out;
  out << key.workload << " mw=" << key.middleware << " wd=" << key.watchd_version
      << " seed=" << key.seed;
  return out.str();
}

std::string bound_label(double bound) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", bound);
  return buf;
}

std::string bar(std::uint64_t count, std::uint64_t max_count) {
  if (count == 0 || max_count == 0) return "";
  const std::size_t width =
      std::max<std::size_t>(1, static_cast<std::size_t>(40.0 * static_cast<double>(count) /
                                                        static_cast<double>(max_count)));
  return std::string(width, '#');
}

// Full five-character escape: workload/fault/context strings come from
// journals on disk, which nothing guarantees are tame — a workload named
// `<script>` or a detail string with a stray quote must render inert, both
// in element content and inside attribute values.
std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&#39;"; break;
      default: out += c;
    }
  }
  return out;
}

std::size_t topo_outcome_slot(const std::string& label) {
  for (std::size_t i = 0; i < 4; ++i) {
    if (label == core::kTopoOutcomes[i]) return i;
  }
  return 0;  // unreachable: parse_run_line validated the label
}

// The propagation matrix renders only when some record actually carries
// topology stats; classic reports are unchanged.
bool has_topo_axis(const FleetReport& report) {
  for (const ReportGroup& g : report.groups) {
    if (g.topo_runs > 0) return true;
  }
  return false;
}

// The per-model matrix is worth a section only when some record actually
// carries a non-default model annotation; a pure paper-model report would
// just repeat the outcome matrix row for row.
bool has_model_axis(const FleetReport& report) {
  for (const ReportGroup& g : report.groups) {
    for (const auto& [label, counts] : g.model_outcomes) {
      if (label != fault::kDefaultAnnotation) return true;
    }
  }
  return false;
}

// The request-trace sections render only when some record carries a v7 "rt"
// payload; untraced reports are unchanged.
bool has_rtrace_axis(const FleetReport& report) {
  for (const ReportGroup& g : report.groups) {
    if (g.traced_runs > 0) return true;
  }
  return false;
}

std::string ms(std::int64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1fms", static_cast<double>(us) / 1e3);
  return buf;
}

/// The request a human debugs first: injected beats clean, failed beats ok,
/// then slowest wins.
const obs::rtrace::RequestTrace* worst_request(const obs::rtrace::RunTrace& rt) {
  const auto score = [](const obs::rtrace::RequestTrace& r) {
    return (r.injected ? 4 : 0) + (r.ok ? 0 : 2);
  };
  const obs::rtrace::RequestTrace* best = nullptr;
  for (const obs::rtrace::RequestTrace& r : rt.requests) {
    if (best == nullptr || score(r) > score(*best) ||
        (score(r) == score(*best) && r.elapsed_us > best->elapsed_us)) {
      best = &r;
    }
  }
  return best;
}

/// Plain-text span waterfall of the exemplar's worst request, plus that
/// request's per-tier critical-path attribution. Span ids are minted in
/// begin order, so a parent's id is always below its children's — one pass
/// computes nesting depth.
std::string waterfall_text(const obs::rtrace::RunTrace& rt) {
  const obs::rtrace::RequestTrace* req = worst_request(rt);
  if (req == nullptr) return "";
  std::ostringstream out;
  out << "request #" << req->trace << " (" << (req->ok ? "ok" : "failed") << ", "
      << ms(req->elapsed_us) << (req->injected ? ", carries the injection" : "")
      << ")\n";
  std::map<int, int> depth;
  std::int64_t origin = 0;
  bool have_origin = false;
  for (const obs::rtrace::TraceSpan& s : rt.spans) {
    if (s.trace != req->trace) continue;
    if (!have_origin) {
      origin = s.begin_us;
      have_origin = true;
    }
    const auto it = depth.find(s.parent);
    const int d = s.parent == 0 || it == depth.end() ? 0 : it->second + 1;
    depth[s.id] = d;
    char line[200];
    std::snprintf(line, sizeof line, "  %*s%-9s %-8s %-14s [%9.1f -%9.1f ms] %s%s\n",
                  d * 2, "", s.name.c_str(), s.tier.c_str(), s.replica.c_str(),
                  static_cast<double>(s.begin_us - origin) / 1e3,
                  static_cast<double>(s.end_us - origin) / 1e3, s.outcome.c_str(),
                  s.injected ? "   <-- fault injected here" : "");
    out << line;
  }
  out << "critical-path attribution:\n";
  for (const obs::rtrace::TierAttribution& t : req->tiers) {
    char line[200];
    std::snprintf(line, sizeof line,
                  "  %-8s service %10s   failover-retry %10s   queue %10s\n",
                  t.tier.c_str(), ms(t.service_us).c_str(), ms(t.retry_us).c_str(),
                  ms(t.queue_us).c_str());
    out << line;
  }
  return out.str();
}

void render_histogram_lines(const ReportGroup& g,
                            const std::function<void(const std::string&, std::uint64_t,
                                                     const std::string&)>& emit) {
  const std::vector<double>& bounds = obs::response_time_buckets();
  std::uint64_t max_count = 0;
  for (std::uint64_t c : g.response_buckets) max_count = std::max(max_count, c);
  for (std::size_t i = 0; i < g.response_buckets.size(); ++i) {
    const std::string label =
        i < bounds.size() ? "<= " + bound_label(bounds[i]) + "s" : "> last";
    emit(label, g.response_buckets[i], bar(g.response_buckets[i], max_count));
  }
}

}  // namespace

FleetReport build_report(const std::vector<exec::JournalFile>& files,
                         obs::MetricsRegistry* metrics) {
  FleetReport report;
  const std::vector<double>& bounds = obs::response_time_buckets();

  // Group index by campaign identity; per-group set of seen fault indices
  // implements first-record-wins across files.
  std::map<std::string, std::size_t> group_of;
  std::vector<std::set<std::size_t>> seen;
  // Per group: the campaign digest its first xi-bearing record carries.
  // Records naming any OTHER digest were appended to the wrong file (or the
  // file was concatenated from two campaigns); merging them would silently
  // blend foreign results, so they are excluded and counted instead.
  // 0 = no xi seen yet (v1/v2 journals never resolve one — every record
  // passes, as the JournalKey header check vouched at file granularity).
  std::vector<std::uint64_t> group_digest;
  forensics::SignatureIndex signatures;

  for (const exec::JournalFile& file : files) {
    std::ostringstream id;
    id << file.key.workload << '\0' << file.key.middleware << '\0'
       << file.key.watchd_version << '\0' << file.key.seed << '\0'
       << file.key.fault_count;
    auto [it, inserted] = group_of.try_emplace(id.str(), report.groups.size());
    if (inserted) {
      ReportGroup g;
      g.key = file.key;
      g.min_version = g.max_version = file.version;
      g.response_buckets.assign(bounds.size() + 1, 0);
      report.groups.push_back(std::move(g));
      seen.emplace_back();
      group_digest.push_back(0);
    }
    ReportGroup& g = report.groups[it->second];
    g.min_version = std::min(g.min_version, file.version);
    g.max_version = std::max(g.max_version, file.version);

    std::string target_image;
    bool known_workload = true;
    try {
      target_image = core::workload_by_name(file.key.workload).target_image;
    } catch (const std::invalid_argument&) {
      known_workload = false;
    }

    const std::string campaign = config_label(file.key);
    for (const exec::JournalRecord& rec : file.records) {
      if (!rec.exec_index.empty()) {
        const auto ei = ExecutionIndex::parse(rec.exec_index);
        if (ei) {
          std::uint64_t& expected = group_digest[it->second];
          if (expected == 0) expected = ei->campaign_digest;
          if (ei->campaign_digest != expected) {
            ++g.foreign;
            ++report.foreign;
            continue;
          }
        }
      }
      if (!seen[it->second].insert(rec.index).second) {
        ++g.duplicates;
        ++report.duplicates;
        continue;
      }
      ++g.records;
      ++report.records;
      if (!rec.fn_called) ++g.uncalled;

      core::RunResult run;
      std::string error;
      if (!known_workload ||
          !core::parse_run_line(target_image, rec.run_line, &run, &error)) {
        ++g.unparsed;
        // Reserved signature keeps Σ cluster counts == merged records.
        signatures.add(forensics::unparsed_signature(), rec.fault_id,
                       rec.exec_index, campaign);
        continue;
      }
      forensics::SignatureKey sig_key =
          forensics::signature_of(run, rec.call_context);
      // The propagation-path axis: parsed run lines never carry the trace, so
      // the journal record's "rt" payload supplies it here (exactly what the
      // live path of signature_of reads from RunResult::rtrace).
      if (!rec.rtrace.empty()) {
        const std::uint64_t path = obs::rtrace::digest_of_serialized(rec.rtrace);
        if (path != 0) sig_key.path = obs::rtrace::digest_hex(path);
      }
      signatures.add(sig_key, rec.fault_id, rec.exec_index, campaign);
      if (!rec.rtrace.empty()) {
        if (const auto rt = obs::rtrace::RunTrace::parse(rec.rtrace)) {
          ++g.traced_runs;
          for (const obs::rtrace::TierAttribution& t : rt->totals) {
            bool found = false;
            for (obs::rtrace::TierAttribution& agg : g.rtrace_totals) {
              if (agg.tier == t.tier) {
                agg.service_us += t.service_us;
                agg.retry_us += t.retry_us;
                agg.queue_us += t.queue_us;
                found = true;
                break;
              }
            }
            if (!found) g.rtrace_totals.push_back(t);
          }
          const int rank = run.topo ? static_cast<int>(topo_outcome_slot(
                                          run.topo->user_outcome))
                                    : 0;
          if (rank > g.rtrace_example_rank) {
            g.rtrace_example_rank = rank;
            g.rtrace_example = rec.rtrace;
            g.rtrace_example_fault = rec.fault_id;
            g.rtrace_example_outcome =
                run.topo ? run.topo->user_outcome : std::string("-");
          }
        }
      }
      ++g.outcomes[outcome_slot(run.outcome)];
      ++report.outcomes[outcome_slot(run.outcome)];
      ++g.model_outcomes[rec.model.empty() ? std::string(fault::kDefaultAnnotation)
                                           : rec.model][outcome_slot(run.outcome)];
      if (run.topo) {
        ++g.topo_runs;
        ++g.tier_outcomes[run.topo->tier][topo_outcome_slot(run.topo->user_outcome)];
        auto& curve = g.tier_p95_buckets[run.topo->tier];
        if (curve.empty()) curve.assign(bounds.size() + 1, 0);
        const double p95_s = static_cast<double>(run.topo->p95_us) / 1e6;
        std::size_t slot = bounds.size();
        for (std::size_t b = 0; b < bounds.size(); ++b) {
          if (p95_s <= bounds[b]) {
            slot = b;
            break;
          }
        }
        ++curve[slot];
      }
      if (run.response_received) {
        ++g.responses;
        const double rt_s = run.response_time.to_seconds();
        g.response_sum_s += rt_s;
        std::size_t slot = bounds.size();
        for (std::size_t b = 0; b < bounds.size(); ++b) {
          if (rt_s <= bounds[b]) {
            slot = b;
            break;
          }
        }
        ++g.response_buckets[slot];
      }
    }
  }
  report.signatures = signatures.ranked();
  report.signature_runs = signatures.total();
  if (metrics != nullptr && report.foreign > 0) {
    metrics
        ->counter("dts_report_foreign_records_total", {},
                  "journal records skipped for carrying a foreign campaign "
                  "digest in their execution index")
        .inc(report.foreign);
  }
  return report;
}

std::string render_report_markdown(const FleetReport& report) {
  std::ostringstream out;
  out << "# DTS campaign report\n\n";
  out << "Merged " << report.records << " runs";
  if (report.duplicates > 0) {
    out << " (" << report.duplicates << " duplicate records dropped)";
  }
  out << " across " << report.groups.size() << " campaign configuration"
      << (report.groups.size() == 1 ? "" : "s") << ".\n\n";
  if (report.foreign > 0) {
    out << "**Warning:** " << report.foreign << " record"
        << (report.foreign == 1 ? "" : "s")
        << " excluded — execution index names a foreign campaign digest.\n\n";
  }

  out << "## Outcome matrix\n\n";
  out << "| configuration | runs |";
  for (core::Outcome o : core::kAllOutcomes) out << " " << core::short_label(o) << " |";
  out << " uncalled | unparsed |\n";
  out << "|---|---:|";
  for (std::size_t i = 0; i < 5; ++i) out << "---:|";
  out << "---:|---:|\n";
  for (const ReportGroup& g : report.groups) {
    out << "| " << config_label(g.key) << " | " << g.records << " |";
    for (std::uint64_t c : g.outcomes) out << " " << c << " |";
    out << " " << g.uncalled << " | " << g.unparsed << " |\n";
  }
  if (report.groups.size() > 1) {
    out << "| total | " << report.records << " |";
    for (std::uint64_t c : report.outcomes) out << " " << c << " |";
    out << "  |  |\n";
  }

  if (has_model_axis(report)) {
    out << "\n## Outcomes by fault model\n\n";
    out << "| configuration | model | runs |";
    for (core::Outcome o : core::kAllOutcomes) out << " " << core::short_label(o) << " |";
    out << "\n|---|---|---:|";
    for (std::size_t i = 0; i < 5; ++i) out << "---:|";
    out << "\n";
    for (const ReportGroup& g : report.groups) {
      for (const auto& [label, counts] : g.model_outcomes) {
        std::uint64_t runs = 0;
        for (std::uint64_t c : counts) runs += c;
        out << "| " << config_label(g.key) << " | " << label << " | " << runs << " |";
        for (std::uint64_t c : counts) out << " " << c << " |";
        out << "\n";
      }
    }
  }

  if (has_topo_axis(report)) {
    out << "\n## Per-tier fault propagation\n\n";
    out << "| configuration | tier | runs |";
    for (std::string_view o : core::kTopoOutcomes) out << " " << o << " |";
    out << "\n|---|---|---:|";
    for (std::size_t i = 0; i < 4; ++i) out << "---:|";
    out << "\n";
    for (const ReportGroup& g : report.groups) {
      for (const auto& [tier, counts] : g.tier_outcomes) {
        std::uint64_t runs = 0;
        for (std::uint64_t c : counts) runs += c;
        out << "| " << config_label(g.key) << " | " << tier << " | " << runs << " |";
        for (std::uint64_t c : counts) out << " " << c << " |";
        out << "\n";
      }
    }
    for (const ReportGroup& g : report.groups) {
      for (const auto& [tier, curve] : g.tier_p95_buckets) {
        out << "\n### Degradation curve: " << config_label(g.key) << ", tier " << tier
            << " (per-run p95)\n\n```\n";
        const std::vector<double>& bounds = obs::response_time_buckets();
        std::uint64_t max_count = 0;
        for (std::uint64_t c : curve) max_count = std::max(max_count, c);
        for (std::size_t i = 0; i < curve.size(); ++i) {
          const std::string label =
              i < bounds.size() ? "<= " + bound_label(bounds[i]) + "s" : "> last";
          char line[160];
          std::snprintf(line, sizeof line, "%10s %8llu %s\n", label.c_str(),
                        static_cast<unsigned long long>(curve[i]),
                        bar(curve[i], max_count).c_str());
          out << line;
        }
        out << "```\n";
      }
    }
  }

  if (has_rtrace_axis(report)) {
    out << "\n## Request traces\n\n";
    out << "| configuration | traced runs | tier | service | failover retry | "
           "queue |\n";
    out << "|---|---:|---|---:|---:|---:|\n";
    for (const ReportGroup& g : report.groups) {
      for (const auto& t : g.rtrace_totals) {
        out << "| " << config_label(g.key) << " | " << g.traced_runs << " | "
            << t.tier << " | " << ms(t.service_us) << " | " << ms(t.retry_us)
            << " | " << ms(t.queue_us) << " |\n";
      }
    }
    for (const ReportGroup& g : report.groups) {
      if (g.rtrace_example.empty()) continue;
      const auto rt = obs::rtrace::RunTrace::parse(g.rtrace_example);
      if (!rt) continue;
      out << "\n### Critical path: " << config_label(g.key) << ", fault "
          << g.rtrace_example_fault << " (" << g.rtrace_example_outcome
          << ")\n\n```\n" << waterfall_text(*rt) << "```\n";
    }
  }

  if (!report.signatures.empty()) {
    out << "\n## Failure signatures\n\n";
    out << report.signature_runs << " runs collapse into "
        << report.signatures.size() << " distinct signature"
        << (report.signatures.size() == 1 ? "" : "s") << ".\n\n";
    out << "| signature | fault class | call context | outcome | span | runs "
           "| campaigns | example |\n";
    out << "|---|---|---|---|---|---:|---:|---|\n";
    for (const forensics::SignatureCluster& s : report.signatures) {
      out << "| " << s.id << " | " << s.key.fault_class << " | "
          << s.key.call_context << " | " << s.key.outcome << " | " << s.key.span
          << " | " << s.count << " | " << s.campaigns << " | " << s.example_fault
          << " |\n";
    }
  }

  for (const ReportGroup& g : report.groups) {
    out << "\n## Response times: " << config_label(g.key) << "\n\n";
    if (g.min_version != g.max_version) {
      out << "Merged from journal schema versions " << g.min_version << ".."
          << g.max_version << ".\n\n";
    }
    if (g.responses == 0) {
      out << "No responses recorded.\n";
      continue;
    }
    char mean[48];
    std::snprintf(mean, sizeof mean, "%.3f",
                  g.response_sum_s / static_cast<double>(g.responses));
    out << g.responses << " responses, mean " << mean << "s.\n\n```\n";
    render_histogram_lines(g, [&](const std::string& label, std::uint64_t count,
                                  const std::string& bar_text) {
      char line[160];
      std::snprintf(line, sizeof line, "%10s %8llu %s\n", label.c_str(),
                    static_cast<unsigned long long>(count), bar_text.c_str());
      out << line;
    });
    out << "```\n";
  }
  return out.str();
}

std::string render_report_html(const FleetReport& report) {
  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
      << "<title>DTS campaign report</title>\n"
      << "<style>body{font-family:sans-serif;margin:2em}"
      << "table{border-collapse:collapse}td,th{border:1px solid #999;"
      << "padding:4px 8px;text-align:right}th:first-child,td:first-child"
      << "{text-align:left}pre{background:#f4f4f4;padding:1em}</style>"
      << "</head><body>\n<h1>DTS campaign report</h1>\n";
  out << "<p>Merged " << report.records << " runs";
  if (report.duplicates > 0) {
    out << " (" << report.duplicates << " duplicate records dropped)";
  }
  out << " across " << report.groups.size() << " campaign configuration"
      << (report.groups.size() == 1 ? "" : "s") << ".</p>\n";
  if (report.foreign > 0) {
    out << "<p><strong>Warning:</strong> " << report.foreign << " record"
        << (report.foreign == 1 ? "" : "s")
        << " excluded &mdash; execution index names a foreign campaign "
           "digest.</p>\n";
  }

  out << "<h2>Outcome matrix</h2>\n<table>\n<tr><th>configuration</th><th>runs</th>";
  for (core::Outcome o : core::kAllOutcomes) {
    out << "<th>" << html_escape(std::string(core::short_label(o))) << "</th>";
  }
  out << "<th>uncalled</th><th>unparsed</th></tr>\n";
  for (const ReportGroup& g : report.groups) {
    out << "<tr><td>" << html_escape(config_label(g.key)) << "</td><td>" << g.records
        << "</td>";
    for (std::uint64_t c : g.outcomes) out << "<td>" << c << "</td>";
    out << "<td>" << g.uncalled << "</td><td>" << g.unparsed << "</td></tr>\n";
  }
  if (report.groups.size() > 1) {
    out << "<tr><td>total</td><td>" << report.records << "</td>";
    for (std::uint64_t c : report.outcomes) out << "<td>" << c << "</td>";
    out << "<td></td><td></td></tr>\n";
  }
  out << "</table>\n";

  if (has_model_axis(report)) {
    out << "<h2>Outcomes by fault model</h2>\n<table>\n"
        << "<tr><th>configuration</th><th>model</th><th>runs</th>";
    for (core::Outcome o : core::kAllOutcomes) {
      out << "<th>" << html_escape(std::string(core::short_label(o))) << "</th>";
    }
    out << "</tr>\n";
    for (const ReportGroup& g : report.groups) {
      for (const auto& [label, counts] : g.model_outcomes) {
        std::uint64_t runs = 0;
        for (std::uint64_t c : counts) runs += c;
        out << "<tr><td>" << html_escape(config_label(g.key)) << "</td><td>"
            << html_escape(label) << "</td><td>" << runs << "</td>";
        for (std::uint64_t c : counts) out << "<td>" << c << "</td>";
        out << "</tr>\n";
      }
    }
    out << "</table>\n";
  }

  if (has_topo_axis(report)) {
    out << "<h2>Per-tier fault propagation</h2>\n<table>\n"
        << "<tr><th>configuration</th><th>tier</th><th>runs</th>";
    for (std::string_view o : core::kTopoOutcomes) {
      out << "<th>" << html_escape(std::string(o)) << "</th>";
    }
    out << "</tr>\n";
    for (const ReportGroup& g : report.groups) {
      for (const auto& [tier, counts] : g.tier_outcomes) {
        std::uint64_t runs = 0;
        for (std::uint64_t c : counts) runs += c;
        out << "<tr><td>" << html_escape(config_label(g.key)) << "</td><td>"
            << html_escape(tier) << "</td><td>" << runs << "</td>";
        for (std::uint64_t c : counts) out << "<td>" << c << "</td>";
        out << "</tr>\n";
      }
    }
    out << "</table>\n";
    for (const ReportGroup& g : report.groups) {
      for (const auto& [tier, curve] : g.tier_p95_buckets) {
        out << "<h3>Degradation curve: " << html_escape(config_label(g.key))
            << ", tier " << html_escape(tier) << " (per-run p95)</h3>\n<pre>\n";
        const std::vector<double>& bounds = obs::response_time_buckets();
        std::uint64_t max_count = 0;
        for (std::uint64_t c : curve) max_count = std::max(max_count, c);
        for (std::size_t i = 0; i < curve.size(); ++i) {
          const std::string label =
              i < bounds.size() ? "<= " + bound_label(bounds[i]) + "s" : "> last";
          char line[160];
          std::snprintf(line, sizeof line, "%10s %8llu %s\n", label.c_str(),
                        static_cast<unsigned long long>(curve[i]),
                        bar(curve[i], max_count).c_str());
          out << html_escape(line);
        }
        out << "</pre>\n";
      }
    }
  }

  if (has_rtrace_axis(report)) {
    out << "<h2>Request traces</h2>\n<table>\n"
        << "<tr><th>configuration</th><th>traced runs</th><th>tier</th>"
        << "<th>service</th><th>failover retry</th><th>queue</th></tr>\n";
    for (const ReportGroup& g : report.groups) {
      for (const auto& t : g.rtrace_totals) {
        out << "<tr><td>" << html_escape(config_label(g.key)) << "</td><td>"
            << g.traced_runs << "</td><td>" << html_escape(t.tier) << "</td><td>"
            << ms(t.service_us) << "</td><td>" << ms(t.retry_us) << "</td><td>"
            << ms(t.queue_us) << "</td></tr>\n";
      }
    }
    out << "</table>\n";
    for (const ReportGroup& g : report.groups) {
      if (g.rtrace_example.empty()) continue;
      const auto rt = obs::rtrace::RunTrace::parse(g.rtrace_example);
      if (!rt) continue;
      out << "<h3>Critical path: " << html_escape(config_label(g.key))
          << ", fault " << html_escape(g.rtrace_example_fault) << " ("
          << html_escape(g.rtrace_example_outcome) << ")</h3>\n<pre>\n"
          << html_escape(waterfall_text(*rt)) << "</pre>\n";
    }
  }

  if (!report.signatures.empty()) {
    out << "<h2>Failure signatures</h2>\n<p>" << report.signature_runs
        << " runs collapse into " << report.signatures.size()
        << " distinct signature" << (report.signatures.size() == 1 ? "" : "s")
        << ".</p>\n<table>\n<tr><th>signature</th><th>fault class</th>"
        << "<th>call context</th><th>outcome</th><th>span</th><th>runs</th>"
        << "<th>campaigns</th><th>example</th></tr>\n";
    for (const forensics::SignatureCluster& s : report.signatures) {
      out << "<tr><td>" << html_escape(s.id) << "</td><td>"
          << html_escape(s.key.fault_class) << "</td><td>"
          << html_escape(s.key.call_context) << "</td><td>"
          << html_escape(s.key.outcome) << "</td><td>" << html_escape(s.key.span)
          << "</td><td>" << s.count << "</td><td>" << s.campaigns << "</td><td>"
          << html_escape(s.example_fault) << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  for (const ReportGroup& g : report.groups) {
    out << "<h2>Response times: " << html_escape(config_label(g.key)) << "</h2>\n";
    if (g.responses == 0) {
      out << "<p>No responses recorded.</p>\n";
      continue;
    }
    out << "<pre>\n";
    render_histogram_lines(g, [&](const std::string& label, std::uint64_t count,
                                  const std::string& bar_text) {
      char line[160];
      std::snprintf(line, sizeof line, "%10s %8llu %s\n", label.c_str(),
                    static_cast<unsigned long long>(count), bar_text.c_str());
      out << html_escape(line);
    });
    out << "</pre>\n";
  }
  out << "</body></html>\n";
  return out.str();
}

}  // namespace dts::obs::fleet
