// Campaign report generator: merges one or more run journals (any schema
// version, any mix of campaigns) into a single Markdown or HTML report —
// outcome matrix per workload×configuration group plus response-time
// histograms. Merging follows the journal's own first-record-wins rule:
// within a (campaign, fault index) pair the record from the earliest file
// wins and later duplicates are counted but dropped, so re-reporting over a
// journal plus its resumed continuation is exact, never double-counted.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/outcome.h"
#include "exec/journal.h"
#include "forensics/signature.h"
#include "obs/rtrace/rtrace.h"

namespace dts::obs {
class MetricsRegistry;
}

namespace dts::obs::fleet {

/// Aggregates for one campaign configuration (one JournalKey).
struct ReportGroup {
  exec::JournalKey key;
  std::uint64_t min_version = 0;  // journal schema versions merged into this
  std::uint64_t max_version = 0;  // group (differ on mixed-version merges)
  std::uint64_t records = 0;      // deduplicated records
  std::uint64_t duplicates = 0;   // dropped (same fault index seen again)
  std::uint64_t foreign = 0;      // excluded: execution index names a foreign
                                  // campaign digest (see build_report)
  std::uint64_t unparsed = 0;     // records whose run payload did not parse
  std::uint64_t uncalled = 0;     // fn never called (skip-uncalled rule)
  std::array<std::uint64_t, 5> outcomes{};  // indexed like core::kAllOutcomes
  /// Fault-model axis (journal v5 "fm"): outcome counts per model annotation;
  /// records without the field count under the default "paper:transient".
  /// The per-model matrix renders only when a non-default annotation exists,
  /// so default-model reports are unchanged.
  std::map<std::string, std::array<std::uint64_t, 5>> model_outcomes;
  std::vector<std::uint64_t> response_buckets;  // over response_time_buckets,
                                                // +Inf last; responses only
  std::uint64_t responses = 0;
  double response_sum_s = 0.0;

  /// Multi-tier axis (journal v6 / topo run-line extras): per-tier counts of
  /// the four user-visible propagation outcomes, indexed like
  /// core::kTopoOutcomes. Empty for classic campaigns — the propagation
  /// matrix renders only when some record carries topology stats, so classic
  /// reports are byte-identical to before.
  std::map<std::string, std::array<std::uint64_t, 4>> tier_outcomes;
  std::uint64_t topo_runs = 0;  // records carrying topology stats
                                // (== Σ tier_outcomes counts, the matrix
                                // reconciliation figure)
  /// Degradation curve per tier: end-to-end p95 of each run bucketed over
  /// response_time_buckets (+Inf last), successful-request latencies only.
  std::map<std::string, std::vector<std::uint64_t>> tier_p95_buckets;

  /// Request-trace axis (journal v7 "rt"): per-tier critical-path attribution
  /// summed over every traced run, plus one exemplar — the worst-severity
  /// traced run merged (outage > partial > degraded > masked) — rendered as a
  /// span waterfall. Empty for untraced campaigns, so their reports are
  /// byte-identical to before.
  std::uint64_t traced_runs = 0;
  std::vector<obs::rtrace::TierAttribution> rtrace_totals;
  std::string rtrace_example;          // serialized RunTrace ("rt" payload)
  std::string rtrace_example_fault;    // its fault id
  std::string rtrace_example_outcome;  // its user-visible outcome
  int rtrace_example_rank = -1;        // severity rank of the exemplar
};

struct FleetReport {
  std::vector<ReportGroup> groups;          // in first-seen order
  std::array<std::uint64_t, 5> outcomes{};  // aggregate across groups
  std::uint64_t records = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t foreign = 0;  // Σ groups' foreign-digest exclusions

  /// Failure-signature clusters across every merged record (ranked failures
  /// first). Every deduplicated record maps to exactly one signature, so
  /// signature_runs == records — the reconciliation invariant `ntdts report`
  /// asserts before rendering.
  std::vector<forensics::SignatureCluster> signatures;
  std::uint64_t signature_runs = 0;
};

/// Merges journals into a report. Records whose execution index carries a
/// campaign digest different from the group's own (first xi-bearing record
/// wins) are NOT merged: they are counted per group as `foreign`, reported
/// as a warning, and — when `metrics` is given — counted on the
/// `dts_report_foreign_records_total` counter.
FleetReport build_report(const std::vector<exec::JournalFile>& files,
                         obs::MetricsRegistry* metrics = nullptr);

std::string render_report_markdown(const FleetReport& report);
std::string render_report_html(const FleetReport& report);

}  // namespace dts::obs::fleet
