// Campaign report generator: merges one or more run journals (any schema
// version, any mix of campaigns) into a single Markdown or HTML report —
// outcome matrix per workload×configuration group plus response-time
// histograms. Merging follows the journal's own first-record-wins rule:
// within a (campaign, fault index) pair the record from the earliest file
// wins and later duplicates are counted but dropped, so re-reporting over a
// journal plus its resumed continuation is exact, never double-counted.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/outcome.h"
#include "exec/journal.h"

namespace dts::obs::fleet {

/// Aggregates for one campaign configuration (one JournalKey).
struct ReportGroup {
  exec::JournalKey key;
  std::uint64_t min_version = 0;  // journal schema versions merged into this
  std::uint64_t max_version = 0;  // group (differ on mixed-version merges)
  std::uint64_t records = 0;      // deduplicated records
  std::uint64_t duplicates = 0;   // dropped (same fault index seen again)
  std::uint64_t unparsed = 0;     // records whose run payload did not parse
  std::uint64_t uncalled = 0;     // fn never called (skip-uncalled rule)
  std::array<std::uint64_t, 5> outcomes{};  // indexed like core::kAllOutcomes
  std::vector<std::uint64_t> response_buckets;  // over response_time_buckets,
                                                // +Inf last; responses only
  std::uint64_t responses = 0;
  double response_sum_s = 0.0;
};

struct FleetReport {
  std::vector<ReportGroup> groups;          // in first-seen order
  std::array<std::uint64_t, 5> outcomes{};  // aggregate across groups
  std::uint64_t records = 0;
  std::uint64_t duplicates = 0;
};

FleetReport build_report(const std::vector<exec::JournalFile>& files);

std::string render_report_markdown(const FleetReport& report);
std::string render_report_html(const FleetReport& report);

}  // namespace dts::obs::fleet
