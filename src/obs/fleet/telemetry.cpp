#include "obs/fleet/telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dts::obs::fleet {

namespace {

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    std::size_t end = line.find(sep, pos);
    if (end == std::string::npos) end = line.size();
    out.push_back(line.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

template <typename T, typename Parse>
std::vector<T> parse_list(const std::string& text, Parse parse) {
  std::vector<T> out;
  std::istringstream in(text);
  std::string tok;
  while (in >> tok) out.push_back(parse(tok));
  return out;
}

std::string format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string encode_samples(const std::vector<MetricSample>& samples) {
  std::ostringstream out;
  for (const MetricSample& s : samples) {
    out << s.kind << '\t' << s.name << '\t' << s.labels << '\t';
    switch (s.kind) {
      case 'c': out << s.counter_value; break;
      case 'g': out << format_double(s.gauge_value); break;
      case 'h': {
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          if (i > 0) out << ' ';
          out << format_double(s.bounds[i]);
        }
        out << ';';
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          if (i > 0) out << ' ';
          out << s.buckets[i];
        }
        out << ';' << s.sum_micro;
        break;
      }
      default: continue;
    }
    out << '\t' << s.help << '\n';
  }
  return out.str();
}

std::vector<MetricSample> decode_samples(const std::string& text) {
  std::vector<MetricSample> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::vector<std::string> fields = split(line, '\t');
    if (fields.size() < 4 || fields[0].size() != 1) continue;
    MetricSample s;
    s.kind = fields[0][0];
    s.name = fields[1];
    s.labels = fields[2];
    s.help = fields.size() >= 5 ? fields[4] : "";
    const std::string& value = fields[3];
    switch (s.kind) {
      case 'c':
        s.counter_value = std::strtoull(value.c_str(), nullptr, 10);
        break;
      case 'g':
        s.gauge_value = std::strtod(value.c_str(), nullptr);
        break;
      case 'h': {
        const std::vector<std::string> parts = split(value, ';');
        if (parts.size() != 3) continue;
        s.bounds = parse_list<double>(
            parts[0], [](const std::string& t) { return std::strtod(t.c_str(), nullptr); });
        s.buckets = parse_list<std::uint64_t>(parts[1], [](const std::string& t) {
          return std::strtoull(t.c_str(), nullptr, 10);
        });
        s.sum_micro = std::strtoll(parts[2].c_str(), nullptr, 10);
        if (s.buckets.size() != s.bounds.size() + 1) continue;
        break;
      }
      default: continue;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void merge_samples(MetricsRegistry& registry, int worker_id,
                   const std::vector<MetricSample>& samples) {
  const std::string worker = std::to_string(worker_id);
  for (const MetricSample& s : samples) {
    const std::string labels = labels_with(s.labels, "worker", worker);
    try {
      switch (s.kind) {
        case 'c':
          registry.counter_at(s.name, labels, s.help).advance_to(s.counter_value);
          break;
        case 'g':
          registry.gauge_at(s.name, labels, s.help).set(s.gauge_value);
          break;
        case 'h':
          registry.histogram_at(s.name, labels, s.bounds, s.help)
              .mirror(s.buckets, s.sum_micro);
          break;
        default:
          break;
      }
    } catch (const std::exception&) {
      // A name/kind collision with a coordinator-side family: the shipped
      // sample is advisory — drop it rather than poison the campaign.
    }
  }
}

}  // namespace dts::obs::fleet
