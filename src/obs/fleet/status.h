// Live campaign status for the coordinator's HTTP endpoint: a small
// mutex-guarded board the campaign loop updates (cheap copies, no I/O) and
// the endpoint thread renders as JSON on demand. The two sides never share
// anything but this board, which is what keeps a slow or hostile scraper
// from ever blocking the coordinator poll loop.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/fleet/events.h"

namespace dts::obs::fleet {

struct CampaignStatus {
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  std::uint64_t executed = 0;
  std::uint64_t reused = 0;
  double elapsed_s = 0.0;
  double runs_per_sec = 0.0;
  double eta_s = 0.0;
};

struct WorkerRow {
  int worker_id = 0;
  std::uint64_t runs = 0;
  double runs_per_sec = 0.0;
  std::uint64_t lease_id = 0;       // 0 = idle
  std::uint64_t outstanding = 0;    // leased faults with no result yet
  std::uint64_t failures = 0;       // worker-reported failure outcomes
  std::string recent_failures;      // space-joined fault ids, newest last
};

struct RunEntry {
  std::uint64_t index = 0;
  std::string fault_id;
  std::string outcome;  // executor outcome label ("normal", "failure", ...)
  std::uint64_t wall_us = 0;
  int worker_id = -1;  // -1 = in-process
  std::uint64_t lease_id = 0;
  std::string exec_index;
};

/// One failure signature observed on a completed run (see
/// forensics/signature.h — the board stores rendered strings only, so the
/// HTTP layer stays free of forensics types).
struct SignatureEntry {
  std::string id;  // 16-hex signature digest
  std::string fault_class;
  std::string call_context;
  std::string outcome;
  std::string span;
  std::string example_fault;
  std::string example_xi;
};

/// One traced multi-tier run (see obs/rtrace/) — again rendered strings and
/// counts only, so the HTTP layer stays free of rtrace types.
struct TraceEntry {
  std::string fault_id;
  std::string tier;          // tier the fault targeted
  std::string user_outcome;  // "masked".."outage"
  std::string digest;        // 16-hex propagation-path digest
  std::size_t spans = 0;
  std::size_t requests = 0;
  bool injected = false;  // the firing was attributed to a span
};

class StatusBoard {
 public:
  /// Keeps the last `run_capacity` completed runs for /runs.
  explicit StatusBoard(std::size_t run_capacity = 512);

  void update_campaign(const CampaignStatus& s);
  void update_workers(std::vector<WorkerRow> rows);
  void record_run(RunEntry e);

  /// Accumulates one run's failure signature into the live cluster table.
  void record_signature(const SignatureEntry& e);

  /// Accumulates one multi-tier run's user-visible propagation outcome
  /// ("masked".."outage") against the tier its fault targeted. Classic runs
  /// never call this; /topology then reports an empty matrix.
  void record_topology(const std::string& tier, const std::string& outcome);

  /// /topology payload: the live per-tier propagation matrix plus a "total"
  /// that reconciles against the number of record_topology() calls.
  std::string topology_json() const;

  /// /status payload. When `events` is non-null its tail is embedded.
  std::string status_json(const FleetEventLog* events = nullptr) const;

  /// /runs payload: the retained journal tail, newest last, optionally
  /// filtered by worker id (as decimal text) and/or outcome label.
  std::string runs_json(const std::string& worker_filter,
                        const std::string& outcome_filter,
                        std::size_t limit = 100) const;

  /// Aggregate outcome counts over every record_run() so far.
  std::map<std::string, std::uint64_t> outcome_counts() const;

  /// /signatures payload: ranked clusters (failures first, then by count)
  /// with per-cluster counts and a "total" that reconciles against the
  /// number of record_signature() calls.
  std::string signatures_json(std::size_t limit = 64) const;

  /// Retains one traced run for /traces (same bounded tail policy as /runs).
  void record_trace(TraceEntry e);

  /// /traces payload: the retained traced-run tail, newest last, plus a
  /// "total" that reconciles against the number of record_trace() calls.
  std::string traces_json(std::size_t limit = 64) const;

 private:
  struct SignatureRow {
    SignatureEntry entry;
    std::uint64_t count = 0;
  };

  const std::size_t run_capacity_;
  mutable std::mutex mu_;
  CampaignStatus campaign_;
  std::vector<WorkerRow> workers_;
  std::deque<RunEntry> runs_;
  std::map<std::string, std::uint64_t> outcomes_;
  std::map<std::string, SignatureRow> signatures_;  // id -> row
  std::uint64_t signature_total_ = 0;
  std::map<std::string, std::map<std::string, std::uint64_t>> tier_outcomes_;
  std::uint64_t topo_total_ = 0;
  std::deque<TraceEntry> traces_;
  std::uint64_t trace_total_ = 0;
};

}  // namespace dts::obs::fleet
