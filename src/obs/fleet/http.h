// Dependency-free HTTP/1.0 endpoint for live campaign observability
// (`ntdts run --http=addr`). Deliberately minimal: GET only, exact-path
// routing, Connection: close, one short-lived connection at a time on a
// dedicated background thread — a Prometheus scraper or curl is the whole
// audience. Reads and writes both carry bounded timeouts, so a stalled
// scraper costs the endpoint thread at most one deadline and costs the
// campaign loop nothing (the two threads share only the registry and the
// status board, both briefly-locked snapshots).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

namespace dts::obs::fleet {

struct HttpRequest {
  std::string method;
  std::string path;  // without the query string
  std::map<std::string, std::string> query;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Parses "k=v&k2=v2" (no %-decoding: our keys and values are plain tokens).
std::map<std::string, std::string> parse_query(std::string_view query);

class HttpEndpoint {
 public:
  struct Options {
    int io_timeout_ms = 2000;        // per-connection read and write deadline
    std::size_t max_request = 8192;  // request-head size cap
    // Reported by the built-in /healthz route: every endpoint answers
    // GET /healthz with 200 and {"status","version","uptime_s"} JSON unless a
    // user handler claims the path. Unknown paths stay 404 with a bounded
    // body.
    std::string version = "dts-journal-v7";
  };

  HttpEndpoint();
  explicit HttpEndpoint(Options options);
  ~HttpEndpoint();  // stops the serving thread

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Routes GET `path` (exact match) to `handler`. Register before start().
  void handle(const std::string& path,
              std::function<HttpResponse(const HttpRequest&)> handler);

  /// Binds host:port (0 = ephemeral) and starts serving on a background
  /// thread. False with *error set when the endpoint is unavailable.
  bool start(const std::string& host, std::uint16_t port, std::string* error);
  void stop();

  /// The bound port (after start()).
  std::uint16_t port() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dts::obs::fleet
