// Causal execution indexing for fault-injection runs (after "Distributed
// Execution Indexing", arXiv:2209.08740): every run carries a stable
// identifier `campaign_digest/lease_id/fault_index` that survives process
// hops. The digest pins the campaign (plan::sweep_digest — order-sensitive
// over the fault ids), the lease id pins which shard lease executed the run
// (0 for in-process execution, where no lease exists), and the fault index
// pins the position in the sweep. The same run re-executed anywhere — a
// resume, a reassigned lease, a different fleet — produces the same index,
// so a failure seen at the coordinator links back to the exact journal
// record, forensics dump and trace event of the worker that ran it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

namespace dts::obs::fleet {

struct ExecutionIndex {
  std::uint64_t campaign_digest = 0;
  std::uint64_t lease_id = 0;  // 0 = in-process (no lease)
  std::uint64_t fault_index = 0;

  /// "016x-hex-digest/lease/index", e.g. "a3f0.../7/412".
  std::string to_string() const {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%016llx/%llu/%llu",
                  static_cast<unsigned long long>(campaign_digest),
                  static_cast<unsigned long long>(lease_id),
                  static_cast<unsigned long long>(fault_index));
    return buf;
  }

  /// Inverse of to_string. Rejects trailing garbage so a truncated or
  /// corrupted journal field never half-parses into a wrong identity.
  static std::optional<ExecutionIndex> parse(const std::string& text) {
    ExecutionIndex ei;
    unsigned long long digest = 0, lease = 0, index = 0;
    int consumed = 0;
    if (std::sscanf(text.c_str(), "%16llx/%llu/%llu%n", &digest, &lease,
                    &index, &consumed) != 3 ||
        static_cast<std::size_t>(consumed) != text.size()) {
      return std::nullopt;
    }
    ei.campaign_digest = digest;
    ei.lease_id = lease;
    ei.fault_index = index;
    return ei;
  }

  friend bool operator==(const ExecutionIndex&, const ExecutionIndex&) = default;
};

}  // namespace dts::obs::fleet
