#include "obs/fleet/status.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/jsonl.h"

namespace dts::obs::fleet {

namespace {

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

void append_run(std::ostringstream& out, const RunEntry& e) {
  out << "{\"i\":" << e.index << ",\"fault\":\"" << obs::json_escape(e.fault_id)
      << "\",\"outcome\":\"" << obs::json_escape(e.outcome)
      << "\",\"wall_us\":" << e.wall_us << ",\"worker\":" << e.worker_id
      << ",\"lease\":" << e.lease_id << ",\"xi\":\""
      << obs::json_escape(e.exec_index) << "\"}";
}

}  // namespace

StatusBoard::StatusBoard(std::size_t run_capacity)
    : run_capacity_(run_capacity > 0 ? run_capacity : 1) {}

void StatusBoard::update_campaign(const CampaignStatus& s) {
  std::lock_guard<std::mutex> lock(mu_);
  campaign_ = s;
}

void StatusBoard::update_workers(std::vector<WorkerRow> rows) {
  std::lock_guard<std::mutex> lock(mu_);
  workers_ = std::move(rows);
}

void StatusBoard::record_run(RunEntry e) {
  std::lock_guard<std::mutex> lock(mu_);
  ++outcomes_[e.outcome];
  if (runs_.size() == run_capacity_) runs_.pop_front();
  runs_.push_back(std::move(e));
}

std::string StatusBoard::status_json(const FleetEventLog* events) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"campaign\":{\"done\":" << campaign_.done
      << ",\"total\":" << campaign_.total << ",\"executed\":" << campaign_.executed
      << ",\"reused\":" << campaign_.reused << ",\"elapsed_s\":"
      << num(campaign_.elapsed_s) << ",\"runs_per_sec\":"
      << num(campaign_.runs_per_sec) << ",\"eta_s\":" << num(campaign_.eta_s)
      << "},\"outcomes\":{";
  bool first = true;
  for (const auto& [outcome, count] : outcomes_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << obs::json_escape(outcome) << "\":" << count;
  }
  out << "},\"workers\":[";
  first = true;
  for (const WorkerRow& w : workers_) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":" << w.worker_id << ",\"runs\":" << w.runs
        << ",\"runs_per_sec\":" << num(w.runs_per_sec) << ",\"lease\":" << w.lease_id
        << ",\"outstanding\":" << w.outstanding << ",\"failures\":" << w.failures
        << ",\"recent_failures\":\"" << obs::json_escape(w.recent_failures)
        << "\"}";
  }
  out << "]";
  if (events != nullptr) {
    out << ",\"events\":[";
    first = true;
    for (const FleetEvent& e : events->tail(32)) {
      if (!first) out << ",";
      first = false;
      out << "{\"seq\":" << e.seq << ",\"kind\":\"" << to_string(e.kind)
          << "\",\"worker\":" << e.worker_id << ",\"lease\":" << e.lease_id
          << ",\"mono_us\":" << e.mono_us << ",\"detail\":\""
          << obs::json_escape(e.detail) << "\"}";
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

std::string StatusBoard::runs_json(const std::string& worker_filter,
                                   const std::string& outcome_filter,
                                   std::size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const RunEntry*> selected;
  for (const RunEntry& e : runs_) {
    if (!worker_filter.empty() && std::to_string(e.worker_id) != worker_filter) {
      continue;
    }
    if (!outcome_filter.empty() && e.outcome != outcome_filter) continue;
    selected.push_back(&e);
  }
  const std::size_t skip = selected.size() > limit ? selected.size() - limit : 0;
  std::ostringstream out;
  out << "{\"runs\":[";
  for (std::size_t i = skip; i < selected.size(); ++i) {
    if (i > skip) out << ",";
    append_run(out, *selected[i]);
  }
  out << "],\"matched\":" << selected.size() << "}";
  return out.str();
}

std::map<std::string, std::uint64_t> StatusBoard::outcome_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outcomes_;
}

void StatusBoard::record_signature(const SignatureEntry& e) {
  std::lock_guard<std::mutex> lock(mu_);
  SignatureRow& row = signatures_[e.id];
  if (row.count == 0) row.entry = e;
  ++row.count;
  ++signature_total_;
}

void StatusBoard::record_topology(const std::string& tier, const std::string& outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  ++tier_outcomes_[tier][outcome];
  ++topo_total_;
}

std::string StatusBoard::topology_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"tiers\":[";
  bool first = true;
  for (const auto& [tier, counts] : tier_outcomes_) {
    if (!first) out << ",";
    first = false;
    out << "{\"tier\":\"" << obs::json_escape(tier) << "\",\"outcomes\":{";
    bool inner_first = true;
    for (const auto& [outcome, count] : counts) {
      if (!inner_first) out << ",";
      inner_first = false;
      out << "\"" << obs::json_escape(outcome) << "\":" << count;
    }
    out << "}}";
  }
  out << "],\"total\":" << topo_total_ << "}";
  return out.str();
}

void StatusBoard::record_trace(TraceEntry e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (traces_.size() == run_capacity_) traces_.pop_front();
  traces_.push_back(std::move(e));
  ++trace_total_;
}

std::string StatusBoard::traces_json(std::size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t skip = traces_.size() > limit ? traces_.size() - limit : 0;
  std::ostringstream out;
  out << "{\"traces\":[";
  for (std::size_t i = skip; i < traces_.size(); ++i) {
    const TraceEntry& e = traces_[i];
    if (i > skip) out << ",";
    out << "{\"fault\":\"" << obs::json_escape(e.fault_id) << "\",\"tier\":\""
        << obs::json_escape(e.tier) << "\",\"user_outcome\":\""
        << obs::json_escape(e.user_outcome) << "\",\"path\":\""
        << obs::json_escape(e.digest) << "\",\"spans\":" << e.spans
        << ",\"requests\":" << e.requests
        << ",\"injected\":" << (e.injected ? 1 : 0) << "}";
  }
  out << "],\"total\":" << trace_total_ << "}";
  return out.str();
}

std::string StatusBoard::signatures_json(std::size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const SignatureRow*> ranked;
  ranked.reserve(signatures_.size());
  for (const auto& [id, row] : signatures_) ranked.push_back(&row);
  std::sort(ranked.begin(), ranked.end(),
            [](const SignatureRow* a, const SignatureRow* b) {
              const bool af = a->entry.outcome == "failure";
              const bool bf = b->entry.outcome == "failure";
              if (af != bf) return af;
              if (a->count != b->count) return a->count > b->count;
              return a->entry.id < b->entry.id;
            });
  if (ranked.size() > limit) ranked.resize(limit);
  std::ostringstream out;
  out << "{\"signatures\":[";
  bool first = true;
  for (const SignatureRow* row : ranked) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":\"" << obs::json_escape(row->entry.id) << "\",\"class\":\""
        << obs::json_escape(row->entry.fault_class) << "\",\"context\":\""
        << obs::json_escape(row->entry.call_context) << "\",\"outcome\":\""
        << obs::json_escape(row->entry.outcome) << "\",\"span\":\""
        << obs::json_escape(row->entry.span) << "\",\"count\":" << row->count
        << ",\"example_fault\":\"" << obs::json_escape(row->entry.example_fault)
        << "\",\"example_xi\":\"" << obs::json_escape(row->entry.example_xi)
        << "\"}";
  }
  out << "],\"distinct\":" << signatures_.size()
      << ",\"total\":" << signature_total_ << "}";
  return out.str();
}

}  // namespace dts::obs::fleet
