#include "obs/fleet/stall.h"

#include <algorithm>
#include <cstdio>

namespace dts::obs::fleet {

namespace {

/// Median + k*IQR over a (small) sample set. Robust to the occasional
/// preemption spike a mean-based budget would chase.
double robust_budget(std::vector<double> sample, double k, double slack_s) {
  std::sort(sample.begin(), sample.end());
  const std::size_t n = sample.size();
  const double median =
      n % 2 == 1 ? sample[n / 2] : 0.5 * (sample[n / 2 - 1] + sample[n / 2]);
  const double q1 = sample[n / 4];
  const double q3 = sample[(3 * n) / 4];
  return median + k * (q3 - q1) + slack_s;
}

}  // namespace

StallDetector::StallDetector(MetricsRegistry* metrics, FleetEventLog* events)
    : StallDetector(metrics, events, Options()) {}

StallDetector::StallDetector(MetricsRegistry* metrics, FleetEventLog* events,
                             Options options)
    : options_(options), metrics_(metrics), events_(events) {}

bool StallDetector::observe(const plan::StratumKey& key, double wall_s,
                            const std::string& fault_id,
                            const std::string& exec_index) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = strata_.try_emplace(key);
  Stratum& s = it->second;
  if (inserted && metrics_ != nullptr) {
    const Labels labels = {{"fn", std::string(nt::to_string(key.fn))},
                           {"type", std::string(inject::to_string(key.type))}};
    s.flagged = &metrics_->counter("dts_anomaly_runs_total", labels,
                                   "runs that exceeded their stratum's adaptive "
                                   "latency budget");
    s.budget = &metrics_->gauge("dts_anomaly_budget_seconds", labels,
                                "current per-stratum latency budget "
                                "(median + k*IQR of recent runs)");
  }

  // Judge against the budget of the *prior* window: a stalled run must not
  // stretch its own yardstick.
  const bool armed = s.window.size() >= options_.min_samples;
  const bool flagged = armed && wall_s > s.armed_budget_s;

  if (s.window.size() < options_.window) {
    s.window.push_back(wall_s);
  } else {
    s.window[s.next] = wall_s;
    s.next = (s.next + 1) % options_.window;
  }
  if (s.window.size() >= options_.min_samples) {
    s.armed_budget_s = robust_budget(s.window, options_.k, options_.slack_s);
    if (s.budget != nullptr) s.budget->set(s.armed_budget_s);
  }

  if (!flagged) return false;
  ++anomalies_;
  if (s.flagged != nullptr) s.flagged->inc();
  if (events_ != nullptr) {
    char msg[192];
    std::snprintf(msg, sizeof msg, "%s wall=%.6fs budget=%.6fs xi=%s",
                  fault_id.c_str(), wall_s, s.armed_budget_s, exec_index.c_str());
    events_->record(FleetEventKind::kAnomaly, /*worker_id=*/-1, /*lease_id=*/0,
                    msg);
  }
  return true;
}

double StallDetector::budget_s(const plan::StratumKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = strata_.find(key);
  if (it == strata_.end() || it->second.window.size() < options_.min_samples) {
    return 0.0;
  }
  return it->second.armed_budget_s;
}

std::uint64_t StallDetector::anomalies() const {
  std::lock_guard<std::mutex> lock(mu_);
  return anomalies_;
}

}  // namespace dts::obs::fleet
