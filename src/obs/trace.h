// Per-run syscall trace: a bounded ring of intercepted KERNEL32 calls with
// sim-timestamps, an args digest, the injection marker and (when the call
// completed) its result word. The inject interceptor feeds it; the executor
// dumps its tail as failure forensics next to the run-journal record.
//
// Two retention windows cooperate so a forensics dump always shows both ends
// of the story: the ring itself keeps the last N calls before the run ended,
// and the moment the armed fault fires the ring contents are pinned as the
// "injection context" (the corrupted call plus its up-to-N predecessors) —
// a long post-injection tail cannot scroll the corrupted call away.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ntsim/syscall.h"
#include "obs/ring.h"
#include "obs/span.h"
#include "sim/time.h"

namespace dts::obs {

/// How much a campaign traces. kFailures dumps forensics only for runs that
/// classify as failure or involved a middleware restart; kAll dumps every
/// executed run.
enum class TraceMode { kOff, kFailures, kAll };

std::string_view to_string(TraceMode mode);
/// Parses "off" / "failures" / "all"; returns false on anything else.
bool trace_mode_from_string(std::string_view s, TraceMode* out);

/// One intercepted call from a target-image process (post-corruption: the
/// trace shows what the kernel actually received).
struct TraceEvent {
  std::uint64_t seq = 0;  // machine-wide syscall sequence number
  sim::TimePoint time{};  // sim time at interception
  nt::Pid pid = 0;
  nt::Fn fn{};
  std::array<nt::Word, nt::kMaxSyscallArgs> args{};
  int argc = 0;
  bool injected_here = false;  // the armed fault corrupted this call
  bool completed = false;      // dispatch returned (crashing calls never do)
  nt::Word result = 0;

  /// FNV-1a over the argument words — a compact fingerprint for metrics and
  /// log correlation without dumping every word.
  std::uint32_t args_digest() const;

  /// "12.301s pid 104: ReadFile(0x14, 0x401000, 16384) -> 0x1" form; marks
  /// the injected call with " <== FAULT INJECTED".
  std::string to_string() const;
};

/// The per-run trace sink. Single-threaded (one run = one simulation);
/// capacity 0 disables recording entirely.
class SyscallTrace {
 public:
  void set_capacity(std::size_t n) {
    ring_.set_capacity(n);
    injection_context_.clear();
  }
  std::size_t capacity() const { return ring_.capacity(); }
  bool enabled() const { return ring_.enabled(); }
  std::size_t size() const { return ring_.size(); }
  std::uint64_t recorded() const { return ring_.pushed(); }

  void record_call(const TraceEvent& e);

  /// Backfills the result of the (still-retained) call with sequence `seq`.
  /// A call evicted before its result arrives is silently left incomplete.
  void record_result(std::uint64_t seq, nt::Word result);

  /// Last-N calls, oldest first.
  std::vector<TraceEvent> entries() const { return ring_.snapshot(); }

  /// Ring contents captured at the moment the fault fired (corrupted call
  /// last); empty if no injection was traced.
  const std::vector<TraceEvent>& injection_context() const {
    return injection_context_;
  }

 private:
  RingBuffer<TraceEvent> ring_;
  std::vector<TraceEvent> injection_context_;
};

/// Renders a forensics dump: caller-supplied context lines (fault id,
/// outcome, timings...), the middleware spans, the pinned injection context
/// and the trace tail. `title` becomes the "=== DTS forensics: <title> ==="
/// banner.
std::string forensics_dump(std::string_view title,
                           const std::vector<std::string>& context,
                           const SpanLog* spans, const SyscallTrace& trace);

}  // namespace dts::obs
