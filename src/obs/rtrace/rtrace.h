// Causal request tracing for multi-tier campaigns (src/topo/): the load
// generator mints one trace per request, and every hop the request takes —
// client→balancer, balancer→replica (including failover attempts), the
// replica's local application check, and the forward to the next tier —
// becomes a span with parent linkage, tier/replica labels, sim-time bounds
// and an outcome. When the armed fault fires inside a traced request the
// enclosing span is stamped, so a user-visible degraded/partial/outage
// request links back to the exact corrupted call.
//
// The trace context rides IN the netsim payload ("REQ <id> rt=<trace>:<span>")
// rather than a side channel: relays and balancers forward the request line
// they received, so a context threaded through the bytes survives exactly the
// hops the request itself survives — a partitioned or timed-out hop drops the
// context with the request, which is the causal truth. With tracing off the
// wire bytes are the classic "REQ <id>\n", so off-mode campaigns stay
// byte-identical (see DESIGN.md decision 16).
//
// Per run, the spans aggregate into (a) critical-path latency attribution —
// which tier contributed how much service / failover-retry / queueing time —
// (b) a propagation-path digest (FNV-1a over the span shape, times excluded)
// folded into failure signatures so "db fault masked by app-tier failover"
// and "db fault surfaced as outage" cluster separately, and (c) a compact
// serialization journaled as the v7 "rt" trailer and re-verified by replay.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dts::obs::rtrace {

/// What gets traced: off (classic wire bytes, zero overhead), failures
/// (spans collected every run, journaled only for non-masked runs), all.
enum class RtraceMode { kOff, kFailures, kAll };

bool rtrace_mode_from_string(const std::string& s, RtraceMode* out);
std::string_view to_string(RtraceMode m);

/// One hop (or hop attempt) of one traced request.
struct TraceSpan {
  int trace = 0;        // request id — the loadgen's 1-based sequence
  int id = 0;           // span id, unique within the run (begin order)
  int parent = 0;       // parent span id; 0 = root ("request")
  std::string name;     // "request","lb","attempt","relay","app.check","forward"
  std::string tier;     // owning tier; "client" for the loadgen root
  std::string replica;  // machine doing the work (attempt: the backend tried)
  std::int64_t begin_us = 0;  // sim time
  std::int64_t end_us = 0;
  std::string outcome = "unfinished";  // "ok","err","timeout","refused",
                                       // "unfinished" (run cap hit mid-span)
  bool injected = false;  // the armed fault's first firing landed in here

  std::int64_t duration_us() const {
    return end_us > begin_us ? end_us - begin_us : 0;
  }

  friend bool operator==(const TraceSpan&, const TraceSpan&) = default;
};

/// The compact context one request line carries: which trace, which span to
/// parent the next hop under. Each forwarding daemon rewrites the token with
/// its own span id before sending downstream.
struct WireContext {
  int trace = 0;
  int span = 0;
};

/// "rt=<trace>:<span>" — the token appended to "REQ <id>".
std::string wire_token(int trace, int span);

/// Extracts the rt= token from a request line; nullopt when absent (tracing
/// off, or a pre-rtrace peer).
std::optional<WireContext> parse_wire(const std::string& line);

/// Rebuilds a request line with the context replaced: "REQ <id> rt=t:s\n".
std::string rewrite_wire(const std::string& id, int trace, int span);

/// Per-run span collector. Lives in the run's World; the simulation is
/// single-threaded, so begin/end need no locking. Disabled (the default) it
/// is a handful of branch-not-taken per hop.
class TraceLog {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Opens a span; returns its id (0 when disabled — 0 is never a real id).
  int begin_span(int trace, int parent, std::string name, std::string tier,
                 std::string replica, std::int64_t begin_us);

  /// Closes span `id` (no-op for id 0 / unknown ids).
  void end_span(int id, std::int64_t end_us, std::string outcome);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  std::vector<TraceSpan> take_spans();
  void clear();

 private:
  bool enabled_ = false;
  int next_id_ = 0;
  std::vector<TraceSpan> spans_;  // in begin order == id order
};

/// Per-tier critical-path attribution of one request (or a whole run):
/// where its latency went, split the way an operator acts on it.
struct TierAttribution {
  std::string tier;
  std::int64_t service_us = 0;  // successful local application checks
  std::int64_t retry_us = 0;    // failed balancer attempts (failover cost)
  std::int64_t queue_us = 0;    // tier time not covered by child spans
                                // (queueing + relay/balancer overhead)

  std::int64_t total_us() const { return service_us + retry_us + queue_us; }
};

/// One traced request, reduced: its fate plus per-tier attribution.
struct RequestTrace {
  int trace = 0;
  bool ok = false;
  bool injected = false;  // the injection landed somewhere in this request
  std::int64_t elapsed_us = 0;
  std::vector<TierAttribution> tiers;  // tier order of first appearance
};

/// Everything one run's tracing produced, finalized.
struct RunTrace {
  std::vector<TraceSpan> spans;       // (trace, id) order
  std::uint64_t digest = 0;           // propagation-path digest
  int injected_span = 0;              // span id carrying the injection; 0 = none
  std::string fault_id;               // the armed fault ("" = golden/none)
  std::vector<RequestTrace> requests;
  std::vector<TierAttribution> totals;  // per-tier aggregate over all requests

  /// Journal "rt" payload (single line, no quotes/backslashes).
  std::string serialize() const;
  static std::optional<RunTrace> parse(const std::string& text);
};

/// FNV-1a over the span shape — trace/parent/name/tier/outcome/injected,
/// times and replicas excluded — so the digest names the propagation PATH,
/// stable across latency jitter.
std::uint64_t trace_path_digest(const std::vector<TraceSpan>& spans);

/// Cheap digest extraction from a serialized "rt" payload (for report
/// clustering without a full parse); 0 when the payload is malformed.
std::uint64_t digest_of_serialized(const std::string& text);

/// 16-hex rendering of a digest — the form signatures, status boards and
/// reports share.
std::string digest_hex(std::uint64_t digest);

struct FinalizeParams {
  std::int64_t injection_us = -1;  // sim time of the fault's first firing;
                                   // -1 = never fired
  std::string injection_machine;   // machine it fired on
  std::string fault_id;
};

/// Closes unfinished spans, stamps the injection onto the innermost
/// containing span of the faulted machine, computes attribution and the
/// propagation-path digest.
RunTrace finalize_trace(std::vector<TraceSpan> spans, const FinalizeParams& p);

}  // namespace dts::obs::rtrace
