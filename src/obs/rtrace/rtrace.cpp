#include "obs/rtrace/rtrace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

namespace dts::obs::rtrace {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fold(std::uint64_t digest, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    digest = (digest ^ (value & 0xffu)) * kFnvPrime;
    value >>= 8;
  }
  return digest;
}

std::uint64_t fold(std::uint64_t digest, const std::string& s) {
  for (unsigned char c : s) digest = (digest ^ c) * kFnvPrime;
  // Fold the terminator too, so ("ab","c") and ("a","bc") differ.
  return (digest ^ 0xffu) * kFnvPrime;
}

/// Self time of every span: duration minus its direct children's durations
/// (clamped at zero). Because hops within one request are sequential, self
/// times of a request's spans sum to the root duration — the conservation
/// property the reconciliation tests lean on.
std::map<int, std::int64_t> self_times(const std::vector<TraceSpan>& spans) {
  std::map<int, std::int64_t> self;
  for (const TraceSpan& s : spans) self[s.id] = s.duration_us();
  for (const TraceSpan& s : spans) {
    if (s.parent == 0) continue;
    auto it = self.find(s.parent);
    if (it != self.end()) it->second -= s.duration_us();
  }
  for (auto& [id, us] : self) us = std::max<std::int64_t>(us, 0);
  return self;
}

TierAttribution& tier_slot(std::vector<TierAttribution>& tiers,
                           const std::string& name) {
  for (TierAttribution& t : tiers) {
    if (t.tier == name) return t;
  }
  tiers.push_back(TierAttribution{name, 0, 0, 0});
  return tiers.back();
}

/// Shared by finalize and parse: reduces a span set to per-request and
/// per-run attribution. Rules (self time, so nothing is counted twice):
///   service — "app.check" spans that succeeded (real application work)
///   retry   — any span that did NOT succeed (time burned on a path the
///             balancer failed over from, or that timed out)
///   queue   — successful non-check spans (connection setup, relay/balancer
///             overhead, downstream wait not covered by children)
void compute_attribution(const std::vector<TraceSpan>& spans,
                         std::vector<RequestTrace>* requests,
                         std::vector<TierAttribution>* totals) {
  const std::map<int, std::int64_t> self = self_times(spans);
  requests->clear();
  totals->clear();
  std::map<int, std::size_t> by_trace;  // trace id -> index in requests
  for (const TraceSpan& s : spans) {
    auto it = by_trace.find(s.trace);
    if (it == by_trace.end()) {
      it = by_trace.emplace(s.trace, requests->size()).first;
      requests->push_back(RequestTrace{s.trace, false, false, 0, {}});
    }
    RequestTrace& req = (*requests)[it->second];
    if (s.parent == 0) {
      req.ok = s.outcome == "ok";
      req.elapsed_us = s.duration_us();
    }
    req.injected = req.injected || s.injected;
    const std::int64_t self_us = self.at(s.id);
    TierAttribution& per_req = tier_slot(req.tiers, s.tier);
    TierAttribution& per_run = tier_slot(*totals, s.tier);
    if (s.outcome != "ok") {
      per_req.retry_us += self_us;
      per_run.retry_us += self_us;
    } else if (s.name == "app.check") {
      per_req.service_us += self_us;
      per_run.service_us += self_us;
    } else {
      per_req.queue_us += self_us;
      per_run.queue_us += self_us;
    }
  }
}

}  // namespace

bool rtrace_mode_from_string(const std::string& s, RtraceMode* out) {
  if (s == "off") {
    *out = RtraceMode::kOff;
  } else if (s == "failures") {
    *out = RtraceMode::kFailures;
  } else if (s == "all") {
    *out = RtraceMode::kAll;
  } else {
    return false;
  }
  return true;
}

std::string_view to_string(RtraceMode m) {
  switch (m) {
    case RtraceMode::kOff:
      return "off";
    case RtraceMode::kFailures:
      return "failures";
    case RtraceMode::kAll:
      return "all";
  }
  return "off";
}

std::string wire_token(int trace, int span) {
  return "rt=" + std::to_string(trace) + ":" + std::to_string(span);
}

std::optional<WireContext> parse_wire(const std::string& line) {
  const std::size_t pos = line.find(" rt=");
  if (pos == std::string::npos) return std::nullopt;
  const char* p = line.c_str() + pos + 4;
  char* end = nullptr;
  const long trace = std::strtol(p, &end, 10);
  if (end == p || *end != ':') return std::nullopt;
  p = end + 1;
  const long span = std::strtol(p, &end, 10);
  if (end == p || trace <= 0 || span < 0) return std::nullopt;
  return WireContext{static_cast<int>(trace), static_cast<int>(span)};
}

std::string rewrite_wire(const std::string& id, int trace, int span) {
  return "REQ " + id + " " + wire_token(trace, span) + "\n";
}

int TraceLog::begin_span(int trace, int parent, std::string name,
                         std::string tier, std::string replica,
                         std::int64_t begin_us) {
  if (!enabled_) return 0;
  TraceSpan s;
  s.trace = trace;
  s.id = ++next_id_;
  s.parent = parent;
  s.name = std::move(name);
  s.tier = std::move(tier);
  s.replica = std::move(replica);
  s.begin_us = begin_us;
  spans_.push_back(std::move(s));
  return next_id_;
}

void TraceLog::end_span(int id, std::int64_t end_us, std::string outcome) {
  if (!enabled_ || id == 0) return;
  // Newest-first: the span being closed is almost always near the tail.
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->id == id) {
      it->end_us = end_us;
      it->outcome = std::move(outcome);
      return;
    }
  }
}

std::vector<TraceSpan> TraceLog::take_spans() {
  std::vector<TraceSpan> out = std::move(spans_);
  spans_.clear();
  next_id_ = 0;
  return out;
}

void TraceLog::clear() {
  spans_.clear();
  next_id_ = 0;
}

std::uint64_t trace_path_digest(const std::vector<TraceSpan>& spans) {
  std::uint64_t d = kFnvOffset;
  for (const TraceSpan& s : spans) {
    d = fold(d, static_cast<std::uint64_t>(s.trace));
    d = fold(d, static_cast<std::uint64_t>(s.parent));
    d = fold(d, s.name);
    d = fold(d, s.tier);
    d = fold(d, s.outcome);
    d = fold(d, static_cast<std::uint64_t>(s.injected ? 1 : 0));
  }
  return d;
}

RunTrace finalize_trace(std::vector<TraceSpan> spans, const FinalizeParams& p) {
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              return a.trace != b.trace ? a.trace < b.trace : a.id < b.id;
            });
  // A span still open when the run cap hit keeps its "unfinished" outcome;
  // clamp its end so durations never go negative.
  for (TraceSpan& s : spans) {
    if (s.end_us < s.begin_us) s.end_us = s.begin_us;
  }

  RunTrace rt;
  rt.fault_id = p.fault_id;
  // Stamp the injection onto the innermost span of the faulted machine that
  // contains the firing instant — with overlapping requests on one replica
  // the latest-started containing span is the one whose call chain was live.
  if (p.injection_us >= 0 && !p.injection_machine.empty()) {
    const TraceSpan* best = nullptr;
    for (const TraceSpan& s : spans) {
      if (s.replica != p.injection_machine) continue;
      if (s.begin_us > p.injection_us || s.end_us < p.injection_us) continue;
      if (best == nullptr || s.begin_us > best->begin_us ||
          (s.begin_us == best->begin_us && s.id > best->id)) {
        best = &s;
      }
    }
    if (best != nullptr) {
      rt.injected_span = best->id;
      const int id = best->id;
      for (TraceSpan& s : spans) s.injected = s.id == id;
    }
  }

  rt.digest = trace_path_digest(spans);
  compute_attribution(spans, &rt.requests, &rt.totals);
  rt.spans = std::move(spans);
  return rt;
}

std::string RunTrace::serialize() const {
  char head[64];
  std::snprintf(head, sizeof head, "v1 %016llx inj=%d",
                static_cast<unsigned long long>(digest), injected_span);
  std::ostringstream out;
  out << head << " fault=" << (fault_id.empty() ? "-" : fault_id);
  for (const TraceSpan& s : spans) {
    out << "|" << s.trace << ":" << s.id << ":" << s.parent << ":" << s.name
        << ":" << s.tier << ":" << s.replica << ":" << s.begin_us << ":"
        << s.end_us << ":" << s.outcome << ":" << (s.injected ? 1 : 0);
  }
  return out.str();
}

std::optional<RunTrace> RunTrace::parse(const std::string& text) {
  if (text.rfind("v1 ", 0) != 0) return std::nullopt;
  RunTrace rt;
  std::istringstream head(text.substr(3, text.find('|') - 3));
  std::string digest_hex, inj, fault;
  if (!(head >> digest_hex >> inj >> fault)) return std::nullopt;
  if (inj.rfind("inj=", 0) != 0 || fault.rfind("fault=", 0) != 0) {
    return std::nullopt;
  }
  rt.digest = std::strtoull(digest_hex.c_str(), nullptr, 16);
  rt.injected_span = std::atoi(inj.c_str() + 4);
  rt.fault_id = fault.substr(6) == "-" ? std::string() : fault.substr(6);

  std::size_t pos = text.find('|');
  while (pos != std::string::npos) {
    const std::size_t next = text.find('|', pos + 1);
    const std::string field =
        text.substr(pos + 1, next == std::string::npos ? std::string::npos
                                                       : next - pos - 1);
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (std::size_t colon = field.find(':'); colon != std::string::npos;
         colon = field.find(':', start)) {
      parts.push_back(field.substr(start, colon - start));
      start = colon + 1;
    }
    parts.push_back(field.substr(start));
    if (parts.size() != 10) return std::nullopt;
    TraceSpan s;
    s.trace = std::atoi(parts[0].c_str());
    s.id = std::atoi(parts[1].c_str());
    s.parent = std::atoi(parts[2].c_str());
    s.name = parts[3];
    s.tier = parts[4];
    s.replica = parts[5];
    s.begin_us = std::atoll(parts[6].c_str());
    s.end_us = std::atoll(parts[7].c_str());
    s.outcome = parts[8];
    s.injected = parts[9] == "1";
    rt.spans.push_back(std::move(s));
    pos = next;
  }
  compute_attribution(rt.spans, &rt.requests, &rt.totals);
  return rt;
}

std::uint64_t digest_of_serialized(const std::string& text) {
  if (text.rfind("v1 ", 0) != 0 || text.size() < 19) return 0;
  return std::strtoull(text.c_str() + 3, nullptr, 16);
}

std::string digest_hex(std::uint64_t digest) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace dts::obs::rtrace
