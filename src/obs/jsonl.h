// Flat-JSON line helpers shared by the JSONL artifact writers/readers (the
// exec run journal, the plan-cache file). The grammar is deliberately the
// subset these files themselves emit — one object per line, string and
// unsigned-integer values only — so the readers stay robust against
// truncated or foreign files without pulling in a JSON library.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dts::obs {

/// Escapes a string for embedding between JSON double quotes.
std::string json_escape(std::string_view s);

/// Extracts an unsigned-integer value for `"key":` anywhere in `line`.
/// Returns false when the key is absent or the value is not an integer.
bool json_uint_field(std::string_view line, std::string_view key, std::uint64_t* out);

/// Extracts a string value for `"key":"..."`, undoing json_escape. Returns
/// false on absent key, non-string value, or a truncated/unknown escape.
bool json_string_field(std::string_view line, std::string_view key, std::string* out);

}  // namespace dts::obs
