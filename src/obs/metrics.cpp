#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dts::obs {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus label values escape backslash, double-quote and newline.
std::string prom_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders `{k="v",k2="v2"}`, or "" for an empty label set.
std::string label_string(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + prom_escape(v) + "\"";
  }
  out += "}";
  return out;
}

/// Renders a sample value: integers exactly, doubles compactly.
std::string number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

std::string labels_with(const std::string& rendered, const std::string& key,
                        const std::string& value) {
  if (rendered.empty()) return "{" + key + "=\"" + prom_escape(value) + "\"}";
  std::string out = rendered;
  out.insert(out.size() - 1, "," + key + "=\"" + prom_escape(value) + "\"");
  return out;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micro_.fetch_add(static_cast<std::int64_t>(v * 1e6 + (v >= 0 ? 0.5 : -0.5)),
                       std::memory_order_relaxed);
}

void Histogram::mirror(const std::vector<std::uint64_t>& buckets,
                       std::int64_t sum_micro) {
  if (buckets.size() != bounds_.size() + 1) return;  // foreign shape: drop it
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets_[i].store(buckets[i], std::memory_order_relaxed);
    total += buckets[i];
  }
  count_.store(total, std::memory_order_relaxed);
  sum_micro_.store(sum_micro, std::memory_order_relaxed);
}

const std::vector<double>& response_time_buckets() {
  static const std::vector<double> kBuckets = {0.5, 1, 2,  5,   10,  15, 20,
                                               30,  60, 120, 240, 400};
  return kBuckets;
}

const std::vector<double>& wall_time_buckets() {
  static const std::vector<double> kBuckets = {0.001, 0.005, 0.01, 0.05,
                                               0.1,   0.5,   1,    5};
  return kBuckets;
}

MetricsRegistry::MetricsRegistry() : epoch_(std::chrono::steady_clock::now()) {}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name, Kind kind,
                                                 const std::string& help) {
  auto [it, inserted] = families_.try_emplace(name);
  Family& fam = it->second;
  if (inserted) {
    fam.kind = kind;
    fam.help = help;
  } else if (fam.kind != kind) {
    throw std::logic_error("metric '" + name + "' registered with two kinds");
  }
  if (fam.help.empty() && !help.empty()) fam.help = help;
  return fam;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family(name, Kind::kCounter, help);
  auto [it, inserted] = fam.counters.try_emplace(label_string(labels));
  if (inserted) it->second = std::make_unique<Counter>();
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family(name, Kind::kGauge, help);
  auto [it, inserted] = fam.gauges.try_emplace(label_string(labels));
  if (inserted) it->second = std::make_unique<Gauge>();
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const Labels& labels,
                                      const std::vector<double>& bounds,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family(name, Kind::kHistogram, help);
  auto [it, inserted] = fam.histograms.try_emplace(label_string(labels));
  if (inserted) it->second = std::make_unique<Histogram>(bounds);
  return *it->second;
}

Counter& MetricsRegistry::counter_at(const std::string& name,
                                     const std::string& rendered_labels,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family(name, Kind::kCounter, help);
  auto [it, inserted] = fam.counters.try_emplace(rendered_labels);
  if (inserted) it->second = std::make_unique<Counter>();
  return *it->second;
}

Gauge& MetricsRegistry::gauge_at(const std::string& name,
                                 const std::string& rendered_labels,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family(name, Kind::kGauge, help);
  auto [it, inserted] = fam.gauges.try_emplace(rendered_labels);
  if (inserted) it->second = std::make_unique<Gauge>();
  return *it->second;
}

Histogram& MetricsRegistry::histogram_at(const std::string& name,
                                         const std::string& rendered_labels,
                                         const std::vector<double>& bounds,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family(name, Kind::kHistogram, help);
  auto [it, inserted] = fam.histograms.try_emplace(rendered_labels);
  if (inserted) it->second = std::make_unique<Histogram>(bounds);
  return *it->second;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  for (const auto& [name, fam] : families_) {
    MetricSample base;
    base.name = name;
    base.help = fam.help;
    switch (fam.kind) {
      case Kind::kCounter:
        for (const auto& [ls, c] : fam.counters) {
          MetricSample s = base;
          s.kind = 'c';
          s.labels = ls;
          s.counter_value = c->value();
          out.push_back(std::move(s));
        }
        break;
      case Kind::kGauge:
        for (const auto& [ls, g] : fam.gauges) {
          MetricSample s = base;
          s.kind = 'g';
          s.labels = ls;
          s.gauge_value = g->value();
          out.push_back(std::move(s));
        }
        break;
      case Kind::kHistogram:
        for (const auto& [ls, h] : fam.histograms) {
          MetricSample s = base;
          s.kind = 'h';
          s.labels = ls;
          s.bounds = h->bounds();
          s.buckets.reserve(s.bounds.size() + 1);
          for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
            s.buckets.push_back(h->bucket_count(i));
          }
          s.sum_micro = h->sum_micro();
          out.push_back(std::move(s));
        }
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) out << "# HELP " << name << " " << fam.help << "\n";
    switch (fam.kind) {
      case Kind::kCounter:
        out << "# TYPE " << name << " counter\n";
        for (const auto& [ls, c] : fam.counters) {
          out << name << ls << " " << c->value() << "\n";
        }
        break;
      case Kind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        for (const auto& [ls, g] : fam.gauges) {
          out << name << ls << " " << number(g->value()) << "\n";
        }
        break;
      case Kind::kHistogram:
        out << "# TYPE " << name << " histogram\n";
        for (const auto& [ls, h] : fam.histograms) {
          std::vector<std::uint64_t> cum;
          cum.reserve(h->bounds().size() + 1);
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < h->bounds().size(); ++i) {
            cumulative += h->bucket_count(i);
            cum.push_back(cumulative);
            out << name << "_bucket"
                << labels_with(ls, "le", number(h->bounds()[i])) << " "
                << cumulative << "\n";
          }
          cumulative += h->bucket_count(h->bounds().size());
          cum.push_back(cumulative);
          out << name << "_bucket" << labels_with(ls, "le", "+Inf") << " "
              << cumulative << "\n";
          out << name << "_sum" << ls << " " << number(h->sum()) << "\n";
          // _count derives from the buckets just read, never from the
          // separate count cell: observe() is three relaxed atomic adds, so
          // reading count independently could expose count != +Inf bucket
          // under concurrent writers — a torn scrape Prometheus rejects.
          out << name << "_count" << ls << " " << cumulative << "\n";
          // Summary-style quantile estimates from the same bucket snapshot
          // (nearest rank, reported as the bucket's upper bound; observations
          // past the last finite bound clamp to it). Additive only: classic
          // consumers parsing _bucket/_sum/_count are untouched.
          if (cumulative > 0 && !h->bounds().empty()) {
            struct Quantile {
              const char* label;
              double frac;
            };
            for (const Quantile q :
                 {Quantile{"0.5", 0.5}, Quantile{"0.95", 0.95},
                  Quantile{"0.99", 0.99}}) {
              const std::uint64_t rank = static_cast<std::uint64_t>(
                  std::ceil(q.frac * static_cast<double>(cumulative)));
              std::size_t bucket = 0;
              while (bucket < h->bounds().size() - 1 && cum[bucket] < rank) {
                ++bucket;
              }
              out << name << labels_with(ls, "quantile", q.label) << " "
                  << number(h->bounds()[bucket]) << "\n";
            }
          }
        }
        break;
    }
  }
  return out.str();
}

double MetricsRegistry::now_us() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   epoch_)
      .count();
}

void MetricsRegistry::add_complete_event(const std::string& name,
                                         const std::string& cat, int tid,
                                         double ts_us, double dur_us,
                                         const Labels& args) {
  std::lock_guard<std::mutex> lock(events_mu_);
  events_.push_back(CompleteEvent{name, cat, tid, ts_us, dur_us, args});
}

void MetricsRegistry::set_thread_name(int tid, const std::string& name) {
  std::lock_guard<std::mutex> lock(events_mu_);
  thread_names_[tid] = name;
}

std::string MetricsRegistry::chrome_trace_json() const {
  std::lock_guard<std::mutex> lock(events_mu_);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : thread_names_) {
    if (!first) out << ",";
    first = false;
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << json_escape(name)
        << "\"}}";
  }
  for (const CompleteEvent& e : events_) {
    if (!first) out << ",";
    first = false;
    char nums[96];
    std::snprintf(nums, sizeof nums, "\"ts\":%.3f,\"dur\":%.3f", e.ts_us, e.dur_us);
    out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid << ",\"name\":\""
        << json_escape(e.name) << "\",\"cat\":\"" << json_escape(e.cat) << "\","
        << nums << ",\"args\":{";
    bool first_arg = true;
    for (const auto& [k, v] : e.args) {
      if (!first_arg) out << ",";
      first_arg = false;
      out << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
    }
    out << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

bool write_metrics_files(const MetricsRegistry& registry, const std::string& path,
                         std::string* error) {
  {
    std::ofstream out(path);
    if (!out) {
      if (error != nullptr) *error = "cannot write metrics file " + path;
      return false;
    }
    out << registry.prometheus_text();
  }
  const std::string trace_path = path + ".trace.json";
  std::ofstream out(trace_path);
  if (!out) {
    if (error != nullptr) *error = "cannot write trace file " + trace_path;
    return false;
  }
  out << registry.chrome_trace_json();
  return true;
}

}  // namespace dts::obs
