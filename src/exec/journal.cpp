#include "exec/journal.h"

#include <cstdlib>
#include <sstream>

#include "obs/jsonl.h"

namespace dts::exec {

namespace {

// The journal grammar is the flat JSON subset obs/jsonl.h parses — exactly
// what this file itself writes — which keeps resume robust against truncated
// or foreign files without a JSON library.
using obs::json_escape;
using obs::json_string_field;
using obs::json_uint_field;

std::string header_line(const JournalKey& key, const std::string& config_text,
                        std::uint64_t version) {
  std::ostringstream out;
  out << "{\"dts_journal\":" << version << ",\"workload\":\"" << json_escape(key.workload)
      << "\",\"middleware\":" << key.middleware
      << ",\"watchd_version\":" << key.watchd_version << ",\"seed\":" << key.seed
      << ",\"faults\":" << key.fault_count;
  if (!config_text.empty()) {
    out << ",\"config\":\"" << json_escape(config_text) << "\"";
  }
  out << "}";
  return out.str();
}

char hex_digit(std::uint64_t nibble) {
  return nibble < 10 ? static_cast<char>('0' + nibble)
                     : static_cast<char>('a' + (nibble - 10));
}

// "td" travels as a 16-hex string, not a JSON number: 64-bit digests exceed
// the 2^53 range where every integer survives a double round-trip, and hex
// matches the xi / forensics rendering of the same value.
std::string hex16(std::uint64_t value) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex_digit(value & 0xf);
    value >>= 4;
  }
  return out;
}

}  // namespace

std::optional<JournalFile> read_journal_file(const std::string& path,
                                             std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = path + ": " + msg;
    return std::nullopt;
  };
  std::ifstream in(path);
  if (!in) return fail("cannot open journal");

  std::string line;
  if (!std::getline(in, line)) return fail("empty journal");
  JournalFile file;
  if (!json_uint_field(line, "dts_journal", &file.version) ||
      file.version < 1 || file.version > 7) {
    return fail("not a DTS run journal");
  }
  std::uint64_t mw = 0, wv = 0, faults = 0;
  if (!json_string_field(line, "workload", &file.key.workload) ||
      !json_uint_field(line, "middleware", &mw) ||
      !json_uint_field(line, "watchd_version", &wv) ||
      !json_uint_field(line, "seed", &file.key.seed) ||
      !json_uint_field(line, "faults", &faults)) {
    return fail("malformed journal header");
  }
  file.key.middleware = static_cast<int>(mw);
  file.key.watchd_version = static_cast<int>(wv);
  file.key.fault_count = static_cast<std::size_t>(faults);
  (void)json_string_field(line, "config", &file.config_text);  // v4, optional

  while (std::getline(in, line)) {
    JournalRecord rec;
    std::uint64_t index = 0, called = 0;
    // The writer terminates every record with '}' before the newline; a line
    // without it was torn mid-write. The required-field check alone is not
    // enough: a truncated line can still carry every required field and lose
    // only optional tail fields (td/cc/fx), which must not be mistaken for a
    // complete record.
    if (line.empty() || line.back() != '}') continue;
    if (!json_uint_field(line, "i", &index) || !json_uint_field(line, "called", &called) ||
        !json_string_field(line, "fault", &rec.fault_id) ||
        !json_string_field(line, "run", &rec.run_line)) {
      continue;  // killed mid-write: ignore the torn line
    }
    rec.index = static_cast<std::size_t>(index);
    rec.fn_called = called != 0;
    // v2/v3 extras; absent in older records (and in runs without forensics).
    (void)json_uint_field(line, "wall_us", &rec.wall_us);
    (void)json_uint_field(line, "sim_us", &rec.sim_us);
    (void)json_string_field(line, "fx", &rec.forensics);
    (void)json_string_field(line, "st", &rec.stratum);
    (void)json_string_field(line, "xi", &rec.exec_index);
    // v4 extras.
    std::string td;
    if (json_string_field(line, "td", &td)) {
      rec.trace_digest = std::strtoull(td.c_str(), nullptr, 16);
    }
    (void)json_string_field(line, "cc", &rec.call_context);
    // v5 extra.
    (void)json_string_field(line, "fm", &rec.model);
    // v6 extra.
    (void)json_string_field(line, "tier", &rec.tier);
    // v7 extra.
    (void)json_string_field(line, "rt", &rec.rtrace);
    file.records.push_back(std::move(rec));
  }
  return file;
}

std::optional<std::vector<JournalRecord>> read_journal(const std::string& path,
                                                       const JournalKey& key,
                                                       std::string* error) {
  {
    std::ifstream probe(path);
    if (!probe) return std::vector<JournalRecord>{};  // no journal: fresh start
    std::string first;
    if (!std::getline(probe, first)) {
      return std::vector<JournalRecord>{};  // empty file: fresh start
    }
  }
  std::optional<JournalFile> file = read_journal_file(path, error);
  if (!file) return std::nullopt;
  if (!(file->key == key)) {
    if (error != nullptr) {
      *error = path +
               ": journal belongs to a different campaign (workload/middleware/"
               "seed/fault-count mismatch); remove it or pick another output dir";
    }
    return std::nullopt;
  }
  return std::move(file->records);
}

bool RunJournal::open(const std::string& path, const JournalKey& key, bool append,
                      std::string* error, const std::string& config_text,
                      std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  out_.open(path, append ? std::ios::app : std::ios::trunc);
  if (!out_) {
    if (error != nullptr) *error = "cannot open journal " + path;
    return false;
  }
  // An append to a missing/empty file is still a fresh journal.
  if (!append || out_.tellp() == std::ofstream::pos_type(0)) {
    out_ << header_line(key, config_text, version) << "\n" << std::flush;
  }
  return true;
}

void RunJournal::append(const JournalRecord& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_.is_open()) return;
  out_ << "{\"i\":" << rec.index << ",\"fault\":\"" << json_escape(rec.fault_id)
       << "\",\"called\":" << (rec.fn_called ? 1 : 0) << ",\"run\":\""
       << json_escape(rec.run_line) << "\",\"wall_us\":" << rec.wall_us
       << ",\"sim_us\":" << rec.sim_us;
  if (!rec.exec_index.empty()) {
    out_ << ",\"xi\":\"" << json_escape(rec.exec_index) << "\"";
  }
  if (!rec.stratum.empty()) {
    out_ << ",\"st\":\"" << json_escape(rec.stratum) << "\"";
  }
  if (rec.trace_digest != 0) {
    out_ << ",\"td\":\"" << hex16(rec.trace_digest) << "\"";
  }
  if (!rec.call_context.empty()) {
    out_ << ",\"cc\":\"" << json_escape(rec.call_context) << "\"";
  }
  if (!rec.model.empty()) {
    out_ << ",\"fm\":\"" << json_escape(rec.model) << "\"";
  }
  if (!rec.tier.empty()) {
    out_ << ",\"tier\":\"" << json_escape(rec.tier) << "\"";
  }
  if (!rec.rtrace.empty()) {
    out_ << ",\"rt\":\"" << json_escape(rec.rtrace) << "\"";
  }
  // Forensics last: the dump is big and optional, the fixed fields stay
  // greppable at the front of the line.
  if (!rec.forensics.empty()) {
    out_ << ",\"fx\":\"" << json_escape(rec.forensics) << "\"";
  }
  out_ << "}\n" << std::flush;
}

}  // namespace dts::exec
