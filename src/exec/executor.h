// Parallel campaign execution: shards a fault list across a work-stealing
// pool of workers, each executing FaultInjectionRun in its own fresh
// simulation (runs are seed-isolated, DESIGN §4.3 — the sweep is
// embarrassingly parallel), then merges results back into fault-list order.
//
// Determinism guarantee: per-run seeds derive from (campaign seed, fault id)
// only — never from worker id or schedule — and the paper-§4 skip-uncalled
// rule is replayed serially over the completed results during the merge, so
// the output at jobs=N is byte-identical to jobs=1
// (core::serialize_workload_set round-trips match exactly).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/run.h"
#include "exec/progress.h"
#include "inject/fault_list.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "plan/profiler.h"
#include "plan/sampler.h"

namespace dts::obs::fleet {
class StallDetector;
class StatusBoard;
}  // namespace dts::obs::fleet

namespace dts::exec {

/// Metrics/report label value for an outcome — matches the campaign-file
/// outcome codes so dashboards, results.csv and worker telemetry agree on
/// vocabulary: "normal", "restart", "restart_retry", "retry", "failure".
std::string_view outcome_label(core::Outcome o);

/// Metrics label value for the middleware configuration, e.g. "none",
/// "mscs", "watchd3".
std::string middleware_label(const core::RunConfig& base);

struct ExecOptions {
  /// Worker count: 1 = serial on the calling thread (today's exact
  /// behaviour), 0 = one worker per hardware thread.
  int jobs = 1;

  /// Apply the paper-§4 skip-uncalled rule (campaign sweeps). Explicit
  /// user-supplied fault lists turn this off: every listed fault executes.
  bool skip_uncalled = true;

  /// JSONL run journal written as runs complete (empty = none).
  std::string journal_path;

  /// Reuse completed runs from an existing journal before executing the
  /// rest. Refuses (throws) if the journal belongs to a different campaign.
  /// Records whose execution index names a foreign campaign digest are
  /// skipped with a warning (they would merge another campaign's results).
  bool resume = false;

  /// Full serialized campaign configuration (core::serialize_config),
  /// embedded in the journal v4 header so `ntdts replay` can rebuild the
  /// exact RunConfig from the journal alone. Empty = header carries the
  /// identity fields only (pre-v4 behaviour).
  std::string config_text;

  /// Fired after every completed fault (executed, skipped or reused), with
  /// throughput and ETA. Serialized: never invoked concurrently.
  std::function<void(const ProgressSnapshot&)> on_progress;

  /// Cooperative cancellation: when the pointee becomes true, workers stop
  /// picking up faults and run() returns with interrupted=true. The journal
  /// keeps everything completed so far — restart with resume=true.
  const std::atomic<bool>* cancel = nullptr;

  // --- observability (all optional; defaults add near-zero overhead) ------

  /// Campaign metrics sink: outcome counters, response-time histograms,
  /// per-worker throughput, steal/queue-depth stats and one Chrome trace
  /// event per executed run. Must outlive run(). Null = no metrics.
  obs::MetricsRegistry* metrics = nullptr;

  /// Per-run syscall tracing. kOff records nothing; kFailures embeds a
  /// forensics dump in the journal record of every run that classifies as
  /// failure or involved a restart; kAll dumps every executed run.
  obs::TraceMode trace = obs::TraceMode::kOff;

  /// Ring depth for the syscall trace (the N of "last-N calls").
  std::size_t forensics_depth = 32;

  /// When non-empty (and tracing selects a run), the forensics dump is also
  /// written to `<forensics_dir>/run-<index>-<fault>.txt` for direct reading;
  /// the journal embeds it either way.
  std::string forensics_dir;

  /// Stall/anomaly detector fed every executed run's wall time (with its
  /// stratum and execution index). Must outlive run(). Null = off.
  obs::fleet::StallDetector* stall = nullptr;

  /// Live status board fed every executed run (for the /runs endpoint).
  /// Must outlive run(). Null = off.
  obs::fleet::StatusBoard* status = nullptr;

  // --- snapshot execution (src/snap/) -------------------------------------

  /// Fork each campaign run from a COW snapshot taken during one shared
  /// golden run instead of replaying the fault-free prefix (POSIX only).
  /// Campaign output stays byte-identical to the unsnapshotted path at any
  /// jobs count: anything not provably resumable — unknown injection sites,
  /// jitter/tracing configs, semantic RNG draws in the prefix, abnormal
  /// child exits (see snap::unsupported_reason) — silently falls back to a
  /// full run. Requires snapshot_profile.
  bool snapshots = false;

  /// Upper bound on snapshots captured during the host golden run
  /// (0 = one per distinct injection site).
  std::size_t snapshot_max_checkpoints = 64;

  /// Golden profile used to place checkpoints and resolve each fault's
  /// injection site. Must outlive run(). Null disables snapshots.
  const plan::GoldenProfile* snapshot_profile = nullptr;
};

struct CampaignResult {
  std::vector<core::RunResult> runs;  // fault-list order; empty if interrupted
  bool interrupted = false;
  std::size_t executed = 0;  // fresh simulations run
  std::size_t reused = 0;    // reloaded from the journal
  std::size_t skipped = 0;   // skip-uncalled records in the merged output
};

/// Resolves a requested job count to a usable worker count. jobs >= 1 passes
/// through; jobs <= 0 means one worker per hardware thread, where a zero
/// `hardware_threads` (std::thread::hardware_concurrency() is advisory and
/// may return 0 — single-core containers do) clamps to 1.
int effective_jobs(int jobs, unsigned hardware_threads);
/// Same, against the real std::thread::hardware_concurrency().
int effective_jobs(int jobs);

/// One fault of a campaign sweep after the execution phase, ready to merge.
/// `executed == false` marks a fault nobody ran (elided under an
/// uncalled-function proof, or lost to a crashed distributed worker).
struct CompletedRun {
  core::RunResult result;
  bool fn_called = false;
  bool executed = false;
};

/// Serially replays the paper-§4 skip-uncalled rule over completed runs, in
/// fault-list order, producing output byte-identical to a one-worker sweep
/// regardless of how (or where — see src/dist/) the faults were executed.
/// Unexecuted faults the skip rule does not cover are defensively executed
/// here; the returned `executed` counts only those defensive runs. Shared by
/// the in-process executor and the distributed coordinator.
CampaignResult merge_completed_runs(const core::RunConfig& base,
                                    const inject::FaultList& list,
                                    std::uint64_t campaign_seed, bool skip_uncalled,
                                    std::vector<CompletedRun> completed);

/// Result of a planned campaign (run_plan). `runs` is in plan-entry order;
/// pruned entries carry synthesized non-activated records, duplicates carry
/// the representative's outcome under their own fault id, and entries an
/// adaptive stratum stopped early are absent (counted in `unsampled`).
struct PlanCampaignResult {
  std::vector<core::RunResult> runs;
  bool interrupted = false;
  std::size_t executed = 0;   // fresh simulations run
  std::size_t reused = 0;     // reloaded from the journal
  std::size_t deduped = 0;    // duplicate records attributed to a shared run
  std::size_t pruned = 0;     // provably inert records synthesized
  std::size_t unsampled = 0;  // entries skipped by adaptive early stopping
  std::vector<plan::StratumProgress> strata;
};

class CampaignExecutor {
 public:
  explicit CampaignExecutor(ExecOptions options) : options_(std::move(options)) {}

  /// Executes every fault of `list` against `base`. Each run's seed is
  /// sim::Rng::mix(campaign_seed, hash(fault.id())), matching the serial
  /// campaign loop this subsystem replaces.
  CampaignResult run(const core::RunConfig& base, const inject::FaultList& list,
                     std::uint64_t campaign_seed);

  /// Executes a campaign plan (src/plan/): only kExecute entries run, issued
  /// round by round from the adaptive sampler; everything else is attributed
  /// or synthesized. Per-run seeds derive exactly as in run(), so an entry's
  /// executed result is bit-identical to what the exhaustive sweep produces
  /// for the same fault. Journal records are tagged with their sampling
  /// stratum; the journal key's fault count is the plan's entry count.
  PlanCampaignResult run_plan(const core::RunConfig& base, const plan::Plan& plan,
                              std::uint64_t campaign_seed,
                              const plan::SamplerOptions& sampler_options);

 private:
  ExecOptions options_;
};

}  // namespace dts::exec
