#include "exec/executor.h"

#include <algorithm>
#include <exception>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "core/campaign.h"
#include "exec/journal.h"
#include "sim/rng.h"

namespace dts::exec {

namespace {

// Per-fault completion state. kElided marks faults a worker proved safe to
// skip (an already-executed earlier fault showed the function uncalled); the
// merge step synthesizes their serial skip records.
enum class SlotState : std::uint8_t { kPending, kExecuted, kElided };

struct Slot {
  core::RunResult result;
  bool fn_called = false;
  SlotState state = SlotState::kPending;
};

core::RunResult skipped_result(const inject::FaultSpec& fault) {
  core::RunResult r;
  r.fault = fault;
  r.activated = false;
  r.detail = "skipped: function not called by this workload";
  return r;
}

// Deterministic initial sharding with range stealing: worker w starts with a
// contiguous slice of the work items; a worker whose slice runs dry steals
// the tail half of the fattest remaining slice. All bookkeeping sits behind
// one mutex — at milliseconds per simulated run the lock is invisible, and
// the shared state stays trivially correct (results never depend on who ran
// what; see the merge step).
class ShardQueue {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  ShardQueue(std::size_t item_count, int workers) : ranges_(workers) {
    for (int w = 0; w < workers; ++w) {
      ranges_[w].next = item_count * static_cast<std::size_t>(w) / workers;
      ranges_[w].end = item_count * (static_cast<std::size_t>(w) + 1) / workers;
    }
  }

  /// Next item for `worker`, stealing if its own range is exhausted;
  /// npos when no work is left anywhere.
  std::size_t pop(int worker) {
    std::lock_guard<std::mutex> lock(mu_);
    Range& own = ranges_[worker];
    if (own.next < own.end) return own.next++;
    Range* victim = nullptr;
    std::size_t victim_size = 0;
    for (Range& r : ranges_) {
      const std::size_t size = r.end - r.next;
      if (size > victim_size) {
        victim = &r;
        victim_size = size;
      }
    }
    if (victim == nullptr) return npos;
    const std::size_t half = (victim_size + 1) / 2;
    own.end = victim->end;
    own.next = victim->end - half;
    victim->end = own.next;
    return own.next++;
  }

 private:
  struct Range {
    std::size_t next = 0;
    std::size_t end = 0;
  };
  std::mutex mu_;
  std::vector<Range> ranges_;
};

// fn -> lowest fault index whose *executed* run proved the function uncalled.
// A worker may elide fault i only given a proof at index j < i: that is
// exactly the information the serial sweep has when it reaches i, which makes
// elision schedule-independent (an executed-but-serially-skipped run is
// discarded by the merge; a proof the serial sweep would have had always
// exists by induction over j).
class UncalledProofs {
 public:
  void record(nt::Fn fn, std::size_t index) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = proofs_.emplace(fn, index);
    if (!inserted && index < it->second) it->second = index;
  }

  bool proven_before(nt::Fn fn, std::size_t index) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = proofs_.find(fn);
    return it != proofs_.end() && it->second < index;
  }

 private:
  mutable std::mutex mu_;
  std::map<nt::Fn, std::size_t> proofs_;
};

core::RunResult execute_fault(const core::RunConfig& base, std::uint64_t campaign_seed,
                              const inject::FaultSpec& fault, bool* fn_called) {
  core::RunConfig cfg = base;
  cfg.seed = sim::Rng::mix(campaign_seed, sim::Rng::hash(fault.id()));
  core::FaultInjectionRun run(cfg);
  core::RunResult r = run.execute(fault);
  *fn_called = run.interceptor().target_function_called();
  return r;
}

}  // namespace

CampaignResult CampaignExecutor::run(const core::RunConfig& base,
                                     const inject::FaultList& list,
                                     std::uint64_t campaign_seed) {
  const std::size_t n = list.faults.size();
  CampaignResult out;
  std::vector<Slot> slots(n);

  JournalKey key;
  key.workload = base.workload.name;
  key.middleware = static_cast<int>(base.middleware);
  key.watchd_version = static_cast<int>(base.watchd_version);
  key.seed = campaign_seed;
  key.fault_count = n;

  UncalledProofs proofs;

  if (!options_.journal_path.empty() && options_.resume) {
    std::string error;
    auto records = read_journal(options_.journal_path, key, &error);
    if (!records) throw std::runtime_error(error);
    for (const auto& rec : *records) {
      if (rec.index >= n) continue;
      if (list.faults[rec.index].id() != rec.fault_id) continue;
      Slot& slot = slots[rec.index];
      if (slot.state != SlotState::kPending) continue;  // duplicate record
      if (!core::parse_run_line(base.workload.target_image, rec.run_line, &slot.result,
                                nullptr)) {
        continue;
      }
      slot.fn_called = rec.fn_called;
      slot.state = SlotState::kExecuted;
      if (!slot.result.activated && !slot.fn_called) {
        proofs.record(list.faults[rec.index].fn, rec.index);
      }
      ++out.reused;
    }
  }

  RunJournal journal;
  if (!options_.journal_path.empty()) {
    std::string error;
    if (!journal.open(options_.journal_path, key, options_.resume, &error)) {
      throw std::runtime_error(error);
    }
  }

  std::vector<std::size_t> pending;
  pending.reserve(n - out.reused);
  for (std::size_t i = 0; i < n; ++i) {
    if (slots[i].state == SlotState::kPending) pending.push_back(i);
  }

  int workers = options_.jobs;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers < 1) workers = 1;
  }
  workers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(workers),
                            std::max<std::size_t>(pending.size(), 1)));

  ShardQueue queue(pending.size(), workers);
  ProgressTracker tracker(n, out.reused);
  std::mutex progress_mu;
  std::atomic<bool> stop{false};
  std::atomic<bool> cancelled{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker_loop = [&](int worker) {
    try {
      for (;;) {
        if (stop.load(std::memory_order_relaxed)) return;
        if (options_.cancel != nullptr &&
            options_.cancel->load(std::memory_order_relaxed)) {
          cancelled.store(true, std::memory_order_relaxed);
          stop.store(true, std::memory_order_relaxed);
          return;
        }
        const std::size_t item = queue.pop(worker);
        if (item == ShardQueue::npos) return;
        const std::size_t i = pending[item];
        const inject::FaultSpec& fault = list.faults[i];
        Slot& slot = slots[i];

        const bool elide = options_.skip_uncalled && proofs.proven_before(fault.fn, i);
        if (elide) {
          slot.state = SlotState::kElided;
        } else {
          slot.result = execute_fault(base, campaign_seed, fault, &slot.fn_called);
          slot.state = SlotState::kExecuted;
          if (!slot.result.activated && !slot.fn_called) proofs.record(fault.fn, i);
          if (journal.is_open()) {
            JournalRecord rec;
            rec.index = i;
            rec.fault_id = fault.id();
            rec.fn_called = slot.fn_called;
            rec.run_line = core::serialize_run_line(slot.result);
            journal.append(rec);
          }
        }

        std::lock_guard<std::mutex> lock(progress_mu);
        const ProgressSnapshot s = tracker.completed(/*fresh_execution=*/!elide);
        if (options_.on_progress) options_.on_progress(s);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
      stop.store(true, std::memory_order_relaxed);
    }
  };

  if (pending.empty()) {
    // Fully resumed: no worker will fire the callback, so report the final
    // state directly (done == total, everything reused).
    if (options_.on_progress) options_.on_progress(tracker.snapshot());
  } else if (workers == 1) {
    // jobs=1 stays on the calling thread and visits faults in list order —
    // the pre-subsystem serial campaign loop, exactly.
    worker_loop(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (int w = 0; w < workers; ++w) threads.emplace_back(worker_loop, w);
    for (auto& t : threads) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);
  out.executed = tracker.snapshot().executed;
  if (cancelled.load()) {
    out.interrupted = true;
    return out;
  }

  // Merge: replay the paper-§4 skip rule serially over the completed results
  // so the output is byte-identical to a one-worker sweep regardless of how
  // the faults were scheduled above.
  std::set<nt::Fn> uncalled;
  out.runs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const inject::FaultSpec& fault = list.faults[i];
    if (options_.skip_uncalled && uncalled.contains(fault.fn)) {
      out.runs.push_back(skipped_result(fault));
      ++out.skipped;
      continue;
    }
    Slot& slot = slots[i];
    if (slot.state != SlotState::kExecuted) {
      // Defensive: an elided fault always has an earlier uncalled proof, so
      // this branch is unreachable unless that invariant breaks — in which
      // case run the fault now rather than emit a wrong record.
      slot.result = execute_fault(base, campaign_seed, fault, &slot.fn_called);
      slot.state = SlotState::kExecuted;
      ++out.executed;
    }
    if (!slot.result.activated && !slot.fn_called) uncalled.insert(fault.fn);
    out.runs.push_back(std::move(slot.result));
  }
  return out;
}

}  // namespace dts::exec
